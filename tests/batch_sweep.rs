//! The batched-vs-serial equivalence belt (DESIGN.md §12's acceptance
//! test).
//!
//! A batch of K concurrent BFS queries multiplexed through one shared
//! traversal must answer every query exactly as K independent serial
//! traversals would: per-query level arrays, visited counts, traversed
//! edge counts and max levels bit-identical to the single-source
//! reference, with parents validated structurally (they are
//! schedule-dependent and excluded from fingerprints repo-wide). The
//! serial reference is computed once — levels are invariant across rank
//! counts, thread counts and fault plans, a fact the existing sweeps
//! already pin — and every batched configuration is compared against it:
//! fault-free, under the 16-seed chaos adversary, under frame corruption
//! and loss, across state widths K ∈ {2, 8, 64}, worker pools ∈ {1, 4}
//! and rank counts ∈ {1, 2}, and across checkpoint/crash/restore cycles.
//!
//! Reachability rides the same mask plane with bit-OR state; its per-query
//! reached counts must equal BFS visited counts, and its reach masks must
//! agree bit-for-bit with the reference level arrays.
//!
//! Every batched run also checks the per-query execution ledger: the
//! per-query executed/pushed counters must sum to the batch totals under
//! every schedule, fault plan and crash/restore cycle.

use havoq::prelude::*;
use havoq::testing::{assert_conserved, gather_state, heavy_sweep_edges, sweep_edges};
use havoq_comm::{CommWorld, FaultConfig};
use havoq_core::algorithms::bfs::UNREACHED;
use havoq_core::batch::bfs_batch;
use havoq_core::CheckpointSpec;
use havoq_util::testing::{sweep_seed_set, sweep_seeds};

/// Per-query schedule-independent outcome: (visited, traversed edges, max
/// level, level array in canonical vertex order).
type QueryFp = (u64, u64, u64, Vec<(u64, u64)>);

/// The serial single-source reference for a query set, computed with the
/// plain `bfs` the rest of the repo trusts.
fn serial_reference(edges: &[Edge], n: u64, sources: &[VertexId]) -> Vec<QueryFp> {
    let (edges, sources) = (edges.to_vec(), sources.to_vec());
    CommWorld::run(2, move |ctx| {
        let g = DistGraph::build_replicated(
            ctx,
            &edges,
            PartitionStrategy::EdgeList,
            GraphConfig::default().with_num_vertices(n),
        );
        sources
            .iter()
            .map(|&s| {
                let r = bfs(ctx, &g, s, &BfsConfig::default());
                let report = validate_bfs(ctx, &g, s, &r.local_state);
                assert!(report.is_valid(), "serial reference invalid for {s:?}: {report:?}");
                (
                    r.visited_count,
                    r.traversed_edges,
                    r.max_level,
                    gather_state(ctx, &g, |li| r.local_state[li].length),
                )
            })
            .collect::<Vec<_>>()
    })
    .remove(0)
}

/// One batched run at compile-time width `K`: returns the per-query
/// fingerprints plus (crashes, restores) world totals. Conservation,
/// structural parent validity and the ledger sum invariant are asserted
/// inside.
fn batched_run<const K: usize>(
    p: usize,
    edges: &[Edge],
    n: u64,
    sources: &[VertexId],
    threads: usize,
    faults: Option<FaultConfig>,
    checkpoint_every: Option<u64>,
) -> (Vec<QueryFp>, u64, u64) {
    let (edges, sources) = (edges.to_vec(), sources.to_vec());
    CommWorld::run_with_faults(p, faults, move |ctx| {
        let g = DistGraph::build_replicated(
            ctx,
            &edges,
            PartitionStrategy::EdgeList,
            GraphConfig::default().with_num_vertices(n),
        );
        let mut cfg = BatchConfig::default().with_threads(threads);
        if let Some(every) = checkpoint_every {
            cfg = cfg.with_checkpoint(CheckpointSpec::default().with_every(every));
        }
        let res = bfs_batch::<K>(ctx, &g, &sources, &cfg);
        assert_conserved(ctx, "batched bfs", &res.stats);
        res.ledger
            .check(sources.len())
            .unwrap_or_else(|e| panic!("ledger invariant broke at K={K} p={p}: {e}"));
        let fps = sources
            .iter()
            .enumerate()
            .map(|(qi, &s)| {
                let report = validate_bfs(ctx, &g, s, &res.local_state[qi]);
                assert!(report.is_valid(), "batched parents invalid for query {qi}: {report:?}");
                let agg = res.per_query[qi];
                (
                    agg.visited_count,
                    agg.traversed_edges,
                    agg.max_level,
                    gather_state(ctx, &g, |li| res.local_state[qi][li].length),
                )
            })
            .collect::<Vec<_>>();
        let crashes = ctx.all_reduce_sum(res.stats.crashes);
        let restores = ctx.all_reduce_sum(res.stats.restores);
        (fps, crashes, restores)
    })
    .remove(0)
}

/// The deterministic query set every test draws from: 24 distinct sources,
/// sliced to the width under test. (RMAT vertex IDs skew low, so these are
/// mostly well-connected; an isolated source is equally fine — both sides
/// must then answer "visited 1, level 0".)
fn query_set() -> Vec<VertexId> {
    (0..24).map(VertexId).collect()
}

/// Width slices: K = 2 and 8 run exactly-full batches, K = 64 runs
/// partially full (24 of 64 slots) — the mask plane must not care.
const WIDTHS: [(usize, usize); 3] = [(2, 2), (8, 8), (64, 24)];

#[allow(clippy::too_many_arguments)]
fn run_width(
    width: usize,
    p: usize,
    edges: &[Edge],
    n: u64,
    sources: &[VertexId],
    threads: usize,
    faults: Option<FaultConfig>,
    ckpt: Option<u64>,
) -> (Vec<QueryFp>, u64, u64) {
    match width {
        2 => batched_run::<2>(p, edges, n, sources, threads, faults, ckpt),
        8 => batched_run::<8>(p, edges, n, sources, threads, faults, ckpt),
        64 => batched_run::<64>(p, edges, n, sources, threads, faults, ckpt),
        w => panic!("width {w} not wired into the sweep"),
    }
}

/// Fault-free equivalence across the full (width × threads × ranks) grid.
#[test]
fn batch_widths_match_serial_reference() {
    let (edges, n) = sweep_edges();
    let queries = query_set();
    let reference = serial_reference(&edges, n, &queries);
    for (width, len) in WIDTHS {
        let sources = &queries[..len];
        for p in [1usize, 2] {
            for threads in [1usize, 4] {
                let (got, crashes, _) =
                    run_width(width, p, &edges, n, sources, threads, None, None);
                assert_eq!(crashes, 0, "fault-free run crashed");
                assert_eq!(
                    got,
                    reference[..len].to_vec(),
                    "K={width} p={p} threads={threads} diverged from the serial reference"
                );
            }
        }
    }
}

/// The chaos acceptance sweep: 16 seeded chaos plans (delay + reorder +
/// duplicate + stall + slow-rank) crossed with every width, threads ∈
/// {1, 4}, p ∈ {1, 2} — every batched answer bit-identical to serial.
#[test]
fn batch_chaos_sweep_16_seeds_matches_serial() {
    let (edges, n) = sweep_edges();
    let queries = query_set();
    let reference = serial_reference(&edges, n, &queries);
    sweep_seeds(sweep_seed_set(16), |seed| {
        for (width, len) in WIDTHS {
            let sources = &queries[..len];
            for p in [1usize, 2] {
                for threads in [1usize, 4] {
                    let (got, _, _) = run_width(
                        width,
                        p,
                        &edges,
                        n,
                        sources,
                        threads,
                        Some(FaultConfig::chaos(seed)),
                        None,
                    );
                    assert_eq!(
                        got,
                        reference[..len].to_vec(),
                        "seed {seed:#x} K={width} p={p} threads={threads} perturbed a batch"
                    );
                }
            }
        }
    });
}

/// Frame corruption and loss on the mask plane: the batched visitor rides
/// the same CRC + NACK + retransmit plane as everything else, so lossy
/// plans must be invisible at every width.
#[test]
fn batch_lossy_sweep_matches_serial() {
    let (edges, n) = sweep_edges();
    let queries = query_set();
    let reference = serial_reference(&edges, n, &queries);
    let p = 2;
    sweep_seeds(sweep_seed_set(8), |seed| {
        for (width, len) in WIDTHS {
            let (got, _, _) = run_width(
                width,
                p,
                &edges,
                n,
                &queries[..len],
                4,
                Some(FaultConfig::lossy(seed)),
                None,
            );
            assert_eq!(
                got,
                reference[..len].to_vec(),
                "seed {seed:#x} K={width} perturbed a batch under corruption/loss"
            );
        }
    });
}

/// Resume equivalence: crash each rank at each early checkpoint epoch
/// mid-batch and demand the restored batch answer every query exactly as
/// the never-crashed serial reference does. The widened per-vertex state
/// (including the expansion bitmask) is checkpointed as one `WireCodec`
/// record, so a torn epoch must rewind all K queries together.
#[test]
fn batch_resume_equivalence_after_rank_crashes() {
    let (edges, n) = sweep_edges();
    let queries = query_set();
    let reference = serial_reference(&edges, n, &queries);
    let p = 2;
    let sources = &queries[..8];
    let mut total_crashes = 0u64;
    for victim in 0..p {
        for epoch in 1..=2u64 {
            let faults = FaultConfig::quiet(0xBA7C).with_forced_crash(victim, epoch);
            for threads in [1usize, 4] {
                let (got, crashes, restores) =
                    batched_run::<8>(p, &edges, n, sources, threads, Some(faults), Some(4));
                assert_eq!(
                    got,
                    reference[..8].to_vec(),
                    "victim={victim} epoch={epoch} threads={threads}: restored batch diverged"
                );
                assert!(restores >= crashes, "a crash must trigger a world-wide restore");
                total_crashes += crashes;
            }
        }
    }
    assert!(total_crashes > 0, "the crash grid never tore an epoch");
}

/// Reachability equivalence: `reach_batch` answers "which queries reach
/// this vertex" with bit-OR masks; each query's reached count must equal
/// its BFS visited count, and the gathered masks must agree bit-for-bit
/// with the reference level arrays (reached ⇔ level != UNREACHED).
#[test]
fn batch_reach_agrees_with_bfs_reference() {
    let (edges, n) = sweep_edges();
    let queries = query_set();
    let reference = serial_reference(&edges, n, &queries);
    let sources: Vec<VertexId> = queries[..8].to_vec();
    for p in [1usize, 2] {
        for faults in [None, Some(FaultConfig::chaos(sweep_seed_set(1)[0]))] {
            let (edges_c, sources_c) = (edges.clone(), sources.clone());
            let (counts, masks) = CommWorld::run_with_faults(p, faults, move |ctx| {
                let g = DistGraph::build_replicated(
                    ctx,
                    &edges_c,
                    PartitionStrategy::EdgeList,
                    GraphConfig::default().with_num_vertices(n),
                );
                let res = reach_batch(ctx, &g, &sources_c, &BatchConfig::default());
                assert_conserved(ctx, "batched reach", &res.stats);
                let masks = gather_state(ctx, &g, |li| res.local_masks[li]);
                (res.reached_counts.clone(), masks)
            })
            .remove(0);
            for (qi, fp) in reference[..8].iter().enumerate() {
                assert_eq!(counts[qi], fp.0, "p={p}: query {qi} reach count != bfs visited");
                for ((v, mask), (rv, level)) in masks.iter().zip(&fp.3) {
                    assert_eq!(v, rv, "canonical vertex order diverged");
                    assert_eq!(
                        mask >> qi & 1 == 1,
                        *level != UNREACHED,
                        "p={p}: query {qi} reach bit disagrees with bfs level at vertex {v}"
                    );
                }
            }
        }
    }
}

/// The heavyweight sweep for the CI batched-chaos job (`--include-ignored`,
/// release): chaos and crashes at a deliberately awkward rank count on the
/// larger graph, full 64-slot batches, threads = 4.
#[test]
#[ignore = "heavy: run via the CI batched-chaos job or --include-ignored"]
fn batch_chaos_sweep_heavy_seven_ranks() {
    let (edges, n) = heavy_sweep_edges();
    let queries: Vec<VertexId> = (0..64).map(VertexId).collect();
    let reference = serial_reference(&edges, n, &queries);
    let p = 7;
    sweep_seeds(sweep_seed_set(4), |seed| {
        let (got, _, _) =
            batched_run::<64>(p, &edges, n, &queries, 4, Some(FaultConfig::chaos(seed)), None);
        assert_eq!(got, reference, "seed {seed:#x} perturbed a full-width batch at p={p}");
    });
    // and once with crashes stacked on top of a chaos plan
    let faults = FaultConfig::chaos(sweep_seed_set(1)[0]).with_crash(150);
    let (got, _, _) = batched_run::<64>(p, &edges, n, &queries, 4, Some(faults), Some(16));
    assert_eq!(got, reference, "crashing chaos batch diverged at p={p}");
}
