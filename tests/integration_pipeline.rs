//! End-to-end integration: generators -> distributed sort -> edge-list
//! partitioning -> visitor-queue algorithms, checked against serial
//! references across rank counts, partition strategies and mailbox
//! topologies.

use havoq::prelude::*;
use havoq_comm::MailboxConfig;
use havoq_core::algorithms::bfs::UNREACHED;

/// Serial reference BFS levels.
fn reference_bfs(n: u64, edges: &[Edge], source: u64) -> Vec<u64> {
    let mut adj = vec![Vec::new(); n as usize];
    for e in edges {
        if !e.is_self_loop() {
            adj[e.src as usize].push(e.dst);
        }
    }
    let mut level = vec![UNREACHED; n as usize];
    level[source as usize] = 0;
    let mut frontier = vec![source];
    let mut l = 0;
    while !frontier.is_empty() {
        l += 1;
        let mut next = Vec::new();
        for &v in &frontier {
            for &t in &adj[v as usize] {
                if level[t as usize] == UNREACHED {
                    level[t as usize] = l;
                    next.push(t);
                }
            }
        }
        frontier = next;
    }
    level
}

fn distributed_bfs_levels(
    p: usize,
    n: u64,
    edges: &[Edge],
    source: u64,
    strategy: PartitionStrategy,
    cfg: &BfsConfig,
    gcfg: GraphConfig,
) -> Vec<u64> {
    let pieces = CommWorld::run(p, |ctx| {
        let g = DistGraph::build_replicated(ctx, edges, strategy, gcfg.with_num_vertices(n));
        let r = bfs(ctx, &g, VertexId(source), cfg);
        g.local_vertices()
            .filter(|&v| g.is_master(v))
            .map(|v| (v.0, r.local_state[g.local_index(v)].length))
            .collect::<Vec<_>>()
    });
    let mut levels = vec![u64::MAX; n as usize];
    let mut owners = vec![0u32; n as usize];
    for (v, l) in pieces.into_iter().flatten() {
        owners[v as usize] += 1;
        levels[v as usize] = l;
    }
    assert!(owners.iter().all(|&o| o == 1), "each vertex needs exactly one master");
    levels
}

#[test]
fn bfs_matches_reference_across_strategies_and_topologies() {
    let gen = RmatGenerator::graph500(9);
    let edges = gen.symmetric_edges(4242);
    let n = gen.num_vertices();
    let want = reference_bfs(n, &edges, 1);

    for strategy in [PartitionStrategy::EdgeList, PartitionStrategy::OneD] {
        for topo in [TopologyKind::Direct, TopologyKind::Routed2D, TopologyKind::Routed3D] {
            let mut cfg = BfsConfig::default();
            cfg.traversal.mailbox = MailboxConfig::with_topology(topo);
            let got =
                distributed_bfs_levels(8, n, &edges, 1, strategy, &cfg, GraphConfig::default());
            assert_eq!(got, want, "strategy={strategy:?} topo={topo:?}");
        }
    }
}

#[test]
fn bfs_on_external_memory_matches_dram() {
    let gen = RmatGenerator::graph500(9);
    let edges = gen.symmetric_edges(7);
    let n = gen.num_vertices();
    let want = distributed_bfs_levels(
        4,
        n,
        &edges,
        0,
        PartitionStrategy::EdgeList,
        &BfsConfig::default(),
        GraphConfig::default(),
    );
    let ext = GraphConfig::external(
        DeviceProfile::dram(),
        PageCacheConfig {
            page_size: 256,
            capacity_pages: 16,
            shards: 2,
            ..PageCacheConfig::default()
        },
    );
    let got = distributed_bfs_levels(
        4,
        n,
        &edges,
        0,
        PartitionStrategy::EdgeList,
        &BfsConfig::default(),
        ext,
    );
    assert_eq!(got, want, "tiny spilling cache must not change results");
}

#[test]
fn all_generators_flow_through_the_pipeline() {
    // every generator family builds and traverses without loss
    let inputs: Vec<(&str, Vec<Edge>, u64)> = vec![
        ("rmat", RmatGenerator::graph500(8).symmetric_edges(1), 1 << 8),
        ("pa", PaGenerator::new(300, 4).with_rewire(0.1).symmetric_edges(2), 300),
        ("smallworld", SmallWorldGenerator::new(256, 6).with_rewire(0.05).symmetric_edges(3), 256),
    ];
    for (name, edges, n) in inputs {
        let want = reference_bfs(n, &edges, 0);
        let got = distributed_bfs_levels(
            3,
            n,
            &edges,
            0,
            PartitionStrategy::EdgeList,
            &BfsConfig::default(),
            GraphConfig::default(),
        );
        assert_eq!(got, want, "generator {name}");
    }
}

#[test]
fn repeated_traversals_share_one_world() {
    // graph build once, many algorithm runs: the auto-tag channel scheme
    // must keep every traversal isolated
    let gen = RmatGenerator::graph500(8);
    let edges = gen.symmetric_edges(5);
    let consistent = CommWorld::run(4, |ctx| {
        let g = DistGraph::build_replicated(
            ctx,
            &edges,
            PartitionStrategy::EdgeList,
            GraphConfig::default(),
        );
        let first = bfs(ctx, &g, VertexId(0), &BfsConfig::default());
        let mut same = true;
        for _ in 0..4 {
            let again = bfs(ctx, &g, VertexId(0), &BfsConfig::default());
            same &= again.visited_count == first.visited_count
                && again.max_level == first.max_level
                && again.traversed_edges == first.traversed_edges;
        }
        same
    });
    assert!(consistent.iter().all(|&b| b));
}

#[test]
fn teps_and_visit_accounting_are_sane() {
    let gen = RmatGenerator::graph500(9);
    let edges = gen.symmetric_edges(6);
    let checks = CommWorld::run(4, |ctx| {
        let g = DistGraph::build_replicated(
            ctx,
            &edges,
            PartitionStrategy::EdgeList,
            GraphConfig::default(),
        );
        let r = bfs(ctx, &g, VertexId(0), &BfsConfig::default());
        let sent = ctx.all_reduce_sum(r.stats.payload_sent);
        let recv = ctx.all_reduce_sum(r.stats.payload_received);
        // every payload delivered; traversed edges bounded by 2x directed
        // edge count (symmetrized, deduplicated)
        sent == recv && r.traversed_edges <= g.num_edges() && r.teps() > 0.0
    });
    assert!(checks.iter().all(|&b| b));
}
