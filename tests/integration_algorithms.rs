//! Cross-crate integration for the full algorithm suite (k-core, triangle
//! counting, connected components, SSSP) on all three generator families.

use havoq::prelude::*;
use havoq_core::algorithms::cc::{connected_components, CcConfig};
use havoq_core::algorithms::kcore::{kcore, KCoreConfig};
use havoq_core::algorithms::sssp::{sssp, SsspConfig};

fn build_and<F, R>(p: usize, n: u64, edges: &[Edge], f: F) -> Vec<R>
where
    F: Fn(&havoq_comm::RankCtx, &DistGraph) -> R + Sync,
    R: Send,
{
    CommWorld::run(p, |ctx| {
        let g = DistGraph::build_replicated(
            ctx,
            edges,
            PartitionStrategy::EdgeList,
            GraphConfig::default().with_num_vertices(n),
        );
        f(ctx, &g)
    })
}

/// Serial triangle reference.
fn reference_triangles(n: u64, edges: &[Edge]) -> u64 {
    use std::collections::HashSet;
    let mut adj: Vec<HashSet<u64>> = vec![HashSet::new(); n as usize];
    for e in edges {
        if !e.is_self_loop() {
            adj[e.src as usize].insert(e.dst);
            adj[e.dst as usize].insert(e.src);
        }
    }
    let mut count = 0;
    for a in 0..n {
        for &b in &adj[a as usize] {
            if b <= a {
                continue;
            }
            for &c in &adj[b as usize] {
                if c > b && adj[a as usize].contains(&c) {
                    count += 1;
                }
            }
        }
    }
    count
}

#[test]
fn triangle_count_all_generators() {
    let inputs: Vec<(&str, Vec<Edge>, u64)> = vec![
        ("rmat", RmatGenerator::graph500(7).symmetric_edges(9), 1 << 7),
        ("pa", PaGenerator::new(200, 4).with_rewire(0.2).symmetric_edges(8), 200),
        ("smallworld", SmallWorldGenerator::new(150, 6).with_rewire(0.1).symmetric_edges(7), 150),
    ];
    for (name, edges, n) in inputs {
        let want = reference_triangles(n, &edges);
        let got = build_and(5, n, &edges, |ctx, g| {
            triangle_count(ctx, g, &TriangleConfig::default()).triangles
        });
        assert!(got.iter().all(|&t| t == want), "{name}: {got:?} != {want}");
    }
}

#[test]
fn kcore_hierarchy_is_nested() {
    // k-cores are nested: the (k+1)-core is a subgraph of the k-core
    let gen = RmatGenerator::graph500(8);
    let edges = gen.symmetric_edges(10);
    let n = gen.num_vertices();
    let sizes: Vec<u64> = [1u64, 2, 4, 8, 16, 32]
        .iter()
        .map(|&k| {
            build_and(4, n, &edges, move |ctx, g| {
                kcore(ctx, g, k, &KCoreConfig::default()).alive_count
            })[0]
        })
        .collect();
    assert!(sizes.windows(2).all(|w| w[0] >= w[1]), "cores must be nested: {sizes:?}");
}

#[test]
fn components_and_bfs_agree() {
    // the component of the BFS source must have exactly the BFS-visited size
    let gen = PaGenerator::new(500, 3).with_rewire(0.3);
    let edges = gen.symmetric_edges(77);
    let results = build_and(4, 500, &edges, |ctx, g| {
        let b = bfs(ctx, g, VertexId(0), &BfsConfig::default());
        let c = connected_components(ctx, g, &CcConfig::default());
        // count vertices whose component label matches vertex 0's
        let my_label: u64 = g
            .local_vertices()
            .filter(|&v| g.is_master(v) && v.0 == 0)
            .map(|v| c.local_state[g.local_index(v)].component)
            .next()
            .unwrap_or(u64::MAX);
        let label0 = ctx.all_reduce_min(my_label);
        let local = g
            .local_vertices()
            .filter(|&v| g.is_master(v) && c.local_state[g.local_index(v)].component == label0)
            .count() as u64;
        (b.visited_count, ctx.all_reduce_sum(local), c.num_components)
    });
    for (visited, comp_size, _n_comp) in results {
        assert_eq!(visited, comp_size);
    }
}

#[test]
fn sssp_distances_bounded_by_bfs_levels() {
    // with weights in [1, W], dist(v) is between level(v) and W * level(v)
    let gen = RmatGenerator::graph500(7);
    let edges = gen.symmetric_edges(3);
    let n = gen.num_vertices();
    let cfg = SsspConfig::default();
    let ok = build_and(3, n, &edges, |ctx, g| {
        let b = bfs(ctx, g, VertexId(0), &BfsConfig::default());
        let s = sssp(ctx, g, VertexId(0), &cfg);
        let mut ok = true;
        for v in g.local_vertices() {
            if !g.is_master(v) {
                continue;
            }
            let li = g.local_index(v);
            let (lvl, dist) = (b.local_state[li].length, s.local_state[li].distance);
            match (lvl == u64::MAX, dist == u64::MAX) {
                (true, true) => {}
                (false, false) => ok &= dist >= lvl && dist <= lvl.saturating_mul(cfg.max_weight),
                _ => ok = false, // must agree on reachability
            }
        }
        let _ = ctx.all_reduce_sum(0); // keep collective order aligned
        ok
    });
    assert!(ok.iter().all(|&b| b));
}

#[test]
fn ghost_filtering_reduces_network_payload() {
    // hub-heavy graph: ghosts must cut the payload volume without changing
    // the BFS result
    let gen = RmatGenerator::graph500(10);
    let edges = gen.symmetric_edges(123);
    let n = gen.num_vertices();
    let (with, without) = {
        let w = build_and(6, n, &edges, |ctx, g| {
            let r = bfs(ctx, g, VertexId(0), &BfsConfig::default().with_ghosts(256));
            (r.visited_count, ctx.all_reduce_sum(r.stats.payload_sent))
        });
        let wo = build_and(6, n, &edges, |ctx, g| {
            let r = bfs(ctx, g, VertexId(0), &BfsConfig::default().with_ghosts(0));
            (r.visited_count, ctx.all_reduce_sum(r.stats.payload_sent))
        });
        (w[0], wo[0])
    };
    assert_eq!(with.0, without.0, "ghosts must not change reachability");
    assert!(with.1 < without.1, "ghosts should reduce payload: {} vs {}", with.1, without.1);
}
