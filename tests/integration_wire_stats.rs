//! Acceptance tests for the byte-framed wire layer, driven by fixed-seed
//! RMAT traffic:
//!
//! - **Item-level identity** — at the default configuration the frame
//!   packing must not change any item-level statistic: per-pair message
//!   and payload counts, the aggregation factor, and the channels used
//!   are byte-for-byte the same as with framing effectively disabled
//!   (`frame_bytes` huge, channels unbounded), because `batch_size`
//!   remains the binding flush trigger. A live asynchronous traversal's
//!   flush boundaries depend on thread scheduling, so the identity is
//!   checked on a deterministic lock-step exchange of the same fixed-seed
//!   RMAT edges (all sends, one flush, then drain); the BFS answer itself
//!   is additionally asserted identical across configurations.
//! - **Byte-level population** — the new statistics (bytes per pair,
//!   frames, fill ratio, stalls) are populated and self-consistent on a
//!   real fixed-seed RMAT BFS: global bytes sent == bytes received, the
//!   transport byte matrix sums to the mailbox totals, and the mean frame
//!   fill is >= 0.5 at the default `frame_bytes`.
//! - **Backpressure** — with `channel_capacity = 1` the same traversal
//!   still terminates with identical results while recording stalls.

use havoq::prelude::*;
use havoq_comm::{ChannelStatsSnapshot, MailboxConfig, MailboxStatsSnapshot};
use havoq_core::queue::TraversalStats;

const RANKS: usize = 4;
const SCALE: u32 = 10;

struct RankOutcome {
    levels: Vec<u64>,
    stats: TraversalStats,
    transport: ChannelStatsSnapshot,
}

/// Deterministic BFS-shaped traffic: every rank sends one record per edge
/// of its slice of the fixed-seed RMAT list, addressed by the destination
/// vertex, with all sends issued before the single flush and drain. Flush
/// boundaries then depend only on the configuration, never on scheduling.
fn deterministic_exchange(cfg: MailboxConfig) -> Vec<(MailboxStatsSnapshot, ChannelStatsSnapshot)> {
    let edges = havoq_graph::gen::rmat::RmatGenerator::graph500(SCALE).symmetric_edges(42);
    CommWorld::run(RANKS, move |ctx| {
        let mut mb = havoq_comm::Mailbox::<u64>::open(ctx, 7, cfg);
        let mut q = Quiescence::new(ctx, 7);
        for (i, e) in edges.iter().enumerate() {
            if i % RANKS == ctx.rank() {
                mb.send(e.dst as usize % RANKS, e.src ^ e.dst);
            }
        }
        let mut got = Vec::new();
        loop {
            if mb.poll(&mut got) == 0 {
                mb.flush();
                if q.poll(mb.sent_count(), mb.received_count(), mb.pending_out() == 0) {
                    break;
                }
            }
        }
        ctx.barrier();
        (mb.stats(), mb.transport_stats())
    })
}

fn run_bfs(mailbox: MailboxConfig) -> Vec<RankOutcome> {
    let edges = havoq_graph::gen::rmat::RmatGenerator::graph500(SCALE).symmetric_edges(42);
    CommWorld::run(RANKS, move |ctx| {
        let g = DistGraph::build_replicated(
            ctx,
            &edges,
            PartitionStrategy::EdgeList,
            GraphConfig::default(),
        );
        let mut cfg = BfsConfig::default();
        cfg.traversal.mailbox = mailbox;
        let r = bfs(ctx, &g, VertexId(0), &cfg);
        let levels = g
            .local_vertices()
            .filter(|&v| g.is_master(v))
            .map(|v| r.local_state[g.local_index(v)].length)
            .collect();
        RankOutcome { levels, stats: r.stats, transport: r.transport }
    })
}

fn pair_matrices(snap: &ChannelStatsSnapshot) -> (Vec<Vec<u64>>, Vec<Vec<u64>>) {
    let msgs = (0..RANKS).map(|s| (0..RANKS).map(|d| snap.msgs_between(s, d)).collect()).collect();
    let items =
        (0..RANKS).map(|s| (0..RANKS).map(|d| snap.items_between(s, d)).collect()).collect();
    (msgs, items)
}

#[test]
fn framing_preserves_item_level_stats() {
    let framed = deterministic_exchange(MailboxConfig::default());
    // Framing "off": frames big enough to never bind, channels unbounded.
    let unframed = deterministic_exchange(
        MailboxConfig::default().with_frame_bytes(1 << 22).with_channel_capacity(None),
    );

    // Item-level statistics are identical: per-pair message and payload
    // matrices, aggregation factor, channel counts.
    let (msgs_a, items_a) = pair_matrices(&framed[0].1);
    let (msgs_b, items_b) = pair_matrices(&unframed[0].1);
    assert_eq!(msgs_a, msgs_b, "per-pair message counts changed under framing");
    assert_eq!(items_a, items_b, "per-pair payload counts changed under framing");
    let (snap_a, snap_b) = (&framed[0].1, &unframed[0].1);
    assert_eq!(snap_a.max_channels_used(), snap_b.max_channels_used());
    assert!((snap_a.aggregation_factor() - snap_b.aggregation_factor()).abs() < 1e-12);
    // End-to-end payload counts agree too.
    let sent_a: u64 = framed.iter().map(|(m, _)| m.sent).sum();
    let sent_b: u64 = unframed.iter().map(|(m, _)| m.sent).sum();
    assert_eq!(sent_a, sent_b);

    // The BFS answer itself is unchanged by the frame configuration.
    let bfs_framed = run_bfs(MailboxConfig::default());
    let bfs_unframed =
        run_bfs(MailboxConfig::default().with_frame_bytes(1 << 22).with_channel_capacity(None));
    for (a, b) in bfs_framed.iter().zip(&bfs_unframed) {
        assert_eq!(a.levels, b.levels);
    }
}

#[test]
fn byte_level_stats_are_populated_and_consistent() {
    let out = run_bfs(MailboxConfig::default());

    let sent: u64 = out.iter().map(|o| o.stats.bytes_sent).sum();
    let received: u64 = out.iter().map(|o| o.stats.bytes_received).sum();
    let frames: u64 = out.iter().map(|o| o.stats.frames_sent).sum();
    assert!(sent > 0, "no wire bytes recorded");
    assert!(frames > 0, "no frames recorded");
    assert_eq!(sent, received, "wire bytes not conserved");

    // The transport's byte matrix is the same accounting, per (src, dst).
    assert_eq!(out[0].transport.total_bytes(), sent);

    // At the default frame_bytes, batch-triggered flushes keep frames
    // well-filled: every rank that shipped frames averages >= 50 % fill.
    for (rank, o) in out.iter().enumerate() {
        if o.stats.frames_sent > 0 {
            assert!(
                o.stats.mean_frame_fill >= 0.5,
                "rank {rank}: mean frame fill {} < 0.5",
                o.stats.mean_frame_fill
            );
        }
    }

    // No stalls at the default (deep) channel capacity.
    assert_eq!(out.iter().map(|o| o.stats.backpressure_stalls).sum::<u64>(), 0);
}

#[test]
fn tight_channel_capacity_stalls_but_terminates_identically() {
    let relaxed = run_bfs(MailboxConfig::default());
    let tight = run_bfs(MailboxConfig::default().with_channel_capacity(Some(1)));

    for (a, b) in relaxed.iter().zip(&tight) {
        assert_eq!(a.levels, b.levels, "backpressure changed the BFS result");
    }
    let stalls: u64 = tight.iter().map(|o| o.stats.backpressure_stalls).sum();
    assert!(stalls > 0, "capacity-1 channels recorded no backpressure stalls");

    // Item-level traffic is unchanged by the bounded channel: frame
    // boundaries are fixed by send order and batch_size, so the
    // deterministic exchange ships the same per-pair matrices.
    let ex_relaxed = deterministic_exchange(MailboxConfig::default());
    let ex_tight = deterministic_exchange(MailboxConfig::default().with_channel_capacity(Some(1)));
    let (msgs_a, items_a) = pair_matrices(&ex_relaxed[0].1);
    let (msgs_b, items_b) = pair_matrices(&ex_tight[0].1);
    assert_eq!(msgs_a, msgs_b);
    assert_eq!(items_a, items_b);
    let ex_stalls: u64 = ex_tight.iter().map(|(m, _)| m.backpressure_stalls).sum();
    assert!(ex_stalls > 0, "capacity-1 deterministic exchange recorded no stalls");
}
