//! The direction-optimizing BFS equivalence sweep (DESIGN.md §13's
//! acceptance test).
//!
//! The direction engine must be a *drop-in* replacement for the
//! asynchronous visitor BFS: levels are a graph property and may not
//! depend on the expansion direction, and the engine's lexicographic
//! `(length, parent)` delivery reduction makes parents deterministic too —
//! so forced-top-down, forced-bottom-up and the Beamer auto heuristic must
//! produce **bit-identical** `(level, parent)` state, across rank counts,
//! worker counts, the chaos/lossy adversaries and checkpoint/crash/restore
//! cycles, and identical *levels* to the legacy asynchronous engine.
//!
//! Edge-inspection counts are part of the fingerprint: they are a pure
//! function of the graph and the direction schedule, so faults, threads
//! and crash-rewind cycles must not perturb them either.

use havoq::prelude::*;
use havoq::testing::{assert_conserved, gather_state, heavy_sweep_edges, sweep_edges};
use havoq_comm::FaultConfig;
use havoq_core::CheckpointSpec;
use havoq_util::testing::{run_cases, sweep_seed_set, sweep_seeds, TestRng};

/// Schedule-independent results of one direction-engine BFS run.
#[derive(Clone, Debug, PartialEq, Eq)]
struct DirRun {
    levels: Vec<(u64, u64)>,
    parents: Vec<(u64, u64)>,
    visited: u64,
    max_level: u64,
    /// Global adjacency entries inspected — deterministic per (graph,
    /// source, mode), so it participates in the equality checks.
    edges_inspected: u64,
    /// Per-level direction labels, e.g. `["top", "bottom", "top"]`.
    schedule: Vec<&'static str>,
}

/// Restart counters of one run (world totals; not part of equality).
#[derive(Clone, Copy, Debug, Default)]
struct RunRestart {
    crashes: u64,
    restores: u64,
}

fn run_direction(
    p: usize,
    edges: &[Edge],
    n: u64,
    faults: Option<FaultConfig>,
    mode: DirectionMode,
    threads: usize,
    checkpoint_every: Option<u64>,
) -> (DirRun, RunRestart) {
    let mut out = CommWorld::run_with_faults(p, faults, |ctx| {
        let g = DistGraph::build_replicated(
            ctx,
            edges,
            PartitionStrategy::EdgeList,
            GraphConfig::default().with_num_vertices(n),
        );
        let mut cfg = BfsConfig::default().with_direction(mode).with_threads(threads);
        if let Some(every) = checkpoint_every {
            cfg.checkpoint = Some(CheckpointSpec::default().with_every(every));
        }
        let run = direction_bfs(ctx, &g, VertexId(0), &cfg);
        let report = validate_bfs(ctx, &g, VertexId(0), &run.result.local_state);
        assert!(report.is_valid(), "direction bfs parents/levels invalid: {report:?}");
        assert_conserved(ctx, "direction bfs", &run.result.stats);
        let restart = RunRestart {
            crashes: ctx.all_reduce_sum(run.result.stats.crashes),
            restores: ctx.all_reduce_sum(run.result.stats.restores),
        };
        let dir_run = DirRun {
            levels: gather_state(ctx, &g, |li| run.result.local_state[li].length),
            parents: gather_state(ctx, &g, |li| run.result.local_state[li].parent),
            visited: run.result.visited_count,
            max_level: run.result.max_level,
            edges_inspected: run.edges_inspected,
            schedule: run.trace.iter().map(|t| t.dir.label()).collect(),
        };
        (dir_run, restart)
    });
    let first = out.remove(0);
    for (o, _) in &out {
        assert_eq!(*o, first.0, "ranks disagree on the gathered direction-BFS state");
    }
    first
}

/// Levels/visited/max-level of the legacy asynchronous engine (parents are
/// schedule-dependent there, so they stay out of the comparison).
fn run_async_levels(p: usize, edges: &[Edge], n: u64) -> (Vec<(u64, u64)>, u64, u64) {
    let mut out = CommWorld::run(p, |ctx| {
        let g = DistGraph::build_replicated(
            ctx,
            edges,
            PartitionStrategy::EdgeList,
            GraphConfig::default().with_num_vertices(n),
        );
        let b = bfs(ctx, &g, VertexId(0), &BfsConfig::default());
        (gather_state(ctx, &g, |li| b.local_state[li].length), b.visited_count, b.max_level)
    });
    out.remove(0)
}

const MODES: [DirectionMode; 3] =
    [DirectionMode::TopDown, DirectionMode::BottomUp, DirectionMode::Auto];

/// Fault-free equivalence: every mode × p × threads crossing yields levels
/// identical to the asynchronous engine; `(level, parent)` state is
/// bit-identical across the engine's own crossings per mode (and level
/// state identical across modes — only the schedule and inspection counts
/// may differ between directions).
#[test]
fn direction_modes_match_async_levels() {
    let (edges, n) = sweep_edges();
    for p in [1usize, 2] {
        let (async_levels, async_visited, async_max) = run_async_levels(p, &edges, n);
        let mut golden_parents: Option<Vec<(u64, u64)>> = None;
        for mode in MODES {
            for threads in [1usize, 4] {
                let (run, _) = run_direction(p, &edges, n, None, mode, threads, None);
                assert_eq!(
                    run.levels, async_levels,
                    "p={p} {mode:?} threads={threads}: levels diverged from async engine"
                );
                assert_eq!(run.visited, async_visited, "p={p} {mode:?} visited");
                assert_eq!(run.max_level, async_max, "p={p} {mode:?} max level");
                // parents are deterministic across directions too
                match &golden_parents {
                    None => golden_parents = Some(run.parents.clone()),
                    Some(gold) => assert_eq!(
                        &run.parents, gold,
                        "p={p} {mode:?} threads={threads}: parent tie-break not direction-invariant"
                    ),
                }
            }
        }
    }
}

/// The auto heuristic must actually switch on the sweep graph's fat middle
/// levels, and never inspect more edges than forced top-down does.
#[test]
fn auto_switches_and_never_inspects_more_than_top_down() {
    let (edges, n) = sweep_edges();
    let (top, _) = run_direction(2, &edges, n, None, DirectionMode::TopDown, 1, None);
    let (auto, _) = run_direction(2, &edges, n, None, DirectionMode::Auto, 1, None);
    assert!(top.schedule.iter().all(|&d| d == "top"));
    assert!(
        auto.schedule.contains(&"bottom"),
        "auto never went bottom-up on the sweep graph: {:?}",
        auto.schedule
    );
    assert!(
        auto.edges_inspected <= top.edges_inspected,
        "auto inspected {} > top-down's {}",
        auto.edges_inspected,
        top.edges_inspected
    );
}

/// The acceptance sweep: 16 seeded chaos plans × p ∈ {1, 2} × threads ∈
/// {1, 4} × all three modes; every run must reproduce its mode's fault-free
/// baseline bit for bit (state, schedule *and* inspection counts).
#[test]
fn direction_chaos_sweep_16_seeds() {
    let (edges, n) = sweep_edges();
    for p in [1usize, 2] {
        let baselines: Vec<DirRun> =
            MODES.iter().map(|&m| run_direction(p, &edges, n, None, m, 1, None).0).collect();
        sweep_seeds(sweep_seed_set(16), |seed| {
            for (mode, baseline) in MODES.iter().zip(&baselines) {
                for threads in [1usize, 4] {
                    let (run, _) = run_direction(
                        p,
                        &edges,
                        n,
                        Some(FaultConfig::chaos(seed)),
                        *mode,
                        threads,
                        None,
                    );
                    assert_eq!(
                        &run, baseline,
                        "seed {seed:#x} p={p} {mode:?} threads={threads} perturbed the engine"
                    );
                }
            }
        });
    }
}

/// Frame corruption and loss under the CRC + NACK + retransmit plane —
/// including the frontier-bitmap exchange, which rides the same wire.
#[test]
fn direction_lossy_sweep_matches_baseline() {
    let (edges, n) = sweep_edges();
    let p = 2;
    let baselines: Vec<DirRun> =
        MODES.iter().map(|&m| run_direction(p, &edges, n, None, m, 1, None).0).collect();
    sweep_seeds(sweep_seed_set(8), |seed| {
        for (mode, baseline) in MODES.iter().zip(&baselines) {
            let (run, _) =
                run_direction(p, &edges, n, Some(FaultConfig::lossy(seed)), *mode, 4, None);
            assert_eq!(&run, baseline, "seed {seed:#x} {mode:?} lossy run diverged");
        }
    });
}

/// Crash each rank at each early checkpoint epoch and demand results
/// bit-identical to the fault-free golden — the engine's level counter,
/// direction state, trace and bitmaps must all survive the world rewind.
#[test]
fn direction_resume_equivalence_after_rank_crashes() {
    let (edges, n) = sweep_edges();
    let p = 2;
    let golden = run_direction(p, &edges, n, None, DirectionMode::Auto, 1, None).0;
    let mut total_crashes = 0u64;
    let mut total_restores = 0u64;
    for victim in 0..p {
        for epoch in 1..=2u64 {
            for threads in [1usize, 4] {
                let faults = FaultConfig::quiet(11).with_forced_crash(victim, epoch);
                let (run, restart) = run_direction(
                    p,
                    &edges,
                    n,
                    Some(faults),
                    DirectionMode::Auto,
                    threads,
                    Some(1),
                );
                assert_eq!(
                    run, golden,
                    "victim={victim} epoch={epoch} threads={threads}: resumed run diverged"
                );
                total_crashes += restart.crashes;
                total_restores += restart.restores;
            }
        }
    }
    assert!(total_crashes > 0, "crash sweep never tore an epoch");
    assert!(total_restores >= total_crashes, "every crash must trigger a world-wide restore");
}

/// Property: on random symmetrized graphs the switch heuristic never
/// changes levels — auto, forced-top-down and forced-bottom-up all match a
/// serial reference BFS computed directly from the edge list.
#[test]
fn proptest_heuristic_never_changes_levels() {
    run_cases(24, |rng: &mut TestRng| {
        let n = rng.range(4, 40);
        let m = rng.range(n, 4 * n) as usize;
        let mut edges = Vec::with_capacity(2 * m);
        for _ in 0..m {
            let s = rng.range(0, n);
            let t = rng.range(0, n);
            if s != t {
                edges.push(Edge { src: s, dst: t });
                edges.push(Edge { src: t, dst: s });
            }
        }
        if edges.is_empty() {
            edges.push(Edge { src: 0, dst: 1 });
            edges.push(Edge { src: 1, dst: 0 });
        }
        // serial reference levels from the raw edge list
        let mut adj = vec![Vec::new(); n as usize];
        for e in &edges {
            adj[e.src as usize].push(e.dst);
        }
        let unreached = u64::MAX;
        let mut ref_levels = vec![unreached; n as usize];
        ref_levels[0] = 0;
        let mut queue = std::collections::VecDeque::from([0usize]);
        while let Some(v) = queue.pop_front() {
            for &t in &adj[v] {
                if ref_levels[t as usize] == unreached {
                    ref_levels[t as usize] = ref_levels[v] + 1;
                    queue.push_back(t as usize);
                }
            }
        }
        let p = 1 + (rng.next_u64() % 2) as usize;
        let mut parents: Option<Vec<(u64, u64)>> = None;
        for mode in MODES {
            let (run, _) = run_direction(p, &edges, n, None, mode, 1, None);
            for &(v, lvl) in &run.levels {
                assert_eq!(
                    lvl, ref_levels[v as usize],
                    "{mode:?} p={p}: vertex {v} level {lvl} != reference"
                );
            }
            match &parents {
                None => parents = Some(run.parents.clone()),
                Some(gold) => assert_eq!(&run.parents, gold, "{mode:?} p={p} parents diverged"),
            }
        }
    });
}

/// The heavyweight sweep for the CI direction-chaos job
/// (`--include-ignored`, release): 16 chaos seeds at an awkward rank
/// count, threads = 4, auto mode against its fault-free baseline.
#[test]
#[ignore = "heavy: run via the CI direction-chaos job or --include-ignored"]
fn direction_chaos_sweep_heavy_seven_ranks() {
    let (edges, n) = heavy_sweep_edges();
    let p = 7;
    let baseline = run_direction(p, &edges, n, None, DirectionMode::Auto, 1, None).0;
    sweep_seeds(sweep_seed_set(16), |seed| {
        let (run, _) = run_direction(
            p,
            &edges,
            n,
            Some(FaultConfig::chaos(seed)),
            DirectionMode::Auto,
            4,
            None,
        );
        assert_eq!(run, baseline, "seed {seed:#x} perturbed the engine at p={p}");
    });
}
