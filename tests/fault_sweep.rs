//! The fault-injection correctness sweep (the tentpole's acceptance test).
//!
//! Every algorithm in the suite is a monotone fixpoint computation, so its
//! *converged state* must not depend on message timing: BFS levels, SSSP
//! distances, CC labels, k-core membership and residual counters, and
//! triangle counts are identical under any delivery schedule, provided
//! every payload is delivered exactly once and quiescence never fires
//! early. The sweep runs the whole suite under 32 seeded fault plans
//! (delay + reorder + duplicate + stall + slow-rank) and asserts the
//! results are bit-identical to the fault-free baseline.
//!
//! The suite runner, fingerprint (parents deliberately excluded — see
//! `havoq::testing`), conservation check and fault-counter totals are the
//! shared sweep scaffolding in `havoq::testing`.
//!
//! Early termination is caught two ways: a lost payload would leave the
//! fixpoint unconverged (fingerprint mismatch), and the global
//! sent == received conservation check would fail.
//!
//! The integrity sweep stacks seeded frame corruption and loss on the same
//! adversary: every injected bit-flip must be caught by the frame CRC
//! (injected == detected, i.e. zero undetected corruptions), every loss
//! repaired by NACK/retransmit, and results must stay bit-identical.
//!
//! Reproduce a failing seed locally:
//! `run_suite(4, &edges, n, Some(FaultConfig::chaos(SEED)), SuiteOptions::default())`.

use havoq::testing::{heavy_sweep_edges, run_suite, sweep_edges, FaultTotals, SuiteOptions};
use havoq_comm::{CommWorld, FaultConfig};
use havoq_util::testing::{sweep_seed_set, sweep_seeds};

/// The acceptance sweep: 32 seeded chaos plans, every algorithm, results
/// bit-identical to the fault-free baseline, and every fault type
/// demonstrably exercised at least once across the sweep.
#[test]
fn fault_sweep_32_seeds_matches_baseline() {
    let (edges, n) = sweep_edges();
    let p = 4;
    let baseline = run_suite(p, &edges, n, None, SuiteOptions::default());
    assert_eq!(
        baseline.faults.total_events(),
        0,
        "fault-free baseline must observe zero fault events"
    );

    let totals = std::sync::Mutex::new(FaultTotals::default());
    sweep_seeds(sweep_seed_set(32), |seed| {
        let out = run_suite(p, &edges, n, Some(FaultConfig::chaos(seed)), SuiteOptions::default());
        assert_eq!(
            out.fingerprint, baseline.fingerprint,
            "seed {seed:#x} perturbed a converged result"
        );
        totals.lock().unwrap().merge(out.faults);
    });

    let t = totals.into_inner().unwrap();
    assert!(t.delayed > 0, "sweep never exercised delay: {t:?}");
    assert!(t.reordered > 0, "sweep never exercised reorder: {t:?}");
    assert!(t.duplicated > 0, "sweep never exercised duplication: {t:?}");
    assert!(t.deduped > 0, "sweep never dropped a duplicate: {t:?}");
    assert!(t.stalled > 0, "sweep never exercised a receive stall: {t:?}");
    assert!(t.throttled > 0, "sweep never exercised a slow rank: {t:?}");
    // Every dedup drop corresponds to a duplicated frame; the counts need
    // not be equal because a duplicate copy still in flight when quiescence
    // (correctly) fires is simply discarded with the world.
    assert!(t.deduped <= t.duplicated, "more drops than duplicates: {t:?}");
}

/// The end-to-end integrity sweep: seeded frame corruption and loss
/// stacked on the full chaos adversary (delay + reorder + duplicate +
/// stall + slow-rank). Three guarantees per seed:
///
/// - **bit-identical results** — CRC detection plus NACK/retransmit repair
///   must make corruption and loss invisible to every algorithm;
/// - **zero undetected corruptions** — every injected flip is caught by
///   the frame CRC (`injected == detected`; a dropped frame is never also
///   corrupted, it simply vanishes and is resupplied);
/// - **conservation** — `assert_conserved` inside the suite runner proves
///   quiescence never fired while a repair was still owed.
///
/// p = 1 rides along to pin the degenerate case: all traffic is loopback
/// (never framed, so never corruptible) and the plan must be fully inert.
#[test]
fn corruption_drop_sweep_matches_baseline() {
    let (edges, n) = sweep_edges();
    for p in [1usize, 2] {
        let baseline = run_suite(p, &edges, n, None, SuiteOptions::default());
        let totals = std::sync::Mutex::new(FaultTotals::default());
        sweep_seeds(sweep_seed_set(32), |seed| {
            let out =
                run_suite(p, &edges, n, Some(FaultConfig::lossy(seed)), SuiteOptions::default());
            assert_eq!(
                out.fingerprint, baseline.fingerprint,
                "seed {seed:#x} perturbed a converged result at p={p}"
            );
            assert_eq!(
                out.faults.corrupted, out.faults.detected,
                "seed {seed:#x} at p={p}: an injected flip escaped the frame CRC"
            );
            totals.lock().unwrap().merge(out.faults);
        });
        let t = totals.into_inner().unwrap();
        if p == 1 {
            assert_eq!(
                t.corrupted + t.dropped,
                0,
                "loopback-only world must see no wire faults: {t:?}"
            );
        } else {
            assert!(t.corrupted > 0, "sweep never corrupted a frame: {t:?}");
            assert!(t.dropped > 0, "sweep never dropped a frame: {t:?}");
            assert!(t.nacks > 0, "repair never NACKed: {t:?}");
            assert!(t.retransmits > 0, "repair never retransmitted: {t:?}");
        }
    }
}

/// Focused single-fault plans: each fault type alone must also leave
/// results untouched (catches bugs a combined plan could mask).
#[test]
fn fault_single_knob_plans_match_baseline() {
    let (edges, n) = sweep_edges();
    let p = 3;
    let baseline = run_suite(p, &edges, n, None, SuiteOptions::default());
    let plans = [
        ("delay", FaultConfig::quiet(7).with_delay(400, 16)),
        ("reorder", FaultConfig::quiet(7).with_reorder(400, 8)),
        ("duplicate", FaultConfig::quiet(7).with_duplicate(300)),
        ("stall", FaultConfig::quiet(7).with_stall(60, 40)),
        ("slow-rank", FaultConfig::quiet(7).with_slow_ranks(600, 3)),
        ("corrupt", FaultConfig::quiet(7).with_corrupt(60)),
        ("drop", FaultConfig::quiet(7).with_drop(60)),
        ("corrupt+drop", FaultConfig::quiet(7).with_corrupt(40).with_drop(40)),
    ];
    for (name, cfg) in plans {
        let out = run_suite(p, &edges, n, Some(cfg), SuiteOptions::default());
        assert_eq!(
            out.fingerprint, baseline.fingerprint,
            "single-knob plan '{name}' perturbed the result"
        );
    }
}

/// Fault decisions are functions of each message's identity alone, so on a
/// *fixed* message stream the same seed yields identical fault counters run
/// to run. (An asynchronous traversal is not a fixed stream — its message
/// population varies with the schedule — so this is asserted at the
/// transport level, where the stream is pinned.)
#[test]
fn fault_counters_are_reproducible_per_seed() {
    let seed = sweep_seed_set(1)[0];
    let cfg = FaultConfig::quiet(seed).with_delay(300, 10).with_reorder(300, 6);
    let run = || {
        let snaps = CommWorld::run_with_faults(2, Some(cfg), |ctx| {
            let ch = ctx.channel::<u64>(0);
            if ctx.rank() == 0 {
                for i in 0..500u64 {
                    ch.send(1, i);
                }
            } else {
                for _ in 0..500 {
                    let _ = ch.recv_blocking(ctx);
                }
            }
            ctx.barrier();
            ch.stats_snapshot()
        });
        snaps.into_iter().next().unwrap()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.total_fault_delays(), b.total_fault_delays(), "delay decisions drifted");
    assert!(a.total_fault_delays() > 0, "plan with 300 permille delay never delayed");
}

/// The heavyweight sweep for the CI chaos job (`--include-ignored`,
/// release): a larger graph at a deliberately awkward rank count.
#[test]
#[ignore = "heavy: run via the CI chaos job or --include-ignored"]
fn fault_sweep_heavy_seven_ranks() {
    let (edges, n) = heavy_sweep_edges();
    let p = 7;
    let baseline = run_suite(p, &edges, n, None, SuiteOptions::default());
    sweep_seeds(sweep_seed_set(8), |seed| {
        let out = run_suite(p, &edges, n, Some(FaultConfig::chaos(seed)), SuiteOptions::default());
        assert_eq!(
            out.fingerprint, baseline.fingerprint,
            "seed {seed:#x} perturbed a converged result at p={p}"
        );
    });
}

/// The heavyweight integrity sweep for the CI integrity-chaos job
/// (`--include-ignored`, release): 32 lossy seeds at a deliberately
/// awkward rank count on a larger graph, zero undetected corruptions.
#[test]
#[ignore = "heavy: run via the CI integrity-chaos job or --include-ignored"]
fn corruption_sweep_heavy_seven_ranks() {
    let (edges, n) = heavy_sweep_edges();
    let p = 7;
    let baseline = run_suite(p, &edges, n, None, SuiteOptions::default());
    let totals = std::sync::Mutex::new(FaultTotals::default());
    sweep_seeds(sweep_seed_set(32), |seed| {
        let out = run_suite(p, &edges, n, Some(FaultConfig::lossy(seed)), SuiteOptions::default());
        assert_eq!(
            out.fingerprint, baseline.fingerprint,
            "seed {seed:#x} perturbed a converged result at p={p}"
        );
        assert_eq!(
            out.faults.corrupted, out.faults.detected,
            "seed {seed:#x} at p={p}: an injected flip escaped the frame CRC"
        );
        totals.lock().unwrap().merge(out.faults);
    });
    let t = totals.into_inner().unwrap();
    assert!(t.corrupted > 0 && t.dropped > 0, "heavy sweep never exercised loss: {t:?}");
    assert!(t.nacks > 0 && t.retransmits > 0, "heavy sweep never repaired: {t:?}");
}
