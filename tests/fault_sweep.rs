//! The fault-injection correctness sweep (the tentpole's acceptance test).
//!
//! Every algorithm in the suite is a monotone fixpoint computation, so its
//! *converged state* must not depend on message timing: BFS levels, SSSP
//! distances, CC labels, k-core membership and residual counters, and
//! triangle counts are identical under any delivery schedule, provided
//! every payload is delivered exactly once and quiescence never fires
//! early. The sweep runs the whole suite under 32 seeded fault plans
//! (delay + reorder + duplicate + stall + slow-rank) and asserts the
//! results are bit-identical to the fault-free baseline.
//!
//! BFS/SSSP *parents* are deliberately excluded from the fingerprint: the
//! first visitor to claim a vertex at its final level wins the parent
//! slot, so parents are schedule-dependent even on fault-free runs (they
//! already differ across rank counts and topologies). Parent correctness
//! is instead checked structurally with the paper's validation visitors
//! (`validate_bfs`), which is exactly what they exist for.
//!
//! Early termination is caught two ways: a lost payload would leave the
//! fixpoint unconverged (fingerprint mismatch), and the global
//! sent == received conservation check would fail.
//!
//! The integrity sweep stacks seeded frame corruption and loss on the same
//! adversary: every injected bit-flip must be caught by the frame CRC
//! (injected == detected, i.e. zero undetected corruptions), every loss
//! repaired by NACK/retransmit, and results must stay bit-identical.
//!
//! Reproduce a failing seed locally:
//! `run_suite(4, &edges, n, Some(FaultConfig::chaos(SEED)))`.

use havoq::prelude::*;
use havoq_comm::FaultConfig;
use havoq_core::algorithms::cc::{connected_components, CcConfig};
use havoq_core::algorithms::kcore::{kcore, KCoreConfig};
use havoq_core::algorithms::sssp::{sssp, SsspConfig};
use havoq_util::testing::{sweep_seed_set, sweep_seeds};

/// Schedule-independent results of the whole algorithm suite, with vertex
/// state in canonical (vertex-id) order.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Fingerprint {
    bfs_visited: u64,
    bfs_traversed_edges: u64,
    bfs_max_level: u64,
    bfs_levels: Vec<(u64, u64)>,
    cc_components: u64,
    cc_labels: Vec<(u64, u64)>,
    kcore_alive: u64,
    kcore_state: Vec<(u64, bool, u64)>,
    sssp_visited: u64,
    sssp_max_distance: u64,
    sssp_distances: Vec<(u64, u64)>,
    triangles: u64,
}

/// World totals of every fault counter, summed over the suite's traversals.
#[derive(Clone, Copy, Debug, Default)]
struct FaultTotals {
    delayed: u64,
    reordered: u64,
    duplicated: u64,
    deduped: u64,
    stalled: u64,
    throttled: u64,
    /// Injected bit-flips (an injection implies the CRC must catch it).
    corrupted: u64,
    /// Injected frame losses (repair must resupply every one).
    dropped: u64,
    /// CRC mismatches caught at receivers.
    detected: u64,
    nacks: u64,
    retransmits: u64,
}

impl FaultTotals {
    fn accumulate(&mut self, ctx: &havoq_comm::RankCtx, s: &TraversalStats) {
        self.delayed += ctx.all_reduce_sum(s.fault_delayed);
        self.reordered += ctx.all_reduce_sum(s.fault_reordered);
        self.duplicated += ctx.all_reduce_sum(s.fault_duplicated);
        self.deduped += ctx.all_reduce_sum(s.fault_deduped);
        self.stalled += ctx.all_reduce_sum(s.fault_stalled);
        self.throttled += ctx.all_reduce_sum(s.fault_throttled);
        self.corrupted += ctx.all_reduce_sum(s.fault_corrupted);
        self.dropped += ctx.all_reduce_sum(s.frames_dropped_injected);
        self.detected += ctx.all_reduce_sum(s.corrupt_frames_detected);
        self.nacks += ctx.all_reduce_sum(s.nacks_sent);
        self.retransmits += ctx.all_reduce_sum(s.retransmits);
    }

    fn merge(&mut self, o: FaultTotals) {
        self.delayed += o.delayed;
        self.reordered += o.reordered;
        self.duplicated += o.duplicated;
        self.deduped += o.deduped;
        self.stalled += o.stalled;
        self.throttled += o.throttled;
        self.corrupted += o.corrupted;
        self.dropped += o.dropped;
        self.detected += o.detected;
        self.nacks += o.nacks;
        self.retransmits += o.retransmits;
    }
}

/// Gather one `u64` of state per master vertex into canonical order.
fn gather_state(
    ctx: &havoq_comm::RankCtx,
    g: &DistGraph,
    mut f: impl FnMut(usize) -> u64,
) -> Vec<(u64, u64)> {
    let local: Vec<(u64, u64)> = g
        .local_vertices()
        .filter(|&v| g.is_master(v))
        .map(|v| (v.0, f(g.local_index(v))))
        .collect();
    let mut all: Vec<(u64, u64)> = ctx.all_gather(local).into_iter().flatten().collect();
    all.sort_unstable();
    all
}

/// Global sent == received for one traversal: quiescence fired only after
/// every counted payload was delivered, and nothing was lost or double
/// delivered.
fn assert_conserved(ctx: &havoq_comm::RankCtx, what: &str, s: &TraversalStats) {
    let sent = ctx.all_reduce_sum(s.payload_sent);
    let recv = ctx.all_reduce_sum(s.payload_received);
    assert_eq!(sent, recv, "{what}: quiescence fired with {sent} sent != {recv} received");
}

/// Run the full suite on `p` ranks, returning the fingerprint and the
/// summed fault counters. Panics if BFS validation or payload conservation
/// fails on any traversal.
fn run_suite(
    p: usize,
    edges: &[Edge],
    n: u64,
    faults: Option<FaultConfig>,
) -> (Fingerprint, FaultTotals) {
    let mut out = CommWorld::run_with_faults(p, faults, |ctx| {
        let g = DistGraph::build_replicated(
            ctx,
            edges,
            PartitionStrategy::EdgeList,
            GraphConfig::default().with_num_vertices(n),
        );
        let mut totals = FaultTotals::default();

        let b = bfs(ctx, &g, VertexId(0), &BfsConfig::default());
        assert_conserved(ctx, "bfs", &b.stats);
        totals.accumulate(ctx, &b.stats);
        let report = validate_bfs(ctx, &g, VertexId(0), &b.local_state);
        assert!(report.is_valid(), "bfs parents/levels invalid: {report:?}");

        let c = connected_components(ctx, &g, &CcConfig::default());
        assert_conserved(ctx, "cc", &c.stats);
        totals.accumulate(ctx, &c.stats);

        let k = kcore(ctx, &g, 3, &KCoreConfig::default());
        assert_conserved(ctx, "kcore", &k.stats);
        totals.accumulate(ctx, &k.stats);

        let s = sssp(ctx, &g, VertexId(0), &SsspConfig::default());
        assert_conserved(ctx, "sssp", &s.stats);
        totals.accumulate(ctx, &s.stats);

        let t = triangle_count(ctx, &g, &TriangleConfig::default());
        assert_conserved(ctx, "triangle", &t.stats);
        totals.accumulate(ctx, &t.stats);

        let fp = Fingerprint {
            bfs_visited: b.visited_count,
            bfs_traversed_edges: b.traversed_edges,
            bfs_max_level: b.max_level,
            bfs_levels: gather_state(ctx, &g, |li| b.local_state[li].length),
            cc_components: c.num_components,
            cc_labels: gather_state(ctx, &g, |li| c.local_state[li].component),
            kcore_alive: k.alive_count,
            kcore_state: {
                let alive = gather_state(ctx, &g, |li| k.local_state[li].alive as u64);
                let budget = gather_state(ctx, &g, |li| k.local_state[li].kcore);
                alive.into_iter().zip(budget).map(|((v, a), (_, b))| (v, a == 1, b)).collect()
            },
            sssp_visited: s.visited_count,
            sssp_max_distance: s.max_distance,
            sssp_distances: gather_state(ctx, &g, |li| s.local_state[li].distance),
            triangles: t.triangles,
        };
        (fp, totals)
    });
    // all ranks computed the same world-gathered fingerprint; the totals
    // are world sums (all_reduce), identical on every rank
    let (fp0, totals) = out.remove(0);
    for (fp, _) in &out {
        assert_eq!(*fp, fp0, "ranks disagree on the gathered fingerprint");
    }
    (fp0, totals)
}

fn sweep_edges() -> (Vec<Edge>, u64) {
    let gen = RmatGenerator::graph500(7);
    (gen.symmetric_edges(42), gen.num_vertices())
}

/// The acceptance sweep: 32 seeded chaos plans, every algorithm, results
/// bit-identical to the fault-free baseline, and every fault type
/// demonstrably exercised at least once across the sweep.
#[test]
fn fault_sweep_32_seeds_matches_baseline() {
    let (edges, n) = sweep_edges();
    let p = 4;
    let (baseline, quiet_totals) = run_suite(p, &edges, n, None);
    assert_eq!(
        quiet_totals.delayed
            + quiet_totals.reordered
            + quiet_totals.duplicated
            + quiet_totals.deduped
            + quiet_totals.stalled
            + quiet_totals.throttled
            + quiet_totals.corrupted
            + quiet_totals.dropped
            + quiet_totals.detected
            + quiet_totals.nacks
            + quiet_totals.retransmits,
        0,
        "fault-free baseline must observe zero fault events"
    );

    let totals = std::sync::Mutex::new(FaultTotals::default());
    sweep_seeds(sweep_seed_set(32), |seed| {
        let (fp, t) = run_suite(p, &edges, n, Some(FaultConfig::chaos(seed)));
        assert_eq!(fp, baseline, "seed {seed:#x} perturbed a converged result");
        totals.lock().unwrap().merge(t);
    });

    let t = totals.into_inner().unwrap();
    assert!(t.delayed > 0, "sweep never exercised delay: {t:?}");
    assert!(t.reordered > 0, "sweep never exercised reorder: {t:?}");
    assert!(t.duplicated > 0, "sweep never exercised duplication: {t:?}");
    assert!(t.deduped > 0, "sweep never dropped a duplicate: {t:?}");
    assert!(t.stalled > 0, "sweep never exercised a receive stall: {t:?}");
    assert!(t.throttled > 0, "sweep never exercised a slow rank: {t:?}");
    // Every dedup drop corresponds to a duplicated frame; the counts need
    // not be equal because a duplicate copy still in flight when quiescence
    // (correctly) fires is simply discarded with the world.
    assert!(t.deduped <= t.duplicated, "more drops than duplicates: {t:?}");
}

/// The end-to-end integrity sweep: seeded frame corruption and loss
/// stacked on the full chaos adversary (delay + reorder + duplicate +
/// stall + slow-rank). Three guarantees per seed:
///
/// - **bit-identical results** — CRC detection plus NACK/retransmit repair
///   must make corruption and loss invisible to every algorithm;
/// - **zero undetected corruptions** — every injected flip is caught by
///   the frame CRC (`injected == detected`; a dropped frame is never also
///   corrupted, it simply vanishes and is resupplied);
/// - **conservation** — `assert_conserved` inside `run_suite` proves
///   quiescence never fired while a repair was still owed.
///
/// p = 1 rides along to pin the degenerate case: all traffic is loopback
/// (never framed, so never corruptible) and the plan must be fully inert.
#[test]
fn corruption_drop_sweep_matches_baseline() {
    let (edges, n) = sweep_edges();
    for p in [1usize, 2] {
        let (baseline, _) = run_suite(p, &edges, n, None);
        let totals = std::sync::Mutex::new(FaultTotals::default());
        sweep_seeds(sweep_seed_set(32), |seed| {
            let (fp, t) = run_suite(p, &edges, n, Some(FaultConfig::lossy(seed)));
            assert_eq!(fp, baseline, "seed {seed:#x} perturbed a converged result at p={p}");
            assert_eq!(
                t.corrupted, t.detected,
                "seed {seed:#x} at p={p}: an injected flip escaped the frame CRC"
            );
            totals.lock().unwrap().merge(t);
        });
        let t = totals.into_inner().unwrap();
        if p == 1 {
            assert_eq!(
                t.corrupted + t.dropped,
                0,
                "loopback-only world must see no wire faults: {t:?}"
            );
        } else {
            assert!(t.corrupted > 0, "sweep never corrupted a frame: {t:?}");
            assert!(t.dropped > 0, "sweep never dropped a frame: {t:?}");
            assert!(t.nacks > 0, "repair never NACKed: {t:?}");
            assert!(t.retransmits > 0, "repair never retransmitted: {t:?}");
        }
    }
}

/// Focused single-fault plans: each fault type alone must also leave
/// results untouched (catches bugs a combined plan could mask).
#[test]
fn fault_single_knob_plans_match_baseline() {
    let (edges, n) = sweep_edges();
    let p = 3;
    let (baseline, _) = run_suite(p, &edges, n, None);
    let plans = [
        ("delay", FaultConfig::quiet(7).with_delay(400, 16)),
        ("reorder", FaultConfig::quiet(7).with_reorder(400, 8)),
        ("duplicate", FaultConfig::quiet(7).with_duplicate(300)),
        ("stall", FaultConfig::quiet(7).with_stall(60, 40)),
        ("slow-rank", FaultConfig::quiet(7).with_slow_ranks(600, 3)),
        ("corrupt", FaultConfig::quiet(7).with_corrupt(60)),
        ("drop", FaultConfig::quiet(7).with_drop(60)),
        ("corrupt+drop", FaultConfig::quiet(7).with_corrupt(40).with_drop(40)),
    ];
    for (name, cfg) in plans {
        let (fp, _) = run_suite(p, &edges, n, Some(cfg));
        assert_eq!(fp, baseline, "single-knob plan '{name}' perturbed the result");
    }
}

/// Fault decisions are functions of each message's identity alone, so on a
/// *fixed* message stream the same seed yields identical fault counters run
/// to run. (An asynchronous traversal is not a fixed stream — its message
/// population varies with the schedule — so this is asserted at the
/// transport level, where the stream is pinned.)
#[test]
fn fault_counters_are_reproducible_per_seed() {
    let seed = sweep_seed_set(1)[0];
    let cfg = FaultConfig::quiet(seed).with_delay(300, 10).with_reorder(300, 6);
    let run = || {
        let snaps = CommWorld::run_with_faults(2, Some(cfg), |ctx| {
            let ch = ctx.channel::<u64>(0);
            if ctx.rank() == 0 {
                for i in 0..500u64 {
                    ch.send(1, i);
                }
            } else {
                for _ in 0..500 {
                    let _ = ch.recv_blocking(ctx);
                }
            }
            ctx.barrier();
            ch.stats_snapshot()
        });
        snaps.into_iter().next().unwrap()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.total_fault_delays(), b.total_fault_delays(), "delay decisions drifted");
    assert!(a.total_fault_delays() > 0, "plan with 300 permille delay never delayed");
}

/// The heavyweight sweep for the CI chaos job (`--include-ignored`,
/// release): a larger graph at a deliberately awkward rank count.
#[test]
#[ignore = "heavy: run via the CI chaos job or --include-ignored"]
fn fault_sweep_heavy_seven_ranks() {
    let gen = RmatGenerator::graph500(8);
    let edges = gen.symmetric_edges(1234);
    let n = gen.num_vertices();
    let p = 7;
    let (baseline, _) = run_suite(p, &edges, n, None);
    sweep_seeds(sweep_seed_set(8), |seed| {
        let (fp, _) = run_suite(p, &edges, n, Some(FaultConfig::chaos(seed)));
        assert_eq!(fp, baseline, "seed {seed:#x} perturbed a converged result at p={p}");
    });
}

/// The heavyweight integrity sweep for the CI integrity-chaos job
/// (`--include-ignored`, release): 32 lossy seeds at a deliberately
/// awkward rank count on a larger graph, zero undetected corruptions.
#[test]
#[ignore = "heavy: run via the CI integrity-chaos job or --include-ignored"]
fn corruption_sweep_heavy_seven_ranks() {
    let gen = RmatGenerator::graph500(8);
    let edges = gen.symmetric_edges(1234);
    let n = gen.num_vertices();
    let p = 7;
    let (baseline, _) = run_suite(p, &edges, n, None);
    let totals = std::sync::Mutex::new(FaultTotals::default());
    sweep_seeds(sweep_seed_set(32), |seed| {
        let (fp, t) = run_suite(p, &edges, n, Some(FaultConfig::lossy(seed)));
        assert_eq!(fp, baseline, "seed {seed:#x} perturbed a converged result at p={p}");
        assert_eq!(
            t.corrupted, t.detected,
            "seed {seed:#x} at p={p}: an injected flip escaped the frame CRC"
        );
        totals.lock().unwrap().merge(t);
    });
    let t = totals.into_inner().unwrap();
    assert!(t.corrupted > 0 && t.dropped > 0, "heavy sweep never exercised loss: {t:?}");
    assert!(t.nacks > 0 && t.retransmits > 0, "heavy sweep never repaired: {t:?}");
}
