//! The checkpoint/restart acceptance sweep.
//!
//! Every algorithm runs with checkpointing enabled under seeded fault
//! plans that stack rank crashes on top of the message-level chaos
//! adversary (delay + reorder + duplicate + stall + slow-rank). A crash
//! tears the victim's in-progress checkpoint, every rank rewinds to the
//! last globally complete epoch, and the traversal resumes — the final
//! results must be bit-identical to a fault-free, checkpoint-free
//! baseline.
//!
//! The suite runner and fingerprint (parents excluded — see
//! `havoq::testing`) are the shared sweep scaffolding; the runner also
//! asserts the `restores == crashes × p` world-rewind invariant on every
//! serial run. The non-idempotent triangle counter is the sharpest probe
//! here: any replayed or double-delivered visitor shifts the count, so an
//! inconsistent snapshot cut cannot hide behind monotone state updates.
//!
//! Reproduce a failing seed locally:
//! `run_suite(4, &edges, n, Some(FaultConfig::chaos(SEED).with_crash(150)),
//!            SuiteOptions::default().with_checkpoint_every(16))`.

use havoq::prelude::*;
use havoq::testing::{
    assert_conserved, gather_state, heavy_sweep_edges, run_suite, sweep_edges, RestartTotals,
    SuiteOptions,
};
use havoq_comm::FaultConfig;
use havoq_core::CheckpointSpec;
use havoq_util::testing::{sweep_seed_set, sweep_seeds};

/// The acceptance sweep: 32 seeded chaos-plus-crash plans at p = 4, every
/// algorithm checkpointed, results bit-identical to the fault-free
/// uncheckpointed baseline. Coverage is asserted, not hoped for: the sweep
/// must have torn checkpoints on every rank at least once.
#[test]
fn restart_sweep_32_seeds_matches_baseline() {
    let (edges, n) = sweep_edges();
    let p = 4;
    let baseline = run_suite(p, &edges, n, None, SuiteOptions::default());
    assert_eq!(baseline.restart.crashes, 0, "uncheckpointed baseline cannot crash");
    assert_eq!(baseline.restart.checkpoints, 0, "uncheckpointed baseline cannot checkpoint");

    let totals = std::sync::Mutex::new(RestartTotals::default());
    sweep_seeds(sweep_seed_set(32), |seed| {
        let faults = FaultConfig::chaos(seed).with_crash(150);
        let out = run_suite(
            p,
            &edges,
            n,
            Some(faults),
            SuiteOptions::default().with_checkpoint_every(16),
        );
        assert_eq!(
            out.fingerprint, baseline.fingerprint,
            "seed {seed:#x} perturbed a converged result"
        );
        totals.lock().unwrap().merge(&out.restart);
    });

    let t = totals.into_inner().unwrap();
    assert!(t.checkpoints > 0, "sweep never wrote a checkpoint: {t:?}");
    assert!(t.crashes > 0, "sweep never exercised a crash: {t:?}");
    // crash debris is *torn*, and torn epochs are expected — they must
    // never be misclassified as checksum fallbacks
    assert_eq!(t.fallbacks, 0, "a torn epoch was counted as a checksum fallback: {t:?}");
    for (rank, c) in t.crashes_by_rank.iter().enumerate() {
        assert!(*c > 0, "rank {rank} was never a crash victim across the sweep: {t:?}");
    }
}

/// Checkpoint-store corruption end to end: rank 0's committed epoch-2 blob
/// is bit-flipped in place (through the page cache, so only the blob's own
/// checksum can catch it), then the last rank crashes while cutting that
/// same epoch. At restore, rank 0 must detect the mismatch, treat the
/// epoch like a torn one, and the world must agree on epoch 1 via the
/// existing `all_reduce_min` — exactly one fallback, no panic, and final
/// results bit-identical to the fault-free uncheckpointed baseline.
#[test]
fn corrupted_committed_epoch_falls_back_and_recovers() {
    let (edges, n) = sweep_edges();
    for p in [2usize, 4] {
        let baseline = run_suite(p, &edges, n, None, SuiteOptions::default()).fingerprint;

        let faults = FaultConfig::quiet(0xC0DE).with_forced_crash(p - 1, 2);
        let mut out = CommWorld::run_with_faults(p, Some(faults), |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default().with_num_vertices(n),
            );
            let spec = CheckpointSpec::default().with_every(8).with_corrupt_committed(0, 2);
            let bcfg = BfsConfig { checkpoint: Some(spec), ..BfsConfig::default() };
            let b = bfs(ctx, &g, VertexId(0), &bcfg);
            assert_conserved(ctx, "bfs", &b.stats);
            let report = validate_bfs(ctx, &g, VertexId(0), &b.local_state);
            assert!(report.is_valid(), "bfs parents/levels invalid: {report:?}");
            let fp = (
                b.visited_count,
                b.max_level,
                gather_state(ctx, &g, |li| b.local_state[li].length),
            );
            let crashes = ctx.all_reduce_sum(b.stats.crashes);
            let restores = ctx.all_reduce_sum(b.stats.restores);
            let fallbacks = ctx.all_reduce_sum(b.stats.restore_epoch_fallbacks);
            (fp, crashes, restores, fallbacks)
        });
        let (fp, crashes, restores, fallbacks) = out.remove(0);
        assert_eq!(
            (fp.0, fp.1, &fp.2),
            (baseline.bfs_visited, baseline.bfs_max_level, &baseline.bfs_levels),
            "corrupted-epoch recovery perturbed the BFS result at p={p}"
        );
        assert_eq!(crashes, 1, "forced crash at epoch 2 never fired at p={p}");
        assert_eq!(restores, p as u64, "every rank must rewind exactly once at p={p}");
        assert_eq!(
            fallbacks, 1,
            "the corrupted committed epoch must be skipped exactly once at p={p}"
        );
    }
}

/// Deterministic victim grid: kill each rank in turn at each of the first
/// epochs and require exact recovery. Complements the seeded sweep by
/// sampling the (rank, epoch) space exhaustively instead of randomly.
#[test]
fn restart_every_rank_every_early_epoch() {
    let (edges, n) = sweep_edges();
    let p = 4;
    let baseline = run_suite(p, &edges, n, None, SuiteOptions::default());
    let mut crashed_runs = 0u64;
    for victim in 0..p {
        for epoch in 1..=3u64 {
            let faults = FaultConfig::quiet(0xD1E).with_forced_crash(victim, epoch);
            let out = run_suite(
                p,
                &edges,
                n,
                Some(faults),
                SuiteOptions::default().with_checkpoint_every(8),
            );
            assert_eq!(
                out.fingerprint, baseline.fingerprint,
                "victim {victim} at epoch {epoch} perturbed the result"
            );
            crashed_runs += u64::from(out.restart.crashes > 0);
        }
    }
    // every grid point must actually have reached its crash epoch
    assert_eq!(crashed_runs, (p as u64) * 3, "some (rank, epoch) crashes never fired");
}

/// The heavyweight sweep for the CI restart-chaos job (`--include-ignored`,
/// release): a larger graph at a deliberately awkward rank count.
#[test]
#[ignore = "heavy: run via the CI restart-chaos job or --include-ignored"]
fn restart_sweep_heavy_seven_ranks() {
    let (edges, n) = heavy_sweep_edges();
    let p = 7;
    let baseline = run_suite(p, &edges, n, None, SuiteOptions::default());
    sweep_seeds(sweep_seed_set(8), |seed| {
        let faults = FaultConfig::chaos(seed).with_crash(100);
        let out = run_suite(
            p,
            &edges,
            n,
            Some(faults),
            SuiteOptions::default().with_checkpoint_every(24),
        );
        assert_eq!(
            out.fingerprint, baseline.fingerprint,
            "seed {seed:#x} perturbed a converged result at p={p}"
        );
        assert!(out.restart.checkpoints > 0, "seed {seed:#x} never checkpointed");
    });
}
