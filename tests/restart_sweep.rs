//! The checkpoint/restart acceptance sweep.
//!
//! Every algorithm runs with checkpointing enabled under seeded fault
//! plans that stack rank crashes on top of the message-level chaos
//! adversary (delay + reorder + duplicate + stall + slow-rank). A crash
//! tears the victim's in-progress checkpoint, every rank rewinds to the
//! last globally complete epoch, and the traversal resumes — the final
//! results must be bit-identical to a fault-free, checkpoint-free
//! baseline.
//!
//! As in `fault_sweep`, BFS parents are excluded from the fingerprint
//! (first-arrival-wins makes them schedule-dependent even without faults)
//! and are instead validated structurally with `validate_bfs`. The
//! non-idempotent triangle counter is the sharpest probe here: any replayed
//! or double-delivered visitor shifts the count, so an inconsistent
//! snapshot cut cannot hide behind monotone state updates.
//!
//! Reproduce a failing seed locally:
//! `run_ck_suite(4, &edges, n, Some(16), Some(FaultConfig::chaos(SEED).with_crash(150)))`.

use havoq::prelude::*;
use havoq_comm::FaultConfig;
use havoq_core::algorithms::cc::{connected_components, CcConfig};
use havoq_core::algorithms::kcore::{kcore, KCoreConfig};
use havoq_core::algorithms::sssp::{sssp, SsspConfig};
use havoq_core::CheckpointSpec;
use havoq_util::testing::{sweep_seed_set, sweep_seeds};

/// Schedule-independent results of the whole suite, canonical order.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Fingerprint {
    bfs_visited: u64,
    bfs_max_level: u64,
    bfs_levels: Vec<(u64, u64)>,
    cc_components: u64,
    cc_labels: Vec<(u64, u64)>,
    kcore_alive: u64,
    sssp_visited: u64,
    sssp_distances: Vec<(u64, u64)>,
    triangles: u64,
}

/// World totals of the restart machinery's counters, plus per-rank crash
/// counts so the sweep can prove every rank was a victim somewhere.
#[derive(Clone, Debug, Default)]
struct RestartTotals {
    checkpoints: u64,
    crashes: u64,
    restores: u64,
    /// Committed epochs skipped at restore because their checksum failed.
    fallbacks: u64,
    crashes_by_rank: Vec<u64>,
}

impl RestartTotals {
    fn accumulate(&mut self, ctx: &havoq_comm::RankCtx, s: &TraversalStats) {
        self.checkpoints += ctx.all_reduce_sum(s.checkpoints_written);
        self.crashes += ctx.all_reduce_sum(s.crashes);
        self.restores += ctx.all_reduce_sum(s.restores);
        self.fallbacks += ctx.all_reduce_sum(s.restore_epoch_fallbacks);
        let per_rank = ctx.all_gather(s.crashes);
        if self.crashes_by_rank.is_empty() {
            self.crashes_by_rank = per_rank;
        } else {
            for (t, c) in self.crashes_by_rank.iter_mut().zip(per_rank) {
                *t += c;
            }
        }
    }

    fn merge(&mut self, o: &RestartTotals) {
        self.checkpoints += o.checkpoints;
        self.crashes += o.crashes;
        self.restores += o.restores;
        self.fallbacks += o.fallbacks;
        if self.crashes_by_rank.is_empty() {
            self.crashes_by_rank = o.crashes_by_rank.clone();
        } else {
            for (t, c) in self.crashes_by_rank.iter_mut().zip(&o.crashes_by_rank) {
                *t += c;
            }
        }
    }
}

/// Gather one `u64` of state per master vertex into canonical order.
fn gather_state(
    ctx: &havoq_comm::RankCtx,
    g: &DistGraph,
    mut f: impl FnMut(usize) -> u64,
) -> Vec<(u64, u64)> {
    let local: Vec<(u64, u64)> = g
        .local_vertices()
        .filter(|&v| g.is_master(v))
        .map(|v| (v.0, f(g.local_index(v))))
        .collect();
    let mut all: Vec<(u64, u64)> = ctx.all_gather(local).into_iter().flatten().collect();
    all.sort_unstable();
    all
}

/// Global sent == received: quiescence only fired once every payload —
/// including traffic replayed after a restore — was delivered.
fn assert_conserved(ctx: &havoq_comm::RankCtx, what: &str, s: &TraversalStats) {
    let sent = ctx.all_reduce_sum(s.payload_sent);
    let recv = ctx.all_reduce_sum(s.payload_received);
    assert_eq!(sent, recv, "{what}: quiescence fired with {sent} sent != {recv} received");
}

/// Run the whole suite on `p` ranks. `every = Some(k)` checkpoints each
/// traversal every `k` executed visitors per rank; `None` runs the plain
/// uncheckpointed path (the baseline).
fn run_ck_suite(
    p: usize,
    edges: &[Edge],
    n: u64,
    every: Option<u64>,
    faults: Option<FaultConfig>,
) -> (Fingerprint, RestartTotals) {
    let spec = every.map(|e| CheckpointSpec::default().with_every(e));
    let mut out = CommWorld::run_with_faults(p, faults, |ctx| {
        let g = DistGraph::build_replicated(
            ctx,
            edges,
            PartitionStrategy::EdgeList,
            GraphConfig::default().with_num_vertices(n),
        );
        let mut totals = RestartTotals::default();

        let bcfg = BfsConfig { checkpoint: spec, ..BfsConfig::default() };
        let b = bfs(ctx, &g, VertexId(0), &bcfg);
        assert_conserved(ctx, "bfs", &b.stats);
        totals.accumulate(ctx, &b.stats);
        let report = validate_bfs(ctx, &g, VertexId(0), &b.local_state);
        assert!(report.is_valid(), "bfs parents/levels invalid: {report:?}");

        let c = connected_components(ctx, &g, &CcConfig { checkpoint: spec, ..Default::default() });
        assert_conserved(ctx, "cc", &c.stats);
        totals.accumulate(ctx, &c.stats);

        let k = kcore(ctx, &g, 3, &KCoreConfig { checkpoint: spec, ..Default::default() });
        assert_conserved(ctx, "kcore", &k.stats);
        totals.accumulate(ctx, &k.stats);

        let scfg = SsspConfig { checkpoint: spec, ..Default::default() };
        let s = sssp(ctx, &g, VertexId(0), &scfg);
        assert_conserved(ctx, "sssp", &s.stats);
        totals.accumulate(ctx, &s.stats);

        let t = triangle_count(ctx, &g, &TriangleConfig { checkpoint: spec, ..Default::default() });
        assert_conserved(ctx, "triangle", &t.stats);
        totals.accumulate(ctx, &t.stats);

        let fp = Fingerprint {
            bfs_visited: b.visited_count,
            bfs_max_level: b.max_level,
            bfs_levels: gather_state(ctx, &g, |li| b.local_state[li].length),
            cc_components: c.num_components,
            cc_labels: gather_state(ctx, &g, |li| c.local_state[li].component),
            kcore_alive: k.alive_count,
            sssp_visited: s.visited_count,
            sssp_distances: gather_state(ctx, &g, |li| s.local_state[li].distance),
            triangles: t.triangles,
        };
        (fp, totals)
    });
    let (fp0, totals) = out.remove(0);
    for (fp, _) in &out {
        assert_eq!(*fp, fp0, "ranks disagree on the gathered fingerprint");
    }
    // every crash event rewinds the whole world exactly once
    assert_eq!(
        totals.restores,
        totals.crashes * p as u64,
        "restores must be one per rank per crash event"
    );
    (fp0, totals)
}

fn sweep_edges() -> (Vec<Edge>, u64) {
    let gen = RmatGenerator::graph500(7);
    (gen.symmetric_edges(42), gen.num_vertices())
}

/// The acceptance sweep: 32 seeded chaos-plus-crash plans at p = 4, every
/// algorithm checkpointed, results bit-identical to the fault-free
/// uncheckpointed baseline. Coverage is asserted, not hoped for: the sweep
/// must have torn checkpoints on every rank at least once.
#[test]
fn restart_sweep_32_seeds_matches_baseline() {
    let (edges, n) = sweep_edges();
    let p = 4;
    let (baseline, quiet) = run_ck_suite(p, &edges, n, None, None);
    assert_eq!(quiet.crashes, 0, "uncheckpointed baseline cannot crash");
    assert_eq!(quiet.checkpoints, 0, "uncheckpointed baseline cannot checkpoint");

    let totals = std::sync::Mutex::new(RestartTotals::default());
    sweep_seeds(sweep_seed_set(32), |seed| {
        let faults = FaultConfig::chaos(seed).with_crash(150);
        let (fp, t) = run_ck_suite(p, &edges, n, Some(16), Some(faults));
        assert_eq!(fp, baseline, "seed {seed:#x} perturbed a converged result");
        totals.lock().unwrap().merge(&t);
    });

    let t = totals.into_inner().unwrap();
    assert!(t.checkpoints > 0, "sweep never wrote a checkpoint: {t:?}");
    assert!(t.crashes > 0, "sweep never exercised a crash: {t:?}");
    // crash debris is *torn*, and torn epochs are expected — they must
    // never be misclassified as checksum fallbacks
    assert_eq!(t.fallbacks, 0, "a torn epoch was counted as a checksum fallback: {t:?}");
    for (rank, c) in t.crashes_by_rank.iter().enumerate() {
        assert!(*c > 0, "rank {rank} was never a crash victim across the sweep: {t:?}");
    }
}

/// Checkpoint-store corruption end to end: rank 0's committed epoch-2 blob
/// is bit-flipped in place (through the page cache, so only the blob's own
/// checksum can catch it), then the last rank crashes while cutting that
/// same epoch. At restore, rank 0 must detect the mismatch, treat the
/// epoch like a torn one, and the world must agree on epoch 1 via the
/// existing `all_reduce_min` — exactly one fallback, no panic, and final
/// results bit-identical to the fault-free uncheckpointed baseline.
#[test]
fn corrupted_committed_epoch_falls_back_and_recovers() {
    let (edges, n) = sweep_edges();
    for p in [2usize, 4] {
        let (baseline, _) = run_ck_suite(p, &edges, n, None, None);

        let faults = FaultConfig::quiet(0xC0DE).with_forced_crash(p - 1, 2);
        let mut out = CommWorld::run_with_faults(p, Some(faults), |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default().with_num_vertices(n),
            );
            let spec = CheckpointSpec::default().with_every(8).with_corrupt_committed(0, 2);
            let bcfg = BfsConfig { checkpoint: Some(spec), ..BfsConfig::default() };
            let b = bfs(ctx, &g, VertexId(0), &bcfg);
            assert_conserved(ctx, "bfs", &b.stats);
            let report = validate_bfs(ctx, &g, VertexId(0), &b.local_state);
            assert!(report.is_valid(), "bfs parents/levels invalid: {report:?}");
            let fp = (
                b.visited_count,
                b.max_level,
                gather_state(ctx, &g, |li| b.local_state[li].length),
            );
            let crashes = ctx.all_reduce_sum(b.stats.crashes);
            let restores = ctx.all_reduce_sum(b.stats.restores);
            let fallbacks = ctx.all_reduce_sum(b.stats.restore_epoch_fallbacks);
            (fp, crashes, restores, fallbacks)
        });
        let (fp, crashes, restores, fallbacks) = out.remove(0);
        assert_eq!(
            (fp.0, fp.1, &fp.2),
            (baseline.bfs_visited, baseline.bfs_max_level, &baseline.bfs_levels),
            "corrupted-epoch recovery perturbed the BFS result at p={p}"
        );
        assert_eq!(crashes, 1, "forced crash at epoch 2 never fired at p={p}");
        assert_eq!(restores, p as u64, "every rank must rewind exactly once at p={p}");
        assert_eq!(
            fallbacks, 1,
            "the corrupted committed epoch must be skipped exactly once at p={p}"
        );
    }
}

/// Deterministic victim grid: kill each rank in turn at each of the first
/// epochs and require exact recovery. Complements the seeded sweep by
/// sampling the (rank, epoch) space exhaustively instead of randomly.
#[test]
fn restart_every_rank_every_early_epoch() {
    let (edges, n) = sweep_edges();
    let p = 4;
    let (baseline, _) = run_ck_suite(p, &edges, n, None, None);
    let mut crashed_runs = 0u64;
    for victim in 0..p {
        for epoch in 1..=3u64 {
            let faults = FaultConfig::quiet(0xD1E).with_forced_crash(victim, epoch);
            let (fp, t) = run_ck_suite(p, &edges, n, Some(8), Some(faults));
            assert_eq!(fp, baseline, "victim {victim} at epoch {epoch} perturbed the result");
            crashed_runs += u64::from(t.crashes > 0);
        }
    }
    // every grid point must actually have reached its crash epoch
    assert_eq!(crashed_runs, (p as u64) * 3, "some (rank, epoch) crashes never fired");
}

/// The heavyweight sweep for the CI restart-chaos job (`--include-ignored`,
/// release): a larger graph at a deliberately awkward rank count.
#[test]
#[ignore = "heavy: run via the CI restart-chaos job or --include-ignored"]
fn restart_sweep_heavy_seven_ranks() {
    let gen = RmatGenerator::graph500(8);
    let edges = gen.symmetric_edges(1234);
    let n = gen.num_vertices();
    let p = 7;
    let (baseline, _) = run_ck_suite(p, &edges, n, None, None);
    sweep_seeds(sweep_seed_set(8), |seed| {
        let faults = FaultConfig::chaos(seed).with_crash(100);
        let (fp, t) = run_ck_suite(p, &edges, n, Some(24), Some(faults));
        assert_eq!(fp, baseline, "seed {seed:#x} perturbed a converged result at p={p}");
        assert!(t.checkpoints > 0, "seed {seed:#x} never checkpointed");
    });
}
