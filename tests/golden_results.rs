//! Golden-result tests: three small fixed graphs with hand-computed
//! answers, exercised at 1, 2 and 7 ranks (p > n included on purpose —
//! ranks with no master vertices must still participate correctly).
//!
//! - `P8`, the path 0–1–…–7: unique shortest paths, so even BFS *parents*
//!   are schedule-independent and asserted exactly.
//! - `K6`, the 6-clique: maximal redundancy; every non-source parent is
//!   the source, triangle count is C(6,3) = 20, degeneracy is 5.
//! - RMAT-tiny, `RmatGenerator::graph500(4)` seed 7: a fixed scale-free
//!   multigraph whose goldens were frozen from the serial references
//!   (union-find components, peeling k-core, set-intersection triangles)
//!   that the unit suites already validate the distributed algorithms
//!   against on larger inputs.
//!
//! BFS parents on the clique and RMAT graphs are checked structurally via
//! the paper's validation visitors (`validate_bfs`) — first-arrival-wins
//! makes the specific parent schedule-dependent.

use havoq::prelude::*;
use havoq_comm::FaultConfig;
use havoq_core::algorithms::bfs::UNREACHED;
use havoq_core::algorithms::cc::{connected_components, CcConfig};
use havoq_core::algorithms::kcore::{kcore, KCoreConfig};
use havoq_core::algorithms::sssp::{sssp, SsspConfig};
use havoq_core::CheckpointSpec;

const RANKS: [usize; 3] = [1, 2, 7];

/// Symmetrize an undirected edge list given as (a, b) pairs.
fn sym(pairs: &[(u64, u64)]) -> Vec<Edge> {
    pairs.iter().flat_map(|&(a, b)| [Edge::new(a, b), Edge::new(b, a)]).collect()
}

/// Everything the goldens pin down, in canonical vertex order.
#[derive(Debug, PartialEq, Eq)]
struct Suite {
    bfs_visited: u64,
    bfs_max_level: u64,
    /// (vertex, level, parent) per vertex; `UNREACHED` where BFS never got.
    bfs_state: Vec<(u64, u64, u64)>,
    cc_components: u64,
    /// (vertex, min-id component label).
    cc_labels: Vec<(u64, u64)>,
    /// Alive count per probed k, in the order of `ks`.
    kcore_alive: Vec<u64>,
    triangles: u64,
}

/// Gather `(vertex, a, b)` for all master vertices into canonical order.
fn gather2(
    ctx: &havoq_comm::RankCtx,
    g: &DistGraph,
    mut f: impl FnMut(usize) -> (u64, u64),
) -> Vec<(u64, u64, u64)> {
    let local: Vec<(u64, u64, u64)> = g
        .local_vertices()
        .filter(|&v| g.is_master(v))
        .map(|v| {
            let (a, b) = f(g.local_index(v));
            (v.0, a, b)
        })
        .collect();
    let mut all: Vec<(u64, u64, u64)> = ctx.all_gather(local).into_iter().flatten().collect();
    all.sort_unstable();
    all
}

/// Run the whole suite on `p` ranks and collapse to one world-agreed value.
fn run_suite(p: usize, edges: &[Edge], n: u64, source: u64, ks: &[u64]) -> Suite {
    let ks = ks.to_vec();
    let mut out = CommWorld::run(p, |ctx| {
        let g = DistGraph::build_replicated(
            ctx,
            edges,
            PartitionStrategy::EdgeList,
            GraphConfig::default().with_num_vertices(n),
        );

        let b = bfs(ctx, &g, VertexId(source), &BfsConfig::default());
        let report = validate_bfs(ctx, &g, VertexId(source), &b.local_state);
        assert!(report.is_valid(), "bfs parents/levels invalid: {report:?}");
        let bfs_state = gather2(ctx, &g, |li| (b.local_state[li].length, b.local_state[li].parent));

        let c = connected_components(ctx, &g, &CcConfig::default());
        let cc_labels: Vec<(u64, u64)> = gather2(ctx, &g, |li| (c.local_state[li].component, 0))
            .into_iter()
            .map(|(v, l, _)| (v, l))
            .collect();

        let kcore_alive: Vec<u64> =
            ks.iter().map(|&k| kcore(ctx, &g, k, &KCoreConfig::default()).alive_count).collect();

        let t = triangle_count(ctx, &g, &TriangleConfig::default());

        Suite {
            bfs_visited: b.visited_count,
            bfs_max_level: b.max_level,
            bfs_state,
            cc_components: c.num_components,
            cc_labels,
            kcore_alive,
            triangles: t.triangles,
        }
    });
    let first = out.remove(0);
    for s in &out {
        assert_eq!(*s, first, "ranks disagree on gathered results");
    }
    first
}

/// The five algorithms' deterministic outputs, for restart-equivalence
/// comparisons. BFS *parents* are deliberately absent: first-arrival-wins
/// makes them schedule-dependent even between two fault-free runs (the
/// module docs note this), so they are validated structurally via
/// `validate_bfs` instead; levels, labels, distances and counts are
/// schedule-independent and compared exactly.
#[derive(Debug, PartialEq, Eq)]
struct CkResults {
    bfs_visited: u64,
    bfs_max_level: u64,
    /// (vertex, level) per master vertex, canonical order.
    bfs_levels: Vec<(u64, u64)>,
    cc_components: u64,
    cc_labels: Vec<(u64, u64)>,
    kcore_alive: Vec<u64>,
    /// (vertex, distance) per master vertex, canonical order.
    sssp_dist: Vec<(u64, u64)>,
    triangles: u64,
}

/// [`CkResults`] plus checkpoint/restart bookkeeping. The counters sit
/// outside the equality on purpose: equivalence is about *results*, the
/// counters prove the fault path actually ran.
#[derive(Debug)]
struct CkSuite {
    results: CkResults,
    restores: u64,
    crashes: u64,
}

/// Run the five algorithms (BFS, CC, k-core, SSSP, triangle) with optional
/// checkpointing (`every = Some(..)`) and an optional fault plan.
fn run_ck_suite(
    p: usize,
    edges: &[Edge],
    n: u64,
    source: u64,
    ks: &[u64],
    every: Option<u64>,
    faults: Option<FaultConfig>,
) -> CkSuite {
    let ks = ks.to_vec();
    let spec = every.map(|e| CheckpointSpec::default().with_every(e));
    let mut out = CommWorld::run_with_faults(p, faults, |ctx| {
        let g = DistGraph::build_replicated(
            ctx,
            edges,
            PartitionStrategy::EdgeList,
            GraphConfig::default().with_num_vertices(n),
        );
        let mut restores = 0u64;
        let mut crashes = 0u64;
        let mut track = |s: &havoq_core::TraversalStats| {
            restores += s.restores;
            crashes += s.crashes;
        };

        let bcfg = BfsConfig { checkpoint: spec, ..Default::default() };
        let b = bfs(ctx, &g, VertexId(source), &bcfg);
        track(&b.stats);
        let report = validate_bfs(ctx, &g, VertexId(source), &b.local_state);
        assert!(report.is_valid(), "bfs parents/levels invalid after restart: {report:?}");
        let bfs_levels: Vec<(u64, u64)> = gather2(ctx, &g, |li| (b.local_state[li].length, 0))
            .into_iter()
            .map(|(v, l, _)| (v, l))
            .collect();

        let c = connected_components(ctx, &g, &CcConfig { checkpoint: spec, ..Default::default() });
        track(&c.stats);
        let cc_labels: Vec<(u64, u64)> = gather2(ctx, &g, |li| (c.local_state[li].component, 0))
            .into_iter()
            .map(|(v, l, _)| (v, l))
            .collect();

        let kcfg = KCoreConfig { checkpoint: spec, ..Default::default() };
        let kcore_alive: Vec<u64> = ks
            .iter()
            .map(|&k| {
                let r = kcore(ctx, &g, k, &kcfg);
                track(&r.stats);
                r.alive_count
            })
            .collect();

        let scfg = SsspConfig { checkpoint: spec, ..Default::default() };
        let s = sssp(ctx, &g, VertexId(source), &scfg);
        track(&s.stats);
        let sssp_dist: Vec<(u64, u64)> = gather2(ctx, &g, |li| (s.local_state[li].distance, 0))
            .into_iter()
            .map(|(v, d, _)| (v, d))
            .collect();

        let t = triangle_count(ctx, &g, &TriangleConfig { checkpoint: spec, ..Default::default() });
        track(&t.stats);

        CkSuite {
            results: CkResults {
                bfs_visited: b.visited_count,
                bfs_max_level: b.max_level,
                bfs_levels,
                cc_components: c.num_components,
                cc_labels,
                kcore_alive,
                sssp_dist,
                triangles: t.triangles,
            },
            restores: ctx.all_reduce_sum(restores),
            crashes: ctx.all_reduce_sum(crashes),
        }
    });
    let first = out.remove(0);
    for s in &out {
        assert_eq!(s.results, first.results, "ranks disagree on gathered results");
    }
    first
}

/// Fault-free checkpointed runs produce exactly the plain-run results —
/// the cut protocol must be invisible when nothing crashes.
#[test]
fn checkpointing_is_result_neutral() {
    let gen = RmatGenerator::graph500(4);
    let edges = gen.symmetric_edges(7);
    let n = gen.num_vertices();
    let ks = [1u64, 2, 3];
    for p in RANKS {
        let plain = run_ck_suite(p, &edges, n, 0, &ks, None, None);
        let ck = run_ck_suite(p, &edges, n, 0, &ks, Some(2), None);
        assert_eq!(ck.results, plain.results, "p={p}");
        assert_eq!((ck.crashes, ck.restores), (0, 0), "p={p}: no faults injected");
    }
}

/// Resume equivalence: crash each rank at each early checkpoint epoch and
/// demand results bit-identical to the fault-free run. A forced crash at
/// an epoch the traversal never reaches is a no-op (the graphs are tiny),
/// so coverage is asserted in aggregate: across the sweep, crashes and
/// restores must both have fired.
#[test]
fn resume_equivalence_after_rank_crashes() {
    let gen = RmatGenerator::graph500(4);
    let rmat = gen.symmetric_edges(7);
    let path = sym(&[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7)]);
    let cases: [(&[Edge], u64, &[u64]); 2] =
        [(&rmat, gen.num_vertices(), &[1, 2, 3]), (&path, 8, &[1, 2])];
    let mut total_crashes = 0u64;
    let mut total_restores = 0u64;
    for (edges, n, ks) in cases {
        for p in RANKS {
            let golden = run_ck_suite(p, edges, n, 0, ks, None, None);
            for victim in 0..p {
                for epoch in 1..=2u64 {
                    let faults = FaultConfig::quiet(11).with_forced_crash(victim, epoch);
                    let got = run_ck_suite(p, edges, n, 0, ks, Some(1), Some(faults));
                    assert_eq!(
                        got.results, golden.results,
                        "p={p} victim={victim} epoch={epoch}: resumed run diverged"
                    );
                    total_crashes += got.crashes;
                    total_restores += got.restores;
                }
            }
        }
    }
    assert!(total_crashes > 0, "crash sweep never tore an epoch");
    assert!(total_restores >= total_crashes, "every crash must trigger a world-wide restore");
}

#[test]
fn golden_path_p8() {
    // 0-1-2-3-4-5-6-7: levels are vertex ids, parents are predecessors
    // (unique shortest paths make the parents themselves golden).
    let edges = sym(&[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7)]);
    let want = Suite {
        bfs_visited: 8,
        bfs_max_level: 7,
        bfs_state: (0..8u64).map(|v| (v, v, v.saturating_sub(1))).collect(),
        cc_components: 1,
        cc_labels: (0..8).map(|v| (v, 0)).collect(),
        // every vertex survives k=1; k=2 collapses the whole path
        // (cascading removal from both endpoints) — degeneracy 1
        kcore_alive: vec![8, 0],
        triangles: 0,
    };
    for p in RANKS {
        assert_eq!(run_suite(p, &edges, 8, 0, &[1, 2]), want, "p={p}");
    }
}

#[test]
fn golden_clique_k6() {
    let mut pairs = Vec::new();
    for a in 0..6u64 {
        for b in (a + 1)..6 {
            pairs.push((a, b));
        }
    }
    let edges = sym(&pairs);
    let want = Suite {
        bfs_visited: 6,
        bfs_max_level: 1,
        // every non-source vertex is at level 1 with the source as its only
        // possible parent
        bfs_state: (0..6).map(|v| (v, u64::from(v != 0), 0)).collect(),
        cc_components: 1,
        cc_labels: (0..6).map(|v| (v, 0)).collect(),
        // the clique is its own 5-core; no 6-core exists — degeneracy 5
        kcore_alive: vec![6, 6, 0],
        triangles: 20, // C(6,3)
    };
    for p in RANKS {
        assert_eq!(run_suite(p, &edges, 6, 0, &[1, 5, 6]), want, "p={p}");
    }
}

#[test]
fn golden_rmat_tiny() {
    let gen = RmatGenerator::graph500(4);
    let edges = gen.symmetric_edges(7);
    let n = gen.num_vertices();
    assert_eq!(n, 16);
    for p in RANKS {
        let got = run_suite(p, &edges, n, 0, &[1, 2, 3]);
        // frozen from the serial references (see module docs)
        assert_eq!(got.bfs_visited, GOLDEN_BFS_VISITED, "p={p}");
        assert_eq!(got.bfs_max_level, GOLDEN_BFS_MAX_LEVEL, "p={p}");
        let levels: Vec<(u64, u64)> = got.bfs_state.iter().map(|&(v, l, _)| (v, l)).collect();
        assert_eq!(levels, GOLDEN_BFS_LEVELS.to_vec(), "p={p}");
        // parents are schedule-dependent: validated inside run_suite, and
        // every reached non-source vertex must have a reached parent
        for &(v, l, parent) in &got.bfs_state {
            if l != UNREACHED && v != 0 {
                assert!(
                    GOLDEN_BFS_LEVELS.iter().any(|&(pv, pl)| pv == parent && pl == l - 1),
                    "p={p}: vertex {v} has parent {parent} not one level up"
                );
            }
        }
        assert_eq!(got.cc_components, GOLDEN_CC_COMPONENTS, "p={p}");
        assert_eq!(got.cc_labels, GOLDEN_CC_LABELS.to_vec(), "p={p}");
        assert_eq!(got.kcore_alive, GOLDEN_KCORE_ALIVE.to_vec(), "p={p}");
        assert_eq!(got.triangles, GOLDEN_TRIANGLES, "p={p}");
    }
}

// ---- frozen goldens for RmatGenerator::graph500(4), symmetric seed 7 ----

const GOLDEN_BFS_VISITED: u64 = 16;
const GOLDEN_BFS_MAX_LEVEL: u64 = 2;
const GOLDEN_BFS_LEVELS: [(u64, u64); 16] = [
    (0, 0),
    (1, 1),
    (2, 2),
    (3, 2),
    (4, 1),
    (5, 1),
    (6, 2),
    (7, 1),
    (8, 1),
    (9, 2),
    (10, 1),
    (11, 2),
    (12, 2),
    (13, 1),
    (14, 1),
    (15, 1),
];
const GOLDEN_CC_COMPONENTS: u64 = 1;
const GOLDEN_CC_LABELS: [(u64, u64); 16] = [
    (0, 0),
    (1, 0),
    (2, 0),
    (3, 0),
    (4, 0),
    (5, 0),
    (6, 0),
    (7, 0),
    (8, 0),
    (9, 0),
    (10, 0),
    (11, 0),
    (12, 0),
    (13, 0),
    (14, 0),
    (15, 0),
];
const GOLDEN_KCORE_ALIVE: [u64; 3] = [16, 16, 15];
const GOLDEN_TRIANGLES: u64 = 85;
