//! Wire-codec roundtrip properties for every visitor type that crosses the
//! simulated network.
//!
//! Two complementary properties:
//!
//! - *value roundtrip* (visitors with public fields): construct a visitor
//!   from generated field values — including all-zero and all-max extremes —
//!   encode it, decode it, and require field-for-field identity.
//! - *byte roundtrip* (visitors with private fields / decode contexts):
//!   synthesize a valid wire record, decode it, re-encode it, and require
//!   byte-for-byte identity. This is strictly stronger than value equality
//!   wherever the wire layout is canonical.
//!
//! A codec that silently truncates a field (say, a level that only survives
//! to 32 bits) passes every small-graph integration test; it only fails at
//! the extremes, which is exactly what these properties pin down.

use havoq_comm::codec::{
    frame_init, frame_seal, frame_set_count, frame_verify_and_strip, FRAME_CRC_BYTES,
};
use havoq_comm::WireCodec;
use havoq_core::algorithms::bfs::BfsVisitor;
use havoq_core::algorithms::cc::CcVisitor;
use havoq_core::algorithms::kcore::KCoreVisitor;
use havoq_core::algorithms::sssp::SsspVisitor;
use havoq_core::algorithms::triangle::{SubsetTriangleVisitor, TriangleVisitor};
use havoq_core::algorithms::wedge::WedgeVisitor;
use havoq_graph::types::VertexId;
use havoq_util::testing::{run_cases, TestRng};

/// Interesting u64 values: both extremes, both near-extremes, and random.
fn gen_u64(rng: &mut TestRng) -> u64 {
    match rng.below(6) {
        0 => 0,
        1 => 1,
        2 => u64::MAX,
        3 => u64::MAX - 1,
        4 => 1 << 63,
        _ => rng.next_u64(),
    }
}

/// Encode into an exactly-sized buffer (over- or under-writes panic).
fn encode_exact<V: WireCodec>(v: &V) -> Vec<u8> {
    let mut buf = vec![0u8; V::WIRE_SIZE];
    v.encode(&mut buf);
    buf
}

#[test]
fn bfs_visitor_roundtrips_including_extremes() {
    run_cases(256, |rng: &mut TestRng| {
        let v = BfsVisitor {
            vertex: VertexId(gen_u64(rng)),
            length: gen_u64(rng),
            parent: gen_u64(rng),
        };
        let buf = encode_exact(&v);
        let d = BfsVisitor::decode(&buf, &());
        assert_eq!((d.vertex, d.length, d.parent), (v.vertex, v.length, v.parent));
        assert_eq!(encode_exact(&d), buf, "re-encode must be canonical");
    });
}

#[test]
fn cc_visitor_roundtrips_including_extremes() {
    run_cases(256, |rng: &mut TestRng| {
        let v = CcVisitor { vertex: VertexId(gen_u64(rng)), label: gen_u64(rng) };
        let buf = encode_exact(&v);
        let d = CcVisitor::decode(&buf, &());
        assert_eq!((d.vertex, d.label), (v.vertex, v.label));
        assert_eq!(encode_exact(&d), buf);
    });
}

#[test]
fn kcore_visitor_roundtrips_including_extremes() {
    run_cases(256, |rng: &mut TestRng| {
        let v = KCoreVisitor { vertex: VertexId(gen_u64(rng)), k: gen_u64(rng) };
        let buf = encode_exact(&v);
        let d = KCoreVisitor::decode(&buf, &());
        assert_eq!((d.vertex, d.k), (v.vertex, v.k));
        assert_eq!(encode_exact(&d), buf);
    });
}

#[test]
fn sssp_visitor_roundtrips_including_extremes() {
    run_cases(256, |rng: &mut TestRng| {
        let v = SsspVisitor {
            vertex: VertexId(gen_u64(rng)),
            distance: gen_u64(rng),
            parent: gen_u64(rng),
            max_weight: gen_u64(rng),
        };
        let buf = encode_exact(&v);
        let d = SsspVisitor::decode(&buf, &());
        assert_eq!(
            (d.vertex, d.distance, d.parent, d.max_weight),
            (v.vertex, v.distance, v.parent, v.max_weight)
        );
        assert_eq!(encode_exact(&d), buf);
    });
}

#[test]
fn triangle_visitor_roundtrips_including_extremes() {
    run_cases(256, |rng: &mut TestRng| {
        let v = TriangleVisitor {
            vertex: VertexId(gen_u64(rng)),
            second: gen_u64(rng),
            third: gen_u64(rng),
        };
        let buf = encode_exact(&v);
        let d = TriangleVisitor::decode(&buf, &());
        assert_eq!((d.vertex, d.second, d.third), (v.vertex, v.second, v.third));
        assert_eq!(encode_exact(&d), buf);
    });
}

/// The subset visitor's wire record is exactly the inner triangle visitor;
/// the subset table is reattached from the decode context and never crosses
/// the wire. Byte roundtrip: decode an arbitrary inner record, re-encode.
#[test]
fn subset_triangle_visitor_byte_roundtrips() {
    run_cases(256, |rng: &mut TestRng| {
        let inner = TriangleVisitor {
            vertex: VertexId(gen_u64(rng)),
            second: gen_u64(rng),
            third: gen_u64(rng),
        };
        let buf = encode_exact(&inner);
        let subset = std::sync::Arc::new(vec![0u64, 3, 7]);
        let d = SubsetTriangleVisitor::decode(&buf, &subset);
        assert_eq!(
            SubsetTriangleVisitor::WIRE_SIZE,
            TriangleVisitor::WIRE_SIZE,
            "subset table must not widen the wire record"
        );
        assert_eq!(encode_exact(&d), buf);
    });
}

/// The integrity guarantee the retransmission protocol leans on: a single
/// bit-flip *anywhere* in a sealed frame — header, records, or the CRC
/// trailer itself — is always detected, and the rejected frame is left
/// byte-for-byte untouched so the receiver can account for it and NACK.
/// This is the frame-level face of the fault plan's one-bit corruption:
/// CRC-32 detects every single-bit error, so "injected == detected" holds
/// by construction, never by luck.
#[test]
fn sealed_frame_single_bit_flip_is_always_detected() {
    run_cases(512, |rng: &mut TestRng| {
        // synthesize a frame of random records (empty frames included)
        let record_size = rng.range_usize(1, 64);
        let count = rng.range_usize(0, 16);
        let mut buf = Vec::new();
        frame_init(&mut buf, record_size as u32);
        for _ in 0..record_size * count {
            buf.push(rng.u8());
        }
        frame_set_count(&mut buf, count as u32);
        frame_seal(&mut buf);

        // sanity: the intact frame verifies and the trailer strips cleanly
        let mut intact = buf.clone();
        assert!(frame_verify_and_strip(&mut intact), "intact frame rejected");
        assert_eq!(intact.len(), buf.len() - FRAME_CRC_BYTES);

        let bit = rng.range_usize(0, buf.len() * 8);
        let mut flipped = buf.clone();
        flipped[bit / 8] ^= 1 << (bit % 8);
        let before = flipped.clone();
        assert!(
            !frame_verify_and_strip(&mut flipped),
            "bit {bit} of {} escaped the CRC",
            buf.len() * 8
        );
        assert_eq!(flipped, before, "rejected frame must be left untouched");
    });
}

/// Wedge visitors have private fields, so the property works on the wire
/// form: synthesize a valid record (duty tag 0, 1 or 2; the `Close` duty
/// carries a single operand with a zero second slot), decode, re-encode,
/// and require byte identity.
#[test]
fn wedge_visitor_byte_roundtrips() {
    run_cases(256, |rng: &mut TestRng| {
        let tag = rng.below(3) as u8;
        let a = gen_u64(rng);
        let b = if tag == 2 { 0 } else { gen_u64(rng) };
        let mut buf = vec![0u8; WedgeVisitor::WIRE_SIZE];
        gen_u64(rng).encode(&mut buf[..8]); // vertex id
        buf[8] = tag;
        a.encode(&mut buf[9..17]);
        b.encode(&mut buf[17..25]);
        let d = WedgeVisitor::decode(&buf, &());
        assert_eq!(encode_exact(&d), buf, "duty tag {tag}");
    });
}
