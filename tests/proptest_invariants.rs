//! Property-based tests over the core data-structure invariants: the
//! distributed sort, owner functions, CSR storage, page cache, and the
//! visitor algorithms against serial references on arbitrary graphs.

use havoq::prelude::*;
use havoq_comm::FaultConfig;
use havoq_core::algorithms::bfs::UNREACHED;
use havoq_core::CheckpointSpec;
use havoq_graph::gen::permute::RandomPermutation;
use havoq_graph::sort::sort_edges_even;
use havoq_nvram::device::BlockDevice;
use havoq_util::testing::{run_cases, TestRng};

/// Arbitrary small symmetric graph: vertex count + undirected edge pairs.
fn arb_graph(rng: &mut TestRng) -> (u64, Vec<Edge>) {
    let n = rng.range(2, 60);
    let m = rng.range_usize(0, 200);
    let mut es: Vec<Edge> = (0..m).map(|_| Edge::new(rng.below(n), rng.below(n))).collect();
    for i in 0..m {
        let e = es[i];
        if !e.is_self_loop() {
            es.push(e.reversed());
        }
    }
    (n, es)
}

#[test]
fn permutation_is_a_bijection() {
    run_cases(24, |rng: &mut TestRng| {
        let n = rng.range(1, 5000);
        let seed = rng.next_u64();
        let p = RandomPermutation::new(n, seed);
        let mut seen = vec![false; n as usize];
        for x in 0..n {
            let y = p.apply(x);
            assert!(y < n);
            assert!(!seen[y as usize]);
            seen[y as usize] = true;
        }
    });
}

#[test]
fn distributed_sort_equals_serial_sort() {
    run_cases(24, |rng: &mut TestRng| {
        let (_n, edges) = arb_graph(rng);
        let p = rng.range_usize(1, 6);
        let sorted = CommWorld::run(p, |ctx| {
            let m = edges.len();
            let lo = m * ctx.rank() / p;
            let hi = m * (ctx.rank() + 1) / p;
            sort_edges_even(ctx, edges[lo..hi].to_vec())
        });
        let got: Vec<Edge> = sorted.into_iter().flatten().collect();
        let mut want = edges.clone();
        want.sort_unstable_by_key(|e| e.key());
        assert_eq!(got, want);
    });
}

#[test]
fn owner_functions_tile_every_vertex() {
    run_cases(24, |rng: &mut TestRng| {
        let (n, edges) = arb_graph(rng);
        let p = rng.range_usize(1, 6);
        let checks = CommWorld::run(p, |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default().with_num_vertices(n),
            );
            let mut ok = true;
            for v in 0..n {
                let v = VertexId(v);
                let (mn, mx) = (g.min_owner(v), g.max_owner(v));
                ok &= mn <= mx && mx < p;
                // this rank holds v iff it is inside the owner chain
                ok &= g.is_local(v) == (mn..=mx).contains(&ctx.rank());
            }
            // masters are unique
            let masters: u64 = (0..n).filter(|&v| g.is_master(VertexId(v))).count() as u64;
            (ok, ctx.all_reduce_sum(masters))
        });
        for (ok, master_total) in checks {
            assert!(ok);
            assert_eq!(master_total, n);
        }
    });
}

#[test]
fn distributed_bfs_equals_serial_bfs() {
    run_cases(24, |rng: &mut TestRng| {
        let (n, edges) = arb_graph(rng);
        let p = rng.range_usize(1, 6);
        let source = rng.below(n);
        let ghosts = rng.range_usize(0, 32);
        // serial reference
        let mut adj = vec![Vec::new(); n as usize];
        for e in &edges {
            if !e.is_self_loop() {
                adj[e.src as usize].push(e.dst);
            }
        }
        let mut want = vec![UNREACHED; n as usize];
        want[source as usize] = 0;
        let mut frontier = vec![source];
        let mut l = 0;
        while !frontier.is_empty() {
            l += 1;
            let mut next = Vec::new();
            for &v in &frontier {
                for &t in &adj[v as usize] {
                    if want[t as usize] == UNREACHED {
                        want[t as usize] = l;
                        next.push(t);
                    }
                }
            }
            frontier = next;
        }
        // distributed
        let pieces = CommWorld::run(p, |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default().with_num_vertices(n),
            );
            let cfg = BfsConfig::default().with_ghosts(ghosts);
            let r = bfs(ctx, &g, VertexId(source), &cfg);
            g.local_vertices()
                .filter(|&v| g.is_master(v))
                .map(|v| (v.0, r.local_state[g.local_index(v)].length))
                .collect::<Vec<_>>()
        });
        let mut got = vec![UNREACHED; n as usize];
        for (v, lvl) in pieces.into_iter().flatten() {
            got[v as usize] = lvl;
        }
        assert_eq!(got, want);
    });
}

/// Checkpointed traversals under random fault schedules *including rank
/// crashes*: the termination detector must never declare quiescence while
/// frames are in flight or a restored rank's replayed queue is undrained.
/// Both failure modes are observable — a frame the detector abandoned
/// breaks global `sent == received` conservation (the mailbox counters are
/// live and never rewound, so replayed post-restore traffic is counted on
/// both sides), and an unexecuted visitor leaves the fixpoint unconverged
/// against the serial reference.
#[test]
fn checkpointed_bfs_survives_random_crash_schedules() {
    use std::sync::atomic::{AtomicU64, Ordering};
    let crash_total = AtomicU64::new(0);
    run_cases(16, |rng: &mut TestRng| {
        let (n, edges) = arb_graph(rng);
        let p = rng.range_usize(1, 6);
        let source = rng.below(n);
        let every = rng.range(1, 5);
        // random fault plan: always a hefty crash chance, sometimes the
        // full message-level chaos adversary stacked on top
        let mut faults = FaultConfig::quiet(rng.next_u64()).with_crash(rng.range(150, 600) as u16);
        if rng.bool() {
            faults = faults.with_delay(200, 6).with_reorder(200, 4).with_duplicate(80);
        }
        // serial reference
        let mut adj = vec![Vec::new(); n as usize];
        for e in &edges {
            if !e.is_self_loop() {
                adj[e.src as usize].push(e.dst);
            }
        }
        let mut want = vec![UNREACHED; n as usize];
        want[source as usize] = 0;
        let mut frontier = vec![source];
        let mut l = 0;
        while !frontier.is_empty() {
            l += 1;
            let mut next = Vec::new();
            for &v in &frontier {
                for &t in &adj[v as usize] {
                    if want[t as usize] == UNREACHED {
                        want[t as usize] = l;
                        next.push(t);
                    }
                }
            }
            frontier = next;
        }
        // distributed, checkpointing every few visitors so small runs
        // still cross several crash-eligible epochs
        let pieces = CommWorld::run_with_faults(p, Some(faults), |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default().with_num_vertices(n),
            );
            let cfg =
                BfsConfig::default().with_checkpoint(CheckpointSpec::default().with_every(every));
            let r = bfs(ctx, &g, VertexId(source), &cfg);
            let sent = ctx.all_reduce_sum(r.stats.payload_sent);
            let recv = ctx.all_reduce_sum(r.stats.payload_received);
            assert_eq!(sent, recv, "quiescence fired with frames in flight");
            let crashes = ctx.all_reduce_sum(r.stats.crashes);
            let restores = ctx.all_reduce_sum(r.stats.restores);
            assert_eq!(
                restores,
                crashes * p as u64,
                "every rank must restore exactly once per crash event"
            );
            let states: Vec<(u64, u64)> = g
                .local_vertices()
                .filter(|&v| g.is_master(v))
                .map(|v| (v.0, r.local_state[g.local_index(v)].length))
                .collect();
            (states, crashes)
        });
        // crash count is an all-reduce, identical on every rank
        crash_total.fetch_add(pieces[0].1, Ordering::Relaxed);
        let mut got = vec![UNREACHED; n as usize];
        for (states, _) in pieces {
            for (v, lvl) in states {
                got[v as usize] = lvl;
            }
        }
        assert_eq!(got, want);
    });
    assert!(crash_total.load(Ordering::Relaxed) > 0, "sweep never exercised a crash");
}

/// Batched multi-source BFS against the serial frontier reference on
/// arbitrary graphs and *arbitrary query sets* — duplicate sources
/// allowed, every width up to 8 — under random fault schedules including
/// checkpointed rank crashes. Three properties per case:
///
/// - every query's level array equals the serial reference (parents are
///   schedule-dependent, so they are validated structurally instead);
/// - the per-query executed/pushed ledgers sum to the batch totals under
///   every schedule, fault plan and crash/restore cycle;
/// - at `threads = 1`, `restores == crashes × p` (the world-rewind
///   invariant the single-source belt pins).
#[test]
fn batched_bfs_matches_serial_reference_on_random_query_sets() {
    use havoq_core::batch::bfs_batch;
    run_cases(16, |rng: &mut TestRng| {
        let (n, edges) = arb_graph(rng);
        let p = rng.range_usize(1, 5);
        let k = rng.range_usize(1, 8);
        // duplicates allowed: two queries from the same source must both
        // be answered, identically
        let sources: Vec<VertexId> = (0..k).map(|_| VertexId(rng.below(n))).collect();
        // random fault schedule: none / message chaos / checkpointed crashes
        let (faults, ckpt_every) = match rng.range(0, 2) {
            1 => (Some(FaultConfig::chaos(rng.next_u64())), None),
            2 => (
                Some(FaultConfig::quiet(rng.next_u64()).with_crash(rng.range(150, 600) as u16)),
                Some(rng.range(1, 5)),
            ),
            _ => (None, None),
        };
        // serial frontier reference per query
        let mut adj = vec![Vec::new(); n as usize];
        for e in &edges {
            if !e.is_self_loop() {
                adj[e.src as usize].push(e.dst);
            }
        }
        let want: Vec<Vec<u64>> = sources
            .iter()
            .map(|s| {
                let mut lv = vec![UNREACHED; n as usize];
                lv[s.0 as usize] = 0;
                let mut frontier = vec![s.0];
                let mut l = 0;
                while !frontier.is_empty() {
                    l += 1;
                    let mut next = Vec::new();
                    for &v in &frontier {
                        for &t in &adj[v as usize] {
                            if lv[t as usize] == UNREACHED {
                                lv[t as usize] = l;
                                next.push(t);
                            }
                        }
                    }
                    frontier = next;
                }
                lv
            })
            .collect();
        // batched distributed run, all queries through one traversal
        let pieces = CommWorld::run_with_faults(p, faults, |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default().with_num_vertices(n),
            );
            let mut cfg = havoq_core::batch::BatchConfig::default();
            if let Some(every) = ckpt_every {
                cfg = cfg.with_checkpoint(CheckpointSpec::default().with_every(every));
            }
            let res = bfs_batch::<8>(ctx, &g, &sources, &cfg);
            res.ledger
                .check(sources.len())
                .unwrap_or_else(|e| panic!("ledger invariant broke: {e}"));
            let crashes = ctx.all_reduce_sum(res.stats.crashes);
            let restores = ctx.all_reduce_sum(res.stats.restores);
            assert_eq!(
                restores,
                crashes * p as u64,
                "every rank must restore exactly once per crash event"
            );
            let states: Vec<Vec<(u64, u64)>> = (0..sources.len())
                .map(|qi| {
                    let report = validate_bfs(ctx, &g, sources[qi], &res.local_state[qi]);
                    assert!(
                        report.is_valid(),
                        "batched parents invalid for query {qi}: {report:?}"
                    );
                    g.local_vertices()
                        .filter(|&v| g.is_master(v))
                        .map(|v| (v.0, res.local_state[qi][g.local_index(v)].length))
                        .collect()
                })
                .collect();
            states
        });
        for (qi, want_q) in want.iter().enumerate() {
            let mut got = vec![UNREACHED; n as usize];
            for rank_states in &pieces {
                for &(v, lvl) in &rank_states[qi] {
                    got[v as usize] = lvl;
                }
            }
            assert_eq!(
                &got, want_q,
                "query {qi} (source {:?}) diverged from the serial reference",
                sources[qi]
            );
        }
    });
}

#[test]
fn replica_state_is_consistent_after_bfs() {
    run_cases(24, |rng: &mut TestRng| {
        let (n, edges) = arb_graph(rng);
        let p = rng.range_usize(2, 6);
        // after termination, every replica of a split vertex must agree
        // with its master (BFS updates are monotone and fully propagated)
        let pieces = CommWorld::run(p, |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default().with_num_vertices(n),
            );
            let r = bfs(ctx, &g, VertexId(0), &BfsConfig::default());
            g.local_vertices()
                .map(|v| (v.0, r.local_state[g.local_index(v)].length))
                .collect::<Vec<_>>()
        });
        let mut seen: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for (v, lvl) in pieces.into_iter().flatten() {
            if let Some(prev) = seen.insert(v, lvl) {
                assert_eq!(prev, lvl, "replica disagreement at vertex {v}");
            }
        }
    });
}

#[test]
fn distributed_kcore_equals_serial_peeling() {
    run_cases(24, |rng: &mut TestRng| {
        let (n, edges) = arb_graph(rng);
        let p = rng.range_usize(1, 5);
        let k = rng.range(1, 6);
        // serial peeling reference
        let mut adj = vec![Vec::new(); n as usize];
        for e in &edges {
            if !e.is_self_loop() {
                adj[e.src as usize].push(e.dst);
            }
        }
        for a in adj.iter_mut() {
            a.sort_unstable();
            a.dedup();
        }
        let mut deg: Vec<u64> = adj.iter().map(|a| a.len() as u64).collect();
        let mut alive = vec![true; n as usize];
        let mut stack: Vec<u64> = (0..n).filter(|&v| deg[v as usize] < k).collect();
        for &v in &stack {
            alive[v as usize] = false;
        }
        while let Some(v) = stack.pop() {
            for &t in &adj[v as usize] {
                if alive[t as usize] {
                    deg[t as usize] -= 1;
                    if deg[t as usize] < k {
                        alive[t as usize] = false;
                        stack.push(t);
                    }
                }
            }
        }
        let want: u64 = alive.iter().filter(|&&a| a).count() as u64;
        let got = CommWorld::run(p, |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default().with_num_vertices(n),
            );
            kcore(ctx, &g, k, &KCoreConfig::default()).alive_count
        });
        assert!(got.iter().all(|&c| c == want), "{got:?} != {want}");
    });
}

#[test]
fn distributed_triangles_equal_serial_count() {
    run_cases(24, |rng: &mut TestRng| {
        let (n, edges) = arb_graph(rng);
        let p = rng.range_usize(1, 5);
        use std::collections::HashSet;
        let mut adj: Vec<HashSet<u64>> = vec![HashSet::new(); n as usize];
        for e in &edges {
            if !e.is_self_loop() {
                adj[e.src as usize].insert(e.dst);
                adj[e.dst as usize].insert(e.src);
            }
        }
        let mut want = 0u64;
        for a in 0..n {
            for &b in &adj[a as usize] {
                if b <= a {
                    continue;
                }
                for &c in &adj[b as usize] {
                    if c > b && adj[a as usize].contains(&c) {
                        want += 1;
                    }
                }
            }
        }
        let got = CommWorld::run(p, |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default().with_num_vertices(n),
            );
            triangle_count(ctx, &g, &TriangleConfig::default()).triangles
        });
        assert!(got.iter().all(|&t| t == want), "{got:?} != {want}");
    });
}

#[test]
fn edge_file_roundtrips() {
    run_cases(8, |rng: &mut TestRng| {
        let (_n, edges) = arb_graph(rng);
        let binary = rng.bool();
        let dir = std::env::temp_dir().join(format!("havoq-prop-io-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("e-{binary}.dat"));
        if binary {
            havoq_graph::io::write_binary(&path, &edges).unwrap();
            assert_eq!(havoq_graph::io::read_binary(&path).unwrap(), edges);
        } else {
            havoq_graph::io::write_text(&path, &edges).unwrap();
            assert_eq!(havoq_graph::io::read_text(&path).unwrap(), edges);
        }
    });
}

#[test]
fn page_cache_matches_memory_model() {
    run_cases(24, |rng: &mut TestRng| {
        use std::sync::Arc;
        let pages = rng.range_usize(1, 8);
        let nops = rng.range_usize(1, 200);
        let dev = Arc::new(havoq_nvram::device::MemDevice::new());
        let cache = PageCache::new(
            dev as Arc<dyn BlockDevice>,
            PageCacheConfig {
                page_size: 64,
                capacity_pages: pages.max(2),
                shards: 2,
                ..PageCacheConfig::default()
            },
        );
        let mut model = vec![0u8; 2048 + 1];
        for _ in 0..nops {
            let addr = rng.below(2048);
            if rng.bool() {
                let v = rng.u8();
                cache.write_at(addr, &[v]);
                model[addr as usize] = v;
            } else {
                let mut b = [0u8; 1];
                cache.read_at(addr, &mut b);
                assert_eq!(b[0], model[addr as usize]);
            }
        }
        // final flush + raw device readback agrees with the model
        cache.flush();
        let mut all = vec![0u8; model.len()];
        cache.read_at(0, &mut all);
        assert_eq!(all, model);
    });
}

/// Varint gap codec round-trip on arbitrary sorted `u64` lists: empty,
/// single, duplicate-heavy (dedup-off zero gaps), and extreme values up to
/// `u64::MAX` — bulk decode and the streaming decoder must both return the
/// input exactly.
#[test]
fn varint_gap_codec_roundtrips_arbitrary_sorted_lists() {
    use havoq_graph::varint;
    run_cases(64, |rng: &mut TestRng| {
        let len = rng.range_usize(0, 64);
        let mut targets = Vec::with_capacity(len);
        let mut cur = 0u64;
        for _ in 0..len {
            // mix of small gaps, zero gaps (duplicates) and huge jumps, with
            // a saturating tail that parks runs at u64::MAX
            cur = match rng.below(4) {
                0 => cur, // duplicate target (dedup: false)
                1 => cur.saturating_add(rng.below(3)),
                2 => cur.saturating_add(rng.below(1 << 20)),
                _ => cur.saturating_add(rng.next_u64() >> rng.below(8)),
            };
            targets.push(cur);
        }
        let mut buf = Vec::new();
        let appended = varint::encode_gaps(&targets, &mut buf);
        assert_eq!(appended, buf.len());
        let mut bulk = Vec::new();
        varint::decode_gaps(&buf, targets.len(), &mut bulk);
        assert_eq!(bulk, targets, "bulk decode diverged");
        let mut dec = varint::GapDecoder::new(&buf);
        for (i, &want) in targets.iter().enumerate() {
            assert_eq!(dec.next_target(), want, "streaming decode diverged at {i}");
        }
        assert_eq!(dec.consumed(), buf.len(), "stream must consume exactly the encoding");
    });
}

/// Compressed CSR equals the in-memory CSR on arbitrary graphs — with a
/// deliberately tiny page so encoded slices straddle page boundaries, with
/// duplicates kept (`dedup: false`) so zero gaps hit the decoder, and with
/// `scan_adj`'s early-exit counts included in the comparison.
#[test]
fn compressed_csr_matches_memory_on_arbitrary_graphs() {
    run_cases(32, |rng: &mut TestRng| {
        let (n, edges) = arb_graph(rng);
        let dedup = rng.bool();
        let page_size = [64usize, 128, 256][rng.range_usize(0, 3)];
        let base = GraphConfig { dedup, num_vertices: Some(n), ..GraphConfig::default() };
        let comp = GraphConfig {
            storage: havoq_graph::csr::CsrStorage::ExternalCompressed {
                profile: DeviceProfile::dram(),
                cache: PageCacheConfig {
                    page_size,
                    capacity_pages: 2,
                    shards: 1,
                    ..PageCacheConfig::default()
                },
            },
            ..base
        };
        let p = 1 + rng.range_usize(0, 2);
        let (edges_a, edges_b) = (edges.clone(), edges);
        let mem_view = CommWorld::run(p, move |ctx| {
            let g = DistGraph::build_replicated(ctx, &edges_a, PartitionStrategy::EdgeList, base);
            collect_adjacency_view(&g)
        });
        let comp_view = CommWorld::run(p, move |ctx| {
            let g = DistGraph::build_replicated(ctx, &edges_b, PartitionStrategy::EdgeList, comp);
            collect_adjacency_view(&g)
        });
        assert_eq!(comp_view, mem_view, "p={p} dedup={dedup} page={page_size}");
    });
}

/// Every observable of a rank's adjacency: slices, degrees, and early-exit
/// scan results for a few needles per vertex.
#[allow(clippy::type_complexity)]
fn collect_adjacency_view(g: &DistGraph) -> Vec<(u64, Vec<u64>, u64, Vec<(u64, Option<u64>)>)> {
    g.local_vertices()
        .map(|v| {
            let adj = g.with_adj(v, |a| a.to_vec());
            let scans = adj
                .iter()
                .copied()
                .chain([u64::MAX])
                .map(|needle| g.scan_adj(v, |t| t >= needle))
                .collect();
            (v.0, adj, g.local_out_degree(v), scans)
        })
        .collect()
}

/// The admission queue's scheduling invariants under arbitrary arrival
/// streams, batch capacities, backlog bounds, shed policies, deadlines
/// and service times, driven by the same event-fed loop `qps_serve` uses:
///
/// - the event clock never runs backwards;
/// - service is FIFO — served arrival timestamps are globally
///   non-decreasing (the pending queue is time-ordered and only ever
///   popped from the front, under either shed policy);
/// - every recorded latency is exactly queue wait plus batch service
///   (`(start_clock + service) − at_ns`), and shed queries record none;
/// - conservation at every quiescent point: offered == served + shed +
///   still-pending;
/// - `peak_backlog` equals the externally observed maximum and never
///   exceeds the configured bound.
#[test]
fn admission_queue_schedule_invariants_under_random_streams() {
    use havoq_core::batch::percentile_ns;
    run_cases(48, |rng: &mut TestRng| {
        let capacity = rng.range_usize(1, 7);
        let bounded = rng.bool();
        let backlog = bounded.then(|| rng.range_usize(1, 9));
        let policy = if rng.bool() { ShedPolicy::RejectNew } else { ShedPolicy::DropOldest };
        let mut aq = AdmissionQueue::new(capacity).with_shed_policy(policy);
        if let Some(b) = backlog {
            aq = aq.with_max_backlog(b);
        }

        let mut stream: Vec<Arrival> = Vec::new();
        let mut at = 0u64;
        for i in 0..rng.range_usize(0, 51) {
            at += rng.below(800);
            let mut a = Arrival::new(at, VertexId(i as u64));
            if rng.below(5) == 0 {
                a = a.with_deadline(at + rng.below(1500));
            }
            stream.push(a);
        }

        let mut next = 0usize;
        let mut observed_peak = 0usize;
        let mut served_ats: Vec<u64> = Vec::new();
        let mut expected_latencies: Vec<u64> = Vec::new();
        let mut last_clock = aq.clock_ns();
        loop {
            while next < stream.len() && stream[next].at_ns <= aq.clock_ns() {
                aq.offer(stream[next]);
                observed_peak = observed_peak.max(aq.pending_len());
                next += 1;
            }
            if aq.pending_len() == 0 {
                if next >= stream.len() {
                    break;
                }
                aq.offer(stream[next]);
                observed_peak = observed_peak.max(aq.pending_len());
                next += 1;
                continue;
            }
            let admitted: Vec<Arrival> = aq.start_batch().to_vec();
            let start_clock = aq.clock_ns();
            assert!(start_clock >= last_clock, "clock ran backwards at batch start");
            let service = if admitted.is_empty() { 0 } else { 1 + rng.below(600) };
            for pair in admitted.windows(2) {
                assert!(pair[0].at_ns <= pair[1].at_ns, "batch not in FIFO order");
            }
            for a in &admitted {
                assert!(a.at_ns <= start_clock, "admitted a query from the future");
                assert!(a.deadline_ns > start_clock, "admitted a dead-on-arrival query");
                served_ats.push(a.at_ns);
                expected_latencies.push(start_clock + service - a.at_ns);
            }
            aq.finish_batch(service);
            assert!(aq.clock_ns() >= start_clock, "clock ran backwards at batch finish");
            last_clock = aq.clock_ns();
            let served = aq.latencies_ns().len() as u64;
            assert_eq!(
                aq.offered(),
                served + aq.shed_total() + aq.pending_len() as u64,
                "conservation violated (policy {policy:?}, backlog {backlog:?})"
            );
        }

        for pair in served_ats.windows(2) {
            assert!(pair[0] <= pair[1], "service order not FIFO across batches");
        }
        assert_eq!(aq.latencies_ns(), expected_latencies.as_slice(), "latency != wait + service");
        assert_eq!(aq.peak_backlog(), observed_peak, "peak_backlog != observed maximum");
        if let Some(b) = backlog {
            assert!(aq.peak_backlog() <= b, "backlog bound exceeded");
        }
        assert_eq!(aq.offered(), stream.len() as u64, "offers lost");
        assert!(percentile_ns(aq.latencies_ns(), 100) >= percentile_ns(aq.latencies_ns(), 50));
    });
}

/// Without a backlog bound and without deadlines, the admission queue is
/// lossless: nothing is ever shed and every offered query is served with
/// a recorded latency.
#[test]
fn admission_queue_unbounded_is_lossless() {
    run_cases(24, |rng: &mut TestRng| {
        let mut aq = AdmissionQueue::new(rng.range_usize(1, 7));
        let mut at = 0u64;
        let stream: Vec<Arrival> = (0..rng.range_usize(1, 41))
            .map(|i| {
                at += rng.below(500);
                Arrival::new(at, VertexId(i as u64))
            })
            .collect();
        let mut next = 0usize;
        loop {
            while next < stream.len() && stream[next].at_ns <= aq.clock_ns() {
                assert!(aq.offer(stream[next]), "unbounded queue refused an offer");
                next += 1;
            }
            if aq.pending_len() == 0 {
                if next >= stream.len() {
                    break;
                }
                assert!(aq.offer(stream[next]), "unbounded queue refused an offer");
                next += 1;
                continue;
            }
            aq.start_batch();
            aq.finish_batch(1 + rng.below(400));
        }
        assert_eq!(aq.shed_total(), 0);
        assert_eq!(aq.latencies_ns().len(), stream.len());
        assert_eq!(aq.offered(), stream.len() as u64);
        assert_eq!(aq.pending_len(), 0);
    });
}
