//! Property-based tests over the core data-structure invariants: the
//! distributed sort, owner functions, CSR storage, page cache, and the
//! visitor algorithms against serial references on arbitrary graphs.

use proptest::prelude::*;

use havoq::prelude::*;
use havoq_core::algorithms::bfs::UNREACHED;
use havoq_graph::gen::permute::RandomPermutation;
use havoq_graph::sort::sort_edges_even;
use havoq_nvram::device::BlockDevice;

/// Arbitrary small symmetric graph: vertex count + undirected edge pairs.
fn arb_graph() -> impl Strategy<Value = (u64, Vec<Edge>)> {
    (2u64..60).prop_flat_map(|n| {
        let edge = (0..n, 0..n).prop_map(|(a, b)| Edge::new(a, b));
        proptest::collection::vec(edge, 0..200).prop_map(move |mut es| {
            let m = es.len();
            for i in 0..m {
                let e = es[i];
                if !e.is_self_loop() {
                    es.push(e.reversed());
                }
            }
            (n, es)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn permutation_is_a_bijection(n in 1u64..5000, seed in any::<u64>()) {
        let p = RandomPermutation::new(n, seed);
        let mut seen = vec![false; n as usize];
        for x in 0..n {
            let y = p.apply(x);
            prop_assert!(y < n);
            prop_assert!(!seen[y as usize]);
            seen[y as usize] = true;
        }
    }

    #[test]
    fn distributed_sort_equals_serial_sort(
        (n, edges) in arb_graph(),
        p in 1usize..6,
    ) {
        let _ = n;
        let sorted = CommWorld::run(p, |ctx| {
            let m = edges.len();
            let lo = m * ctx.rank() / p;
            let hi = m * (ctx.rank() + 1) / p;
            sort_edges_even(ctx, edges[lo..hi].to_vec())
        });
        let got: Vec<Edge> = sorted.into_iter().flatten().collect();
        let mut want = edges.clone();
        want.sort_unstable_by_key(|e| e.key());
        prop_assert_eq!(got, want);
    }

    #[test]
    fn owner_functions_tile_every_vertex(
        (n, edges) in arb_graph(),
        p in 1usize..6,
    ) {
        let checks = CommWorld::run(p, |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default().with_num_vertices(n),
            );
            let mut ok = true;
            for v in 0..n {
                let v = VertexId(v);
                let (mn, mx) = (g.min_owner(v), g.max_owner(v));
                ok &= mn <= mx && mx < p;
                // this rank holds v iff it is inside the owner chain
                ok &= g.is_local(v) == (mn..=mx).contains(&ctx.rank());
            }
            // masters are unique
            let masters: u64 = (0..n).filter(|&v| g.is_master(VertexId(v))).count() as u64;
            (ok, ctx.all_reduce_sum(masters))
        });
        for (ok, master_total) in checks {
            prop_assert!(ok);
            prop_assert_eq!(master_total, n);
        }
    }

    #[test]
    fn distributed_bfs_equals_serial_bfs(
        (n, edges) in arb_graph(),
        p in 1usize..6,
        source in 0u64..60,
        ghosts in 0usize..32,
    ) {
        let source = source % n;
        // serial reference
        let mut adj = vec![Vec::new(); n as usize];
        for e in &edges {
            if !e.is_self_loop() {
                adj[e.src as usize].push(e.dst);
            }
        }
        let mut want = vec![UNREACHED; n as usize];
        want[source as usize] = 0;
        let mut frontier = vec![source];
        let mut l = 0;
        while !frontier.is_empty() {
            l += 1;
            let mut next = Vec::new();
            for &v in &frontier {
                for &t in &adj[v as usize] {
                    if want[t as usize] == UNREACHED {
                        want[t as usize] = l;
                        next.push(t);
                    }
                }
            }
            frontier = next;
        }
        // distributed
        let pieces = CommWorld::run(p, |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default().with_num_vertices(n),
            );
            let cfg = BfsConfig::default().with_ghosts(ghosts);
            let r = bfs(ctx, &g, VertexId(source), &cfg);
            g.local_vertices()
                .filter(|&v| g.is_master(v))
                .map(|v| (v.0, r.local_state[g.local_index(v)].length))
                .collect::<Vec<_>>()
        });
        let mut got = vec![UNREACHED; n as usize];
        for (v, lvl) in pieces.into_iter().flatten() {
            got[v as usize] = lvl;
        }
        prop_assert_eq!(got, want);
    }

    #[test]
    fn replica_state_is_consistent_after_bfs(
        (n, edges) in arb_graph(),
        p in 2usize..6,
    ) {
        // after termination, every replica of a split vertex must agree
        // with its master (BFS updates are monotone and fully propagated)
        let pieces = CommWorld::run(p, |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default().with_num_vertices(n),
            );
            let r = bfs(ctx, &g, VertexId(0), &BfsConfig::default());
            g.local_vertices()
                .map(|v| (v.0, r.local_state[g.local_index(v)].length))
                .collect::<Vec<_>>()
        });
        let mut seen: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for (v, lvl) in pieces.into_iter().flatten() {
            if let Some(prev) = seen.insert(v, lvl) {
                prop_assert_eq!(prev, lvl, "replica disagreement at vertex {}", v);
            }
        }
    }

    #[test]
    fn distributed_kcore_equals_serial_peeling(
        (n, edges) in arb_graph(),
        p in 1usize..5,
        k in 1u64..6,
    ) {
        // serial peeling reference
        let mut adj = vec![Vec::new(); n as usize];
        for e in &edges {
            if !e.is_self_loop() {
                adj[e.src as usize].push(e.dst);
            }
        }
        for a in adj.iter_mut() {
            a.sort_unstable();
            a.dedup();
        }
        let mut deg: Vec<u64> = adj.iter().map(|a| a.len() as u64).collect();
        let mut alive = vec![true; n as usize];
        let mut stack: Vec<u64> = (0..n).filter(|&v| deg[v as usize] < k).collect();
        for &v in &stack {
            alive[v as usize] = false;
        }
        while let Some(v) = stack.pop() {
            for &t in &adj[v as usize] {
                if alive[t as usize] {
                    deg[t as usize] -= 1;
                    if deg[t as usize] < k {
                        alive[t as usize] = false;
                        stack.push(t);
                    }
                }
            }
        }
        let want: u64 = alive.iter().filter(|&&a| a).count() as u64;
        let got = CommWorld::run(p, |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default().with_num_vertices(n),
            );
            kcore(ctx, &g, k, &KCoreConfig::default()).alive_count
        });
        prop_assert!(got.iter().all(|&c| c == want), "{got:?} != {want}");
    }

    #[test]
    fn distributed_triangles_equal_serial_count(
        (n, edges) in arb_graph(),
        p in 1usize..5,
    ) {
        use std::collections::HashSet;
        let mut adj: Vec<HashSet<u64>> = vec![HashSet::new(); n as usize];
        for e in &edges {
            if !e.is_self_loop() {
                adj[e.src as usize].insert(e.dst);
                adj[e.dst as usize].insert(e.src);
            }
        }
        let mut want = 0u64;
        for a in 0..n {
            for &b in &adj[a as usize] {
                if b <= a { continue; }
                for &c in &adj[b as usize] {
                    if c > b && adj[a as usize].contains(&c) {
                        want += 1;
                    }
                }
            }
        }
        let got = CommWorld::run(p, |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default().with_num_vertices(n),
            );
            triangle_count(ctx, &g, &TriangleConfig::default()).triangles
        });
        prop_assert!(got.iter().all(|&t| t == want), "{got:?} != {want}");
    }

    #[test]
    fn edge_file_roundtrips(
        (n, edges) in arb_graph(),
        binary in any::<bool>(),
    ) {
        let _ = n;
        let dir = std::env::temp_dir().join(format!("havoq-prop-io-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("e-{binary}.dat"));
        if binary {
            havoq_graph::io::write_binary(&path, &edges).unwrap();
            prop_assert_eq!(havoq_graph::io::read_binary(&path).unwrap(), edges);
        } else {
            havoq_graph::io::write_text(&path, &edges).unwrap();
            prop_assert_eq!(havoq_graph::io::read_text(&path).unwrap(), edges);
        }
    }

    #[test]
    fn page_cache_matches_memory_model(
        ops in proptest::collection::vec(
            (0u64..2048, proptest::option::of(any::<u8>())), 1..200),
        pages in 1usize..8,
    ) {
        use std::sync::Arc;
        let dev = Arc::new(havoq_nvram::device::MemDevice::new());
        let cache = PageCache::new(
            dev as Arc<dyn BlockDevice>,
            PageCacheConfig { page_size: 64, capacity_pages: pages.max(2), shards: 2, ..PageCacheConfig::default() },
        );
        let mut model = vec![0u8; 2048 + 1];
        for (addr, write) in ops {
            match write {
                Some(v) => {
                    cache.write_at(addr, &[v]);
                    model[addr as usize] = v;
                }
                None => {
                    let mut b = [0u8; 1];
                    cache.read_at(addr, &mut b);
                    prop_assert_eq!(b[0], model[addr as usize]);
                }
            }
        }
        // final flush + raw device readback agrees with the model
        cache.flush();
        let mut all = vec![0u8; model.len()];
        cache.read_at(0, &mut all);
        prop_assert_eq!(all, model);
    }
}
