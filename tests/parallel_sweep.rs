//! The intra-rank parallelism correctness sweep (DESIGN.md §11's
//! acceptance test).
//!
//! `TraversalConfig::threads > 1` fans each rank's `visit` calls out to a
//! worker pool while the mailbox, ghost table, quiescence detector and
//! checkpoint protocol stay on the coordinator thread. Because every
//! algorithm in the suite is a monotone fixpoint computation (and the
//! counting algorithms merge exact per-visit deltas), the converged state
//! must not depend on the worker count any more than it depends on message
//! timing: BFS levels, SSSP distances, CC labels, k-core membership and
//! triangle counts must be bit-identical to the serial (`threads = 1`)
//! run — fault-free, under the chaos adversary, under frame corruption and
//! loss, and across checkpoint/crash/restore cycles.
//!
//! The suite runner and fingerprint (parents excluded, validated
//! structurally instead) are the shared sweep scaffolding in
//! `havoq::testing`; this file only owns the thread-count crossings.

use havoq::prelude::*;
use havoq::testing::{heavy_sweep_edges, run_suite, sweep_edges, SuiteOptions};
use havoq_comm::FaultConfig;
use havoq_util::testing::{sweep_seed_set, sweep_seeds};

/// Fault-free thread invariance: the whole suite at 2 and 4 workers per
/// rank is bit-identical to the serial run at every live rank count.
#[test]
fn parallel_suite_matches_serial_baseline() {
    let (edges, n) = sweep_edges();
    for p in [1usize, 2] {
        let baseline = run_suite(p, &edges, n, None, SuiteOptions::default());
        for threads in [2usize, 4] {
            let fp = run_suite(p, &edges, n, None, SuiteOptions::default().with_threads(threads));
            assert_eq!(
                fp.fingerprint, baseline.fingerprint,
                "p={p} threads={threads} diverged from serial"
            );
        }
    }
}

/// The acceptance sweep: 16 seeded chaos plans (delay + reorder +
/// duplicate + stall + slow-rank) crossed with threads ∈ {2, 4} at p ∈
/// {1, 2}; every run must reproduce the serial fault-free baseline
/// bit for bit.
#[test]
fn parallel_chaos_sweep_16_seeds_matches_serial() {
    let (edges, n) = sweep_edges();
    for p in [1usize, 2] {
        let baseline = run_suite(p, &edges, n, None, SuiteOptions::default());
        sweep_seeds(sweep_seed_set(16), |seed| {
            for threads in [2usize, 4] {
                let fp = run_suite(
                    p,
                    &edges,
                    n,
                    Some(FaultConfig::chaos(seed)),
                    SuiteOptions::default().with_threads(threads),
                );
                assert_eq!(
                    fp.fingerprint, baseline.fingerprint,
                    "seed {seed:#x} p={p} threads={threads} perturbed a converged result"
                );
            }
        });
    }
}

/// Corruption and loss stacked on the worker pool: the CRC + NACK +
/// retransmit repair path runs under the coordinator while workers churn,
/// and results must still match the serial fault-free baseline.
#[test]
fn parallel_lossy_sweep_matches_serial() {
    let (edges, n) = sweep_edges();
    let p = 2;
    let baseline = run_suite(p, &edges, n, None, SuiteOptions::default());
    sweep_seeds(sweep_seed_set(8), |seed| {
        let fp = run_suite(
            p,
            &edges,
            n,
            Some(FaultConfig::lossy(seed)),
            SuiteOptions::default().with_threads(4),
        );
        assert_eq!(
            fp.fingerprint, baseline.fingerprint,
            "seed {seed:#x} perturbed a converged result at threads=4"
        );
    });
}

/// Resume equivalence at `threads = 4`: crash each rank at each early
/// checkpoint epoch and demand results bit-identical to the serial
/// fault-free golden. Cuts happen only between worker-pool chunks, so a
/// parallel rank's snapshot must compose into the same recoverable whole a
/// serial rank's does.
#[test]
fn parallel_resume_equivalence_after_rank_crashes() {
    let gen = RmatGenerator::graph500(4);
    let edges = gen.symmetric_edges(7);
    let n = gen.num_vertices();
    let golden = run_suite(2, &edges, n, None, SuiteOptions::default());
    assert_eq!(
        (golden.restart.crashes, golden.restart.restores),
        (0, 0),
        "fault-free golden must not crash"
    );
    let mut total_crashes = 0u64;
    let mut total_restores = 0u64;
    for victim in 0..2usize {
        for epoch in 1..=2u64 {
            let faults = FaultConfig::quiet(11).with_forced_crash(victim, epoch);
            let got = run_suite(
                2,
                &edges,
                n,
                Some(faults),
                SuiteOptions::default().with_threads(4).with_checkpoint_every(1),
            );
            assert_eq!(
                got.fingerprint, golden.fingerprint,
                "victim={victim} epoch={epoch}: resumed threads=4 run diverged"
            );
            total_crashes += got.restart.crashes;
            total_restores += got.restart.restores;
        }
    }
    assert!(total_crashes > 0, "crash sweep never tore an epoch");
    assert!(total_restores >= total_crashes, "every crash must trigger a world-wide restore");
}

/// The heavyweight sweep for the CI parallel-chaos job
/// (`--include-ignored`, release): 16 chaos seeds at a deliberately
/// awkward rank count, threads = 4.
#[test]
#[ignore = "heavy: run via the CI parallel-chaos job or --include-ignored"]
fn parallel_chaos_sweep_heavy_seven_ranks() {
    let (edges, n) = heavy_sweep_edges();
    let p = 7;
    let baseline = run_suite(p, &edges, n, None, SuiteOptions::default());
    sweep_seeds(sweep_seed_set(16), |seed| {
        let fp = run_suite(
            p,
            &edges,
            n,
            Some(FaultConfig::chaos(seed)),
            SuiteOptions::default().with_threads(4),
        );
        assert_eq!(
            fp.fingerprint, baseline.fingerprint,
            "seed {seed:#x} perturbed a converged result at p={p}"
        );
    });
}

/// The parallel traversal hammer (page_cache_hammer's sibling): an
/// 8-worker pool per rank over *semi-external* adjacency storage, so all
/// 16 workers hammer the shared page cache concurrently while the lossy
/// adversary corrupts and drops frames under the coordinator. Results
/// must match the serial in-memory baseline bit for bit.
#[test]
#[ignore = "heavy: run via the CI parallel-chaos job or --include-ignored"]
fn parallel_hammer_threads_eight_external_lossy() {
    let (edges, n) = heavy_sweep_edges();
    let p = 2;
    let baseline = run_suite(p, &edges, n, None, SuiteOptions::default());
    let external = GraphConfig::external(
        DeviceProfile::fusion_io(),
        PageCacheConfig {
            page_size: 4096,
            capacity_pages: 64, // tight budget: constant eviction pressure
            shards: 4,
            readahead_pages: 4,
            ..PageCacheConfig::default()
        },
    );
    sweep_seeds(sweep_seed_set(4), |seed| {
        let fp = run_suite(
            p,
            &edges,
            n,
            Some(FaultConfig::lossy(seed)),
            SuiteOptions::default().with_threads(8).with_storage(external),
        );
        assert_eq!(
            fp.fingerprint, baseline.fingerprint,
            "seed {seed:#x} perturbed the external-memory hammer"
        );
    });
}
