//! The intra-rank parallelism correctness sweep (DESIGN.md §11's
//! acceptance test).
//!
//! `TraversalConfig::threads > 1` fans each rank's `visit` calls out to a
//! worker pool while the mailbox, ghost table, quiescence detector and
//! checkpoint protocol stay on the coordinator thread. Because every
//! algorithm in the suite is a monotone fixpoint computation (and the
//! counting algorithms merge exact per-visit deltas), the converged state
//! must not depend on the worker count any more than it depends on message
//! timing: BFS levels, SSSP distances, CC labels, k-core membership and
//! triangle counts must be bit-identical to the serial (`threads = 1`)
//! run — fault-free, under the chaos adversary, under frame corruption and
//! loss, and across checkpoint/crash/restore cycles.
//!
//! As in `fault_sweep`, BFS/SSSP *parents* are excluded from the
//! fingerprint (first-arrival-wins makes them schedule-dependent even
//! serially) and are validated structurally with `validate_bfs` instead.

use havoq::prelude::*;
use havoq_comm::FaultConfig;
use havoq_core::algorithms::cc::{connected_components, CcConfig};
use havoq_core::algorithms::kcore::{kcore, KCoreConfig};
use havoq_core::algorithms::sssp::{sssp, SsspConfig};
use havoq_core::CheckpointSpec;
use havoq_util::testing::{sweep_seed_set, sweep_seeds};

/// Schedule- and thread-count-independent results of the whole algorithm
/// suite, with vertex state in canonical (vertex-id) order.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Fingerprint {
    bfs_visited: u64,
    bfs_traversed_edges: u64,
    bfs_max_level: u64,
    bfs_levels: Vec<(u64, u64)>,
    cc_components: u64,
    cc_labels: Vec<(u64, u64)>,
    kcore_alive: u64,
    kcore_state: Vec<(u64, bool, u64)>,
    sssp_visited: u64,
    sssp_max_distance: u64,
    sssp_distances: Vec<(u64, u64)>,
    triangles: u64,
}

/// Gather one `u64` of state per master vertex into canonical order.
fn gather_state(
    ctx: &havoq_comm::RankCtx,
    g: &DistGraph,
    mut f: impl FnMut(usize) -> u64,
) -> Vec<(u64, u64)> {
    let local: Vec<(u64, u64)> = g
        .local_vertices()
        .filter(|&v| g.is_master(v))
        .map(|v| (v.0, f(g.local_index(v))))
        .collect();
    let mut all: Vec<(u64, u64)> = ctx.all_gather(local).into_iter().flatten().collect();
    all.sort_unstable();
    all
}

/// Global sent == received for one traversal: the coordinator's absorb
/// pass must account for every worker-staged push before quiescence fires.
fn assert_conserved(ctx: &havoq_comm::RankCtx, what: &str, s: &TraversalStats) {
    let sent = ctx.all_reduce_sum(s.payload_sent);
    let recv = ctx.all_reduce_sum(s.payload_received);
    assert_eq!(sent, recv, "{what}: quiescence fired with {sent} sent != {recv} received");
}

/// Run the full suite on `p` ranks with `threads` workers per rank over
/// the given graph storage, returning the fingerprint. Panics if BFS
/// validation or payload conservation fails on any traversal.
fn run_suite_with_storage(
    p: usize,
    threads: usize,
    edges: &[Edge],
    storage: GraphConfig,
    faults: Option<FaultConfig>,
) -> Fingerprint {
    let traversal = TraversalConfig::default().with_threads(threads);
    let mut out = CommWorld::run_with_faults(p, faults, |ctx| {
        let g = DistGraph::build_replicated(ctx, edges, PartitionStrategy::EdgeList, storage);

        let bcfg = BfsConfig { traversal, ..Default::default() };
        let b = bfs(ctx, &g, VertexId(0), &bcfg);
        assert_conserved(ctx, "bfs", &b.stats);
        let report = validate_bfs(ctx, &g, VertexId(0), &b.local_state);
        assert!(report.is_valid(), "bfs parents/levels invalid: {report:?}");

        let c = connected_components(ctx, &g, &CcConfig { traversal, ..Default::default() });
        assert_conserved(ctx, "cc", &c.stats);

        let k = kcore(ctx, &g, 3, &KCoreConfig { traversal, ..Default::default() });
        assert_conserved(ctx, "kcore", &k.stats);

        let s = sssp(ctx, &g, VertexId(0), &SsspConfig { traversal, ..Default::default() });
        assert_conserved(ctx, "sssp", &s.stats);

        let t = triangle_count(ctx, &g, &TriangleConfig { traversal, ..Default::default() });
        assert_conserved(ctx, "triangle", &t.stats);

        Fingerprint {
            bfs_visited: b.visited_count,
            bfs_traversed_edges: b.traversed_edges,
            bfs_max_level: b.max_level,
            bfs_levels: gather_state(ctx, &g, |li| b.local_state[li].length),
            cc_components: c.num_components,
            cc_labels: gather_state(ctx, &g, |li| c.local_state[li].component),
            kcore_alive: k.alive_count,
            kcore_state: {
                let alive = gather_state(ctx, &g, |li| k.local_state[li].alive as u64);
                let budget = gather_state(ctx, &g, |li| k.local_state[li].kcore);
                alive.into_iter().zip(budget).map(|((v, a), (_, b))| (v, a == 1, b)).collect()
            },
            sssp_visited: s.visited_count,
            sssp_max_distance: s.max_distance,
            sssp_distances: gather_state(ctx, &g, |li| s.local_state[li].distance),
            triangles: t.triangles,
        }
    });
    let fp0 = out.remove(0);
    for fp in &out {
        assert_eq!(*fp, fp0, "ranks disagree on the gathered fingerprint");
    }
    fp0
}

fn run_suite(
    p: usize,
    threads: usize,
    edges: &[Edge],
    n: u64,
    faults: Option<FaultConfig>,
) -> Fingerprint {
    run_suite_with_storage(p, threads, edges, GraphConfig::default().with_num_vertices(n), faults)
}

fn sweep_edges() -> (Vec<Edge>, u64) {
    let gen = RmatGenerator::graph500(7);
    (gen.symmetric_edges(42), gen.num_vertices())
}

/// Fault-free thread invariance: the whole suite at 2 and 4 workers per
/// rank is bit-identical to the serial run at every live rank count.
#[test]
fn parallel_suite_matches_serial_baseline() {
    let (edges, n) = sweep_edges();
    for p in [1usize, 2] {
        let baseline = run_suite(p, 1, &edges, n, None);
        for threads in [2usize, 4] {
            let fp = run_suite(p, threads, &edges, n, None);
            assert_eq!(fp, baseline, "p={p} threads={threads} diverged from serial");
        }
    }
}

/// The acceptance sweep: 16 seeded chaos plans (delay + reorder +
/// duplicate + stall + slow-rank) crossed with threads ∈ {2, 4} at p ∈
/// {1, 2}; every run must reproduce the serial fault-free baseline
/// bit for bit.
#[test]
fn parallel_chaos_sweep_16_seeds_matches_serial() {
    let (edges, n) = sweep_edges();
    for p in [1usize, 2] {
        let baseline = run_suite(p, 1, &edges, n, None);
        sweep_seeds(sweep_seed_set(16), |seed| {
            for threads in [2usize, 4] {
                let fp = run_suite(p, threads, &edges, n, Some(FaultConfig::chaos(seed)));
                assert_eq!(
                    fp, baseline,
                    "seed {seed:#x} p={p} threads={threads} perturbed a converged result"
                );
            }
        });
    }
}

/// Corruption and loss stacked on the worker pool: the CRC + NACK +
/// retransmit repair path runs under the coordinator while workers churn,
/// and results must still match the serial fault-free baseline.
#[test]
fn parallel_lossy_sweep_matches_serial() {
    let (edges, n) = sweep_edges();
    let p = 2;
    let baseline = run_suite(p, 1, &edges, n, None);
    sweep_seeds(sweep_seed_set(8), |seed| {
        let fp = run_suite(p, 4, &edges, n, Some(FaultConfig::lossy(seed)));
        assert_eq!(fp, baseline, "seed {seed:#x} perturbed a converged result at threads=4");
    });
}

/// Resume equivalence at `threads = 4`: crash each rank at each early
/// checkpoint epoch and demand results bit-identical to the serial
/// fault-free golden. Cuts happen only between worker-pool chunks, so a
/// parallel rank's snapshot must compose into the same recoverable whole a
/// serial rank's does.
#[test]
fn parallel_resume_equivalence_after_rank_crashes() {
    let gen = RmatGenerator::graph500(4);
    let edges = gen.symmetric_edges(7);
    let n = gen.num_vertices();
    let golden = run_ck(2, 1, &edges, n, None, None);
    assert_eq!((golden.1, golden.2), (0, 0), "fault-free golden must not crash");
    let mut total_crashes = 0u64;
    let mut total_restores = 0u64;
    for victim in 0..2usize {
        for epoch in 1..=2u64 {
            let faults = FaultConfig::quiet(11).with_forced_crash(victim, epoch);
            let got = run_ck(2, 4, &edges, n, Some(1), Some(faults));
            assert_eq!(
                got.0, golden.0,
                "victim={victim} epoch={epoch}: resumed threads=4 run diverged"
            );
            total_crashes += got.1;
            total_restores += got.2;
        }
    }
    assert!(total_crashes > 0, "crash sweep never tore an epoch");
    assert!(total_restores >= total_crashes, "every crash must trigger a world-wide restore");
}

/// Checkpointed suite runner for the resume-equivalence test: returns
/// (fingerprint, world crashes, world restores).
fn run_ck(
    p: usize,
    threads: usize,
    edges: &[Edge],
    n: u64,
    every: Option<u64>,
    faults: Option<FaultConfig>,
) -> (Fingerprint, u64, u64) {
    let traversal = TraversalConfig::default().with_threads(threads);
    let spec = every.map(|e| CheckpointSpec::default().with_every(e));
    let mut out = CommWorld::run_with_faults(p, faults, |ctx| {
        let g = DistGraph::build_replicated(
            ctx,
            edges,
            PartitionStrategy::EdgeList,
            GraphConfig::default().with_num_vertices(n),
        );
        let mut crashes = 0u64;
        let mut restores = 0u64;
        let mut track = |s: &TraversalStats| {
            crashes += s.crashes;
            restores += s.restores;
        };

        let b = bfs(ctx, &g, VertexId(0), &BfsConfig { traversal, checkpoint: spec });
        track(&b.stats);
        let report = validate_bfs(ctx, &g, VertexId(0), &b.local_state);
        assert!(report.is_valid(), "bfs parents/levels invalid after restart: {report:?}");

        let c = connected_components(ctx, &g, &CcConfig { traversal, checkpoint: spec });
        track(&c.stats);

        let k = kcore(ctx, &g, 3, &KCoreConfig { traversal, checkpoint: spec });
        track(&k.stats);

        let s = sssp(
            ctx,
            &g,
            VertexId(0),
            &SsspConfig { traversal, checkpoint: spec, ..Default::default() },
        );
        track(&s.stats);

        let t = triangle_count(ctx, &g, &TriangleConfig { traversal, checkpoint: spec });
        track(&t.stats);

        let fp = Fingerprint {
            bfs_visited: b.visited_count,
            bfs_traversed_edges: b.traversed_edges,
            bfs_max_level: b.max_level,
            bfs_levels: gather_state(ctx, &g, |li| b.local_state[li].length),
            cc_components: c.num_components,
            cc_labels: gather_state(ctx, &g, |li| c.local_state[li].component),
            kcore_alive: k.alive_count,
            kcore_state: {
                let alive = gather_state(ctx, &g, |li| k.local_state[li].alive as u64);
                let budget = gather_state(ctx, &g, |li| k.local_state[li].kcore);
                alive.into_iter().zip(budget).map(|((v, a), (_, b))| (v, a == 1, b)).collect()
            },
            sssp_visited: s.visited_count,
            sssp_max_distance: s.max_distance,
            sssp_distances: gather_state(ctx, &g, |li| s.local_state[li].distance),
            triangles: t.triangles,
        };
        (fp, ctx.all_reduce_sum(crashes), ctx.all_reduce_sum(restores))
    });
    let first = out.remove(0);
    for o in &out {
        assert_eq!(o.0, first.0, "ranks disagree on gathered results");
    }
    first
}

/// The heavyweight sweep for the CI parallel-chaos job
/// (`--include-ignored`, release): 16 chaos seeds at a deliberately
/// awkward rank count, threads = 4.
#[test]
#[ignore = "heavy: run via the CI parallel-chaos job or --include-ignored"]
fn parallel_chaos_sweep_heavy_seven_ranks() {
    let gen = RmatGenerator::graph500(8);
    let edges = gen.symmetric_edges(1234);
    let n = gen.num_vertices();
    let p = 7;
    let baseline = run_suite(p, 1, &edges, n, None);
    sweep_seeds(sweep_seed_set(16), |seed| {
        let fp = run_suite(p, 4, &edges, n, Some(FaultConfig::chaos(seed)));
        assert_eq!(fp, baseline, "seed {seed:#x} perturbed a converged result at p={p}");
    });
}

/// The parallel traversal hammer (page_cache_hammer's sibling): an
/// 8-worker pool per rank over *semi-external* adjacency storage, so all
/// 16 workers hammer the shared page cache concurrently while the lossy
/// adversary corrupts and drops frames under the coordinator. Results
/// must match the serial in-memory baseline bit for bit.
#[test]
#[ignore = "heavy: run via the CI parallel-chaos job or --include-ignored"]
fn parallel_hammer_threads_eight_external_lossy() {
    let gen = RmatGenerator::graph500(8);
    let edges = gen.symmetric_edges(1234);
    let n = gen.num_vertices();
    let p = 2;
    let baseline = run_suite(p, 1, &edges, n, None);
    let external = GraphConfig::external(
        DeviceProfile::fusion_io(),
        PageCacheConfig {
            page_size: 4096,
            capacity_pages: 64, // tight budget: constant eviction pressure
            shards: 4,
            readahead_pages: 4,
            ..PageCacheConfig::default()
        },
    )
    .with_num_vertices(n);
    sweep_seeds(sweep_seed_set(4), |seed| {
        let fp = run_suite_with_storage(p, 8, &edges, external, Some(FaultConfig::lossy(seed)));
        assert_eq!(fp, baseline, "seed {seed:#x} perturbed the external-memory hammer");
    });
}
