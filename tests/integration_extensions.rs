//! Integration coverage for the extension APIs through the public facade:
//! Graph500 validation, core-number decomposition, wedge sampling, and the
//! file-I/O + traversal pipeline.

use havoq::prelude::*;
use havoq_core::queue::TraversalConfig;
use havoq_graph::io;

#[test]
fn validated_bfs_through_prelude() {
    let edges = RmatGenerator::graph500(8).symmetric_edges(5);
    let reports = CommWorld::run(4, |ctx| {
        let g = DistGraph::build_replicated(
            ctx,
            &edges,
            PartitionStrategy::EdgeList,
            GraphConfig::default(),
        );
        let r = bfs(ctx, &g, VertexId(0), &BfsConfig::default());
        validate_bfs(ctx, &g, VertexId(0), &r.local_state)
    });
    assert!(reports.iter().all(|r| r.is_valid()));
}

#[test]
fn decomposition_bounds_individual_cores() {
    // the k-core of any k <= max_core must equal the set of vertices with
    // core number >= k
    let edges = PaGenerator::new(400, 5).symmetric_edges(3);
    let consistent = CommWorld::run(3, |ctx| {
        let g = DistGraph::build_replicated(
            ctx,
            &edges,
            PartitionStrategy::EdgeList,
            GraphConfig::default(),
        );
        let d = kcore_decomposition(ctx, &g, &KCoreConfig::default());
        let mut ok = true;
        for k in [1u64, 2, d.max_core] {
            let r = kcore(ctx, &g, k, &KCoreConfig::default());
            let from_decomp: u64 = g
                .local_vertices()
                .filter(|&v| g.is_master(v) && d.core_numbers[g.local_index(v)] >= k)
                .count() as u64;
            ok &= ctx.all_reduce_sum(from_decomp) == r.alive_count;
        }
        ok
    });
    assert!(consistent.iter().all(|&b| b));
}

#[test]
fn wedge_estimate_brackets_exact_count() {
    let edges = SmallWorldGenerator::new(512, 8).with_rewire(0.05).symmetric_edges(4);
    let out = CommWorld::run(4, |ctx| {
        let g = DistGraph::build_replicated(
            ctx,
            &edges,
            PartitionStrategy::EdgeList,
            GraphConfig::default(),
        );
        let exact = triangle_count(ctx, &g, &TriangleConfig::default()).triangles;
        let est = approx_clustering(ctx, &g, 50_000, 11, &TraversalConfig::default());
        (exact, est.triangles_estimate)
    });
    let (exact, est) = out[0];
    let rel = (est - exact as f64).abs() / exact as f64;
    assert!(rel < 0.1, "estimate {est:.0} vs exact {exact}: rel {rel:.3}");
}

#[test]
fn file_roundtrip_preserves_traversal_results() {
    let gen = RmatGenerator::graph500(8);
    let edges = gen.symmetric_edges(77);
    let dir = std::env::temp_dir().join(format!("havoq-int-io-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("g.bin");
    io::write_binary(&path, &edges).unwrap();

    let direct = CommWorld::run(3, |ctx| {
        let g = DistGraph::build_replicated(
            ctx,
            &edges,
            PartitionStrategy::EdgeList,
            GraphConfig::default(),
        );
        bfs(ctx, &g, VertexId(0), &BfsConfig::default()).visited_count
    });
    let total = io::binary_edge_count(&path).unwrap();
    let path_ref = &path;
    let from_file = CommWorld::run(3, |ctx| {
        let lo = total * ctx.rank() as u64 / ctx.size() as u64;
        let hi = total * (ctx.rank() as u64 + 1) / ctx.size() as u64;
        let local = io::read_binary_slice(path_ref, lo, hi - lo).unwrap();
        let g = DistGraph::build(ctx, local, PartitionStrategy::EdgeList, GraphConfig::default());
        bfs(ctx, &g, VertexId(0), &BfsConfig::default()).visited_count
    });
    assert_eq!(direct[0], from_file[0]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn readahead_is_result_neutral_and_reduces_device_reads() {
    let gen = RmatGenerator::graph500(9);
    let edges = gen.symmetric_edges(13);
    // a source that certainly has edges (label permutation can isolate 0)
    let source = edges[0].src;
    let run = |readahead: usize| {
        let out = CommWorld::run(2, |ctx| {
            let cfg = GraphConfig::external(
                DeviceProfile::dram(),
                PageCacheConfig {
                    page_size: 1024,
                    capacity_pages: 16,
                    shards: 4,
                    readahead_pages: readahead,
                    ..PageCacheConfig::default()
                },
            );
            let g = DistGraph::build_replicated(ctx, &edges, PartitionStrategy::EdgeList, cfg);
            let r = bfs(ctx, &g, VertexId(source), &BfsConfig::default());
            let cache = g.csr().cache_stats().unwrap();
            (
                r.visited_count,
                r.traversed_edges,
                ctx.all_reduce_sum(cache.misses),
                ctx.all_reduce_sum(cache.prefetches),
            )
        });
        out[0]
    };
    let (v0, t0, misses0, pf0) = run(0);
    let (v8, t8, misses8, pf8) = run(8);
    assert_eq!((v0, t0), (v8, t8), "readahead must not change results");
    assert_eq!(pf0, 0);
    assert!(pf8 > 0, "readahead must actually prefetch");
    assert!(
        misses8 < misses0,
        "prefetched pages should convert demand misses: {misses8} vs {misses0}"
    );
}
