//! The lifecycle-determinism belt (DESIGN.md §15's acceptance test).
//!
//! Every query admitted to the lifecycle control plane must terminate in
//! exactly one of `{Complete, DeadlineExceeded, Cancelled, Aborted}` with
//! a well-formed (possibly partial) result, and for every outcome class
//! except `Aborted` the full per-query record — outcome, levels digest of
//! the partial frontier, aggregates, all-reduced ledger sums — must be
//! bit-identical across ranks, thread counts {1, 4}, storage backends and
//! fault plans (including 16-seed lossy chaos). Across *rank counts* the
//! replication-independent view (everything except `executed_global`,
//! which deliberately counts per-copy claim events) must agree too.
//!
//! `Aborted` asserts a weaker, different promise: a hard-stalled rank
//! (a receive channel wedged forever, the fault no retransmit can fix)
//! must yield a world-agreed abort on every rank without hanging — the
//! stall watchdog converts "this traversal will never finish" into a
//! clean terminal outcome on a single detector wave.

use havoq::prelude::*;
use havoq::testing::sweep_edges;
use havoq_comm::FaultConfig;
use havoq_nvram::device::DeviceProfile;
use havoq_util::testing::{sweep_seed_set, sweep_seeds};

/// The replication-independent slice of a [`QueryLifecycle`]: identical
/// across rank counts as well as ranks/threads/storages/faults.
/// (`executed_global` is excluded — it counts one claim per vertex
/// *copy*, so it scales with the replication factor; it is still asserted
/// bit-identical across ranks, threads and storages at a fixed rank
/// count via the full-record comparisons.)
type View = Vec<(QueryOutcome, u64, u64, u64, u64, u64)>;

fn view(qs: &[QueryLifecycle]) -> View {
    qs.iter()
        .map(|q| {
            (
                q.outcome,
                q.levels_digest,
                q.visited_count,
                q.traversed_edges,
                q.max_level,
                q.pushed_global,
            )
        })
        .collect()
}

fn sweep_cache() -> havoq_nvram::cache::PageCacheConfig {
    havoq_nvram::cache::PageCacheConfig {
        page_size: 512,
        capacity_pages: 16,
        shards: 2,
        ..Default::default()
    }
}

fn storage_matrix() -> Vec<(&'static str, GraphConfig)> {
    vec![
        ("mem", GraphConfig::default()),
        ("ext-comp", GraphConfig::external_compressed(DeviceProfile::dram(), sweep_cache())),
    ]
}

/// One lifecycle scenario: budgets plus a cancel schedule.
#[derive(Clone, Copy)]
struct Scenario {
    label: &'static str,
    max_rounds: Option<u64>,
    max_inspected: Option<u64>,
    cancels: &'static [(usize, u64)],
}

const SCENARIOS: [Scenario; 5] = [
    Scenario { label: "unbudgeted", max_rounds: None, max_inspected: None, cancels: &[] },
    Scenario { label: "round-budget", max_rounds: Some(3), max_inspected: None, cancels: &[] },
    Scenario { label: "edge-budget", max_rounds: None, max_inspected: Some(400), cancels: &[] },
    Scenario { label: "cancel", max_rounds: None, max_inspected: None, cancels: &[(1, 1), (3, 0)] },
    Scenario { label: "mixed", max_rounds: Some(4), max_inspected: Some(900), cancels: &[(2, 1)] },
];

/// Run one scenario; returns every rank's full result so callers can
/// assert cross-rank agreement directly.
fn lifecycle_run(
    p: usize,
    threads: usize,
    storage: GraphConfig,
    faults: Option<FaultConfig>,
    sc: Scenario,
) -> Vec<LifecycleBfsResult> {
    let (edges, n) = sweep_edges();
    CommWorld::run_with_faults(p, faults, move |ctx| {
        let g = DistGraph::build_replicated(
            ctx,
            &edges,
            PartitionStrategy::EdgeList,
            storage.with_num_vertices(n),
        );
        let sources: Vec<VertexId> = (0..8).map(VertexId).collect();
        let mut cfg = BatchConfig::default().with_threads(threads);
        if let Some(r) = sc.max_rounds {
            cfg = cfg.with_max_rounds(r);
        }
        if let Some(e) = sc.max_inspected {
            cfg = cfg.with_max_inspected(e);
        }
        bfs_batch_lifecycle::<8>(ctx, &g, &sources, &cfg, sc.cancels)
    })
}

/// Fault-free determinism grid: every scenario × p ∈ {1, 2} × threads ∈
/// {1, 4} × storage ∈ {mem, ext-comp} answers with one bit-identical
/// replication-independent view, full records agree across ranks and
/// threads at each rank count, and outcomes land only in the expected
/// classes.
#[test]
fn lifecycle_outcomes_deterministic_across_grid() {
    for sc in SCENARIOS {
        let mut golden: Option<View> = None;
        for p in [1usize, 2] {
            let mut full: Option<Vec<QueryLifecycle>> = None;
            for threads in [1usize, 4] {
                for (label, storage) in storage_matrix() {
                    let runs = lifecycle_run(p, threads, storage, None, sc);
                    for r in &runs {
                        assert!(!r.aborted, "{}: fault-free run aborted", sc.label);
                        match &full {
                            None => full = Some(r.queries.clone()),
                            Some(want) => assert_eq!(
                                &r.queries, want,
                                "{}: full records diverged at p={p} threads={threads} \
                                 storage={label}",
                                sc.label
                            ),
                        }
                        match &golden {
                            None => golden = Some(view(&r.queries)),
                            Some(want) => assert_eq!(
                                &view(&r.queries),
                                want,
                                "{}: view diverged at p={p} threads={threads} storage={label}",
                                sc.label
                            ),
                        }
                        for (qi, q) in r.queries.iter().enumerate() {
                            let expected = match sc.label {
                                "unbudgeted" => q.outcome == QueryOutcome::Complete,
                                "cancel" => {
                                    q.outcome == QueryOutcome::Complete
                                        || q.outcome == QueryOutcome::Cancelled
                                }
                                _ => q.outcome != QueryOutcome::Aborted,
                            };
                            assert!(expected, "{}: query {qi} landed in {:?}", sc.label, q.outcome);
                            assert!(q.visited_count >= 1, "every source reaches itself");
                        }
                    }
                }
            }
        }
    }
    // the cancel scenario really cancelled (not everything completed
    // before the cancel landed)
    let runs = lifecycle_run(2, 1, GraphConfig::default(), None, SCENARIOS[3]);
    assert!(runs[0].queries.iter().any(|q| q.outcome == QueryOutcome::Cancelled));
}

/// `Complete` means complete: an unbudgeted lifecycle run must agree with
/// `bfs_batch` (the fixed-point engine the equivalence belt already pins
/// to serial BFS) on every per-query aggregate.
#[test]
fn lifecycle_complete_matches_bfs_batch() {
    let (edges, n) = sweep_edges();
    let reference = CommWorld::run(2, move |ctx| {
        let g = DistGraph::build_replicated(
            ctx,
            &edges,
            PartitionStrategy::EdgeList,
            GraphConfig::default().with_num_vertices(n),
        );
        let sources: Vec<VertexId> = (0..8).map(VertexId).collect();
        bfs_batch::<8>(ctx, &g, &sources, &BatchConfig::default()).per_query.clone()
    })
    .remove(0);
    let runs = lifecycle_run(2, 4, GraphConfig::default(), None, SCENARIOS[0]);
    for (qi, q) in runs[0].queries.iter().enumerate() {
        assert_eq!(q.outcome, QueryOutcome::Complete);
        assert_eq!(q.visited_count, reference[qi].visited_count, "query {qi} visited");
        assert_eq!(q.traversed_edges, reference[qi].traversed_edges, "query {qi} traversed");
        assert_eq!(q.max_level, reference[qi].max_level, "query {qi} depth");
    }
}

/// The chaos acceptance sweep: seeded lossy and chaos adversaries must
/// not perturb any lifecycle verdict — same outcomes, same partial
/// digests, same ledger sums as the fault-free golden run, for budgeted,
/// cancelled and mixed scenarios alike.
#[test]
fn lifecycle_chaos_and_lossy_seeds_match_fault_free() {
    let p = 2;
    for sc in [SCENARIOS[1], SCENARIOS[3], SCENARIOS[4]] {
        let golden = view(&lifecycle_run(p, 4, GraphConfig::default(), None, sc)[0].queries);
        let golden_full = lifecycle_run(p, 4, GraphConfig::default(), None, sc)[0].queries.clone();
        sweep_seeds(sweep_seed_set(4), |seed| {
            for faults in [FaultConfig::chaos(seed), FaultConfig::lossy(seed)] {
                let runs = lifecycle_run(p, 4, GraphConfig::default(), Some(faults), sc);
                for r in &runs {
                    assert!(!r.aborted, "{}: transient faults must never abort", sc.label);
                    assert_eq!(
                        r.queries, golden_full,
                        "{}: seed {seed:#x} perturbed a lifecycle verdict",
                        sc.label
                    );
                    assert_eq!(view(&r.queries), golden, "{}: view diverged", sc.label);
                }
            }
        });
    }
}

/// The heavyweight CI sweep (`--include-ignored`, release): the full
/// 16-seed lossy chaos belt over every scenario.
#[test]
#[ignore = "heavy: run via the CI serving-robustness job or --include-ignored"]
fn lifecycle_lossy_chaos_sweep_16_seeds() {
    let p = 2;
    for sc in SCENARIOS {
        let golden = lifecycle_run(p, 4, GraphConfig::default(), None, sc)[0].queries.clone();
        sweep_seeds(sweep_seed_set(16), |seed| {
            for faults in [FaultConfig::chaos(seed), FaultConfig::lossy(seed)] {
                let runs = lifecycle_run(p, 4, GraphConfig::default(), Some(faults), sc);
                for r in &runs {
                    assert!(!r.aborted);
                    assert_eq!(
                        r.queries, golden,
                        "{}: seed {seed:#x} perturbed a lifecycle verdict",
                        sc.label
                    );
                }
            }
        });
    }
}

/// The stall watchdog: wedge one rank's receive side forever (the fault
/// no retransmit can repair) and demand a clean, world-agreed `Aborted`
/// on every rank — the run *returns* on all ranks (no hang), every rank
/// reports `aborted`, the terminal outcomes agree bit-for-bit across
/// ranks, and at least one query was actually abandoned.
///
/// Hard stalls pair with non-lossy plans only: a lossy plan's NACK and
/// retransmit machinery would spin against the wedged channel and panic
/// at its repair-attempt horizon before the (deliberately patient)
/// watchdog default fires. The watchdog threshold here is small because
/// the plan is clean — no transient imbalance exists to tolerate.
#[test]
fn hard_stall_aborts_on_all_ranks_without_hanging() {
    let (edges, n) = sweep_edges();
    for victim in [0usize, 1] {
        for threads in [1usize, 4] {
            let edges = edges.clone();
            let faults = FaultConfig::quiet(0x5_7A11 + victim as u64).with_hard_stall(victim, 2);
            let runs = CommWorld::run_with_faults(2, Some(faults), move |ctx| {
                let g = DistGraph::build_replicated(
                    ctx,
                    &edges,
                    PartitionStrategy::EdgeList,
                    GraphConfig::default().with_num_vertices(n),
                );
                let sources: Vec<VertexId> = (0..8).map(VertexId).collect();
                let cfg = BatchConfig::default().with_threads(threads).with_watchdog(256);
                bfs_batch_lifecycle::<8>(ctx, &g, &sources, &cfg, &[])
            });
            assert_eq!(runs.len(), 2, "both ranks returned");
            for r in &runs {
                assert!(r.aborted, "victim={victim} threads={threads}: watchdog never fired");
            }
            assert_eq!(
                runs[0].queries, runs[1].queries,
                "victim={victim} threads={threads}: ranks disagree on terminal outcomes"
            );
            assert!(
                runs[0].queries.iter().any(|q| q.outcome == QueryOutcome::Aborted),
                "victim={victim} threads={threads}: a wedged traversal must abandon something"
            );
            for q in &runs[0].queries {
                assert!(
                    q.outcome == QueryOutcome::Aborted || q.outcome == QueryOutcome::Complete,
                    "unexpected outcome {:?} in a hard-stall run",
                    q.outcome
                );
            }
        }
    }
}
