//! Multi-threaded page-cache hammer: many threads mixing reads, writes and
//! readahead hints over disjoint regions of one cache, with a capacity far
//! below the working set so eviction, write-back and (in async mode) the
//! background I/O engine all run hot.
//!
//! Invariants checked:
//!
//! - **No lost updates** — every read observes the thread's own latest
//!   write (regions are disjoint, so the shadow copy is authoritative).
//! - **Exact accounting** — every 8-byte access resolves to exactly one hit
//!   or one miss (`hits + misses == accesses issued`); prefetch fills are
//!   counted separately and never double-fault a page into two frames.
//! - **Internal consistency** — `validate()` finds every frame mapped
//!   exactly once and every mapping pointing at a live frame.
//! - **Flush durability** — after `flush`, the raw device bytes equal the
//!   shadow copies (write-behind and inline write-back both landed).

use std::sync::Arc;
use std::thread;

use havoq_nvram::cache::{PageCache, PageCacheConfig};
use havoq_nvram::device::{BlockDevice, DeviceProfile, MemDevice, SimNvram};
use havoq_nvram::IoConfig;

/// Small pages so a modest working set spans many of them.
const PAGE: usize = 256;
/// Each thread owns this many disjoint u64 slots.
const WORDS_PER_THREAD: usize = 512;

/// Deterministic per-thread LCG step.
fn next(x: &mut u64) -> u64 {
    *x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *x
}

fn hammer(threads: usize, io: IoConfig, rounds: usize) {
    let dev: Arc<dyn BlockDevice> =
        Arc::new(SimNvram::new(MemDevice::new(), DeviceProfile::fusion_io()));
    let cache = Arc::new(PageCache::new(
        dev,
        PageCacheConfig {
            page_size: PAGE,
            // far below the working set (threads * 512 * 8 bytes), and not
            // a multiple of shards so the remainder distribution runs too
            capacity_pages: threads * 4 + 1,
            shards: 4,
            readahead_pages: 4,
            io,
            ..PageCacheConfig::default()
        },
    ));

    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let c = Arc::clone(&cache);
            thread::spawn(move || {
                let region = (WORDS_PER_THREAD * 8) as u64;
                let base = t as u64 * region;
                let mut x = 0x9e3779b97f4a7c15u64 ^ (t as u64);
                let mut shadow = vec![0u64; WORDS_PER_THREAD];
                let mut accesses = 0u64;
                for r in 0..rounds {
                    for (i, slot) in shadow.iter_mut().enumerate() {
                        // 8-byte aligned and PAGE is a multiple of 8, so no
                        // op ever crosses a page: one op == one cache access
                        let off = base + (i * 8) as u64;
                        match next(&mut x) % 4 {
                            0 | 1 => {
                                let v = x;
                                *slot = v;
                                c.write_at(off, &v.to_le_bytes());
                                accesses += 1;
                            }
                            2 => {
                                let mut b = [0u8; 8];
                                c.read_at(off, &mut b);
                                accesses += 1;
                                assert_eq!(
                                    u64::from_le_bytes(b),
                                    *slot,
                                    "lost update: thread {t} slot {i} round {r}"
                                );
                            }
                            _ => {
                                // readahead hint over the rest of our region;
                                // prefetch fills must not disturb accounting
                                c.advise(off, region - (i * 8) as u64);
                            }
                        }
                    }
                }
                (base, shadow, accesses)
            })
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let issued: u64 = results.iter().map(|r| r.2).sum();
    let s = cache.stats();
    assert_eq!(
        s.hits + s.misses,
        issued,
        "every access must resolve to exactly one hit or miss: {s:?}"
    );
    cache.validate();

    // flush durability: raw device bytes == shadow copies
    cache.flush();
    let dev = cache.device();
    for (base, shadow, _) in &results {
        for (i, &want) in shadow.iter().enumerate() {
            let mut b = [0u8; 8];
            dev.read_at(base + (i * 8) as u64, &mut b);
            assert_eq!(u64::from_le_bytes(b), want, "flush lost a write at slot {i}");
        }
    }
    cache.validate();
}

/// The hammer under seeded transient read-corruption: `permille`/1000 of
/// device reads return one flipped bit, so cache fills and prefetch bulk
/// reads keep observing corrupted buffers. The per-page write-back
/// checksums must catch every one (a verified page can only be served
/// clean), and the shadow-copy assert inside the worker loop *is* the
/// integrity oracle: a single undetected flip surfaces as a lost update.
///
/// A seed pass writes every slot through the cache and flushes first, so
/// the whole working set has recorded write-back checksums before
/// corruption starts — pages the cache never wrote back are unverifiable
/// by design and would let injected flips through.
fn hammer_with_corruption(threads: usize, io: IoConfig, rounds: usize, permille: u64) {
    let mem = Arc::new(MemDevice::new());
    let dev: Arc<dyn BlockDevice> = Arc::clone(&mem) as Arc<dyn BlockDevice>;
    let cache = Arc::new(PageCache::new(
        dev,
        PageCacheConfig {
            page_size: PAGE,
            capacity_pages: threads * 4 + 1,
            shards: 4,
            readahead_pages: 4,
            io,
            ..PageCacheConfig::default()
        },
    ));

    // seed pass: give every page a write-back checksum
    let mut seeds = vec![0u64; threads * WORDS_PER_THREAD];
    let mut x = 0x00dd_ba11u64;
    for (i, s) in seeds.iter_mut().enumerate() {
        *s = next(&mut x);
        cache.write_at((i * 8) as u64, &s.to_le_bytes());
    }
    cache.flush();
    let seeded_accesses = seeds.len() as u64;
    mem.set_read_corruption(permille, 0x00C0_FFEE ^ threads as u64);

    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let c = Arc::clone(&cache);
            let mut shadow = seeds[t * WORDS_PER_THREAD..(t + 1) * WORDS_PER_THREAD].to_vec();
            thread::spawn(move || {
                let region = (WORDS_PER_THREAD * 8) as u64;
                let base = t as u64 * region;
                let mut x = 0x9e3779b97f4a7c15u64 ^ (t as u64);
                let mut accesses = 0u64;
                for r in 0..rounds {
                    for (i, slot) in shadow.iter_mut().enumerate() {
                        let off = base + (i * 8) as u64;
                        match next(&mut x) % 4 {
                            0 | 1 => {
                                let v = x;
                                *slot = v;
                                c.write_at(off, &v.to_le_bytes());
                                accesses += 1;
                            }
                            2 => {
                                let mut b = [0u8; 8];
                                c.read_at(off, &mut b);
                                accesses += 1;
                                assert_eq!(
                                    u64::from_le_bytes(b),
                                    *slot,
                                    "corrupted read served: thread {t} slot {i} round {r}"
                                );
                            }
                            _ => {
                                c.advise(off, region - (i * 8) as u64);
                            }
                        }
                    }
                }
                (base, shadow, accesses)
            })
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let issued: u64 = results.iter().map(|r| r.2).sum();
    let s = cache.stats();
    assert_eq!(
        s.hits + s.misses,
        issued + seeded_accesses,
        "every access must resolve to exactly one hit or miss: {s:?}"
    );
    assert!(
        s.page_checksum_failures > 0,
        "corruption at {permille} permille never hit a verified fill: {s:?}"
    );
    cache.validate();

    // the final device-vs-shadow audit reads the raw device, which has no
    // CRC protection — stop injecting first
    mem.set_read_corruption(0, 0);
    cache.flush();
    let dev = cache.device();
    for (base, shadow, _) in &results {
        for (i, &want) in shadow.iter().enumerate() {
            let mut b = [0u8; 8];
            dev.read_at(base + (i * 8) as u64, &mut b);
            assert_eq!(u64::from_le_bytes(b), want, "flush lost a write at slot {i}");
        }
    }
    cache.validate();
    assert!(mem.reads_corrupted() > 0, "the plan never actually corrupted a read");
}

#[test]
fn hammer_sync_8() {
    hammer(8, IoConfig::default(), 4);
}

#[test]
fn hammer_async_8() {
    hammer(8, IoConfig::asynchronous(), 4);
}

#[test]
fn hammer_sync_8_with_read_corruption() {
    hammer_with_corruption(8, IoConfig::default(), 3, 100);
}

#[test]
fn hammer_async_8_with_read_corruption() {
    hammer_with_corruption(8, IoConfig::asynchronous(), 3, 100);
}

/// Heavier variant for the dedicated CI job (`--include-ignored`).
#[test]
#[ignore = "heavier sweep; run explicitly or via the CI hammer job"]
fn hammer_async_32() {
    hammer(32, IoConfig::asynchronous(), 6);
}

/// Heavier corruption variant for the CI integrity-chaos job
/// (`--include-ignored`).
#[test]
#[ignore = "heavier sweep; run explicitly or via the CI integrity-chaos job"]
fn hammer_async_32_with_read_corruption() {
    hammer_with_corruption(32, IoConfig::asynchronous(), 4, 100);
}
