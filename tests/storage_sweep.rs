//! The storage-equivalence sweep (DESIGN.md §14's acceptance test).
//!
//! Storage is a *representation* choice: whether CSR targets live in DRAM,
//! as raw `u64`s behind the NVRAM page cache, or as varint gap bytes
//! decoded per slice, every algorithm must produce bit-identical results.
//! This sweep runs the whole algorithm suite (BFS + CC + k-core + SSSP +
//! triangle), the direction-optimizing engine and the batched multi-source
//! engine over all three backends and compares fingerprints bit for bit —
//! fault-free, under the chaos and lossy adversaries, and across
//! checkpoint/crash/restore cycles on compressed storage.
//!
//! The compressed backend's early-exit scan (`DistGraph::scan_adj`) counts
//! scanned targets exactly like the slice walk, so the direction engine's
//! `edges_inspected` participates in the equality checks too.

use havoq::prelude::*;
use havoq::testing::{
    assert_conserved, gather_state, heavy_sweep_edges, run_suite, sweep_edges, SuiteOptions,
};
use havoq_comm::FaultConfig;
use havoq_nvram::cache::PageCacheConfig;
use havoq_nvram::device::DeviceProfile;
use havoq_util::testing::{sweep_seed_set, sweep_seeds};

/// Cache budget for the external backends: small enough that the sweep
/// graph's raw targets spill (forcing real paging on `ext`), large enough
/// to keep the sweep fast.
fn sweep_cache() -> PageCacheConfig {
    PageCacheConfig { page_size: 512, capacity_pages: 16, shards: 2, ..PageCacheConfig::default() }
}

/// The three storage backends under test, labelled for assertion messages.
fn storage_matrix() -> Vec<(&'static str, GraphConfig)> {
    vec![
        ("mem", GraphConfig::default()),
        ("ext", GraphConfig::external(DeviceProfile::dram(), sweep_cache())),
        ("ext-comp", GraphConfig::external_compressed(DeviceProfile::dram(), sweep_cache())),
    ]
}

fn compressed_config() -> GraphConfig {
    GraphConfig::external_compressed(DeviceProfile::dram(), sweep_cache())
}

/// Fault-free equivalence: the whole algorithm suite over every backend ×
/// p ∈ {1, 2} × threads ∈ {1, 4} yields one bit-identical fingerprint.
#[test]
fn suite_equivalent_across_storages() {
    let (edges, n) = sweep_edges();
    let golden = run_suite(1, &edges, n, None, SuiteOptions::default()).fingerprint;
    for p in [1usize, 2] {
        for threads in [1usize, 4] {
            for (label, cfg) in storage_matrix() {
                let opts = SuiteOptions::default().with_threads(threads).with_storage(cfg);
                let out = run_suite(p, &edges, n, None, opts);
                assert_eq!(
                    out.fingerprint, golden,
                    "storage={label} p={p} threads={threads}: suite fingerprint diverged"
                );
            }
        }
    }
}

/// Schedule-independent results of one direction-engine BFS run, including
/// the storage-invariant inspection count.
#[derive(Clone, Debug, PartialEq, Eq)]
struct DirFp {
    levels: Vec<(u64, u64)>,
    parents: Vec<(u64, u64)>,
    visited: u64,
    max_level: u64,
    edges_inspected: u64,
    schedule: Vec<&'static str>,
}

fn run_direction_on(
    p: usize,
    edges: &[Edge],
    n: u64,
    cfg: GraphConfig,
    mode: DirectionMode,
    threads: usize,
) -> DirFp {
    let mut out = CommWorld::run(p, |ctx| {
        let g = DistGraph::build_replicated(
            ctx,
            edges,
            PartitionStrategy::EdgeList,
            cfg.with_num_vertices(n),
        );
        let bcfg = BfsConfig::default().with_direction(mode).with_threads(threads);
        let run = direction_bfs(ctx, &g, VertexId(0), &bcfg);
        let report = validate_bfs(ctx, &g, VertexId(0), &run.result.local_state);
        assert!(report.is_valid(), "direction bfs parents/levels invalid: {report:?}");
        assert_conserved(ctx, "direction bfs", &run.result.stats);
        DirFp {
            levels: gather_state(ctx, &g, |li| run.result.local_state[li].length),
            parents: gather_state(ctx, &g, |li| run.result.local_state[li].parent),
            visited: run.result.visited_count,
            max_level: run.result.max_level,
            edges_inspected: run.edges_inspected,
            schedule: run.trace.iter().map(|t| t.dir.label()).collect(),
        }
    });
    let first = out.remove(0);
    for o in &out {
        assert_eq!(*o, first, "ranks disagree on the gathered direction-BFS state");
    }
    first
}

/// Direction-optimizing BFS — including the bottom-up early-exit scan,
/// which streams the gap decoder on compressed storage — must be
/// bit-identical across backends in state, schedule *and* inspection
/// counts, for all three forced modes and the auto heuristic.
#[test]
fn direction_bfs_equivalent_across_storages() {
    let (edges, n) = sweep_edges();
    let modes = [DirectionMode::TopDown, DirectionMode::BottomUp, DirectionMode::Auto];
    for p in [1usize, 2] {
        for mode in modes {
            let golden = run_direction_on(p, &edges, n, GraphConfig::default(), mode, 1);
            // the sweep graph must actually exercise the bottom-up scan
            if mode == DirectionMode::Auto {
                assert!(
                    golden.schedule.contains(&"bottom"),
                    "auto never went bottom-up — the scan path is untested: {:?}",
                    golden.schedule
                );
            }
            for (label, cfg) in storage_matrix().into_iter().skip(1) {
                for threads in [1usize, 4] {
                    let run = run_direction_on(p, &edges, n, cfg, mode, threads);
                    assert_eq!(
                        run, golden,
                        "storage={label} p={p} {mode:?} threads={threads}: diverged"
                    );
                }
            }
        }
    }
}

/// First `k` distinct sources in edge-list order — deterministic, and every
/// one has at least one outgoing edge.
fn batch_sources(edges: &[Edge], k: usize) -> Vec<VertexId> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for e in edges {
        if seen.insert(e.src) {
            out.push(VertexId(e.src));
            if out.len() == k {
                break;
            }
        }
    }
    out
}

type QueryFp = (u64, u64, u64, Vec<(u64, u64)>);

fn run_batched_on(
    p: usize,
    edges: &[Edge],
    n: u64,
    cfg: GraphConfig,
    threads: usize,
) -> Vec<QueryFp> {
    let sources = batch_sources(edges, 8);
    let (edges, sources_c) = (edges.to_vec(), sources.clone());
    CommWorld::run(p, move |ctx| {
        let g = DistGraph::build_replicated(
            ctx,
            &edges,
            PartitionStrategy::EdgeList,
            cfg.with_num_vertices(n),
        );
        let bcfg = BatchConfig::default().with_threads(threads);
        let res = bfs_batch::<8>(ctx, &g, &sources_c, &bcfg);
        assert_conserved(ctx, "batched bfs", &res.stats);
        sources_c
            .iter()
            .enumerate()
            .map(|(qi, &s)| {
                let report = validate_bfs(ctx, &g, s, &res.local_state[qi]);
                assert!(report.is_valid(), "batched parents invalid for query {qi}: {report:?}");
                let agg = res.per_query[qi];
                (
                    agg.visited_count,
                    agg.traversed_edges,
                    agg.max_level,
                    gather_state(ctx, &g, |li| res.local_state[qi][li].length),
                )
            })
            .collect::<Vec<_>>()
    })
    .remove(0)
}

/// The batched multi-source engine shares one traversal across 8 queries;
/// its per-query fingerprints must not depend on the storage backend.
#[test]
fn batched_bfs_equivalent_across_storages() {
    let (edges, n) = sweep_edges();
    for p in [1usize, 2] {
        let golden = run_batched_on(p, &edges, n, GraphConfig::default(), 1);
        for (label, cfg) in storage_matrix().into_iter().skip(1) {
            for threads in [1usize, 4] {
                let got = run_batched_on(p, &edges, n, cfg, threads);
                assert_eq!(got, golden, "storage={label} p={p} threads={threads}: diverged");
            }
        }
    }
}

/// The acceptance chaos sweep on compressed storage: 16 seeded chaos plans
/// must reproduce the in-memory fault-free fingerprint bit for bit, and
/// the adversary must actually have fired across the sweep.
#[test]
fn compressed_chaos_sweep_16_seeds() {
    let (edges, n) = sweep_edges();
    let p = 2;
    let golden = run_suite(p, &edges, n, None, SuiteOptions::default()).fingerprint;
    let total_events = std::cell::Cell::new(0u64);
    sweep_seeds(sweep_seed_set(16), |seed| {
        let opts = SuiteOptions::default().with_threads(4).with_storage(compressed_config());
        let out = run_suite(p, &edges, n, Some(FaultConfig::chaos(seed)), opts);
        assert_eq!(out.fingerprint, golden, "seed {seed:#x}: chaos on compressed storage diverged");
        total_events.set(total_events.get() + out.faults.total_events());
    });
    assert!(total_events.get() > 0, "chaos sweep never perturbed anything");
}

/// Frame corruption and loss under the CRC + NACK + retransmit plane with
/// compressed storage underneath: every injected corruption must be caught
/// and the results must still match the in-memory baseline.
#[test]
fn compressed_lossy_sweep_16_seeds() {
    let (edges, n) = sweep_edges();
    let p = 2;
    let golden = run_suite(p, &edges, n, None, SuiteOptions::default()).fingerprint;
    let corrupted = std::cell::Cell::new(0u64);
    let detected = std::cell::Cell::new(0u64);
    sweep_seeds(sweep_seed_set(16), |seed| {
        let opts = SuiteOptions::default().with_threads(1).with_storage(compressed_config());
        let out = run_suite(p, &edges, n, Some(FaultConfig::lossy(seed)), opts);
        assert_eq!(out.fingerprint, golden, "seed {seed:#x}: lossy on compressed storage diverged");
        corrupted.set(corrupted.get() + out.faults.corrupted);
        detected.set(detected.get() + out.faults.detected);
    });
    assert!(corrupted.get() > 0, "lossy sweep never injected a corruption");
    assert_eq!(detected.get(), corrupted.get(), "every injected corruption must be CRC-detected");
}

/// Crash-restore grid on compressed storage: crash each rank at each early
/// checkpoint epoch and demand suite results bit-identical to the
/// in-memory fault-free golden — the page cache, the encoded pool and the
/// decode path must all survive the world rewind.
#[test]
fn compressed_crash_restore_grid() {
    let (edges, n) = sweep_edges();
    let p = 2;
    let golden = run_suite(p, &edges, n, None, SuiteOptions::default()).fingerprint;
    let mut crashes = 0u64;
    let mut restores = 0u64;
    for victim in 0..p {
        for epoch in 1..=2u64 {
            let faults = FaultConfig::quiet(11).with_forced_crash(victim, epoch);
            let opts =
                SuiteOptions::default().with_checkpoint_every(1).with_storage(compressed_config());
            let out = run_suite(p, &edges, n, Some(faults), opts);
            assert_eq!(
                out.fingerprint, golden,
                "victim={victim} epoch={epoch}: restored run on compressed storage diverged"
            );
            crashes += out.restart.crashes;
            restores += out.restart.restores;
        }
    }
    assert!(crashes > 0, "crash grid never tore an epoch");
    assert!(restores >= crashes, "every crash must trigger a world-wide restore");
}

/// The compressed pool must actually compress the sweep graph — the fig08
/// acceptance bound (≥2× edges per cache byte, i.e. ≤ 4 B/edge) holds on
/// the test graph too, so CI catches encoder regressions without running
/// the benches.
#[test]
fn compressed_sweep_graph_meets_density_bound() {
    let (edges, n) = sweep_edges();
    let snaps = CommWorld::run(2, |ctx| {
        let g = DistGraph::build_replicated(
            ctx,
            &edges,
            PartitionStrategy::EdgeList,
            compressed_config().with_num_vertices(n),
        );
        g.csr().storage_snapshot().expect("compressed storage")
    });
    let (enc, raw) =
        snaps.iter().fold((0u64, 0u64), |a, s| (a.0 + s.encoded_bytes, a.1 + s.raw_bytes));
    assert!(
        raw as f64 / enc as f64 >= 2.0,
        "sweep graph below 2x edges per cache byte: {enc} encoded vs {raw} raw"
    );
}

/// The heavyweight sweep for the CI storage-sweep job (`--include-ignored`,
/// release): the full suite over all three backends at an awkward rank
/// count on the scale-8 graph, plus chaos on compressed storage.
#[test]
#[ignore = "heavy: run via the CI storage-sweep job or --include-ignored"]
fn storage_sweep_heavy_seven_ranks() {
    let (edges, n) = heavy_sweep_edges();
    let p = 7;
    let golden = run_suite(p, &edges, n, None, SuiteOptions::default()).fingerprint;
    for (label, cfg) in storage_matrix().into_iter().skip(1) {
        let opts = SuiteOptions::default().with_threads(4).with_storage(cfg);
        let out = run_suite(p, &edges, n, None, opts);
        assert_eq!(out.fingerprint, golden, "storage={label} p={p}: heavy suite diverged");
    }
    sweep_seeds(sweep_seed_set(4), |seed| {
        let opts = SuiteOptions::default().with_threads(4).with_storage(compressed_config());
        let out = run_suite(p, &edges, n, Some(FaultConfig::chaos(seed)), opts);
        assert_eq!(out.fingerprint, golden, "seed {seed:#x} p={p}: heavy chaos diverged");
    });
}
