//! Shared scaffolding for the acceptance sweeps (`tests/*_sweep.rs`).
//!
//! The fault, restart, parallel and batch sweeps all drive the same
//! experiment shape: build a seeded RMAT graph, run the whole algorithm
//! suite on `p` simulated ranks under some adversary, gather the
//! schedule-independent results into a canonical fingerprint, and compare
//! runs bit for bit. This module is that shape, written once.
//!
//! It lives in the `havoq` facade crate (not `havoq-util::testing`, which
//! hosts the storage-free seed/sweep drivers) because the suite runner
//! needs the whole stack — `havoq-graph` for the generator and partitions,
//! `havoq-core` for the algorithms — and `havoq-util` sits *below* both in
//! the dependency order.
//!
//! Fingerprint semantics (shared by every sweep): BFS/SSSP *parents* are
//! excluded — the first visitor to claim a vertex at its final level wins
//! the parent slot, so parents are schedule-dependent even on fault-free
//! runs. Parent correctness is checked structurally with `validate_bfs`
//! instead, which is exactly what the paper's validation visitors are for.

use havoq_comm::{FaultConfig, RankCtx};
use havoq_core::algorithms::bfs::{bfs, BfsConfig};
use havoq_core::algorithms::cc::{connected_components, CcConfig};
use havoq_core::algorithms::kcore::{kcore, KCoreConfig};
use havoq_core::algorithms::sssp::{sssp, SsspConfig};
use havoq_core::algorithms::triangle::{triangle_count, TriangleConfig};
use havoq_core::algorithms::validate::validate_bfs;
use havoq_core::queue::{TraversalConfig, TraversalStats};
use havoq_core::CheckpointSpec;
use havoq_graph::csr::GraphConfig;
use havoq_graph::dist::{DistGraph, PartitionStrategy};
use havoq_graph::gen::rmat::RmatGenerator;
use havoq_graph::types::{Edge, VertexId};

/// The standard sweep graph: Graph500 RMAT at scale 7, seed 42,
/// symmetrized. Returns `(edges, num_vertices)`.
pub fn sweep_edges() -> (Vec<Edge>, u64) {
    let gen = RmatGenerator::graph500(7);
    (gen.symmetric_edges(42), gen.num_vertices())
}

/// The heavyweight sweep graph for the `--include-ignored` CI jobs:
/// scale 8, seed 1234.
pub fn heavy_sweep_edges() -> (Vec<Edge>, u64) {
    let gen = RmatGenerator::graph500(8);
    (gen.symmetric_edges(1234), gen.num_vertices())
}

/// Gather one `u64` of state per master vertex into canonical
/// (vertex-id) order. Collective.
pub fn gather_state(
    ctx: &RankCtx,
    g: &DistGraph,
    mut f: impl FnMut(usize) -> u64,
) -> Vec<(u64, u64)> {
    let local: Vec<(u64, u64)> = g
        .local_vertices()
        .filter(|&v| g.is_master(v))
        .map(|v| (v.0, f(g.local_index(v))))
        .collect();
    let mut all: Vec<(u64, u64)> = ctx.all_gather(local).into_iter().flatten().collect();
    all.sort_unstable();
    all
}

/// Global sent == received for one traversal: quiescence fired only after
/// every counted payload — including repair and post-restore replay
/// traffic — was delivered, and nothing was lost or double delivered.
pub fn assert_conserved(ctx: &RankCtx, what: &str, s: &TraversalStats) {
    let sent = ctx.all_reduce_sum(s.payload_sent);
    let recv = ctx.all_reduce_sum(s.payload_received);
    assert_eq!(sent, recv, "{what}: quiescence fired with {sent} sent != {recv} received");
}

/// Schedule-independent results of the whole algorithm suite, with vertex
/// state in canonical (vertex-id) order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fingerprint {
    pub bfs_visited: u64,
    pub bfs_traversed_edges: u64,
    pub bfs_max_level: u64,
    pub bfs_levels: Vec<(u64, u64)>,
    pub cc_components: u64,
    pub cc_labels: Vec<(u64, u64)>,
    pub kcore_alive: u64,
    pub kcore_state: Vec<(u64, bool, u64)>,
    pub sssp_visited: u64,
    pub sssp_max_distance: u64,
    pub sssp_distances: Vec<(u64, u64)>,
    pub triangles: u64,
}

/// World totals of every fault counter, summed over a suite's traversals.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultTotals {
    pub delayed: u64,
    pub reordered: u64,
    pub duplicated: u64,
    pub deduped: u64,
    pub stalled: u64,
    pub throttled: u64,
    /// Injected bit-flips (an injection implies the CRC must catch it).
    pub corrupted: u64,
    /// Injected frame losses (repair must resupply every one).
    pub dropped: u64,
    /// CRC mismatches caught at receivers.
    pub detected: u64,
    pub nacks: u64,
    pub retransmits: u64,
}

impl FaultTotals {
    pub fn accumulate(&mut self, ctx: &RankCtx, s: &TraversalStats) {
        self.delayed += ctx.all_reduce_sum(s.fault_delayed);
        self.reordered += ctx.all_reduce_sum(s.fault_reordered);
        self.duplicated += ctx.all_reduce_sum(s.fault_duplicated);
        self.deduped += ctx.all_reduce_sum(s.fault_deduped);
        self.stalled += ctx.all_reduce_sum(s.fault_stalled);
        self.throttled += ctx.all_reduce_sum(s.fault_throttled);
        self.corrupted += ctx.all_reduce_sum(s.fault_corrupted);
        self.dropped += ctx.all_reduce_sum(s.frames_dropped_injected);
        self.detected += ctx.all_reduce_sum(s.corrupt_frames_detected);
        self.nacks += ctx.all_reduce_sum(s.nacks_sent);
        self.retransmits += ctx.all_reduce_sum(s.retransmits);
    }

    pub fn merge(&mut self, o: FaultTotals) {
        self.delayed += o.delayed;
        self.reordered += o.reordered;
        self.duplicated += o.duplicated;
        self.deduped += o.deduped;
        self.stalled += o.stalled;
        self.throttled += o.throttled;
        self.corrupted += o.corrupted;
        self.dropped += o.dropped;
        self.detected += o.detected;
        self.nacks += o.nacks;
        self.retransmits += o.retransmits;
    }

    /// Sum of every counter — zero iff the run observed no fault events at
    /// all (the fault-free baseline must satisfy this).
    pub fn total_events(&self) -> u64 {
        self.delayed
            + self.reordered
            + self.duplicated
            + self.deduped
            + self.stalled
            + self.throttled
            + self.corrupted
            + self.dropped
            + self.detected
            + self.nacks
            + self.retransmits
    }
}

/// World totals of the restart machinery's counters, plus per-rank crash
/// counts so sweeps can prove every rank was a victim somewhere.
#[derive(Clone, Debug, Default)]
pub struct RestartTotals {
    pub checkpoints: u64,
    pub crashes: u64,
    pub restores: u64,
    /// Committed epochs skipped at restore because their checksum failed.
    pub fallbacks: u64,
    pub crashes_by_rank: Vec<u64>,
}

impl RestartTotals {
    pub fn accumulate(&mut self, ctx: &RankCtx, s: &TraversalStats) {
        self.checkpoints += ctx.all_reduce_sum(s.checkpoints_written);
        self.crashes += ctx.all_reduce_sum(s.crashes);
        self.restores += ctx.all_reduce_sum(s.restores);
        self.fallbacks += ctx.all_reduce_sum(s.restore_epoch_fallbacks);
        let per_rank = ctx.all_gather(s.crashes);
        if self.crashes_by_rank.is_empty() {
            self.crashes_by_rank = per_rank;
        } else {
            for (t, c) in self.crashes_by_rank.iter_mut().zip(per_rank) {
                *t += c;
            }
        }
    }

    pub fn merge(&mut self, o: &RestartTotals) {
        self.checkpoints += o.checkpoints;
        self.crashes += o.crashes;
        self.restores += o.restores;
        self.fallbacks += o.fallbacks;
        if self.crashes_by_rank.is_empty() {
            self.crashes_by_rank = o.crashes_by_rank.clone();
        } else {
            for (t, c) in self.crashes_by_rank.iter_mut().zip(&o.crashes_by_rank) {
                *t += c;
            }
        }
    }
}

/// Knobs of one suite run; the default is the serial, uncheckpointed,
/// in-memory configuration every baseline uses.
#[derive(Clone, Copy, Debug, Default)]
pub struct SuiteOptions {
    /// Intra-rank worker threads (0 or 1 = the serial path).
    pub threads: usize,
    /// When set, every traversal checkpoints under this spec.
    pub checkpoint: Option<CheckpointSpec>,
    /// Graph storage override (`num_vertices` is filled in by the runner).
    pub storage: Option<GraphConfig>,
}

impl SuiteOptions {
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    pub fn with_checkpoint_every(mut self, every: u64) -> Self {
        self.checkpoint = Some(CheckpointSpec::default().with_every(every));
        self
    }

    pub fn with_storage(mut self, storage: GraphConfig) -> Self {
        self.storage = Some(storage);
        self
    }
}

/// Everything one suite run yields: the canonical fingerprint plus both
/// counter families (zeros where the adversary or the checkpoint layer was
/// off).
#[derive(Clone, Debug)]
pub struct SuiteOutcome {
    pub fingerprint: Fingerprint,
    pub faults: FaultTotals,
    pub restart: RestartTotals,
}

/// Run the full algorithm suite (BFS + CC + k-core + SSSP + triangle) on
/// `p` ranks under `faults` with the given options. Panics if BFS
/// validation or payload conservation fails on any traversal, if ranks
/// disagree on the gathered fingerprint, or if the restore count does not
/// match the crash count (serial runs: exactly `crashes × p` — every crash
/// event rewinds the whole world once; parallel runs are held to `≥`, as
/// in the pre-existing parallel belt).
pub fn run_suite(
    p: usize,
    edges: &[Edge],
    n: u64,
    faults: Option<FaultConfig>,
    opts: SuiteOptions,
) -> SuiteOutcome {
    let traversal = TraversalConfig::default().with_threads(opts.threads.max(1));
    let spec = opts.checkpoint;
    let storage = opts.storage.unwrap_or_default().with_num_vertices(n);
    let mut out = havoq_comm::CommWorld::run_with_faults(p, faults, |ctx| {
        let g = DistGraph::build_replicated(ctx, edges, PartitionStrategy::EdgeList, storage);
        let mut fault_totals = FaultTotals::default();
        let mut restart_totals = RestartTotals::default();
        let mut track = |ctx: &RankCtx, what: &str, s: &TraversalStats| {
            assert_conserved(ctx, what, s);
            fault_totals.accumulate(ctx, s);
            restart_totals.accumulate(ctx, s);
        };

        let b = bfs(ctx, &g, VertexId(0), &BfsConfig { traversal, checkpoint: spec });
        track(ctx, "bfs", &b.stats);
        let report = validate_bfs(ctx, &g, VertexId(0), &b.local_state);
        assert!(report.is_valid(), "bfs parents/levels invalid: {report:?}");

        let c = connected_components(ctx, &g, &CcConfig { traversal, checkpoint: spec });
        track(ctx, "cc", &c.stats);

        let k = kcore(ctx, &g, 3, &KCoreConfig { traversal, checkpoint: spec });
        track(ctx, "kcore", &k.stats);

        let s = sssp(
            ctx,
            &g,
            VertexId(0),
            &SsspConfig { traversal, checkpoint: spec, ..Default::default() },
        );
        track(ctx, "sssp", &s.stats);

        let t = triangle_count(ctx, &g, &TriangleConfig { traversal, checkpoint: spec });
        track(ctx, "triangle", &t.stats);

        let fingerprint = Fingerprint {
            bfs_visited: b.visited_count,
            bfs_traversed_edges: b.traversed_edges,
            bfs_max_level: b.max_level,
            bfs_levels: gather_state(ctx, &g, |li| b.local_state[li].length),
            cc_components: c.num_components,
            cc_labels: gather_state(ctx, &g, |li| c.local_state[li].component),
            kcore_alive: k.alive_count,
            kcore_state: {
                let alive = gather_state(ctx, &g, |li| k.local_state[li].alive as u64);
                let budget = gather_state(ctx, &g, |li| k.local_state[li].kcore);
                alive.into_iter().zip(budget).map(|((v, a), (_, b))| (v, a == 1, b)).collect()
            },
            sssp_visited: s.visited_count,
            sssp_max_distance: s.max_distance,
            sssp_distances: gather_state(ctx, &g, |li| s.local_state[li].distance),
            triangles: t.triangles,
        };
        SuiteOutcome { fingerprint, faults: fault_totals, restart: restart_totals }
    });
    // all ranks computed the same world-gathered fingerprint; the totals
    // are world sums (all_reduce), identical on every rank
    let first = out.remove(0);
    for o in &out {
        assert_eq!(o.fingerprint, first.fingerprint, "ranks disagree on the gathered fingerprint");
    }
    if opts.threads <= 1 {
        assert_eq!(
            first.restart.restores,
            first.restart.crashes * p as u64,
            "restores must be one per rank per crash event"
        );
    } else {
        assert!(
            first.restart.restores >= first.restart.crashes,
            "every crash must trigger a world-wide restore"
        );
    }
    first
}
