//! # havoq — a Rust reproduction of HavoqGT
//!
//! This is the facade crate for a from-scratch Rust reproduction of
//! *"Scaling Techniques for Massive Scale-Free Graphs in Distributed
//! (External) Memory"* (Pearce, Gokhale, Amato — IPDPS 2013), the system
//! later released by LLNL as **HavoqGT**.
//!
//! The workspace implements, as independent crates re-exported here:
//!
//! - [`comm`] — a simulated distributed runtime (ranks as threads) with
//!   non-blocking point-to-point transport, collectives, routed/aggregating
//!   mailboxes (2D and 3D synthetic topologies), and asynchronous
//!   quiescence detection.
//! - [`nvram`] — simulated NVRAM block devices plus the paper's user-space
//!   page cache, and typed external arrays for semi-external graph storage.
//! - [`graph`] — scale-free graph generators (Graph500 RMAT, preferential
//!   attachment, small-world), distributed edge-list sorting, 1D / 2D /
//!   edge-list partitioning, and CSR storage (in-memory or NVRAM-backed).
//! - [`core`] — the paper's primary contribution: the distributed
//!   asynchronous visitor queue with ghost vertices, and the BFS, k-core
//!   and triangle-counting algorithms built on it.
//!
//! ## Quickstart
//!
//! ```
//! use havoq::prelude::*;
//!
//! // Generate a small Graph500-style RMAT graph…
//! let edges = RmatGenerator::graph500(10).symmetric_edges(42);
//! // …partition it for 4 simulated ranks with the paper's edge-list
//! // partitioning, then run distributed BFS from vertex 0.
//! let result = CommWorld::run(4, |ctx| {
//!     let g = DistGraph::build_replicated(
//!         ctx, &edges, PartitionStrategy::EdgeList, GraphConfig::default());
//!     bfs(ctx, &g, VertexId(0), &BfsConfig::default())
//! });
//! assert!(result[0].visited_count > 0);
//! ```
//!
//! See `examples/` for larger scenarios and `crates/bench/src/bin/` for the
//! binaries that regenerate every figure and table of the paper.

pub use havoq_comm as comm;
pub use havoq_core as core;
pub use havoq_graph as graph;
pub use havoq_nvram as nvram;

pub mod testing;

/// Convenient single-import surface for examples and downstream users.
pub mod prelude {
    pub use havoq_comm::{CommWorld, Mailbox, MailboxConfig, Quiescence, RankCtx, TopologyKind};
    pub use havoq_core::algorithms::bfs::{bfs, BfsConfig, BfsResult};
    pub use havoq_core::algorithms::cc::{connected_components, CcConfig, CcResult};
    pub use havoq_core::algorithms::kcore::{
        kcore, kcore_decomposition, KCoreConfig, KCoreDecomposition, KCoreResult,
    };
    pub use havoq_core::algorithms::sssp::{sssp, SsspConfig, SsspResult};
    pub use havoq_core::algorithms::triangle::{triangle_count, TriangleConfig, TriangleResult};
    pub use havoq_core::algorithms::validate::{validate_bfs, ValidationReport};
    pub use havoq_core::algorithms::wedge::{approx_clustering, WedgeSampleResult};
    pub use havoq_core::batch::{
        bfs_batch, reach_batch, AdmissionQueue, Arrival, BatchBfsResult, BatchConfig, BatchLedger,
        QueryBatch, ShedPolicy, MAX_BATCH,
    };
    pub use havoq_core::direction::{
        direction_bfs, DirBfsRun, Direction, DirectionConfig, DirectionMode,
    };
    pub use havoq_core::lifecycle::{
        bfs_batch_lifecycle, run_bfs_lifecycle, LifecycleBfsResult, QueryLifecycle, QueryOutcome,
    };
    pub use havoq_core::queue::{TraversalConfig, TraversalStats};
    pub use havoq_graph::csr::{CsrStorage, GraphConfig};
    pub use havoq_graph::dist::{DistGraph, PartitionStrategy};
    pub use havoq_graph::gen::pa::PaGenerator;
    pub use havoq_graph::gen::rmat::RmatGenerator;
    pub use havoq_graph::gen::smallworld::SmallWorldGenerator;
    pub use havoq_graph::types::{Edge, VertexId};
    pub use havoq_nvram::cache::{PageCache, PageCacheConfig};
    pub use havoq_nvram::device::{DeviceProfile, SimNvram};
}
