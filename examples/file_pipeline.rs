//! Domain scenario: the on-disk pipeline a downstream user actually runs —
//! write a graph to a binary edge-list file, have every rank load only its
//! slice of the file, build the distributed structure, and analyze it
//! (components + BFS from the largest component's root + validation).
//!
//! The paper notes edge-list partitioning composes with existing file
//! formats because "in many graph file formats the edge list is already
//! sorted"; this example goes one step further and lets the distributed
//! sample sort handle an unsorted file.
//!
//! Usage: `cargo run --release --example file_pipeline [scale] [ranks]`

use havoq::prelude::*;
use havoq_graph::io;

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(13);
    let ranks: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);

    let dir = std::env::temp_dir().join(format!("havoq-file-pipeline-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("graph.bin");

    // 1. produce the dataset (in real use: downloaded / exported elsewhere)
    let gen = RmatGenerator::graph500(scale);
    let edges = gen.symmetric_edges(42);
    io::write_binary(&path, &edges).expect("write graph file");
    let total = io::binary_edge_count(&path).expect("count edges");
    println!("== file-based pipeline ==");
    println!("wrote {} edges ({} MiB) to {}", total, total * 16 / (1 << 20), path.display());

    // 2. each rank loads only its slice of the file and builds collectively
    let path_ref = &path;
    let results = CommWorld::run(ranks, |ctx| {
        let lo = total * ctx.rank() as u64 / ctx.size() as u64;
        let hi = total * (ctx.rank() as u64 + 1) / ctx.size() as u64;
        let local = io::read_binary_slice(path_ref, lo, hi - lo).expect("read slice");
        let g = havoq_graph::dist::DistGraph::build(
            ctx,
            local,
            PartitionStrategy::EdgeList,
            GraphConfig::default(),
        );

        // 3. analyze: components, then BFS from the giant component's root
        let cc = connected_components(ctx, &g, &CcConfig::default());
        // smallest label = root of some component; find the giant one by
        // counting label frequencies locally and reducing the largest
        let mut counts = std::collections::HashMap::new();
        for v in g.local_vertices() {
            if g.is_master(v) {
                *counts.entry(cc.local_state[g.local_index(v)].component).or_insert(0u64) += 1;
            }
        }
        let (label, _) =
            counts.iter().max_by_key(|&(_, c)| c).map(|(l, c)| (*l, *c)).unwrap_or((0, 0));
        // not necessarily globally giant, but the root of the giant
        // component has the globally maximal count; reduce by trying the
        // min label (components are labeled by their minimum vertex)
        let giant_root = ctx.all_reduce_min(label);

        let bfs_result = bfs(ctx, &g, VertexId(giant_root), &BfsConfig::default());
        let report = validate_bfs(ctx, &g, VertexId(giant_root), &bfs_result.local_state);
        (cc.num_components, giant_root, bfs_result, report)
    });

    let (components, root, b, report) = &results[0];
    println!("\ncomponents:        {components}");
    println!("giant-ish root:    v{root}");
    println!("BFS visited:       {} vertices, depth {}", b.visited_count, b.max_level);
    println!("BFS throughput:    {:.2} MTEPS", b.teps() / 1e6);
    println!("validation:        {}", if report.is_valid() { "PASSED" } else { "FAILED" });
    assert!(report.is_valid());

    std::fs::remove_dir_all(&dir).ok();
}
