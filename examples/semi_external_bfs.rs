//! Domain scenario: traversing a graph larger than DRAM from simulated
//! node-local NVRAM (the paper's headline capability).
//!
//! The edge targets live behind the user-space page cache on a simulated
//! NAND-Flash device (Fusion-io-like latency profile); CSR offsets and all
//! algorithm state stay in memory — the semi-external design of Section
//! VIII-A. The example compares a DRAM-resident run against NVRAM runs with
//! shrinking cache budgets and reports the page-cache hit rates that make
//! the modest slowdown possible.
//!
//! Usage: `cargo run --release --example semi_external_bfs [scale] [ranks]`

use havoq::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(13);
    let ranks: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);

    let gen = RmatGenerator::graph500(scale);
    let edges = gen.symmetric_edges(11);
    let bytes_per_rank = edges.len() * 8 / ranks;

    println!("== semi-external BFS: DRAM vs simulated NVRAM ==");
    println!(
        "graph:  RMAT scale {scale}, {} directed edges (~{} KiB of targets per rank)",
        edges.len(),
        bytes_per_rank / 1024
    );
    println!("world:  {ranks} ranks, Fusion-io latency profile on misses\n");

    let run = |cfg: GraphConfig, label: &str| {
        let out = CommWorld::run(ranks, |ctx| {
            let g = DistGraph::build_replicated(ctx, &edges, PartitionStrategy::EdgeList, cfg);
            let r = bfs(ctx, &g, VertexId(0), &BfsConfig::default());
            let cache = g.csr().cache_stats();
            (r.traversed_edges, r.elapsed, cache)
        });
        let (traversed, elapsed, cache) = &out[0];
        let teps = *traversed as f64 / elapsed.as_secs_f64();
        match cache {
            None => println!("{label:<28} {:>10.2} MTEPS   (no cache: DRAM)", teps / 1e6),
            Some(c) => println!(
                "{label:<28} {:>10.2} MTEPS   hit rate {:>6.2}%  ({} misses)",
                teps / 1e6,
                100.0 * c.hit_rate(),
                c.misses
            ),
        }
        teps
    };

    let dram = run(GraphConfig::default(), "DRAM-resident");
    // cache budgets as a fraction of the per-rank edge bytes
    for denom in [2usize, 8, 32] {
        let pages = (bytes_per_rank / 4096 / denom).max(8);
        let cfg = GraphConfig::external(
            DeviceProfile::fusion_io(),
            PageCacheConfig {
                page_size: 4096,
                capacity_pages: pages,
                shards: 8,
                readahead_pages: 8,
                ..PageCacheConfig::default()
            },
        );
        let label = format!("NVRAM, cache = data/{denom}");
        let teps = run(cfg, &label);
        println!("{:<28} {:>9.0}% of DRAM performance", "", 100.0 * teps / dram);
    }

    println!("\nThe paper's Figure 9 shows the same shape at trillion-edge scale:");
    println!("32x more data than DRAM at only a 39% TEPS penalty, because the");
    println!("vertex-ordered visitor queue keeps adjacency reads page-local.");
}
