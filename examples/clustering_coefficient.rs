//! Domain scenario: global clustering coefficient via distributed triangle
//! counting.
//!
//! Triangle counting is the primitive the paper cites for clustering
//! metrics (Watts–Strogatz). This example reproduces the classic
//! small-world observation: as rewire probability rises, the clustering
//! coefficient collapses long before the diameter does — computed entirely
//! with the asynchronous triangle visitor of Algorithm 6 plus a BFS for the
//! depth column.
//!
//! Usage: `cargo run --release --example clustering_coefficient [vertices] [ranks]`

use havoq::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let vertices: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(4096);
    let ranks: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let degree = 12u64;

    println!("== small-world clustering via triangle counting ==");
    println!("graph:  Watts-Strogatz, {vertices} vertices, uniform degree {degree}");
    println!("world:  {ranks} simulated ranks\n");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>10}",
        "rewire", "triangles", "clustering", "BFS depth", "visitors"
    );

    for rewire in [0.0, 0.01, 0.05, 0.1, 0.2, 0.4, 0.8] {
        let gen = SmallWorldGenerator::new(vertices, degree).with_rewire(rewire);
        let edges = gen.symmetric_edges(5);
        let out = CommWorld::run(ranks, |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default(),
            );
            let t = triangle_count(ctx, &g, &TriangleConfig::default());
            let b = bfs(ctx, &g, VertexId(0), &BfsConfig::default());
            let visitors = ctx.all_reduce_sum(t.stats.visitors_executed);
            (t.triangles, b.max_level, visitors)
        });
        let (triangles, depth, visitors) = out[0];
        // global clustering coefficient = 3 * triangles / open wedges;
        // uniform degree k gives V * C(k, 2) wedges
        let wedges = vertices as f64 * (degree * (degree - 1) / 2) as f64;
        let clustering = 3.0 * triangles as f64 / wedges;
        println!(
            "{:>7.0}% {:>12} {:>12.4} {:>12} {:>10}",
            rewire * 100.0,
            triangles,
            clustering,
            depth,
            visitors
        );
    }

    println!("\nInterpretation: a few percent of rewiring collapses the BFS depth");
    println!("(small-world effect) while clustering only degrades gradually —");
    println!("the same topology lever the paper's Figures 7 and 10 exploit.");
}
