//! Quickstart: generate a Graph500-style RMAT graph, partition it with the
//! paper's edge-list partitioning across simulated ranks, and run a
//! distributed asynchronous BFS.
//!
//! Usage: `cargo run --release --example quickstart [scale] [ranks]`

use havoq::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(14);
    let ranks: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);

    println!("== havoq quickstart ==");
    println!("graph:  RMAT scale {scale} (Graph500 params), edge factor 16, symmetrized");
    println!("world:  {ranks} simulated ranks (threads)");

    let gen = RmatGenerator::graph500(scale);
    let edges = gen.symmetric_edges(42);
    println!("        {} vertices, {} directed edges", gen.num_vertices(), edges.len());

    let results = CommWorld::run(ranks, |ctx| {
        // every rank takes its slice and the build redistributes via the
        // distributed sample sort
        let g = DistGraph::build_replicated(
            ctx,
            &edges,
            PartitionStrategy::EdgeList,
            GraphConfig::default(),
        );
        let r = bfs(ctx, &g, VertexId(0), &BfsConfig::default());
        (r, g.csr().num_edges())
    });

    let (r0, _) = &results[0];
    println!("\n-- BFS from vertex 0 --");
    println!("visited vertices:   {}", r0.visited_count);
    println!("max BFS level:      {}", r0.max_level);
    println!("traversed edges:    {}", r0.traversed_edges);
    println!("harmonic TEPS:      {:.2} M", r0.teps() / 1e6);

    println!("\n-- per-rank balance (the paper's Figure 2 claim) --");
    let edge_counts: Vec<u64> = results.iter().map(|(_, e)| *e).collect();
    let max = *edge_counts.iter().max().unwrap() as f64;
    let mean = edge_counts.iter().sum::<u64>() as f64 / ranks as f64;
    println!("edges per rank:     {edge_counts:?}");
    println!(
        "imbalance (max/mean): {:.4}  (edge-list partitioning is even by construction)",
        max / mean
    );

    println!("\n-- visitor-queue statistics (rank 0) --");
    let s = &r0.stats;
    println!("visitors pushed:    {}", s.visitors_pushed);
    println!("visitors executed:  {}", s.visitors_executed);
    println!("ghost-filtered:     {} (hub traffic that never hit the network)", s.ghost_filtered);
    println!("replica forwards:   {}", s.replica_forwards);
    println!("termination waves:  {}", s.termination_waves);
}
