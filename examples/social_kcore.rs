//! Domain scenario: k-core decomposition of a synthetic social network.
//!
//! The paper motivates k-core with social-science applications (Seidman's
//! cohesion cores). Social graphs are scale-free, so we model one with
//! preferential attachment, then peel cores of increasing k — exactly the
//! workload of the paper's Figure 6 — and report the shrinking core sizes
//! and the cascade sizes the asynchronous traversal processed.
//!
//! Usage: `cargo run --release --example social_kcore [vertices] [ranks]`

use havoq::prelude::*;
use havoq_core::algorithms::kcore::{kcore, KCoreConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let vertices: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1 << 14);
    let ranks: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);

    println!("== social-network k-core decomposition ==");
    println!("graph:  preferential attachment, {vertices} members, 8 links each");
    println!("world:  {ranks} simulated ranks\n");

    let gen = PaGenerator::new(vertices, 8);
    let edges = gen.symmetric_edges(7);

    println!(
        "{:>6} {:>12} {:>14} {:>12} {:>10}",
        "k", "core size", "% of network", "visitors", "time"
    );
    for k in [2u64, 4, 8, 12, 16, 24, 32] {
        let out = CommWorld::run(ranks, |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default(),
            );
            let r = kcore(ctx, &g, k, &KCoreConfig::default());
            let visitors = ctx.all_reduce_sum(r.stats.visitors_executed);
            (r.alive_count, visitors, r.elapsed)
        });
        let (alive, visitors, elapsed) = out[0];
        println!(
            "{:>6} {:>12} {:>13.1}% {:>12} {:>9.0?}",
            k,
            alive,
            100.0 * alive as f64 / vertices as f64,
            visitors,
            elapsed
        );
    }

    println!("\nInterpretation: preferential attachment concentrates cohesion in an");
    println!("old, densely-linked nucleus; raising k peels the sparse periphery in");
    println!("recursive cascades (the dynamic removals of Algorithm 4).");
}
