//! Epoch-stamped checkpoint blobs on the NVRAM page cache.
//!
//! A [`CheckpointStore`] is one rank's durable checkpoint log: an
//! append-only sequence of self-validating blobs, one per checkpoint
//! epoch, layered on a [`PageCache`] so checkpoint traffic flows through
//! the same write-behind machinery as the edge set (in async I/O mode the
//! serialize-and-write on the traversal's critical path hands its dirty
//! pages to the background drain).
//!
//! Each blob is framed so that a reader can judge, from the bytes alone,
//! whether the write completed:
//!
//! ```text
//! [ magic u64 | version u64 | epoch u64 | len u64 | checksum u64 ]  header
//! [ payload: len bytes ]
//! [ commit u64 ^ epoch ]                                           marker
//! ```
//!
//! The commit marker is written *after* the payload; a rank that dies
//! mid-write leaves a header and a payload prefix but no marker, and
//! [`CheckpointStore::read_epoch`] rejects the blob (`Torn`). The FNV-1a
//! checksum additionally rejects blobs whose payload bytes were damaged.
//! Recovery then walks epochs downward via
//! [`CheckpointStore::latest_complete_epoch`] and the world agrees on the
//! minimum across ranks.
//!
//! Only the byte framing is durable; the epoch → offset directory is kept
//! in memory, standing in for the checkpoint-directory file a real
//! deployment would keep beside the log.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::cache::PageCache;

const MAGIC: u64 = 0x4856_4f51_434b_5054; // "HVOQCKPT"
const COMMIT: u64 = 0xC0_4412_17ED_5AFE_u64;
const VERSION: u64 = 1;

/// Bytes before the payload: magic, version, epoch, len, checksum.
pub const CHECKPOINT_HEADER_BYTES: usize = 40;
/// Bytes after the payload: the commit marker.
pub const CHECKPOINT_COMMIT_BYTES: usize = 8;

/// Why a checkpoint blob was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// No blob was ever written for this epoch.
    UnknownEpoch,
    /// The header does not start with the checkpoint magic.
    BadMagic,
    /// The header's layout version is not one this reader understands.
    BadVersion,
    /// The header's epoch stamp disagrees with the directory.
    EpochMismatch,
    /// The commit marker is absent: the writer died mid-write.
    Torn,
    /// Commit marker present but the payload bytes fail their checksum.
    ChecksumMismatch,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Self::UnknownEpoch => "no checkpoint written for this epoch",
            Self::BadMagic => "checkpoint header magic mismatch",
            Self::BadVersion => "checkpoint layout version not understood",
            Self::EpochMismatch => "checkpoint epoch stamp mismatch",
            Self::Torn => "checkpoint torn: commit marker missing",
            Self::ChecksumMismatch => "checkpoint payload checksum mismatch",
        };
        f.write_str(s)
    }
}

impl std::error::Error for CheckpointError {}

/// FNV-1a over the payload bytes.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One rank's checkpoint log over a cached block device.
pub struct CheckpointStore {
    cache: Arc<PageCache>,
    /// Next append offset on the device.
    next_offset: u64,
    /// Epoch → start offset of the most recent blob written for it.
    dir: BTreeMap<u64, u64>,
    epochs_written: u64,
    torn_writes: u64,
    bytes_written: u64,
}

impl CheckpointStore {
    /// Open an empty store on `cache`, appending from offset 0.
    pub fn new(cache: Arc<PageCache>) -> Self {
        Self {
            cache,
            next_offset: 0,
            dir: BTreeMap::new(),
            epochs_written: 0,
            torn_writes: 0,
            bytes_written: 0,
        }
    }

    pub fn cache(&self) -> &Arc<PageCache> {
        &self.cache
    }

    /// Complete checkpoint epochs committed (torn writes excluded).
    pub fn epochs_written(&self) -> u64 {
        self.epochs_written
    }

    /// Writes deliberately left without a commit marker.
    pub fn torn_writes(&self) -> u64 {
        self.torn_writes
    }

    /// Total bytes handed to the device (headers and markers included).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    fn header_bytes(epoch: u64, payload: &[u8]) -> [u8; CHECKPOINT_HEADER_BYTES] {
        let mut h = [0u8; CHECKPOINT_HEADER_BYTES];
        h[0..8].copy_from_slice(&MAGIC.to_le_bytes());
        h[8..16].copy_from_slice(&VERSION.to_le_bytes());
        h[16..24].copy_from_slice(&epoch.to_le_bytes());
        h[24..32].copy_from_slice(&(payload.len() as u64).to_le_bytes());
        h[32..40].copy_from_slice(&fnv1a(payload).to_le_bytes());
        h
    }

    /// Reserve a fresh page-aligned extent for a blob of `total` bytes.
    fn reserve(&mut self, total: usize) -> u64 {
        let page = self.cache.config().page_size as u64;
        let aligned = (total as u64).div_ceil(page) * page;
        let base = self.next_offset;
        self.next_offset += aligned;
        self.cache.note_len(self.next_offset);
        base
    }

    /// Commit `payload` as checkpoint `epoch`: header, payload, then the
    /// commit marker. Re-writing an epoch (the retry after a restore)
    /// appends a fresh blob and repoints the directory at it.
    pub fn write_epoch(&mut self, epoch: u64, payload: &[u8]) {
        let total = CHECKPOINT_HEADER_BYTES + payload.len() + CHECKPOINT_COMMIT_BYTES;
        let base = self.reserve(total);
        self.cache.write_at(base, &Self::header_bytes(epoch, payload));
        self.cache.write_at(base + CHECKPOINT_HEADER_BYTES as u64, payload);
        let marker = (COMMIT ^ epoch).to_le_bytes();
        self.cache.write_at(base + (CHECKPOINT_HEADER_BYTES + payload.len()) as u64, &marker);
        self.dir.insert(epoch, base);
        self.epochs_written += 1;
        self.bytes_written += total as u64;
    }

    /// Simulate a rank dying while writing checkpoint `epoch`: the header
    /// and roughly half the payload reach the device, the commit marker
    /// never does. The directory still points at the torn blob — exactly
    /// what a restarted rank would find on disk — and `read_epoch` must
    /// reject it.
    pub fn write_epoch_torn(&mut self, epoch: u64, payload: &[u8]) {
        let total = CHECKPOINT_HEADER_BYTES + payload.len() + CHECKPOINT_COMMIT_BYTES;
        let base = self.reserve(total);
        self.cache.write_at(base, &Self::header_bytes(epoch, payload));
        let kept = payload.len() / 2;
        self.cache.write_at(base + CHECKPOINT_HEADER_BYTES as u64, &payload[..kept]);
        self.dir.insert(epoch, base);
        self.torn_writes += 1;
        self.bytes_written += (CHECKPOINT_HEADER_BYTES + kept) as u64;
    }

    /// Read and validate checkpoint `epoch`, returning its payload. All
    /// verdicts come from the stored bytes: magic, version and epoch stamp
    /// must match, the commit marker must be present, and the payload must
    /// pass its checksum.
    pub fn read_epoch(&self, epoch: u64) -> Result<Vec<u8>, CheckpointError> {
        let &base = self.dir.get(&epoch).ok_or(CheckpointError::UnknownEpoch)?;
        let mut header = [0u8; CHECKPOINT_HEADER_BYTES];
        self.cache.read_at(base, &mut header);
        let word = |i: usize| u64::from_le_bytes(header[i * 8..i * 8 + 8].try_into().unwrap());
        if word(0) != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        if word(1) != VERSION {
            return Err(CheckpointError::BadVersion);
        }
        if word(2) != epoch {
            return Err(CheckpointError::EpochMismatch);
        }
        let len = word(3) as usize;
        let checksum = word(4);
        let mut payload = vec![0u8; len];
        self.cache.read_at(base + CHECKPOINT_HEADER_BYTES as u64, &mut payload);
        let mut marker = [0u8; CHECKPOINT_COMMIT_BYTES];
        self.cache.read_at(base + (CHECKPOINT_HEADER_BYTES + len) as u64, &mut marker);
        if u64::from_le_bytes(marker) != COMMIT ^ epoch {
            return Err(CheckpointError::Torn);
        }
        if fnv1a(&payload) != checksum {
            return Err(CheckpointError::ChecksumMismatch);
        }
        Ok(payload)
    }

    /// The highest epoch whose blob validates end to end, or `None`. Walks
    /// the directory downward so torn or damaged tails are skipped — this
    /// is each rank's vote in the collective restore-point agreement.
    pub fn latest_complete_epoch(&self) -> Option<u64> {
        self.latest_complete_epoch_with_fallbacks().0
    }

    /// Like [`Self::latest_complete_epoch`], also reporting how many
    /// *committed but corrupt* epochs (commit marker present, payload
    /// checksum failed) were skipped on the way down. Such a blob is
    /// treated exactly like a torn one — skipped, and the world restores
    /// from the next-oldest intact epoch — but it is counted separately:
    /// torn blobs are expected debris of an injected crash, while a
    /// checksum mismatch means silent storage corruption was caught.
    pub fn latest_complete_epoch_with_fallbacks(&self) -> (Option<u64>, u64) {
        let mut fallbacks = 0u64;
        for &e in self.dir.keys().rev() {
            match self.read_epoch(e) {
                Ok(_) => return (Some(e), fallbacks),
                Err(CheckpointError::ChecksumMismatch) => fallbacks += 1,
                Err(_) => {}
            }
        }
        (None, fallbacks)
    }

    /// Fault injection for tests: flip one payload byte of `epoch`'s
    /// newest blob *through the cache*, so the page-level write-back
    /// checksums stay consistent with the damaged bytes and only the
    /// blob's own checksum can catch it — silent corruption of a
    /// committed checkpoint. Returns `false` when the epoch is unknown or
    /// its payload is empty.
    pub fn corrupt_committed_payload(&self, epoch: u64) -> bool {
        let Some(&base) = self.dir.get(&epoch) else { return false };
        let mut header = [0u8; CHECKPOINT_HEADER_BYTES];
        self.cache.read_at(base, &mut header);
        let len = u64::from_le_bytes(header[24..32].try_into().unwrap());
        if len == 0 {
            return false;
        }
        let off = base + CHECKPOINT_HEADER_BYTES as u64 + len / 2;
        let mut b = [0u8; 1];
        self.cache.read_at(off, &mut b);
        self.cache.write_at(off, &[b[0] ^ 0x40]);
        true
    }

    /// Drop every epoch above `epoch` from the directory. Recovery calls
    /// this after rewinding: blobs past the restore point may mix
    /// incarnations (a complete blob from before the crash, the torn blob
    /// itself) and must never satisfy a later `latest_complete_epoch`.
    pub fn truncate_above(&mut self, epoch: u64) {
        self.dir.retain(|&e, _| e <= epoch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{PageCache, PageCacheConfig};
    use crate::device::{BlockDevice, MemDevice};
    use crate::io::IoConfig;

    fn cache(pages: usize) -> Arc<PageCache> {
        let dev = Arc::new(MemDevice::new());
        Arc::new(PageCache::new(
            dev as Arc<dyn BlockDevice>,
            PageCacheConfig {
                page_size: 256,
                capacity_pages: pages,
                shards: 2,
                ..PageCacheConfig::default()
            },
        ))
    }

    fn payload(epoch: u64, len: usize) -> Vec<u8> {
        (0..len).map(|i| (i as u64 ^ epoch.wrapping_mul(31)) as u8).collect()
    }

    #[test]
    fn roundtrip_multiple_epochs() {
        let mut st = CheckpointStore::new(cache(8));
        for e in 0..5 {
            st.write_epoch(e, &payload(e, 100 + 37 * e as usize));
        }
        for e in 0..5 {
            assert_eq!(st.read_epoch(e).unwrap(), payload(e, 100 + 37 * e as usize));
        }
        assert_eq!(st.latest_complete_epoch(), Some(4));
        assert_eq!(st.epochs_written(), 5);
        assert_eq!(st.torn_writes(), 0);
    }

    #[test]
    fn unknown_epoch_is_rejected() {
        let mut st = CheckpointStore::new(cache(4));
        st.write_epoch(1, b"x");
        assert_eq!(st.read_epoch(7), Err(CheckpointError::UnknownEpoch));
    }

    #[test]
    fn torn_write_is_rejected_and_recovery_steps_back() {
        let mut st = CheckpointStore::new(cache(8));
        st.write_epoch(0, &payload(0, 300));
        st.write_epoch(1, &payload(1, 300));
        st.write_epoch_torn(2, &payload(2, 300));
        assert_eq!(st.read_epoch(2), Err(CheckpointError::Torn));
        assert_eq!(st.latest_complete_epoch(), Some(1));
        assert_eq!(st.torn_writes(), 1);
        // the retry after restore commits the epoch for real
        st.write_epoch(2, &payload(2, 300));
        assert_eq!(st.read_epoch(2).unwrap(), payload(2, 300));
        assert_eq!(st.latest_complete_epoch(), Some(2));
    }

    #[test]
    fn truncate_above_hides_stale_completes() {
        // crash at epoch 2 after epoch 2 was once complete (second
        // incarnation): without truncation the stale complete blob would
        // win latest_complete_epoch and mix incarnations.
        let mut st = CheckpointStore::new(cache(8));
        st.write_epoch(0, &payload(0, 64));
        st.write_epoch(1, &payload(1, 64));
        st.write_epoch(2, &payload(2, 64));
        st.truncate_above(1); // restore to epoch 1
        assert_eq!(st.latest_complete_epoch(), Some(1));
        assert_eq!(st.read_epoch(2), Err(CheckpointError::UnknownEpoch));
        st.write_epoch_torn(2, &payload(2, 64));
        assert_eq!(st.latest_complete_epoch(), Some(1), "torn retry must not resurface");
    }

    #[test]
    fn corrupt_committed_epoch_is_treated_like_torn() {
        // The commit marker landed, then the payload bytes were damaged:
        // the FNV checksum rejects the blob and recovery steps back to the
        // next-oldest intact epoch, reporting one fallback.
        let mut st = CheckpointStore::new(cache(8));
        st.write_epoch(0, &payload(0, 300));
        st.write_epoch(1, &payload(1, 300));
        st.write_epoch(2, &payload(2, 300));
        assert!(st.corrupt_committed_payload(2));
        assert_eq!(st.read_epoch(2), Err(CheckpointError::ChecksumMismatch));
        assert_eq!(st.latest_complete_epoch_with_fallbacks(), (Some(1), 1));
        assert_eq!(st.read_epoch(1).unwrap(), payload(1, 300));
        // a torn tail is expected crash debris, not a counted fallback
        st.write_epoch_torn(3, &payload(3, 300));
        assert_eq!(st.latest_complete_epoch_with_fallbacks(), (Some(1), 1));
        // intact stores report zero fallbacks
        let mut ok = CheckpointStore::new(cache(8));
        ok.write_epoch(0, &payload(0, 64));
        assert_eq!(ok.latest_complete_epoch_with_fallbacks(), (Some(0), 0));
    }

    #[test]
    fn empty_payload_roundtrips() {
        let mut st = CheckpointStore::new(cache(4));
        st.write_epoch(3, &[]);
        assert_eq!(st.read_epoch(3).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn blobs_survive_cache_pressure_and_async_io() {
        // 2-page cache, 5 blobs of ~3 pages each: every read refaults
        // through the device, in async write-behind mode.
        let dev = Arc::new(MemDevice::new());
        let c = Arc::new(PageCache::new(
            dev as Arc<dyn BlockDevice>,
            PageCacheConfig {
                page_size: 256,
                capacity_pages: 2,
                shards: 1,
                io: IoConfig::asynchronous(),
                ..PageCacheConfig::default()
            },
        ));
        let mut st = CheckpointStore::new(c);
        for e in 0..5 {
            st.write_epoch(e, &payload(e, 700));
        }
        for e in (0..5).rev() {
            assert_eq!(st.read_epoch(e).unwrap(), payload(e, 700), "epoch {e}");
        }
        let stats = st.cache().stats();
        assert!(stats.evictions > 0, "blobs must spill through the cache");
    }

    #[test]
    fn header_constants_are_consistent() {
        let h = CheckpointStore::header_bytes(9, b"abc");
        assert_eq!(u64::from_le_bytes(h[0..8].try_into().unwrap()), MAGIC);
        assert_eq!(u64::from_le_bytes(h[16..24].try_into().unwrap()), 9);
        assert_eq!(u64::from_le_bytes(h[24..32].try_into().unwrap()), 3);
    }
}
