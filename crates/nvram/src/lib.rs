//! Simulated NVRAM storage stack for semi-external-memory graph processing.
//!
//! The paper stores trillion-edge graphs on node-local NAND Flash behind a
//! *custom user-space page cache* with a POSIX-like interface (Section II-B):
//! Linux's page cache was a bottleneck, so the authors bypass it with
//! `O_DIRECT` and manage caching themselves, designed for highly concurrent
//! I/O. No NAND Flash is attached here, so this crate reproduces the stack
//! as a simulation:
//!
//! - [`device`] — block devices: plain memory (the DRAM tier), a real file,
//!   and [`device::SimNvram`], which wraps either with a configurable
//!   per-access latency and bounded concurrency to model a NAND device's
//!   channel parallelism. Profiles approximate the paper's hardware tiers
//!   (Fusion-io, SATA SSD) with latencies scaled down so experiments finish
//!   at simulation scale — ratios between tiers are preserved.
//! - [`cache`] — the user-space page cache: sharded, CLOCK (second-chance)
//!   eviction, write-back, full hit/miss/eviction statistics. Device I/O
//!   never happens under a shard lock.
//! - [`io`] — the asynchronous I/O engine: a bounded request queue sized
//!   from the device's channel parallelism, a background worker pool for
//!   non-blocking readahead and write-behind, and the write-back registry
//!   that keeps in-flight victims visible to faults.
//! - [`extvec`] — typed external arrays over the cache, used by the
//!   semi-external CSR (vertex state in DRAM, edge targets in "NVRAM").

pub mod cache;
pub mod checkpoint;
pub mod device;
pub mod extvec;
pub mod io;

pub use cache::{shard_lock_held, CacheStatsSnapshot, EvictionPolicy, PageCache, PageCacheConfig};
pub use checkpoint::{CheckpointError, CheckpointStore};
pub use device::{
    BlockDevice, DeviceProfile, DeviceStatsSnapshot, FileDevice, MemDevice, SimNvram,
};
pub use extvec::{ExtStore, ExternalVec, Pod};
pub use io::{IoConfig, IoMode, IoStatsSnapshot};
