//! Typed external arrays over the page cache.
//!
//! The paper's semi-external design keeps the vertex set (algorithm state,
//! CSR offsets) in DRAM and the edge set in NVRAM. [`ExternalVec<T>`] is the
//! edge-set container: a fixed-length typed array whose bytes live behind a
//! [`PageCache`], with bulk range reads for adjacency-list scans.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::cache::PageCache;

/// Plain-old-data element that can live on a byte-addressed device.
///
/// # Safety
/// Implementors must be fixed-size values with no padding or invalid bit
/// patterns under the provided little-endian encoding.
pub trait Pod: Copy + Sized {
    const BYTES: usize;
    fn write_le(&self, out: &mut [u8]);
    fn read_le(inp: &[u8]) -> Self;
}

macro_rules! impl_pod_int {
    ($($t:ty),*) => {$(
        impl Pod for $t {
            const BYTES: usize = std::mem::size_of::<$t>();
            #[inline]
            fn write_le(&self, out: &mut [u8]) {
                out[..Self::BYTES].copy_from_slice(&self.to_le_bytes());
            }
            #[inline]
            fn read_le(inp: &[u8]) -> Self {
                let mut b = [0u8; std::mem::size_of::<$t>()];
                b.copy_from_slice(&inp[..Self::BYTES]);
                <$t>::from_le_bytes(b)
            }
        }
    )*};
}

impl_pod_int!(u8, u16, u32, u64, i8, i16, i32, i64, f32, f64);

/// Bump allocator that parcels one cached device into typed arrays.
pub struct ExtStore {
    cache: Arc<PageCache>,
    next_offset: AtomicU64,
}

impl ExtStore {
    pub fn new(cache: Arc<PageCache>) -> Self {
        Self { cache, next_offset: AtomicU64::new(0) }
    }

    pub fn cache(&self) -> &Arc<PageCache> {
        &self.cache
    }

    /// Allocate a zeroed external array of `len` elements, page-aligned so
    /// arrays never share pages (matches the paper's per-structure files).
    pub fn alloc<T: Pod>(&self, len: usize) -> ExternalVec<T> {
        let bytes = (len * T::BYTES) as u64;
        let page = self.cache.config().page_size as u64;
        let aligned = bytes.div_ceil(page) * page;
        let base = self.next_offset.fetch_add(aligned, Ordering::SeqCst);
        // Announce the allocated extent so readahead can run to the end of
        // the array even before its bytes reach the device.
        self.cache.note_len(base + aligned);
        ExternalVec { cache: Arc::clone(&self.cache), base, len, _t: PhantomData }
    }

    /// Allocate and fill from a slice.
    pub fn alloc_from<T: Pod>(&self, data: &[T]) -> ExternalVec<T> {
        let v = self.alloc::<T>(data.len());
        v.write_range(0, data);
        v
    }
}

/// Fixed-length typed array stored behind the page cache.
pub struct ExternalVec<T: Pod> {
    cache: Arc<PageCache>,
    base: u64,
    len: usize,
    _t: PhantomData<T>,
}

impl<T: Pod> ExternalVec<T> {
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn offset_of(&self, index: usize) -> u64 {
        debug_assert!(index <= self.len, "external index {index} out of bounds {}", self.len);
        self.base + (index * T::BYTES) as u64
    }

    /// Read one element.
    pub fn get(&self, index: usize) -> T {
        assert!(index < self.len, "index {index} out of bounds {}", self.len);
        let mut buf = [0u8; 16];
        self.cache.read_at(self.offset_of(index), &mut buf[..T::BYTES]);
        T::read_le(&buf)
    }

    /// Write one element.
    pub fn set(&self, index: usize, value: T) {
        assert!(index < self.len, "index {index} out of bounds {}", self.len);
        let mut buf = [0u8; 16];
        value.write_le(&mut buf);
        self.cache.write_at(self.offset_of(index), &buf[..T::BYTES]);
    }

    /// Hint that `[start, start + len)` will be read soon: in async I/O
    /// mode this queues background prefetch for the covered pages and
    /// returns immediately (no-op otherwise).
    pub fn advise(&self, start: usize, len: usize) {
        if len == 0 {
            return;
        }
        debug_assert!(start + len <= self.len, "advise range out of bounds");
        self.cache.advise(self.offset_of(start), (len * T::BYTES) as u64);
    }

    /// Bulk-read `[start, start + out.len())` — the adjacency-scan fast path:
    /// one cache traversal per page rather than per element.
    pub fn read_range(&self, start: usize, out: &mut [T]) {
        assert!(start + out.len() <= self.len, "range out of bounds");
        if out.is_empty() {
            return;
        }
        let mut bytes = vec![0u8; out.len() * T::BYTES];
        self.cache.read_at(self.offset_of(start), &mut bytes);
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = T::read_le(&bytes[i * T::BYTES..]);
        }
    }

    /// Bulk-write `data` at `start`.
    pub fn write_range(&self, start: usize, data: &[T]) {
        assert!(start + data.len() <= self.len, "range out of bounds");
        if data.is_empty() {
            return;
        }
        let mut bytes = vec![0u8; data.len() * T::BYTES];
        for (i, v) in data.iter().enumerate() {
            v.write_le(&mut bytes[i * T::BYTES..]);
        }
        self.cache.write_at(self.offset_of(start), &bytes);
    }

    /// Copy the whole array into memory (tests / small arrays only).
    pub fn to_vec(&self) -> Vec<T> {
        let mut out = vec![T::read_le(&[0u8; 16]); self.len];
        self.read_range(0, &mut out);
        out
    }
}

impl ExternalVec<u8> {
    /// Byte-granular bulk read straight into `out`, skipping the generic
    /// per-element decode loop — the compressed-CSR decode path reads
    /// varint byte slices at arbitrary (unaligned) offsets, routinely
    /// spanning page boundaries, and the cache already splits one logical
    /// read across the covered pages.
    pub fn read_bytes(&self, start: usize, out: &mut [u8]) {
        assert!(start + out.len() <= self.len, "range out of bounds");
        if out.is_empty() {
            return;
        }
        self.cache.read_at(self.offset_of(start), out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::PageCacheConfig;
    use crate::device::{BlockDevice, MemDevice};

    fn store(pages: usize) -> ExtStore {
        let dev = Arc::new(MemDevice::new());
        let cache = Arc::new(PageCache::new(
            dev as Arc<dyn BlockDevice>,
            PageCacheConfig {
                page_size: 128,
                capacity_pages: pages,
                shards: 2,
                ..PageCacheConfig::default()
            },
        ));
        ExtStore::new(cache)
    }

    #[test]
    fn get_set_roundtrip() {
        let st = store(8);
        let v = st.alloc::<u64>(100);
        for i in 0..100 {
            v.set(i, (i * i) as u64);
        }
        for i in 0..100 {
            assert_eq!(v.get(i), (i * i) as u64);
        }
    }

    #[test]
    fn zero_initialized() {
        let st = store(8);
        let v = st.alloc::<u32>(50);
        assert!(v.to_vec().iter().all(|&x| x == 0));
    }

    #[test]
    fn bulk_range_roundtrip_across_pages() {
        let st = store(4); // tiny cache forces eviction during the scan
        let data: Vec<u64> = (0..1000).map(|i| i * 3 + 1).collect();
        let v = st.alloc_from(&data);
        let mut out = vec![0u64; 1000];
        v.read_range(0, &mut out);
        assert_eq!(out, data);
        // partial range
        let mut mid = vec![0u64; 10];
        v.read_range(495, &mut mid);
        assert_eq!(mid, data[495..505]);
    }

    #[test]
    fn arrays_do_not_alias() {
        let st = store(16);
        let a = st.alloc::<u64>(10);
        let b = st.alloc::<u64>(10);
        for i in 0..10 {
            a.set(i, 1000 + i as u64);
            b.set(i, 2000 + i as u64);
        }
        for i in 0..10 {
            assert_eq!(a.get(i), 1000 + i as u64);
            assert_eq!(b.get(i), 2000 + i as u64);
        }
    }

    #[test]
    fn mixed_element_types() {
        let st = store(8);
        let a = st.alloc::<u32>(7);
        let b = st.alloc::<f64>(7);
        for i in 0..7 {
            a.set(i, i as u32 * 11);
            b.set(i, i as f64 / 3.0);
        }
        for i in 0..7 {
            assert_eq!(a.get(i), i as u32 * 11);
            assert!((b.get(i) - i as f64 / 3.0).abs() < 1e-15);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_get_panics() {
        let st = store(4);
        let v = st.alloc::<u64>(3);
        let _ = v.get(3);
    }

    #[test]
    fn byte_reads_span_page_boundaries() {
        // page_size = 128: every 128th byte starts a new page, so these
        // windows cross one or more boundaries at unaligned offsets
        let st = store(4);
        let data: Vec<u8> = (0..1024u32).map(|i| (i.wrapping_mul(37) % 251) as u8).collect();
        let v = st.alloc_from(&data);
        for (start, len) in [(0usize, 1024usize), (127, 2), (100, 300), (511, 513), (1, 255)] {
            let mut out = vec![0u8; len];
            v.read_bytes(start, &mut out);
            assert_eq!(out, data[start..start + len], "window [{start}, +{len})");
        }
        // the generic path agrees with the byte fast path
        let mut generic = vec![0u8; 300];
        v.read_range(100, &mut generic);
        let mut fast = vec![0u8; 300];
        v.read_bytes(100, &mut fast);
        assert_eq!(generic, fast);
    }

    #[test]
    fn works_through_tiny_cache_with_spill() {
        // cache: 2 pages of 128B = 256B; array: 4KB -> constant spill
        let st = store(2);
        let n = 512;
        let v = st.alloc::<u64>(n);
        for i in 0..n {
            v.set(i, (n - i) as u64);
        }
        for i in (0..n).rev() {
            assert_eq!(v.get(i), (n - i) as u64);
        }
        let stats = st.cache().stats();
        assert!(stats.evictions > 0, "expected spill, got {stats:?}");
    }
}
