//! The asynchronous I/O engine under the page cache.
//!
//! Section II-B of the paper is explicit that NAND Flash only delivers its
//! bandwidth under *highly concurrent asynchronous I/O*. This module
//! provides that concurrency for the reproduction:
//!
//! - a bounded request queue whose depth is tied to the device's channel
//!   parallelism ([`crate::device::BlockDevice::concurrency_hint`]), so
//!   "queue depth" in the stats measures pressure against the device's real
//!   parallelism rather than an arbitrary buffer;
//! - a pool of background I/O workers draining that queue — readahead
//!   windows are *issued* by the faulting rank and filled in the
//!   background, and dirty eviction victims are queued for write-behind
//!   instead of being written while the victim's shard lock is held;
//! - a [`WritebackRegistry`] that keeps the bytes of in-flight victims
//!   visible to concurrent faults, closing the window where a page has
//!   left the cache but not yet reached the device.
//!
//! Submission never blocks: if the queue is full, writebacks are performed
//! inline by the submitter (back-pressure) and prefetches are dropped
//! (they are hints). This is what makes the engine deadlock-free — no
//! thread ever sleeps on queue space while holding cache state that a
//! worker needs.
//!
//! ## Write-behind ordering guarantees
//!
//! Each registered victim gets a globally increasing generation number.
//! A worker performing a write-back (a) skips the write entirely if a
//! newer generation of the same page has since been registered
//! (coalescing), and (b) waits for any in-flight older write of the same
//! page before starting, so device contents always converge to the newest
//! generation. Faults consult the registry before reading the device, so
//! a page can never be re-faulted from stale device bytes while its
//! newest contents are still queued.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use havoq_util::{FxHashMap, Histogram};

use crate::cache::CacheCore;
use crate::device::BlockDevice;

/// Whether the cache services faults synchronously (the original blocking
/// behaviour) or through the background I/O engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IoMode {
    /// Demand faults, readahead, and dirty-victim writes all happen on the
    /// accessing thread. Deterministic; the baseline for figure runs.
    #[default]
    Sync,
    /// Readahead and victim write-back are queued to background workers;
    /// the accessing thread only blocks on its own demand fill.
    Async,
}

/// Configuration of the I/O engine, embedded in
/// [`crate::cache::PageCacheConfig`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoConfig {
    pub mode: IoMode,
    /// Background worker threads. 0 = auto (`min(queue depth, 4)`).
    pub workers: usize,
    /// Bound on queued requests. 0 = auto: the device's
    /// `concurrency_hint()` clamped to `8..=128`, so queue depth tracks the
    /// simulated NAND channel parallelism.
    pub queue_depth: usize,
}

impl IoConfig {
    /// Asynchronous engine with auto-sized worker pool and queue.
    pub fn asynchronous() -> Self {
        Self { mode: IoMode::Async, workers: 0, queue_depth: 0 }
    }

    pub(crate) fn resolved_depth(&self, device: &Arc<dyn BlockDevice>) -> usize {
        if self.queue_depth != 0 {
            self.queue_depth
        } else {
            device.concurrency_hint().clamp(8, 128)
        }
    }

    pub(crate) fn resolved_workers(&self, depth: usize) -> usize {
        if self.workers != 0 {
            self.workers
        } else {
            depth.min(4)
        }
    }
}

/// A queued unit of background I/O.
pub(crate) enum IoRequest {
    /// Fill pages `first .. first + count` if absent.
    Prefetch { first: u64, count: usize },
    /// Write a registered eviction victim back to the device.
    WriteBack(PendingWriteback),
    /// Terminate one worker (queued behind outstanding work).
    Shutdown,
}

/// Shared state between submitters and the worker pool: the bounded queue
/// plus the observability counters (queue-depth histogram, outstanding
/// gauge, per-op service time).
pub(crate) struct IoShared {
    depth: usize,
    workers: usize,
    q: Mutex<VecDeque<IoRequest>>,
    cv: Condvar,
    /// Requests submitted but not yet completed (queued + in service).
    outstanding: AtomicU64,
    peak: AtomicU64,
    depth_hist: Mutex<Histogram>,
    service_ns: AtomicU64,
    service_ops: AtomicU64,
}

impl IoShared {
    pub(crate) fn new(depth: usize, workers: usize) -> Self {
        Self {
            depth,
            workers,
            q: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            outstanding: AtomicU64::new(0),
            peak: AtomicU64::new(0),
            depth_hist: Mutex::new(Histogram::new()),
            service_ns: AtomicU64::new(0),
            service_ops: AtomicU64::new(0),
        }
    }

    /// Non-blocking submit. On a full queue the request is handed back to
    /// the caller, who must resolve it (perform inline / drop) — never
    /// sleep on queue space.
    pub(crate) fn try_push(&self, req: IoRequest) -> Result<(), IoRequest> {
        let mut q = self.q.lock().unwrap();
        if q.len() >= self.depth {
            return Err(req);
        }
        q.push_back(req);
        let now = self.outstanding.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak.fetch_max(now, Ordering::Relaxed);
        self.depth_hist.lock().unwrap().record(now);
        self.cv.notify_one();
        Ok(())
    }

    /// Queue a shutdown token behind all outstanding work; not bounded and
    /// not counted as outstanding I/O.
    pub(crate) fn push_shutdown(&self) {
        self.q.lock().unwrap().push_back(IoRequest::Shutdown);
        self.cv.notify_all();
    }

    /// Blocking dequeue (worker side).
    pub(crate) fn pop(&self) -> IoRequest {
        let mut q = self.q.lock().unwrap();
        loop {
            if let Some(req) = q.pop_front() {
                return req;
            }
            q = self.cv.wait(q).unwrap();
        }
    }

    /// Mark one submitted request finished.
    pub(crate) fn complete(&self) {
        self.outstanding.fetch_sub(1, Ordering::Relaxed);
        // wake quiesce() waiters (and any idle worker; harmless)
        let _q = self.q.lock().unwrap();
        self.cv.notify_all();
    }

    /// Wait until every submitted request has completed.
    pub(crate) fn quiesce(&self) {
        let mut q = self.q.lock().unwrap();
        while self.outstanding.load(Ordering::Relaxed) > 0 {
            q = self.cv.wait(q).unwrap();
        }
    }

    pub(crate) fn workers(&self) -> usize {
        self.workers
    }

    pub(crate) fn record_service(&self, d: Duration) {
        self.service_ns.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
        self.service_ops.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn reset_stats(&self) {
        *self.depth_hist.lock().unwrap() = Histogram::new();
        self.peak.store(0, Ordering::Relaxed);
        self.service_ns.store(0, Ordering::Relaxed);
        self.service_ops.store(0, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self, mode: IoMode) -> IoStatsSnapshot {
        IoStatsSnapshot {
            mode,
            queue_depth: self.depth,
            workers: self.workers,
            outstanding: self.outstanding.load(Ordering::Relaxed),
            peak_outstanding: self.peak.load(Ordering::Relaxed),
            depth_hist: *self.depth_hist.lock().unwrap(),
            service_ns: self.service_ns.load(Ordering::Relaxed),
            service_ops: self.service_ops.load(Ordering::Relaxed),
        }
    }
}

/// Observability snapshot of the I/O engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct IoStatsSnapshot {
    pub mode: IoMode,
    /// Configured queue bound.
    pub queue_depth: usize,
    /// Worker pool size (0 in sync mode).
    pub workers: usize,
    /// Gauge: requests in flight at snapshot time.
    pub outstanding: u64,
    /// High-water mark of the outstanding gauge.
    pub peak_outstanding: u64,
    /// Queue depth sampled at every submission.
    pub depth_hist: Histogram,
    /// Total background service time (ns) across workers.
    pub service_ns: u64,
    /// Requests serviced by workers.
    pub service_ops: u64,
}

impl IoStatsSnapshot {
    /// Mean queue depth observed at submission time.
    pub fn avg_queue_depth(&self) -> f64 {
        self.depth_hist.mean()
    }

    /// Mean background service time per request.
    pub fn avg_service(&self) -> Duration {
        self.service_ns
            .checked_div(self.service_ops)
            .map(Duration::from_nanos)
            .unwrap_or(Duration::ZERO)
    }
}

/// Ticket for one registered eviction victim.
#[derive(Debug)]
pub(crate) struct PendingWriteback {
    pub(crate) page_no: u64,
    pub(crate) gen: u64,
}

/// Result of performing one write-back ticket.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum WbOutcome {
    /// This ticket's generation reached the device.
    Written,
    /// A newer generation superseded it; nothing was written.
    Coalesced,
}

struct WbEntry {
    gen: u64,
    data: Arc<[u8]>,
    /// A worker is currently writing this page; later generations must
    /// wait so device contents never go backwards.
    writing: bool,
}

/// In-flight dirty victims: pages evicted from the cache whose newest
/// bytes have not yet reached the device.
///
/// Victims are registered *under the shard lock* at eviction time, so
/// between eviction and write-back completion any fault of the page finds
/// its bytes here instead of reading a stale device.
pub(crate) struct WritebackRegistry {
    m: Mutex<FxHashMap<u64, WbEntry>>,
    cv: Condvar,
    next_gen: AtomicU64,
}

impl WritebackRegistry {
    pub(crate) fn new() -> Self {
        Self {
            m: Mutex::new(FxHashMap::default()),
            cv: Condvar::new(),
            next_gen: AtomicU64::new(1),
        }
    }

    /// Record the newest bytes of an evicted dirty page. Returns the ticket
    /// that must later be resolved by exactly one [`Self::perform`] call
    /// (queued or inline).
    pub(crate) fn register(&self, page_no: u64, data: &[u8]) -> PendingWriteback {
        let gen = self.next_gen.fetch_add(1, Ordering::Relaxed);
        let mut m = self.m.lock().unwrap();
        match m.get_mut(&page_no) {
            Some(e) => {
                e.gen = gen;
                e.data = Arc::from(data);
            }
            None => {
                m.insert(page_no, WbEntry { gen, data: Arc::from(data), writing: false });
            }
        }
        PendingWriteback { page_no, gen }
    }

    /// Newest in-flight bytes for `page_no`, if any.
    pub(crate) fn lookup(&self, page_no: u64) -> Option<Arc<[u8]>> {
        self.m.lock().unwrap().get(&page_no).map(|e| Arc::clone(&e.data))
    }

    /// Resolve one ticket: write the page's newest bytes to the device, or
    /// coalesce if a newer generation superseded this ticket. Must not be
    /// called while holding a cache shard lock (it performs device I/O).
    ///
    /// `on_durable` runs under the registry lock, immediately before the
    /// entry is removed, and only when this ticket's bytes are the ones
    /// that became durable (no newer generation pending). The cache hangs
    /// its per-page checksum recording here: because record and removal
    /// share one critical section, a fault that misses the registry can
    /// never observe new device bytes with a stale checksum.
    pub(crate) fn perform(
        &self,
        pw: &PendingWriteback,
        device: &Arc<dyn BlockDevice>,
        page_size: usize,
        on_durable: impl FnOnce(u64, &[u8]),
    ) -> WbOutcome {
        let mut m = self.m.lock().unwrap();
        let data = loop {
            match m.get_mut(&pw.page_no) {
                // Entry gone: a performer carrying a generation >= ours
                // already wrote and removed it.
                None => return WbOutcome::Coalesced,
                Some(e) if e.gen > pw.gen => return WbOutcome::Coalesced,
                Some(e) if e.writing => {
                    // An older generation's write is in flight; wait so
                    // ours lands after it.
                    m = self.cv.wait(m).unwrap();
                }
                Some(e) => {
                    debug_assert_eq!(e.gen, pw.gen, "registry generations are monotone");
                    e.writing = true;
                    break Arc::clone(&e.data);
                }
            }
        };
        drop(m);
        device.write_at(pw.page_no * page_size as u64, &data);
        let mut m = self.m.lock().unwrap();
        if let Some(e) = m.get_mut(&pw.page_no) {
            e.writing = false;
            if e.gen == pw.gen {
                on_durable(pw.page_no, &data);
                m.remove(&pw.page_no);
            }
        }
        self.cv.notify_all();
        WbOutcome::Written
    }

    /// Block until no victims are in flight. Only meaningful after every
    /// outstanding ticket's performer has been scheduled (flush does this
    /// by quiescing the queue first).
    pub(crate) fn drain(&self) {
        let mut m = self.m.lock().unwrap();
        while !m.is_empty() {
            m = self.cv.wait(m).unwrap();
        }
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.m.lock().unwrap().is_empty()
    }
}

/// The background worker pool. Owned by the cache handle; dropping it
/// drains the queue (shutdown tokens queue behind outstanding work) and
/// joins the workers.
pub(crate) struct IoEngine {
    core: Arc<CacheCore>,
    handles: Vec<JoinHandle<()>>,
}

impl IoEngine {
    pub(crate) fn start(core: Arc<CacheCore>, workers: usize) -> Self {
        let handles = (0..workers)
            .map(|i| {
                let core = Arc::clone(&core);
                std::thread::Builder::new()
                    .name(format!("havoq-io-{i}"))
                    .spawn(move || worker_loop(core))
                    .expect("spawn io worker")
            })
            .collect();
        Self { core, handles }
    }
}

impl Drop for IoEngine {
    fn drop(&mut self) {
        for _ in &self.handles {
            self.core.io_shared().push_shutdown();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(core: Arc<CacheCore>) {
    loop {
        match core.io_shared().pop() {
            IoRequest::Shutdown => return,
            IoRequest::Prefetch { first, count } => {
                let t = Instant::now();
                core.do_prefetch(first, count);
                core.io_shared().record_service(t.elapsed());
                core.io_shared().complete();
            }
            IoRequest::WriteBack(pw) => {
                let t = Instant::now();
                core.perform_writeback(&pw);
                core.io_shared().record_service(t.elapsed());
                core.io_shared().complete();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemDevice;

    fn dev() -> Arc<dyn BlockDevice> {
        Arc::new(MemDevice::new())
    }

    #[test]
    fn queue_bounds_and_fifo_order() {
        let io = IoShared::new(2, 1);
        assert!(io.try_push(IoRequest::Prefetch { first: 1, count: 1 }).is_ok());
        assert!(io.try_push(IoRequest::Prefetch { first: 2, count: 1 }).is_ok());
        // full: handed back
        assert!(io.try_push(IoRequest::Prefetch { first: 3, count: 1 }).is_err());
        match io.pop() {
            IoRequest::Prefetch { first, .. } => assert_eq!(first, 1),
            _ => panic!("expected prefetch"),
        }
        io.complete();
        match io.pop() {
            IoRequest::Prefetch { first, .. } => assert_eq!(first, 2),
            _ => panic!("expected prefetch"),
        }
        io.complete();
        io.quiesce(); // all completed: returns immediately
        let s = io.snapshot(IoMode::Async);
        assert_eq!(s.outstanding, 0);
        assert_eq!(s.peak_outstanding, 2);
        assert_eq!(s.depth_hist.count(), 2);
        assert!(s.avg_queue_depth() > 0.0);
    }

    #[test]
    fn shutdown_is_unbounded() {
        let io = IoShared::new(1, 1);
        assert!(io.try_push(IoRequest::Prefetch { first: 0, count: 1 }).is_ok());
        io.push_shutdown(); // queue "full" but shutdown still lands
        assert!(matches!(io.pop(), IoRequest::Prefetch { .. }));
        io.complete();
        assert!(matches!(io.pop(), IoRequest::Shutdown));
    }

    #[test]
    fn registry_roundtrip_and_write() {
        let reg = WritebackRegistry::new();
        let d = dev();
        let pw = reg.register(3, &[7u8; 64]);
        assert_eq!(reg.lookup(3).as_deref(), Some(&[7u8; 64][..]));
        assert_eq!(reg.perform(&pw, &d, 64, |_, _| ()), WbOutcome::Written);
        assert!(reg.is_empty());
        let mut buf = [0u8; 64];
        d.read_at(3 * 64, &mut buf);
        assert_eq!(buf, [7u8; 64]);
    }

    #[test]
    fn registry_coalesces_superseded_generations() {
        let reg = WritebackRegistry::new();
        let d = dev();
        let old = reg.register(5, &[1u8; 32]);
        let new = reg.register(5, &[2u8; 32]);
        // old ticket: superseded, nothing written
        assert_eq!(reg.perform(&old, &d, 32, |_, _| ()), WbOutcome::Coalesced);
        assert_eq!(d.stats().writes, 0);
        // new ticket writes the newest bytes and clears the entry
        assert_eq!(reg.perform(&new, &d, 32, |_, _| ()), WbOutcome::Written);
        assert!(reg.is_empty());
        let mut buf = [0u8; 32];
        d.read_at(5 * 32, &mut buf);
        assert_eq!(buf, [2u8; 32]);
    }

    #[test]
    fn registry_perform_after_removal_coalesces() {
        let reg = WritebackRegistry::new();
        let d = dev();
        let a = reg.register(9, &[3u8; 16]);
        let b = reg.register(9, &[4u8; 16]);
        assert_eq!(reg.perform(&b, &d, 16, |_, _| ()), WbOutcome::Written);
        assert_eq!(reg.perform(&a, &d, 16, |_, _| ()), WbOutcome::Coalesced);
        assert_eq!(d.stats().writes, 1);
    }

    #[test]
    fn registry_lookup_sees_newest_generation() {
        let reg = WritebackRegistry::new();
        reg.register(1, &[1u8; 8]);
        reg.register(1, &[9u8; 8]);
        assert_eq!(reg.lookup(1).as_deref(), Some(&[9u8; 8][..]));
        assert_eq!(reg.lookup(2), None);
    }

    #[test]
    fn registry_drain_waits_for_performers() {
        let reg = Arc::new(WritebackRegistry::new());
        let d = dev();
        let pw = reg.register(2, &[8u8; 32]);
        let r2 = Arc::clone(&reg);
        let d2 = Arc::clone(&d);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            r2.perform(&pw, &d2, 32, |_, _| ())
        });
        reg.drain(); // blocks until the performer removes the entry
        assert!(reg.is_empty());
        assert_eq!(h.join().unwrap(), WbOutcome::Written);
    }
}
