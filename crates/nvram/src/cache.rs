//! The user-space page cache of Section II-B.
//!
//! The paper bypasses the Linux page cache (O_DIRECT) and manages pages
//! itself, designed for high levels of concurrent I/O. This reproduction
//! keeps that architecture: fixed-size pages, the frame table split into
//! independently-locked shards so concurrent ranks don't serialize on one
//! lock, CLOCK (second-chance) eviction, and write-back with explicit
//! flush. Hit/miss/eviction statistics drive the Figure 9 analysis.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use havoq_util::FxHashMap;

use crate::device::BlockDevice;

/// Frame replacement policy. The paper's cache uses CLOCK; LRU and FIFO
/// are provided for the design-choice ablation benchmark.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Second-chance CLOCK (the paper's design: near-LRU at O(1) cost).
    #[default]
    Clock,
    /// True least-recently-used (per-access timestamp scan).
    Lru,
    /// First-in-first-out (ignores recency entirely).
    Fifo,
}

/// Page cache configuration.
#[derive(Clone, Copy, Debug)]
pub struct PageCacheConfig {
    /// Page size in bytes (power of two).
    pub page_size: usize,
    /// Total cache capacity in pages (split across shards).
    pub capacity_pages: usize,
    /// Number of independently-locked shards.
    pub shards: usize,
    /// Frame replacement policy.
    pub policy: EvictionPolicy,
    /// On a read miss, also fault in up to this many following pages.
    ///
    /// This is the synchronous stand-in for the paper's highly concurrent
    /// asynchronous I/O (Section II-B): NAND devices deliver far more
    /// bandwidth than a single blocking request uses, and the
    /// vertex-ordered visitor queue makes adjacency reads sequential, so
    /// pulling the next pages alongside a miss hides most of the
    /// per-access latency. 0 disables readahead.
    pub readahead_pages: usize,
}

impl Default for PageCacheConfig {
    fn default() -> Self {
        Self {
            page_size: 4096,
            capacity_pages: 1024,
            shards: 8,
            policy: EvictionPolicy::Clock,
            readahead_pages: 0,
        }
    }
}

struct Frame {
    page_no: u64,
    data: Box<[u8]>,
    referenced: bool,
    dirty: bool,
    /// Shard-local tick of the last access (LRU) / of insertion (FIFO).
    stamp: u64,
}

struct Shard {
    /// page number -> frame index
    map: FxHashMap<u64, usize>,
    frames: Vec<Frame>,
    clock_hand: usize,
    capacity: usize,
    tick: u64,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Self { map: FxHashMap::default(), frames: Vec::new(), clock_hand: 0, capacity, tick: 0 }
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }
}

#[derive(Default)]
struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    writebacks: AtomicU64,
    prefetches: AtomicU64,
}

/// Sharded page cache over a [`BlockDevice`].
///
/// ```
/// use std::sync::{Arc, Mutex};
/// use havoq_nvram::cache::{PageCache, PageCacheConfig};
/// use havoq_nvram::device::{BlockDevice, MemDevice, SimNvram, DeviceProfile};
///
/// let nand: Arc<dyn BlockDevice> =
///     Arc::new(SimNvram::new(MemDevice::new(), DeviceProfile::fusion_io()));
/// let cache = PageCache::new(nand, PageCacheConfig::default());
/// cache.write_at(10_000, b"graph bytes");
/// let mut buf = [0u8; 11];
/// cache.read_at(10_000, &mut buf);
/// assert_eq!(&buf, b"graph bytes");
/// assert_eq!(cache.stats().hits, 1); // the read hit the dirty cached page
/// ```
pub struct PageCache {
    device: Arc<dyn BlockDevice>,
    cfg: PageCacheConfig,
    shards: Vec<Mutex<Shard>>,
    counters: CacheCounters,
}

impl PageCache {
    pub fn new(device: Arc<dyn BlockDevice>, cfg: PageCacheConfig) -> Self {
        assert!(cfg.page_size.is_power_of_two(), "page size must be a power of two");
        assert!(cfg.shards > 0 && cfg.capacity_pages >= cfg.shards, "need >= 1 page per shard");
        let per_shard = cfg.capacity_pages / cfg.shards;
        let shards = (0..cfg.shards).map(|_| Mutex::new(Shard::new(per_shard))).collect();
        Self { device, cfg, shards, counters: CacheCounters::default() }
    }

    pub fn config(&self) -> PageCacheConfig {
        self.cfg
    }

    pub fn device(&self) -> &Arc<dyn BlockDevice> {
        &self.device
    }

    #[inline]
    fn shard_of(&self, page_no: u64) -> &Mutex<Shard> {
        // Pages are accessed with strong sequential locality, so spread
        // consecutive pages across shards.
        &self.shards[(page_no as usize) % self.shards.len()]
    }

    /// Run `f` on the cached page `page_no`, faulting it in if necessary.
    /// Returns `(result, missed)`. `count_stats` is false for readahead
    /// faults, which are tallied as prefetches instead of misses.
    fn with_page<R>(
        &self,
        page_no: u64,
        mark_dirty: bool,
        count_stats: bool,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> (R, bool) {
        let mut shard = self.shard_of(page_no).lock().unwrap();
        if let Some(&idx) = shard.map.get(&page_no) {
            if count_stats {
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
            }
            let tick = self.cfg.policy == EvictionPolicy::Lru;
            let stamp = if tick { shard.next_tick() } else { 0 };
            let frame = &mut shard.frames[idx];
            frame.referenced = true;
            frame.dirty |= mark_dirty;
            if tick {
                frame.stamp = stamp;
            }
            return (f(&mut frame.data), false);
        }
        if count_stats {
            self.counters.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.counters.prefetches.fetch_add(1, Ordering::Relaxed);
        }
        let idx = self.fault_into(&mut shard, page_no, |dev, data| {
            dev.read_at(page_no * self.cfg.page_size as u64, data);
        });
        let frame = &mut shard.frames[idx];
        frame.dirty |= mark_dirty;
        (f(&mut frame.data), true)
    }

    /// Insert (or evict-and-replace) a frame for `page_no`, filling it via
    /// `fill`. Caller holds the shard lock and accounts hit/miss stats.
    fn fault_into(
        &self,
        shard: &mut Shard,
        page_no: u64,
        fill: impl FnOnce(&Arc<dyn BlockDevice>, &mut [u8]),
    ) -> usize {
        let stamp = shard.next_tick();
        let idx = if shard.frames.len() < shard.capacity {
            let mut data = vec![0u8; self.cfg.page_size].into_boxed_slice();
            fill(&self.device, &mut data);
            shard.frames.push(Frame { page_no, data, referenced: true, dirty: false, stamp });
            shard.frames.len() - 1
        } else {
            let victim = self.pick_victim(shard);
            self.counters.evictions.fetch_add(1, Ordering::Relaxed);
            let old_page = shard.frames[victim].page_no;
            if shard.frames[victim].dirty {
                self.counters.writebacks.fetch_add(1, Ordering::Relaxed);
                self.device
                    .write_at(old_page * self.cfg.page_size as u64, &shard.frames[victim].data);
            }
            shard.map.remove(&old_page);
            let frame = &mut shard.frames[victim];
            fill(&self.device, &mut frame.data);
            frame.page_no = page_no;
            frame.referenced = true;
            frame.dirty = false;
            frame.stamp = stamp;
            victim
        };
        shard.map.insert(page_no, idx);
        idx
    }

    /// Fault the pages `first .. first + count` with a *single* sequential
    /// device access — the latency-hiding step of readahead: a multi-page
    /// sequential NAND read costs roughly one access latency plus
    /// transfer, unlike `count` independent demand misses.
    fn prefetch_window(&self, first: u64, count: usize) {
        if count == 0 {
            return;
        }
        let ps = self.cfg.page_size;
        // skip entirely-cached windows cheaply
        let any_missing = (0..count as u64).any(|i| {
            let page_no = first + i;
            !self.shard_of(page_no).lock().unwrap().map.contains_key(&page_no)
        });
        if !any_missing {
            return;
        }
        let mut buf = vec![0u8; ps * count];
        self.device.read_at(first * ps as u64, &mut buf);
        for i in 0..count {
            let page_no = first + i as u64;
            let mut shard = self.shard_of(page_no).lock().unwrap();
            if shard.map.contains_key(&page_no) {
                continue;
            }
            self.counters.prefetches.fetch_add(1, Ordering::Relaxed);
            let src = &buf[i * ps..(i + 1) * ps];
            self.fault_into(&mut shard, page_no, |_dev, data| data.copy_from_slice(src));
        }
    }

    /// Victim selection according to the configured policy.
    fn pick_victim(&self, shard: &mut Shard) -> usize {
        match self.cfg.policy {
            EvictionPolicy::Clock => loop {
                let i = shard.clock_hand;
                shard.clock_hand = (shard.clock_hand + 1) % shard.frames.len();
                if shard.frames[i].referenced {
                    shard.frames[i].referenced = false;
                } else {
                    return i;
                }
            },
            // LRU: oldest access stamp; FIFO: oldest insertion stamp
            EvictionPolicy::Lru | EvictionPolicy::Fifo => shard
                .frames
                .iter()
                .enumerate()
                .min_by_key(|(_, fr)| fr.stamp)
                .map(|(i, _)| i)
                .expect("non-empty shard"),
        }
    }

    /// POSIX-like positional read through the cache, with optional
    /// sequential readahead on misses.
    pub fn read_at(&self, offset: u64, buf: &mut [u8]) {
        let ps = self.cfg.page_size as u64;
        let mut done = 0usize;
        while done < buf.len() {
            let pos = offset + done as u64;
            let page_no = pos / ps;
            let in_page = (pos % ps) as usize;
            let n = (self.cfg.page_size - in_page).min(buf.len() - done);
            let (_, missed) = self.with_page(page_no, false, true, |page| {
                buf[done..done + n].copy_from_slice(&page[in_page..in_page + n]);
            });
            done += n;
            if missed && self.cfg.readahead_pages > 0 {
                self.prefetch_window(page_no + 1, self.cfg.readahead_pages);
            }
        }
    }

    /// POSIX-like positional write through the cache (write-back).
    pub fn write_at(&self, offset: u64, buf: &[u8]) {
        let ps = self.cfg.page_size as u64;
        let mut done = 0usize;
        while done < buf.len() {
            let pos = offset + done as u64;
            let page_no = pos / ps;
            let in_page = (pos % ps) as usize;
            let n = (self.cfg.page_size - in_page).min(buf.len() - done);
            self.with_page(page_no, true, true, |page| {
                page[in_page..in_page + n].copy_from_slice(&buf[done..done + n]);
            });
            done += n;
        }
    }

    /// Write every dirty page back to the device.
    pub fn flush(&self) {
        for shard in &self.shards {
            let mut s = shard.lock().unwrap();
            for frame in s.frames.iter_mut() {
                if frame.dirty {
                    self.counters.writebacks.fetch_add(1, Ordering::Relaxed);
                    self.device.write_at(frame.page_no * self.cfg.page_size as u64, &frame.data);
                    frame.dirty = false;
                }
            }
        }
    }

    /// Drop every cached page (flushing dirty ones): cold-cache state for
    /// experiments.
    pub fn clear(&self) {
        self.flush();
        for shard in &self.shards {
            let mut s = shard.lock().unwrap();
            s.map.clear();
            s.frames.clear();
            s.clock_hand = 0;
        }
    }

    pub fn stats(&self) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
            writebacks: self.counters.writebacks.load(Ordering::Relaxed),
            prefetches: self.counters.prefetches.load(Ordering::Relaxed),
        }
    }

    /// Reset counters (e.g. after a warm-up traversal).
    pub fn reset_stats(&self) {
        self.counters.hits.store(0, Ordering::Relaxed);
        self.counters.misses.store(0, Ordering::Relaxed);
        self.counters.evictions.store(0, Ordering::Relaxed);
        self.counters.writebacks.store(0, Ordering::Relaxed);
        self.counters.prefetches.store(0, Ordering::Relaxed);
    }
}

/// Plain-data snapshot of cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStatsSnapshot {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub writebacks: u64,
    /// Pages faulted by sequential readahead rather than demand misses.
    pub prefetches: u64,
}

impl CacheStatsSnapshot {
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemDevice;

    fn cache(pages: usize, page_size: usize) -> (Arc<MemDevice>, PageCache) {
        let dev = Arc::new(MemDevice::new());
        let c = PageCache::new(
            Arc::clone(&dev) as Arc<dyn BlockDevice>,
            PageCacheConfig {
                page_size,
                capacity_pages: pages,
                shards: 2,
                ..PageCacheConfig::default()
            },
        );
        (dev, c)
    }

    #[test]
    fn read_write_roundtrip_within_page() {
        let (_dev, c) = cache(8, 64);
        c.write_at(5, b"havoq");
        let mut buf = [0u8; 5];
        c.read_at(5, &mut buf);
        assert_eq!(&buf, b"havoq");
    }

    #[test]
    fn read_write_spanning_pages() {
        let (_dev, c) = cache(8, 64);
        let data: Vec<u8> = (0..200).map(|i| i as u8).collect();
        c.write_at(30, &data);
        let mut buf = vec![0u8; 200];
        c.read_at(30, &mut buf);
        assert_eq!(buf, data);
    }

    #[test]
    fn writeback_on_flush() {
        let (dev, c) = cache(8, 64);
        c.write_at(0, &[7u8; 64]);
        assert_eq!(dev.stats().writes, 0, "write-back: nothing hits device yet");
        c.flush();
        assert_eq!(dev.stats().writes, 1);
        let mut raw = [0u8; 64];
        dev.read_at(0, &mut raw);
        assert_eq!(raw, [7u8; 64]);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let (dev, c) = cache(2, 64); // 1 page per shard
                                     // page numbers map to shards by page_no % 2; use pages 0,2,4 (shard 0)
        c.write_at(0, &[1u8; 64]); // page 0
        c.write_at(2 * 64, &[2u8; 64]); // page 2: evicts page 0
        c.write_at(4 * 64, &[3u8; 64]); // page 4: evicts page 2
        let s = c.stats();
        assert!(s.evictions >= 2, "expected evictions, got {s:?}");
        assert!(s.writebacks >= 2);
        // evicted data must be durable
        let mut buf = [0u8; 64];
        dev.read_at(0, &mut buf);
        assert_eq!(buf, [1u8; 64]);
    }

    #[test]
    fn data_survives_eviction_roundtrip() {
        let (_dev, c) = cache(4, 32);
        let n = 64usize; // 64 pages worth, far exceeding capacity
        for i in 0..n {
            c.write_at((i * 32) as u64, &[i as u8; 32]);
        }
        for i in 0..n {
            let mut buf = [0u8; 32];
            c.read_at((i * 32) as u64, &mut buf);
            assert_eq!(buf, [i as u8; 32], "page {i}");
        }
    }

    #[test]
    fn hit_rate_reflects_locality() {
        let (_dev, c) = cache(4, 64);
        c.write_at(0, &[1u8; 8]);
        for _ in 0..99 {
            let mut b = [0u8; 8];
            c.read_at(0, &mut b);
        }
        let s = c.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 99);
        assert!(s.hit_rate() > 0.98);
    }

    #[test]
    fn clock_eviction_order_is_second_chance() {
        // capacity 2 in one shard. A, B load with reference bits set; C's
        // eviction scan clears A then B and takes the first frame after the
        // wrapped hand (A). B must survive the scan and still hit.
        let dev = Arc::new(MemDevice::new());
        let c = PageCache::new(
            dev as Arc<dyn BlockDevice>,
            PageCacheConfig {
                page_size: 64,
                capacity_pages: 2,
                shards: 1,
                ..PageCacheConfig::default()
            },
        );
        let mut b = [0u8; 1];
        c.read_at(0, &mut b); // A: miss
        c.read_at(64, &mut b); // B: miss
        c.read_at(0, &mut b); // A: hit
        c.read_at(128, &mut b); // C: miss, scan clears A and B, evicts A
        c.read_at(64, &mut b); // B survived the scan: hit
        let s = c.stats();
        assert_eq!((s.misses, s.hits), (3, 2), "{s:?}");

        // after the scan, B and C carry cleared/fresh bits; touching C gives
        // it a second chance over B on the next eviction
        c.read_at(128, &mut b); // C: hit, referenced
        c.read_at(192, &mut b); // D: miss, evicts B (unreferenced), not C
        c.read_at(128, &mut b); // C must still be cached
        let s = c.stats();
        assert_eq!(s.misses, 4, "{s:?}");
        assert_eq!(s.hits, 4, "{s:?}");
    }

    #[test]
    fn clear_produces_cold_cache() {
        let (_dev, c) = cache(8, 64);
        c.write_at(0, &[9u8; 64]);
        c.clear();
        c.reset_stats();
        let mut b = [0u8; 64];
        c.read_at(0, &mut b);
        assert_eq!(b, [9u8; 64], "clear must flush, not lose data");
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn readahead_converts_misses_to_hits() {
        let dev = Arc::new(MemDevice::new());
        dev.write_at(0, &vec![7u8; 64 * 64]);
        let c = PageCache::new(
            dev as Arc<dyn BlockDevice>,
            PageCacheConfig {
                page_size: 64,
                capacity_pages: 32,
                shards: 2,
                readahead_pages: 4,
                ..PageCacheConfig::default()
            },
        );
        // sequential page-by-page scan: with readahead 4, only every 5th
        // page is a demand miss
        let mut b = [0u8; 64];
        for page in 0..30u64 {
            c.read_at(page * 64, &mut b);
            assert_eq!(b, [7u8; 64]);
        }
        let s = c.stats();
        assert_eq!(s.misses, 6, "{s:?}");
        assert_eq!(s.hits, 24, "{s:?}");
        assert_eq!(s.prefetches, 24, "{s:?}");
    }

    #[test]
    fn readahead_preserves_correctness_with_tiny_cache() {
        let dev = Arc::new(MemDevice::new());
        let c = PageCache::new(
            dev as Arc<dyn BlockDevice>,
            PageCacheConfig {
                page_size: 64,
                capacity_pages: 2,
                shards: 1,
                readahead_pages: 8,
                ..PageCacheConfig::default()
            },
        );
        for i in 0..64u64 {
            c.write_at(i * 8, &i.to_le_bytes());
        }
        for i in 0..64u64 {
            let mut b = [0u8; 8];
            c.read_at(i * 8, &mut b);
            assert_eq!(u64::from_le_bytes(b), i);
        }
    }

    fn policy_cache(policy: EvictionPolicy) -> PageCache {
        let dev = Arc::new(MemDevice::new());
        PageCache::new(
            dev as Arc<dyn BlockDevice>,
            PageCacheConfig {
                page_size: 64,
                capacity_pages: 2,
                shards: 1,
                policy,
                ..PageCacheConfig::default()
            },
        )
    }

    #[test]
    fn lru_keeps_recently_used() {
        let c = policy_cache(EvictionPolicy::Lru);
        let mut b = [0u8; 1];
        c.read_at(0, &mut b); // A
        c.read_at(64, &mut b); // B
        c.read_at(0, &mut b); // A: now most recent
        c.read_at(128, &mut b); // C: LRU evicts B
        c.read_at(0, &mut b); // A: must hit
        let s = c.stats();
        assert_eq!((s.misses, s.hits), (3, 2), "{s:?}");
    }

    #[test]
    fn fifo_ignores_recency() {
        let c = policy_cache(EvictionPolicy::Fifo);
        let mut b = [0u8; 1];
        c.read_at(0, &mut b); // A (inserted first)
        c.read_at(64, &mut b); // B
        c.read_at(0, &mut b); // A hit: FIFO unaffected
        c.read_at(128, &mut b); // C: evicts A (oldest insertion)
        c.read_at(0, &mut b); // A: must miss again
        let s = c.stats();
        assert_eq!((s.misses, s.hits), (4, 1), "{s:?}");
    }

    #[test]
    fn all_policies_preserve_data() {
        for policy in [EvictionPolicy::Clock, EvictionPolicy::Lru, EvictionPolicy::Fifo] {
            let c = policy_cache(policy);
            for i in 0..32u64 {
                c.write_at(i * 64, &[i as u8; 64]);
            }
            for i in 0..32u64 {
                let mut buf = [0u8; 64];
                c.read_at(i * 64, &mut buf);
                assert_eq!(buf, [i as u8; 64], "{policy:?} page {i}");
            }
        }
    }

    #[test]
    fn concurrent_disjoint_writers() {
        let dev = Arc::new(MemDevice::new());
        let c = Arc::new(PageCache::new(
            dev as Arc<dyn BlockDevice>,
            PageCacheConfig {
                page_size: 256,
                capacity_pages: 16,
                shards: 4,
                ..PageCacheConfig::default()
            },
        ));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                let base = t * 1_000_000;
                for i in 0..500u64 {
                    c.write_at(base + i * 8, &(t * 1000 + i).to_le_bytes());
                }
                for i in 0..500u64 {
                    let mut b = [0u8; 8];
                    c.read_at(base + i * 8, &mut b);
                    assert_eq!(u64::from_le_bytes(b), t * 1000 + i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_page_size_rejected() {
        let dev = Arc::new(MemDevice::new());
        let _ = PageCache::new(
            dev as Arc<dyn BlockDevice>,
            PageCacheConfig {
                page_size: 100,
                capacity_pages: 8,
                shards: 2,
                ..PageCacheConfig::default()
            },
        );
    }
}
