//! The user-space page cache of Section II-B.
//!
//! The paper bypasses the Linux page cache (O_DIRECT) and manages pages
//! itself, designed for high levels of concurrent I/O. This reproduction
//! keeps that architecture: fixed-size pages, the frame table split into
//! independently-locked shards so concurrent ranks don't serialize on one
//! lock, CLOCK (second-chance) eviction, and write-back with explicit
//! flush. Hit/miss/eviction statistics drive the Figure 9 analysis.
//!
//! Device I/O never happens under a shard lock. A demand miss claims its
//! page with a `Faulting` marker, parks the chosen frame in limbo, and
//! fills it with the lock released; concurrent accesses to the same page
//! wait on the shard's condvar instead of issuing a second device read.
//! Dirty eviction victims are registered with the
//! [`crate::io::WritebackRegistry`] *before* the lock drops (so their
//! bytes stay visible to faults) and are then written back either inline
//! ([`IoMode::Sync`]) or by the background engine ([`IoMode::Async`]) —
//! see [`crate::io`] for the queue, worker pool, and ordering guarantees.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use havoq_util::crc::crc32;
use havoq_util::FxHashMap;

use crate::device::BlockDevice;
use crate::io::{
    IoConfig, IoEngine, IoMode, IoRequest, IoShared, IoStatsSnapshot, PendingWriteback, WbOutcome,
    WritebackRegistry,
};

/// Frame replacement policy. The paper's cache uses CLOCK; LRU and FIFO
/// are provided for the design-choice ablation benchmark.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Second-chance CLOCK (the paper's design: near-LRU at O(1) cost).
    #[default]
    Clock,
    /// True least-recently-used (stamp-ordered victim index).
    Lru,
    /// First-in-first-out (ignores recency entirely).
    Fifo,
}

impl EvictionPolicy {
    /// Whether the policy keeps the stamp-ordered victim index.
    fn stamp_ordered(self) -> bool {
        matches!(self, EvictionPolicy::Lru | EvictionPolicy::Fifo)
    }
}

/// Page cache configuration.
#[derive(Clone, Copy, Debug)]
pub struct PageCacheConfig {
    /// Page size in bytes (power of two).
    pub page_size: usize,
    /// Total cache capacity in pages (split across shards; a remainder is
    /// distributed so no configured page is lost).
    pub capacity_pages: usize,
    /// Number of independently-locked shards.
    pub shards: usize,
    /// Frame replacement policy.
    pub policy: EvictionPolicy,
    /// On a read miss, also fault in up to this many following pages.
    ///
    /// The vertex-ordered visitor queue makes adjacency reads sequential,
    /// so pulling the next pages alongside a miss hides most of the
    /// per-access latency. In [`IoMode::Sync`] the window is filled on the
    /// faulting thread; in [`IoMode::Async`] it is issued to the
    /// background engine and the fault returns immediately. 0 disables
    /// readahead.
    pub readahead_pages: usize,
    /// I/O engine configuration (sync/async, worker pool, queue depth).
    pub io: IoConfig,
}

impl Default for PageCacheConfig {
    fn default() -> Self {
        Self {
            page_size: 4096,
            capacity_pages: 1024,
            shards: 8,
            policy: EvictionPolicy::Clock,
            readahead_pages: 0,
            io: IoConfig::default(),
        }
    }
}

thread_local! {
    /// Shard locks held by this thread; lets devices and tests assert
    /// that no device I/O happens under a shard lock.
    static SHARD_LOCKS: Cell<u32> = const { Cell::new(0) };
}

/// True while the calling thread holds any page-cache shard lock. Device
/// access hooks use this to assert the cache's no-I/O-under-lock
/// invariant.
pub fn shard_lock_held() -> bool {
    SHARD_LOCKS.with(|c| c.get() > 0)
}

fn tls_lock_inc() {
    SHARD_LOCKS.with(|c| c.set(c.get() + 1));
}

fn tls_lock_dec() {
    SHARD_LOCKS.with(|c| c.set(c.get() - 1));
}

/// State of a page in the shard map.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Slot {
    /// Cached in this frame.
    Present(usize),
    /// A thread (or prefetch worker) is filling it; wait on the shard
    /// condvar instead of double-faulting.
    Faulting,
}

struct Frame {
    page_no: u64,
    data: Box<[u8]>,
    referenced: bool,
    dirty: bool,
    /// Shard-local tick of the last access (LRU) / of insertion (FIFO).
    stamp: u64,
    /// Buffer is checked out for an out-of-lock fill; not evictable.
    limbo: bool,
}

struct Shard {
    /// page number -> slot
    map: FxHashMap<u64, Slot>,
    frames: Vec<Frame>,
    clock_hand: usize,
    capacity: usize,
    tick: u64,
    /// stamp -> frame index, maintained for LRU/FIFO only: victim choice
    /// is `pop_first` instead of an O(capacity) scan. Limbo frames are
    /// absent (not evictable).
    order: BTreeMap<u64, usize>,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Self {
            map: FxHashMap::default(),
            frames: Vec::new(),
            clock_hand: 0,
            capacity,
            tick: 0,
            order: BTreeMap::new(),
        }
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }
}

/// One shard: the mutex plus the condvar that fault-waiters and
/// frame-starved reservers sleep on.
struct ShardSlot {
    m: Mutex<Shard>,
    cv: Condvar,
}

impl ShardSlot {
    fn new(capacity: usize) -> Self {
        Self { m: Mutex::new(Shard::new(capacity)), cv: Condvar::new() }
    }

    fn lock(&self) -> ShardGuard<'_> {
        let g = self.m.lock().unwrap();
        tls_lock_inc();
        ShardGuard { g: Some(g), slot: self }
    }
}

/// Mutex guard that keeps the thread-local lock count accurate, including
/// across condvar waits (the lock is *not* held while waiting).
struct ShardGuard<'a> {
    g: Option<MutexGuard<'a, Shard>>,
    slot: &'a ShardSlot,
}

impl ShardGuard<'_> {
    fn wait(&mut self) {
        let g = self.g.take().expect("guard present");
        tls_lock_dec();
        let g = self.slot.cv.wait(g).unwrap();
        tls_lock_inc();
        self.g = Some(g);
    }
}

impl Deref for ShardGuard<'_> {
    type Target = Shard;
    fn deref(&self) -> &Shard {
        self.g.as_ref().expect("guard present")
    }
}

impl DerefMut for ShardGuard<'_> {
    fn deref_mut(&mut self) -> &mut Shard {
        self.g.as_mut().expect("guard present")
    }
}

impl Drop for ShardGuard<'_> {
    fn drop(&mut self) {
        if self.g.take().is_some() {
            tls_lock_dec();
        }
    }
}

#[derive(Default)]
struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    writebacks: AtomicU64,
    prefetches: AtomicU64,
    fault_waits: AtomicU64,
    wb_coalesced: AtomicU64,
    dropped_prefetches: AtomicU64,
    io_stall_ns: AtomicU64,
    evict_stall_ns: AtomicU64,
    page_checksum_failures: AtomicU64,
    page_reread_retries: AtomicU64,
}

/// Outcome of reserving a frame for an incoming page.
enum Reserve {
    /// Fresh frame grown within capacity (no data buffer yet).
    New(usize),
    /// Victim evicted; its buffer (checked out) and, if it was dirty, the
    /// write-back ticket registered under the shard lock.
    Evicted { idx: usize, buf: Box<[u8]>, pending: Option<PendingWriteback> },
    /// Every frame is in limbo — wait for a fill to complete and retry.
    Starved,
}

/// Pages per queued prefetch request when splitting a large advise window.
const ADVISE_CHUNK_PAGES: usize = 32;

/// Bound on re-reads of a page whose fill failed checksum verification.
/// Transient device read errors (NAND read disturb, which
/// [`crate::device::MemDevice::set_read_corruption`] models) redraw on
/// every access, so a handful of retries recovers; a page that still
/// mismatches after this many re-reads holds corrupt *stored* data and is
/// quarantined (panic) rather than silently served.
const MAX_PAGE_REREADS: u64 = 8;

/// The shared cache state: everything except the worker pool handle.
/// Submitting threads and I/O workers both operate on this through an
/// `Arc`.
pub(crate) struct CacheCore {
    device: Arc<dyn BlockDevice>,
    cfg: PageCacheConfig,
    shards: Vec<ShardSlot>,
    counters: CacheCounters,
    registry: WritebackRegistry,
    io: IoShared,
    /// High-water mark of bytes the application has addressed; bounds
    /// readahead together with `device.len()` so prefetch never reads
    /// past the data that exists.
    len_hint: AtomicU64,
    /// CRC32 of the newest bytes this cache wrote back to the device, per
    /// page, sharded like the frame table. Fills verify against it; pages
    /// the cache never wrote (pre-populated devices) have no entry and
    /// are unverifiable. Entries are recorded *inside* the write-back
    /// registry's critical section, atomically with entry removal, so a
    /// fill that misses the registry always sees the checksum of the
    /// bytes that are actually durable.
    page_crcs: Vec<Mutex<FxHashMap<u64, u32>>>,
}

impl CacheCore {
    fn new(device: Arc<dyn BlockDevice>, cfg: PageCacheConfig) -> Self {
        assert!(cfg.page_size.is_power_of_two(), "page size must be a power of two");
        assert!(cfg.shards > 0 && cfg.capacity_pages >= cfg.shards, "need >= 1 page per shard");
        let per_shard = cfg.capacity_pages / cfg.shards;
        let remainder = cfg.capacity_pages % cfg.shards;
        let shards = (0..cfg.shards)
            .map(|i| ShardSlot::new(per_shard + usize::from(i < remainder)))
            .collect();
        let depth = cfg.io.resolved_depth(&device);
        let workers = if cfg.io.mode == IoMode::Async { cfg.io.resolved_workers(depth) } else { 0 };
        let page_crcs = (0..cfg.shards).map(|_| Mutex::new(FxHashMap::default())).collect();
        Self {
            device,
            cfg,
            shards,
            counters: CacheCounters::default(),
            registry: WritebackRegistry::new(),
            io: IoShared::new(depth, workers),
            len_hint: AtomicU64::new(0),
            page_crcs,
        }
    }

    /// Expected checksum for `page_no`, if the cache has written it back.
    fn page_crc(&self, page_no: u64) -> Option<u32> {
        let shard = &self.page_crcs[(page_no as usize) % self.page_crcs.len()];
        shard.lock().unwrap().get(&page_no).copied()
    }

    fn record_page_crc(&self, page_no: u64, crc: u32) {
        let shard = &self.page_crcs[(page_no as usize) % self.page_crcs.len()];
        shard.lock().unwrap().insert(page_no, crc);
    }

    pub(crate) fn io_shared(&self) -> &IoShared {
        &self.io
    }

    #[inline]
    fn shard_of(&self, page_no: u64) -> &ShardSlot {
        // Pages are accessed with strong sequential locality, so spread
        // consecutive pages across shards.
        &self.shards[(page_no as usize) % self.shards.len()]
    }

    #[inline]
    fn stall(&self, since: Instant) {
        self.counters.io_stall_ns.fetch_add(since.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    /// Pages that currently exist: whichever is larger of the device's
    /// length and the application's addressed high-water mark.
    fn total_pages(&self) -> u64 {
        let bytes = self.device.len().max(self.len_hint.load(Ordering::Relaxed));
        bytes.div_ceil(self.cfg.page_size as u64)
    }

    /// Run `f` on the cached page `page_no`, faulting it in if necessary.
    /// Returns `(result, missed)`. Exactly one hit or miss is counted per
    /// call, at the moment the access resolves.
    fn with_page<R>(
        &self,
        page_no: u64,
        mark_dirty: bool,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> (R, bool) {
        let slot = self.shard_of(page_no);
        let mut waited = false;
        let mut shard = slot.lock();
        let (idx, mut buf, pending) = loop {
            match shard.map.get(&page_no).copied() {
                Some(Slot::Present(idx)) => {
                    self.counters.hits.fetch_add(1, Ordering::Relaxed);
                    if self.cfg.policy == EvictionPolicy::Lru {
                        let stamp = shard.next_tick();
                        let old = shard.frames[idx].stamp;
                        shard.order.remove(&old);
                        shard.frames[idx].stamp = stamp;
                        shard.order.insert(stamp, idx);
                    }
                    let frame = &mut shard.frames[idx];
                    frame.referenced = true;
                    frame.dirty |= mark_dirty;
                    return (f(&mut frame.data), false);
                }
                Some(Slot::Faulting) => {
                    if !waited {
                        waited = true;
                        self.counters.fault_waits.fetch_add(1, Ordering::Relaxed);
                    }
                    let t = Instant::now();
                    shard.wait();
                    self.stall(t);
                }
                None => match self.reserve_frame(&mut shard) {
                    Reserve::New(idx) => {
                        self.counters.misses.fetch_add(1, Ordering::Relaxed);
                        shard.map.insert(page_no, Slot::Faulting);
                        break (idx, vec![0u8; self.cfg.page_size].into_boxed_slice(), None);
                    }
                    Reserve::Evicted { idx, buf, pending } => {
                        self.counters.misses.fetch_add(1, Ordering::Relaxed);
                        shard.map.insert(page_no, Slot::Faulting);
                        break (idx, buf, pending);
                    }
                    Reserve::Starved => {
                        let t = Instant::now();
                        shard.wait();
                        self.stall(t);
                    }
                },
            }
        };
        drop(shard);
        if let Some(pw) = pending {
            self.dispatch_writeback(pw);
        }
        // Fill with no lock held. The registry is checked first so a page
        // whose newest bytes are still queued for write-behind is never
        // re-read stale from the device. No new registration of this page
        // can race in: the Faulting marker keeps it out of every frame.
        let t = Instant::now();
        if let Some(d) = self.registry.lookup(page_no) {
            buf.copy_from_slice(&d);
        } else {
            self.read_page_verified(page_no, &mut buf);
        }
        self.stall(t);
        let mut shard = slot.lock();
        self.install_frame(&mut shard, idx, page_no, buf, mark_dirty);
        slot.cv.notify_all();
        let frame = &mut shard.frames[idx];
        (f(&mut frame.data), true)
    }

    /// Read one page from the device, verifying it against the recorded
    /// write-back checksum when one exists. A mismatch is retried with
    /// bounded re-reads — transient read errors redraw per access and
    /// recover — and as a last resort resolved from the write-back
    /// registry; a page that survives all of that with a bad checksum
    /// holds corrupt stored data and is quarantined (panic) instead of
    /// being served to a traversal. Never called with a shard lock held.
    fn read_page_verified(&self, page_no: u64, buf: &mut [u8]) {
        let offset = page_no * self.cfg.page_size as u64;
        self.device.read_at(offset, buf);
        let Some(expected) = self.page_crc(page_no) else {
            return; // never written back by this cache: unverifiable
        };
        if crc32(buf) == expected {
            return;
        }
        self.counters.page_checksum_failures.fetch_add(1, Ordering::Relaxed);
        for _ in 0..MAX_PAGE_REREADS {
            self.counters.page_reread_retries.fetch_add(1, Ordering::Relaxed);
            self.device.read_at(offset, buf);
            if crc32(buf) == expected {
                return;
            }
        }
        // The checksum may describe a write-back that landed (and left the
        // registry) between our first lookup and the reads above; if its
        // bytes are back in flight, serve them.
        if let Some(d) = self.registry.lookup(page_no) {
            buf.copy_from_slice(&d);
            return;
        }
        panic!(
            "page {page_no} (offset {offset}) failed checksum verification after \
             {MAX_PAGE_REREADS} re-reads: stored data is corrupt \
             (expected crc32 {expected:#010x}, read {:#010x})",
            crc32(buf)
        );
    }

    /// Acquire a frame for an incoming page. Caller holds the shard lock.
    fn reserve_frame(&self, shard: &mut Shard) -> Reserve {
        if shard.frames.len() < shard.capacity {
            shard.frames.push(Frame {
                page_no: u64::MAX,
                data: Box::default(),
                referenced: false,
                dirty: false,
                stamp: 0,
                limbo: true,
            });
            return Reserve::New(shard.frames.len() - 1);
        }
        let Some(victim) = self.pick_victim(shard) else {
            return Reserve::Starved;
        };
        self.counters.evictions.fetch_add(1, Ordering::Relaxed);
        let old_page = shard.frames[victim].page_no;
        shard.map.remove(&old_page);
        if self.cfg.policy.stamp_ordered() {
            shard.order.remove(&shard.frames[victim].stamp);
        }
        // Register dirty victims while the lock is still held: from here
        // until the write-behind completes, faults of `old_page` resolve
        // from the registry, never from stale device bytes.
        let pending = shard.frames[victim]
            .dirty
            .then(|| self.registry.register(old_page, &shard.frames[victim].data));
        let frame = &mut shard.frames[victim];
        frame.limbo = true;
        frame.dirty = false;
        let buf = std::mem::take(&mut frame.data);
        Reserve::Evicted { idx: victim, buf, pending }
    }

    /// Publish a filled buffer as the frame for `page_no`. Caller holds
    /// the shard lock and must notify the shard condvar afterwards.
    fn install_frame(
        &self,
        shard: &mut Shard,
        idx: usize,
        page_no: u64,
        buf: Box<[u8]>,
        dirty: bool,
    ) {
        let stamp = shard.next_tick();
        let frame = &mut shard.frames[idx];
        frame.page_no = page_no;
        frame.data = buf;
        frame.referenced = true;
        frame.dirty = dirty;
        frame.stamp = stamp;
        frame.limbo = false;
        if self.cfg.policy.stamp_ordered() {
            shard.order.insert(stamp, idx);
        }
        shard.map.insert(page_no, Slot::Present(idx));
    }

    /// Victim selection according to the configured policy. `None` means
    /// every frame is in limbo (all buffers checked out for fills).
    fn pick_victim(&self, shard: &mut Shard) -> Option<usize> {
        match self.cfg.policy {
            EvictionPolicy::Clock => {
                let len = shard.frames.len();
                // Bounded scan: one full lap clears reference bits, the
                // second must find an unreferenced non-limbo frame unless
                // all frames are in limbo.
                for _ in 0..(2 * len + 1) {
                    let i = shard.clock_hand;
                    shard.clock_hand = (shard.clock_hand + 1) % len;
                    if shard.frames[i].limbo {
                        continue;
                    }
                    if shard.frames[i].referenced {
                        shard.frames[i].referenced = false;
                    } else {
                        return Some(i);
                    }
                }
                None
            }
            // LRU: oldest access stamp; FIFO: oldest insertion stamp. The
            // order index makes this O(log n) instead of an O(capacity)
            // scan per eviction; limbo frames are absent from the index.
            EvictionPolicy::Lru | EvictionPolicy::Fifo => {
                shard.order.iter().next().map(|(_, &idx)| idx)
            }
        }
    }

    /// Fill absent pages in `first .. first + count`, clamped to the data
    /// that exists. Pages are claimed with `Faulting` markers before the
    /// bulk device read, so demand faults wait for this fill instead of
    /// issuing duplicate reads, and no page is ever faulted into two
    /// frames. Runs on prefetch workers (async) or the faulting thread
    /// (sync); never called with a shard lock held.
    pub(crate) fn do_prefetch(&self, first: u64, count: usize) {
        let ps = self.cfg.page_size;
        let total = self.total_pages();
        if first >= total || count == 0 {
            return;
        }
        let count = count.min((total - first) as usize);
        /// How a claimed page gets its bytes.
        enum Claim {
            /// Already present or mid-fault elsewhere; leave it alone.
            Skip,
            /// Fill from the bulk device snapshot.
            Device,
            /// Newest bytes pinned from the write-back registry at claim
            /// time; the device snapshot may be stale for this page.
            Pinned(std::sync::Arc<[u8]>),
        }
        // Claim pass: mark absent pages Faulting and capture any in-flight
        // write-back bytes *now*. A registry entry for a claimed page can
        // only exist at claim time — the Faulting marker keeps the page out
        // of every frame, so no later registration is possible — but a
        // queued write-back may remove its entry at any moment, after which
        // the bulk snapshot below (taken before the write landed) would
        // hand readers pre-write-back bytes.
        let mut claims = Vec::with_capacity(count);
        for i in 0..count {
            let page_no = first + i as u64;
            let mut shard = self.shard_of(page_no).lock();
            claims.push(
                if let std::collections::hash_map::Entry::Vacant(e) = shard.map.entry(page_no) {
                    e.insert(Slot::Faulting);
                    match self.registry.lookup(page_no) {
                        Some(d) => Claim::Pinned(d),
                        None => Claim::Device,
                    }
                } else {
                    Claim::Skip
                },
            );
        }
        if claims.iter().all(|c| matches!(c, Claim::Skip)) {
            return;
        }
        // One sequential device access for the whole window — the
        // latency-hiding step: a multi-page sequential NAND read costs
        // roughly one access latency plus transfer, unlike `count`
        // independent demand misses. Skipped when every claimed page is
        // pinned from the registry.
        let mut bulk = vec![0u8; ps * count];
        if claims.iter().any(|c| matches!(c, Claim::Device)) {
            self.device.read_at(first * ps as u64, &mut bulk);
        }
        // Verify device-sourced pages against their write-back checksums.
        // A mismatching page (transient read error hitting the bulk read)
        // releases its claim instead of installing garbage: the waiting or
        // future demand fault re-reads it with the bounded-retry path.
        for (i, claim) in claims.iter_mut().enumerate() {
            if !matches!(claim, Claim::Device) {
                continue;
            }
            let page_no = first + i as u64;
            let Some(expected) = self.page_crc(page_no) else { continue };
            if crc32(&bulk[i * ps..(i + 1) * ps]) == expected {
                continue;
            }
            self.counters.page_checksum_failures.fetch_add(1, Ordering::Relaxed);
            self.counters.dropped_prefetches.fetch_add(1, Ordering::Relaxed);
            let slot = self.shard_of(page_no);
            slot.lock().map.remove(&page_no);
            slot.cv.notify_all();
            *claim = Claim::Skip;
        }
        for (i, claim) in claims.iter().enumerate() {
            let pinned = match claim {
                Claim::Skip => continue,
                Claim::Device => None,
                Claim::Pinned(d) => Some(d),
            };
            let page_no = first + i as u64;
            let slot = self.shard_of(page_no);
            let mut pending_out = None;
            {
                let mut shard = slot.lock();
                match self.reserve_frame(&mut shard) {
                    Reserve::Starved => {
                        // Best effort: release the claim; a demand fault
                        // will fill the page when a frame frees up.
                        shard.map.remove(&page_no);
                        self.counters.dropped_prefetches.fetch_add(1, Ordering::Relaxed);
                    }
                    reserved => {
                        let (idx, mut buf) = match reserved {
                            Reserve::New(idx) => (idx, vec![0u8; ps].into_boxed_slice()),
                            Reserve::Evicted { idx, buf, pending } => {
                                pending_out = pending;
                                (idx, buf)
                            }
                            Reserve::Starved => unreachable!(),
                        };
                        // Bytes pinned at claim time supersede the bulk
                        // snapshot: they are the newest for this page, and
                        // if absent at claim time the device was (and
                        // stays) current, since the bulk read happened
                        // after the claim.
                        if let Some(d) = pinned {
                            buf.copy_from_slice(d);
                        } else {
                            buf.copy_from_slice(&bulk[i * ps..(i + 1) * ps]);
                        }
                        self.install_frame(&mut shard, idx, page_no, buf, false);
                        self.counters.prefetches.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            slot.cv.notify_all();
            if let Some(pw) = pending_out {
                self.dispatch_writeback(pw);
            }
        }
    }

    /// Resolve a write-back ticket now, on this thread. The page's
    /// checksum is recorded by the registry's durability callback —
    /// atomically with the entry's removal — so fills that miss the
    /// registry always verify against the bytes that actually landed.
    pub(crate) fn perform_writeback(&self, pw: &PendingWriteback) {
        debug_assert!(!shard_lock_held(), "write-back under a shard lock");
        let on_durable = |page_no: u64, data: &[u8]| self.record_page_crc(page_no, crc32(data));
        match self.registry.perform(pw, &self.device, self.cfg.page_size, on_durable) {
            WbOutcome::Written => self.counters.writebacks.fetch_add(1, Ordering::Relaxed),
            WbOutcome::Coalesced => self.counters.wb_coalesced.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Route a dirty victim: background queue in async mode (with inline
    /// fallback as back-pressure), inline in sync mode. Inline work is
    /// timed as eviction stall — the cost the async engine exists to hide.
    fn dispatch_writeback(&self, pw: PendingWriteback) {
        debug_assert!(!shard_lock_held(), "write-back dispatched under a shard lock");
        let pw = if self.cfg.io.mode == IoMode::Async {
            match self.io.try_push(IoRequest::WriteBack(pw)) {
                Ok(()) => return,
                Err(IoRequest::WriteBack(pw)) => pw,
                Err(_) => unreachable!("pushed a writeback"),
            }
        } else {
            pw
        };
        let t = Instant::now();
        self.perform_writeback(&pw);
        self.counters.evict_stall_ns.fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    /// Issue readahead for the window after a demand miss.
    fn request_readahead(&self, first: u64, count: usize) {
        match self.cfg.io.mode {
            IoMode::Sync => {
                let t = Instant::now();
                self.do_prefetch(first, count);
                self.stall(t);
            }
            IoMode::Async => {
                if self.io.try_push(IoRequest::Prefetch { first, count }).is_err() {
                    self.counters.dropped_prefetches.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) {
        let ps = self.cfg.page_size as u64;
        let mut done = 0usize;
        while done < buf.len() {
            let pos = offset + done as u64;
            let page_no = pos / ps;
            let in_page = (pos % ps) as usize;
            let n = (self.cfg.page_size - in_page).min(buf.len() - done);
            let (_, missed) = self.with_page(page_no, false, |page| {
                buf[done..done + n].copy_from_slice(&page[in_page..in_page + n]);
            });
            done += n;
            if missed && self.cfg.readahead_pages > 0 {
                self.request_readahead(page_no + 1, self.cfg.readahead_pages);
            }
        }
    }

    fn write_at(&self, offset: u64, buf: &[u8]) {
        let ps = self.cfg.page_size as u64;
        let mut done = 0usize;
        while done < buf.len() {
            let pos = offset + done as u64;
            let page_no = pos / ps;
            let in_page = (pos % ps) as usize;
            let n = (self.cfg.page_size - in_page).min(buf.len() - done);
            self.with_page(page_no, true, |page| {
                page[in_page..in_page + n].copy_from_slice(&buf[done..done + n]);
            });
            done += n;
        }
        self.len_hint.fetch_max(offset + buf.len() as u64, Ordering::Relaxed);
    }

    fn quiesce(&self) {
        if self.cfg.io.mode == IoMode::Async {
            self.io.quiesce();
        }
    }

    fn flush(&self) {
        // Let queued prefetches and write-behinds finish first.
        self.quiesce();
        let mut pending = Vec::new();
        for slot in &self.shards {
            let mut shard = slot.lock();
            for idx in 0..shard.frames.len() {
                if shard.frames[idx].dirty && !shard.frames[idx].limbo {
                    let page_no = shard.frames[idx].page_no;
                    pending.push(self.registry.register(page_no, &shard.frames[idx].data));
                    shard.frames[idx].dirty = false;
                }
            }
        }
        for pw in pending {
            self.perform_writeback(&pw);
        }
        self.registry.drain();
    }

    fn clear(&self) {
        self.flush();
        for slot in &self.shards {
            let mut shard = slot.lock();
            while shard.map.values().any(|s| matches!(s, Slot::Faulting))
                || shard.frames.iter().any(|f| f.limbo)
            {
                shard.wait();
            }
            shard.map.clear();
            shard.frames.clear();
            shard.order.clear();
            shard.clock_hand = 0;
        }
    }
}

/// Sharded page cache over a [`BlockDevice`].
///
/// ```
/// use std::sync::{Arc, Mutex};
/// use havoq_nvram::cache::{PageCache, PageCacheConfig};
/// use havoq_nvram::device::{BlockDevice, MemDevice, SimNvram, DeviceProfile};
///
/// let nand: Arc<dyn BlockDevice> =
///     Arc::new(SimNvram::new(MemDevice::new(), DeviceProfile::fusion_io()));
/// let cache = PageCache::new(nand, PageCacheConfig::default());
/// cache.write_at(10_000, b"graph bytes");
/// let mut buf = [0u8; 11];
/// cache.read_at(10_000, &mut buf);
/// assert_eq!(&buf, b"graph bytes");
/// assert_eq!(cache.stats().hits, 1); // the read hit the dirty cached page
/// ```
pub struct PageCache {
    core: Arc<CacheCore>,
    /// Worker pool; present only in async mode. Dropping it drains the
    /// queue and joins the workers.
    _engine: Option<IoEngine>,
}

impl PageCache {
    pub fn new(device: Arc<dyn BlockDevice>, cfg: PageCacheConfig) -> Self {
        let core = Arc::new(CacheCore::new(device, cfg));
        let engine = (cfg.io.mode == IoMode::Async)
            .then(|| IoEngine::start(Arc::clone(&core), core.io.workers()));
        Self { core, _engine: engine }
    }

    pub fn config(&self) -> PageCacheConfig {
        self.core.cfg
    }

    pub fn device(&self) -> &Arc<dyn BlockDevice> {
        &self.core.device
    }

    /// Total frames across shards — always equals the configured
    /// `capacity_pages` (remainders are distributed, not dropped).
    pub fn capacity_pages(&self) -> usize {
        self.core.shards.iter().map(|s| s.m.lock().unwrap().capacity).sum()
    }

    /// POSIX-like positional read through the cache, with sequential
    /// readahead on misses (inline or background per [`IoConfig`]).
    pub fn read_at(&self, offset: u64, buf: &mut [u8]) {
        self.core.read_at(offset, buf);
    }

    /// POSIX-like positional write through the cache (write-back).
    pub fn write_at(&self, offset: u64, buf: &[u8]) {
        self.core.write_at(offset, buf);
    }

    /// Raise the addressed-length high-water mark (e.g. when an allocator
    /// parcels out device space before any write lands). Readahead is
    /// clamped to `max(device length, high-water mark)`.
    pub fn note_len(&self, len: u64) {
        self.core.len_hint.fetch_max(len, Ordering::Relaxed);
    }

    /// Hint that `offset .. offset + len` will be read soon. In async
    /// mode, issues background prefetch for the covered pages and returns
    /// immediately; a no-op in sync mode.
    pub fn advise(&self, offset: u64, len: u64) {
        if self.core.cfg.io.mode != IoMode::Async || len == 0 {
            return;
        }
        let ps = self.core.cfg.page_size as u64;
        // Clamp to the data that exists (mirroring do_prefetch): hints past
        // the extent would burn bounded-queue slots and skew the depth
        // histogram only to no-op inside the worker.
        let total = self.core.total_pages();
        let mut page = offset / ps;
        if total == 0 || page >= total {
            return;
        }
        let last = ((offset + len - 1) / ps).min(total - 1);
        while page <= last {
            let count = ((last - page + 1) as usize).min(ADVISE_CHUNK_PAGES);
            if self.core.io.try_push(IoRequest::Prefetch { first: page, count }).is_err() {
                // queue is saturated: stop hinting, demand faults cope
                self.core.counters.dropped_prefetches.fetch_add(1, Ordering::Relaxed);
                return;
            }
            page += count as u64;
        }
    }

    /// Write every dirty page back to the device (waits for in-flight
    /// background I/O first).
    pub fn flush(&self) {
        self.core.flush();
    }

    /// Drop every cached page (flushing dirty ones): cold-cache state for
    /// experiments.
    pub fn clear(&self) {
        self.core.clear();
    }

    pub fn stats(&self) -> CacheStatsSnapshot {
        let c = &self.core.counters;
        CacheStatsSnapshot {
            hits: c.hits.load(Ordering::Relaxed),
            misses: c.misses.load(Ordering::Relaxed),
            evictions: c.evictions.load(Ordering::Relaxed),
            writebacks: c.writebacks.load(Ordering::Relaxed),
            prefetches: c.prefetches.load(Ordering::Relaxed),
            fault_waits: c.fault_waits.load(Ordering::Relaxed),
            wb_coalesced: c.wb_coalesced.load(Ordering::Relaxed),
            dropped_prefetches: c.dropped_prefetches.load(Ordering::Relaxed),
            io_stall_ns: c.io_stall_ns.load(Ordering::Relaxed),
            evict_stall_ns: c.evict_stall_ns.load(Ordering::Relaxed),
            page_checksum_failures: c.page_checksum_failures.load(Ordering::Relaxed),
            page_reread_retries: c.page_reread_retries.load(Ordering::Relaxed),
        }
    }

    /// Observability snapshot of the I/O engine (queue-depth histogram,
    /// outstanding gauge, service times). Zeros in sync mode.
    pub fn io_stats(&self) -> IoStatsSnapshot {
        self.core.io.snapshot(self.core.cfg.io.mode)
    }

    /// Reset counters (e.g. after a warm-up traversal).
    pub fn reset_stats(&self) {
        let c = &self.core.counters;
        c.hits.store(0, Ordering::Relaxed);
        c.misses.store(0, Ordering::Relaxed);
        c.evictions.store(0, Ordering::Relaxed);
        c.writebacks.store(0, Ordering::Relaxed);
        c.prefetches.store(0, Ordering::Relaxed);
        c.fault_waits.store(0, Ordering::Relaxed);
        c.wb_coalesced.store(0, Ordering::Relaxed);
        c.dropped_prefetches.store(0, Ordering::Relaxed);
        c.io_stall_ns.store(0, Ordering::Relaxed);
        c.evict_stall_ns.store(0, Ordering::Relaxed);
        c.page_checksum_failures.store(0, Ordering::Relaxed);
        c.page_reread_retries.store(0, Ordering::Relaxed);
        self.core.io.reset_stats();
    }

    /// Check structural invariants; panics on violation. Intended for
    /// tests on a quiescent cache: map and frame table must form a
    /// bijection, no page may occupy two frames, and nothing may be
    /// mid-fault.
    pub fn validate(&self) {
        self.core.quiesce();
        for (si, slot) in self.core.shards.iter().enumerate() {
            let shard = slot.lock();
            let mut seen = vec![false; shard.frames.len()];
            for (&page, &s) in &shard.map {
                let Slot::Present(idx) = s else {
                    panic!("shard {si}: page {page} still faulting on a quiescent cache");
                };
                assert!(idx < shard.frames.len(), "shard {si}: frame index out of range");
                assert!(!seen[idx], "shard {si}: frame {idx} mapped by two pages");
                seen[idx] = true;
                assert_eq!(shard.frames[idx].page_no, page, "shard {si}: map/frame mismatch");
                assert!(!shard.frames[idx].limbo, "shard {si}: mapped frame in limbo");
            }
            for (idx, frame) in shard.frames.iter().enumerate() {
                assert!(!frame.limbo, "shard {si}: limbo frame on a quiescent cache");
                assert!(seen[idx], "shard {si}: frame {idx} (page {}) unmapped", frame.page_no);
            }
            assert!(shard.frames.len() <= shard.capacity, "shard {si}: over capacity");
            if self.core.cfg.policy.stamp_ordered() {
                assert_eq!(shard.order.len(), shard.frames.len(), "shard {si}: order index size");
                for (&stamp, &idx) in &shard.order {
                    assert_eq!(shard.frames[idx].stamp, stamp, "shard {si}: stale order stamp");
                }
            }
        }
    }
}

/// Plain-data snapshot of cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStatsSnapshot {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub writebacks: u64,
    /// Pages faulted by sequential readahead rather than demand misses.
    pub prefetches: u64,
    /// Accesses that found their page mid-fill and waited for it instead
    /// of issuing a duplicate device read.
    pub fault_waits: u64,
    /// Write-back tickets skipped because a newer generation of the page
    /// superseded them before they reached the device.
    pub wb_coalesced: u64,
    /// Prefetch requests dropped (queue full) or released (no free frame).
    pub dropped_prefetches: u64,
    /// Time callers spent blocked on I/O: demand fills, waits on in-flight
    /// fills, and (sync mode) inline readahead.
    pub io_stall_ns: u64,
    /// Time callers spent writing dirty victims inline — the eviction
    /// stall that write-behind exists to remove.
    pub evict_stall_ns: u64,
    /// Fills whose bytes mismatched the page's write-back checksum.
    /// Every detection triggered re-reads (or, for prefetch, a released
    /// claim) — none of these pages was served corrupt.
    pub page_checksum_failures: u64,
    /// Device re-reads issued to recover checksum-failed fills.
    pub page_reread_retries: u64,
}

impl CacheStatsSnapshot {
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }

    /// Caller time blocked on I/O, as a duration.
    pub fn io_stall(&self) -> Duration {
        Duration::from_nanos(self.io_stall_ns)
    }

    /// Caller time spent on inline dirty-victim writes, as a duration.
    pub fn evict_stall(&self) -> Duration {
        Duration::from_nanos(self.evict_stall_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{DeviceProfile, MemDevice, SimNvram};

    fn cache(pages: usize, page_size: usize) -> (Arc<MemDevice>, PageCache) {
        let dev = Arc::new(MemDevice::new());
        let c = PageCache::new(
            Arc::clone(&dev) as Arc<dyn BlockDevice>,
            PageCacheConfig {
                page_size,
                capacity_pages: pages,
                shards: 2,
                ..PageCacheConfig::default()
            },
        );
        (dev, c)
    }

    #[test]
    fn read_write_roundtrip_within_page() {
        let (_dev, c) = cache(8, 64);
        c.write_at(5, b"havoq");
        let mut buf = [0u8; 5];
        c.read_at(5, &mut buf);
        assert_eq!(&buf, b"havoq");
    }

    #[test]
    fn read_write_spanning_pages() {
        let (_dev, c) = cache(8, 64);
        let data: Vec<u8> = (0..200).map(|i| i as u8).collect();
        c.write_at(30, &data);
        let mut buf = vec![0u8; 200];
        c.read_at(30, &mut buf);
        assert_eq!(buf, data);
    }

    #[test]
    fn writeback_on_flush() {
        let (dev, c) = cache(8, 64);
        c.write_at(0, &[7u8; 64]);
        assert_eq!(dev.stats().writes, 0, "write-back: nothing hits device yet");
        c.flush();
        assert_eq!(dev.stats().writes, 1);
        let mut raw = [0u8; 64];
        dev.read_at(0, &mut raw);
        assert_eq!(raw, [7u8; 64]);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let (dev, c) = cache(2, 64); // 1 page per shard
                                     // page numbers map to shards by page_no % 2; use pages 0,2,4 (shard 0)
        c.write_at(0, &[1u8; 64]); // page 0
        c.write_at(2 * 64, &[2u8; 64]); // page 2: evicts page 0
        c.write_at(4 * 64, &[3u8; 64]); // page 4: evicts page 2
        let s = c.stats();
        assert!(s.evictions >= 2, "expected evictions, got {s:?}");
        assert!(s.writebacks >= 2);
        // evicted data must be durable
        let mut buf = [0u8; 64];
        dev.read_at(0, &mut buf);
        assert_eq!(buf, [1u8; 64]);
    }

    #[test]
    fn data_survives_eviction_roundtrip() {
        let (_dev, c) = cache(4, 32);
        let n = 64usize; // 64 pages worth, far exceeding capacity
        for i in 0..n {
            c.write_at((i * 32) as u64, &[i as u8; 32]);
        }
        for i in 0..n {
            let mut buf = [0u8; 32];
            c.read_at((i * 32) as u64, &mut buf);
            assert_eq!(buf, [i as u8; 32], "page {i}");
        }
    }

    #[test]
    fn hit_rate_reflects_locality() {
        let (_dev, c) = cache(4, 64);
        c.write_at(0, &[1u8; 8]);
        for _ in 0..99 {
            let mut b = [0u8; 8];
            c.read_at(0, &mut b);
        }
        let s = c.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 99);
        assert!(s.hit_rate() > 0.98);
    }

    #[test]
    fn clock_eviction_order_is_second_chance() {
        // capacity 2 in one shard. A, B load with reference bits set; C's
        // eviction scan clears A then B and takes the first frame after the
        // wrapped hand (A). B must survive the scan and still hit.
        let dev = Arc::new(MemDevice::new());
        let c = PageCache::new(
            dev as Arc<dyn BlockDevice>,
            PageCacheConfig {
                page_size: 64,
                capacity_pages: 2,
                shards: 1,
                ..PageCacheConfig::default()
            },
        );
        let mut b = [0u8; 1];
        c.read_at(0, &mut b); // A: miss
        c.read_at(64, &mut b); // B: miss
        c.read_at(0, &mut b); // A: hit
        c.read_at(128, &mut b); // C: miss, scan clears A and B, evicts A
        c.read_at(64, &mut b); // B survived the scan: hit
        let s = c.stats();
        assert_eq!((s.misses, s.hits), (3, 2), "{s:?}");

        // after the scan, B and C carry cleared/fresh bits; touching C gives
        // it a second chance over B on the next eviction
        c.read_at(128, &mut b); // C: hit, referenced
        c.read_at(192, &mut b); // D: miss, evicts B (unreferenced), not C
        c.read_at(128, &mut b); // C must still be cached
        let s = c.stats();
        assert_eq!(s.misses, 4, "{s:?}");
        assert_eq!(s.hits, 4, "{s:?}");
    }

    #[test]
    fn clear_produces_cold_cache() {
        let (_dev, c) = cache(8, 64);
        c.write_at(0, &[9u8; 64]);
        c.clear();
        c.reset_stats();
        let mut b = [0u8; 64];
        c.read_at(0, &mut b);
        assert_eq!(b, [9u8; 64], "clear must flush, not lose data");
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn readahead_converts_misses_to_hits() {
        let dev = Arc::new(MemDevice::new());
        dev.write_at(0, &vec![7u8; 64 * 64]);
        let c = PageCache::new(
            dev as Arc<dyn BlockDevice>,
            PageCacheConfig {
                page_size: 64,
                capacity_pages: 32,
                shards: 2,
                readahead_pages: 4,
                ..PageCacheConfig::default()
            },
        );
        // sequential page-by-page scan: with readahead 4, only every 5th
        // page is a demand miss
        let mut b = [0u8; 64];
        for page in 0..30u64 {
            c.read_at(page * 64, &mut b);
            assert_eq!(b, [7u8; 64]);
        }
        let s = c.stats();
        assert_eq!(s.misses, 6, "{s:?}");
        assert_eq!(s.hits, 24, "{s:?}");
        assert_eq!(s.prefetches, 24, "{s:?}");
    }

    #[test]
    fn readahead_preserves_correctness_with_tiny_cache() {
        let dev = Arc::new(MemDevice::new());
        let c = PageCache::new(
            dev as Arc<dyn BlockDevice>,
            PageCacheConfig {
                page_size: 64,
                capacity_pages: 2,
                shards: 1,
                readahead_pages: 8,
                ..PageCacheConfig::default()
            },
        );
        for i in 0..64u64 {
            c.write_at(i * 8, &i.to_le_bytes());
        }
        for i in 0..64u64 {
            let mut b = [0u8; 8];
            c.read_at(i * 8, &mut b);
            assert_eq!(u64::from_le_bytes(b), i);
        }
    }

    #[test]
    fn readahead_clamps_at_end_of_data() {
        // Regression: readahead past the last allocated page must not
        // fault in (or charge device reads for) pages that don't exist.
        let dev = Arc::new(MemDevice::new());
        dev.write_at(0, &[9u8; 8 * 64]); // exactly 8 pages of real data
        let c = PageCache::new(
            Arc::clone(&dev) as Arc<dyn BlockDevice>,
            PageCacheConfig {
                page_size: 64,
                capacity_pages: 32,
                shards: 2,
                readahead_pages: 16,
                ..PageCacheConfig::default()
            },
        );
        let mut b = [0u8; 64];
        c.read_at(6 * 64, &mut b); // miss on page 6 -> window 7..23 clamps to {7}
        assert_eq!(b, [9u8; 64]);
        let s = c.stats();
        assert_eq!(s.prefetches, 1, "window must clamp to the one existing page: {s:?}");
        assert!(
            dev.stats().bytes_read <= 8 * 64,
            "read past end of device: {} bytes",
            dev.stats().bytes_read
        );
        // the last page itself must still readahead-hit
        c.read_at(7 * 64, &mut b);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn note_len_bounds_readahead_on_empty_device() {
        // Allocations announced via note_len (ExtStore::alloc does this)
        // bound the window even before any byte reaches the device.
        let dev = Arc::new(MemDevice::new());
        let c = PageCache::new(
            Arc::clone(&dev) as Arc<dyn BlockDevice>,
            PageCacheConfig {
                page_size: 64,
                capacity_pages: 8,
                shards: 1,
                readahead_pages: 8,
                ..PageCacheConfig::default()
            },
        );
        c.note_len(3 * 64); // three pages allocated, zero on device
        let mut b = [0u8; 64];
        c.read_at(0, &mut b); // miss on 0 -> window 1..9 clamps to {1, 2}
        assert_eq!(b, [0u8; 64]);
        assert_eq!(c.stats().prefetches, 2, "{:?}", c.stats());
    }

    #[test]
    fn shard_capacity_remainder_is_distributed() {
        // Regression: 129 pages / 8 shards used to silently cache 128.
        let dev = Arc::new(MemDevice::new());
        let c = PageCache::new(
            dev as Arc<dyn BlockDevice>,
            PageCacheConfig {
                page_size: 64,
                capacity_pages: 129,
                shards: 8,
                ..PageCacheConfig::default()
            },
        );
        assert_eq!(c.capacity_pages(), 129);
        let (_dev2, c2) = cache(8, 64);
        assert_eq!(c2.capacity_pages(), 8);
    }

    #[test]
    fn no_device_io_under_shard_lock() {
        // Regression: dirty victims used to be written (and demand fills
        // read) while holding the shard mutex, serializing every rank that
        // hashed to the shard behind multi-microsecond NAND accesses.
        let dev = Arc::new(MemDevice::new());
        let violations = Arc::new(AtomicU64::new(0));
        let v1 = Arc::clone(&violations);
        dev.add_read_hook(Arc::new(move |_, _| {
            if shard_lock_held() {
                v1.fetch_add(1, Ordering::Relaxed);
            }
        }));
        let v2 = Arc::clone(&violations);
        dev.add_write_hook(Arc::new(move |_, _| {
            if shard_lock_held() {
                v2.fetch_add(1, Ordering::Relaxed);
            }
        }));
        let c = PageCache::new(
            Arc::clone(&dev) as Arc<dyn BlockDevice>,
            PageCacheConfig {
                page_size: 64,
                capacity_pages: 2,
                shards: 1,
                readahead_pages: 2,
                ..PageCacheConfig::default()
            },
        );
        // dirty evictions + demand fills + readahead + flush
        for i in 0..32u64 {
            c.write_at(i * 64, &[i as u8; 64]);
        }
        for i in 0..32u64 {
            let mut b = [0u8; 64];
            c.read_at(i * 64, &mut b);
            assert_eq!(b, [i as u8; 64]);
        }
        c.flush();
        let s = c.stats();
        assert!(s.writebacks > 0, "workload must exercise write-back: {s:?}");
        assert_eq!(
            violations.load(Ordering::Relaxed),
            0,
            "device I/O performed while holding a shard lock"
        );
    }

    #[test]
    fn eviction_stall_is_measured_in_sync_mode() {
        let dev = Arc::new(SimNvram::new(
            MemDevice::new(),
            DeviceProfile {
                name: "t",
                read_latency_ns: 0,
                write_latency_ns: 50_000,
                concurrency: 8,
            },
        ));
        let c = PageCache::new(
            dev as Arc<dyn BlockDevice>,
            PageCacheConfig {
                page_size: 64,
                capacity_pages: 2,
                shards: 1,
                ..PageCacheConfig::default()
            },
        );
        for i in 0..8u64 {
            c.write_at(i * 64, &[i as u8; 64]);
        }
        let s = c.stats();
        assert!(s.writebacks > 0, "{s:?}");
        assert!(
            s.evict_stall() >= Duration::from_micros(50),
            "inline victim writes must be timed: {s:?}"
        );
    }

    fn policy_cache(policy: EvictionPolicy) -> PageCache {
        let dev = Arc::new(MemDevice::new());
        PageCache::new(
            dev as Arc<dyn BlockDevice>,
            PageCacheConfig {
                page_size: 64,
                capacity_pages: 2,
                shards: 1,
                policy,
                ..PageCacheConfig::default()
            },
        )
    }

    #[test]
    fn lru_keeps_recently_used() {
        let c = policy_cache(EvictionPolicy::Lru);
        let mut b = [0u8; 1];
        c.read_at(0, &mut b); // A
        c.read_at(64, &mut b); // B
        c.read_at(0, &mut b); // A: now most recent
        c.read_at(128, &mut b); // C: LRU evicts B
        c.read_at(0, &mut b); // A: must hit
        let s = c.stats();
        assert_eq!((s.misses, s.hits), (3, 2), "{s:?}");
    }

    #[test]
    fn fifo_ignores_recency() {
        let c = policy_cache(EvictionPolicy::Fifo);
        let mut b = [0u8; 1];
        c.read_at(0, &mut b); // A (inserted first)
        c.read_at(64, &mut b); // B
        c.read_at(0, &mut b); // A hit: FIFO unaffected
        c.read_at(128, &mut b); // C: evicts A (oldest insertion)
        c.read_at(0, &mut b); // A: must miss again
        let s = c.stats();
        assert_eq!((s.misses, s.hits), (4, 1), "{s:?}");
    }

    #[test]
    fn all_policies_preserve_data() {
        for policy in [EvictionPolicy::Clock, EvictionPolicy::Lru, EvictionPolicy::Fifo] {
            let c = policy_cache(policy);
            for i in 0..32u64 {
                c.write_at(i * 64, &[i as u8; 64]);
            }
            for i in 0..32u64 {
                let mut buf = [0u8; 64];
                c.read_at(i * 64, &mut buf);
                assert_eq!(buf, [i as u8; 64], "{policy:?} page {i}");
            }
            c.validate();
        }
    }

    #[test]
    fn concurrent_disjoint_writers() {
        let dev = Arc::new(MemDevice::new());
        let c = Arc::new(PageCache::new(
            dev as Arc<dyn BlockDevice>,
            PageCacheConfig {
                page_size: 256,
                capacity_pages: 16,
                shards: 4,
                ..PageCacheConfig::default()
            },
        ));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                let base = t * 1_000_000;
                for i in 0..500u64 {
                    c.write_at(base + i * 8, &(t * 1000 + i).to_le_bytes());
                }
                for i in 0..500u64 {
                    let mut b = [0u8; 8];
                    c.read_at(base + i * 8, &mut b);
                    assert_eq!(u64::from_le_bytes(b), t * 1000 + i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        c.validate();
    }

    #[test]
    fn async_roundtrip_with_readahead_and_writeback() {
        let dev = Arc::new(SimNvram::new(MemDevice::new(), DeviceProfile::fusion_io()));
        let c = PageCache::new(
            Arc::clone(&dev) as Arc<dyn BlockDevice>,
            PageCacheConfig {
                page_size: 64,
                capacity_pages: 8,
                shards: 2,
                readahead_pages: 4,
                io: IoConfig::asynchronous(),
                ..PageCacheConfig::default()
            },
        );
        let n = 64usize;
        for i in 0..n {
            c.write_at((i * 64) as u64, &[i as u8; 64]);
        }
        for i in 0..n {
            let mut b = [0u8; 64];
            c.read_at((i * 64) as u64, &mut b);
            assert_eq!(b, [i as u8; 64], "page {i}");
        }
        c.flush();
        // durability: raw device holds everything after flush
        for i in 0..n {
            let mut b = [0u8; 64];
            dev.read_at((i * 64) as u64, &mut b);
            assert_eq!(b, [i as u8; 64], "device page {i}");
        }
        c.validate();
        let s = c.stats();
        assert_eq!(s.accesses(), s.hits + s.misses);
        let io = c.io_stats();
        assert_eq!(io.mode, IoMode::Async);
        assert!(io.workers > 0);
    }

    #[test]
    fn async_advise_prefetches_in_background() {
        let dev = Arc::new(MemDevice::new());
        dev.write_at(0, &vec![5u8; 32 * 64]);
        let c = PageCache::new(
            dev as Arc<dyn BlockDevice>,
            PageCacheConfig {
                page_size: 64,
                capacity_pages: 64,
                shards: 4,
                io: IoConfig::asynchronous(),
                ..PageCacheConfig::default()
            },
        );
        c.advise(0, 32 * 64);
        c.flush(); // quiesces the engine
        let s = c.stats();
        assert_eq!(s.prefetches, 32, "{s:?}");
        // all subsequent reads hit
        let mut b = [0u8; 64];
        for p in 0..32u64 {
            c.read_at(p * 64, &mut b);
            assert_eq!(b, [5u8; 64]);
        }
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (32, 0), "{s:?}");
        assert!(c.io_stats().depth_hist.count() > 0);
    }

    #[test]
    fn async_drop_joins_workers_cleanly() {
        let dev = Arc::new(MemDevice::new());
        let c = PageCache::new(
            dev as Arc<dyn BlockDevice>,
            PageCacheConfig {
                page_size: 64,
                capacity_pages: 8,
                shards: 2,
                readahead_pages: 8,
                io: IoConfig::asynchronous(),
                ..PageCacheConfig::default()
            },
        );
        c.write_at(0, &[1u8; 256]);
        let mut b = [0u8; 256];
        c.read_at(0, &mut b);
        drop(c); // must not hang or leak panics
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_page_size_rejected() {
        let dev = Arc::new(MemDevice::new());
        let _ = PageCache::new(
            dev as Arc<dyn BlockDevice>,
            PageCacheConfig {
                page_size: 100,
                capacity_pages: 8,
                shards: 2,
                ..PageCacheConfig::default()
            },
        );
    }

    /// [`MemDevice`] wrapper that runs a one-shot hook after servicing a
    /// read — models external state changing right after a bulk snapshot
    /// was taken but before it is consumed.
    struct HookDevice {
        inner: Arc<MemDevice>,
        after_read: Mutex<Option<Box<dyn FnOnce() + Send>>>,
    }

    impl BlockDevice for HookDevice {
        fn read_at(&self, offset: u64, buf: &mut [u8]) {
            self.inner.read_at(offset, buf);
            if let Some(h) = self.after_read.lock().unwrap().take() {
                h();
            }
        }
        fn write_at(&self, offset: u64, buf: &[u8]) {
            self.inner.write_at(offset, buf);
        }
        fn len(&self) -> u64 {
            self.inner.len()
        }
        fn stats(&self) -> crate::device::DeviceStatsSnapshot {
            self.inner.stats()
        }
    }

    #[test]
    fn prefetch_fill_not_stale_when_writeback_lands_mid_window() {
        // Regression: a queued write-back that completes between
        // do_prefetch's bulk device snapshot and its per-page fill removes
        // its registry entry, so a post-snapshot lookup misses it and the
        // pre-write-back snapshot bytes would be installed (lost update).
        // The fill must use bytes pinned at claim time instead.
        let inner = Arc::new(MemDevice::new());
        inner.write_at(0, &[0xAA; 64]); // page 0: pre-write-back bytes
        inner.write_at(64, &[0xBB; 64]); // page 1
        let hooked =
            Arc::new(HookDevice { inner: Arc::clone(&inner), after_read: Mutex::new(None) });
        let c = PageCache::new(
            Arc::clone(&hooked) as Arc<dyn BlockDevice>,
            PageCacheConfig {
                page_size: 64,
                capacity_pages: 4,
                shards: 1,
                ..PageCacheConfig::default()
            },
        );
        // A dirty victim of page 0 is in flight: its newest bytes sit in
        // the registry, queued for write-back.
        let pw = c.core.registry.register(0, &[0xCC; 64]);
        // The write-back completes immediately after the prefetch's bulk
        // snapshot (which still read 0xAA) and removes the registry entry.
        let core = Arc::clone(&c.core);
        let dev = Arc::clone(&inner) as Arc<dyn BlockDevice>;
        *hooked.after_read.lock().unwrap() = Some(Box::new(move || {
            let _ = core.registry.perform(&pw, &dev, 64, |_, _| ());
        }));
        c.core.do_prefetch(0, 2);
        let mut b = [0u8; 64];
        c.read_at(0, &mut b);
        assert_eq!(b, [0xCC; 64], "prefetch installed pre-write-back bytes");
        c.read_at(64, &mut b);
        assert_eq!(b, [0xBB; 64]);
        c.validate();
    }

    #[test]
    fn advise_past_extent_is_clamped() {
        let dev = Arc::new(MemDevice::new());
        dev.write_at(0, &[7u8; 4 * 64]); // 4 pages exist
        let c = PageCache::new(
            dev as Arc<dyn BlockDevice>,
            PageCacheConfig {
                page_size: 64,
                capacity_pages: 16,
                shards: 2,
                io: IoConfig::asynchronous(),
                ..PageCacheConfig::default()
            },
        );
        // Entirely past the extent: nothing may reach the bounded queue.
        c.advise(100 * 64, 64 * 64);
        c.flush(); // quiesces the engine
        assert_eq!(c.io_stats().depth_hist.count(), 0, "past-EOF hints must not be submitted");
        // Overlapping the end: clamped to the pages that exist.
        c.advise(0, 1_000_000);
        c.flush();
        let s = c.stats();
        assert_eq!(s.prefetches, 4, "{s:?}");
        assert_eq!(s.dropped_prefetches, 0, "{s:?}");
    }

    #[test]
    fn transient_read_corruption_is_detected_and_retried() {
        let (dev, c) = cache(8, 64);
        let n = 64u64;
        for i in 0..n {
            c.write_at(i * 64, &[i as u8; 64]);
        }
        c.clear(); // flush (records per-page checksums) + drop every frame
        assert_eq!(c.stats().page_checksum_failures, 0);
        dev.set_read_corruption(400, 0x0BAD_5EED);
        c.reset_stats();
        for i in 0..n {
            let mut b = [0u8; 64];
            c.read_at(i * 64, &mut b);
            assert_eq!(b, [i as u8; 64], "page {i} served corrupt bytes");
        }
        let s = c.stats();
        assert!(s.page_checksum_failures > 0, "400permille must corrupt some fills: {s:?}");
        assert!(s.page_reread_retries >= s.page_checksum_failures, "{s:?}");
        assert!(dev.reads_corrupted() >= s.page_checksum_failures, "{s:?}");
        dev.set_read_corruption(0, 0);
        c.validate();
    }

    #[test]
    fn prefetch_checksum_failure_falls_back_to_demand_fill() {
        let dev = Arc::new(MemDevice::new());
        let c = PageCache::new(
            Arc::clone(&dev) as Arc<dyn BlockDevice>,
            PageCacheConfig {
                page_size: 64,
                capacity_pages: 16,
                shards: 2,
                readahead_pages: 4,
                ..PageCacheConfig::default()
            },
        );
        let n = 48u64;
        for i in 0..n {
            c.write_at(i * 64, &[(i + 1) as u8; 64]);
        }
        c.clear();
        dev.set_read_corruption(300, 77);
        c.reset_stats();
        for i in 0..n {
            let mut b = [0u8; 64];
            c.read_at(i * 64, &mut b);
            assert_eq!(b, [(i + 1) as u8; 64], "page {i} served corrupt bytes");
        }
        let s = c.stats();
        assert!(s.page_checksum_failures > 0, "bulk reads must trip verification: {s:?}");
        dev.set_read_corruption(0, 0);
        c.validate();
    }

    #[test]
    fn unwritten_pages_are_unverifiable_but_served() {
        // Pages that never went through cache write-back (pre-populated
        // device) carry no checksum; corruption there is out of the
        // cache's contract and must not trip false quarantines.
        let dev = Arc::new(MemDevice::new());
        dev.write_at(0, &[9u8; 4 * 64]); // direct device write, no CRCs
        let c = PageCache::new(
            Arc::clone(&dev) as Arc<dyn BlockDevice>,
            PageCacheConfig {
                page_size: 64,
                capacity_pages: 8,
                shards: 2,
                ..PageCacheConfig::default()
            },
        );
        dev.set_read_corruption(1000, 5); // every read flips a bit
        let mut b = [0u8; 64];
        c.read_at(0, &mut b); // must not panic
        assert_eq!(c.stats().page_checksum_failures, 0);
        dev.set_read_corruption(0, 0);
    }

    #[test]
    #[should_panic(expected = "stored data is corrupt")]
    fn persistent_corruption_is_quarantined() {
        // Corrupt the *stored* bytes behind the cache's back: re-reads
        // cannot recover, so the fill must refuse to serve the page.
        let (dev, c) = cache(8, 64);
        c.write_at(0, &[1u8; 64]);
        c.clear(); // checksum recorded, frame dropped
        dev.write_at(0, &[2u8; 64]); // silent out-of-band overwrite
        let mut b = [0u8; 64];
        c.read_at(0, &mut b);
    }

    #[test]
    fn checksums_track_latest_writeback_generation() {
        // Rewrite the same page repeatedly through eviction cycles; the
        // recorded checksum must always describe the newest durable bytes.
        let (dev, c) = cache(2, 64);
        for round in 0..8u8 {
            c.write_at(0, &[round; 64]); // page 0
            c.write_at(2 * 64, &[round; 64]); // page 2: same shard, evicts 0
            c.write_at(4 * 64, &[round; 64]); // page 4: evicts 2
        }
        c.flush();
        dev.set_read_corruption(400, 99);
        for page in [0u64, 2, 4] {
            let mut b = [0u8; 64];
            c.read_at(page * 64, &mut b);
            assert_eq!(b, [7u8; 64], "page {page}");
        }
        dev.set_read_corruption(0, 0);
        c.validate();
    }
}
