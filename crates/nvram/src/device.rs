//! Block devices: the storage media under the page cache.
//!
//! [`MemDevice`] models the DRAM tier (and backs tests), [`FileDevice`] does
//! real file I/O, and [`SimNvram`] wraps any device with a per-access latency
//! and a bounded number of concurrent channels — the two properties that
//! dominate NAND Flash behaviour in the paper's evaluation (high latency,
//! high internal parallelism that rewards concurrent I/O).

use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use std::sync::{Condvar, Mutex, RwLock};

/// A byte-addressable block device. All methods take `&self`; devices are
/// internally synchronized because page-cache shards access them
/// concurrently.
pub trait BlockDevice: Send + Sync {
    /// Read `buf.len()` bytes starting at `offset`. Reads beyond the current
    /// end yield zeros (devices auto-extend, like sparse files).
    fn read_at(&self, offset: u64, buf: &mut [u8]);

    /// Write `buf` at `offset`, extending the device if needed.
    fn write_at(&self, offset: u64, buf: &[u8]);

    /// Current device length in bytes.
    fn len(&self) -> u64;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many accesses the device can usefully service in flight.
    ///
    /// The page cache sizes its asynchronous I/O queue from this, so "queue
    /// depth" in the stats means depth against the device's real channel
    /// parallelism. Devices without an internal bound report `usize::MAX`.
    fn concurrency_hint(&self) -> usize {
        usize::MAX
    }

    /// Cumulative access counters.
    fn stats(&self) -> DeviceStatsSnapshot;
}

/// Plain-data access counters for any device.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeviceStatsSnapshot {
    pub reads: u64,
    pub writes: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
}

#[derive(Default)]
struct DeviceCounters {
    reads: AtomicU64,
    writes: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
}

impl DeviceCounters {
    fn record_read(&self, n: usize) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(n as u64, Ordering::Relaxed);
    }

    fn record_write(&self, n: usize) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(n as u64, Ordering::Relaxed);
    }

    fn snapshot(&self) -> DeviceStatsSnapshot {
        DeviceStatsSnapshot {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
        }
    }
}

/// Observation hook invoked on each access: `(offset, len)`.
pub type AccessHook = std::sync::Arc<dyn Fn(u64, usize) + Send + Sync>;

/// In-memory device: the DRAM tier of Figure 9 / Table II, and the backing
/// store for most tests.
///
/// Supports seeded *transient* read corruption
/// ([`MemDevice::set_read_corruption`]): a corrupting read flips one bit in
/// the returned buffer while the stored bytes stay intact, modelling the
/// dominant NAND failure mode (read-disturb / ECC-miss on the wire) — which
/// is exactly what makes a bounded re-read retry a sound recovery policy.
pub struct MemDevice {
    data: RwLock<Vec<u8>>,
    counters: DeviceCounters,
    read_hooks: Mutex<Vec<AccessHook>>,
    write_hooks: Mutex<Vec<AccessHook>>,
    /// Per-mille of reads that return a single flipped bit.
    corrupt_permille: AtomicU64,
    corrupt_seed: AtomicU64,
    /// Monotone read counter: the corruption draw's nonce, so a re-read of
    /// the same offset draws a fresh verdict and retries converge.
    read_index: AtomicU64,
    reads_corrupted: AtomicU64,
}

impl MemDevice {
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    pub fn with_capacity(bytes: usize) -> Self {
        Self {
            data: RwLock::new(vec![0u8; bytes]),
            counters: DeviceCounters::default(),
            read_hooks: Mutex::new(Vec::new()),
            write_hooks: Mutex::new(Vec::new()),
            corrupt_permille: AtomicU64::new(0),
            corrupt_seed: AtomicU64::new(0),
            read_index: AtomicU64::new(0),
            reads_corrupted: AtomicU64::new(0),
        }
    }

    /// Add a hook called (on the accessing thread, before the copy) for
    /// every `read_at`. Hooks compose: each installed hook runs, in
    /// installation order. Tests use this to assert invariants about
    /// *where* device I/O happens — e.g. that no read runs under a cache
    /// shard lock — alongside fault injection.
    pub fn add_read_hook(&self, hook: AccessHook) {
        self.read_hooks.lock().unwrap().push(hook);
    }

    /// Add a hook called for every `write_at`; see [`Self::add_read_hook`].
    pub fn add_write_hook(&self, hook: AccessHook) {
        self.write_hooks.lock().unwrap().push(hook);
    }

    /// Make `permille`/1000 of subsequent reads return a buffer with one
    /// seeded bit flipped. The stored bytes are untouched, so a re-read
    /// draws a fresh verdict and usually returns clean data.
    pub fn set_read_corruption(&self, permille: u64, seed: u64) {
        self.corrupt_seed.store(seed, Ordering::Relaxed);
        self.corrupt_permille.store(permille, Ordering::Relaxed);
    }

    /// Reads that returned corrupted data so far.
    pub fn reads_corrupted(&self) -> u64 {
        self.reads_corrupted.load(Ordering::Relaxed)
    }

    fn run_hooks(slot: &Mutex<Vec<AccessHook>>, offset: u64, len: usize) {
        // Clone the Arcs out so the hooks themselves run without the slot
        // lock (hooks may re-enter the device).
        let hooks = slot.lock().unwrap().clone();
        for h in hooks {
            h(offset, len);
        }
    }

    /// SplitMix64-style avalanche for the corruption draw.
    fn mix(seed: u64, a: u64, b: u64) -> u64 {
        let mut z = seed
            .wrapping_add(a.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add(b.wrapping_mul(0xbf58_476d_1ce4_e5b9));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Flip one seeded bit of `buf` when this read's draw hits.
    fn maybe_corrupt(&self, offset: u64, buf: &mut [u8]) {
        let permille = self.corrupt_permille.load(Ordering::Relaxed);
        if permille == 0 || buf.is_empty() {
            return;
        }
        let index = self.read_index.fetch_add(1, Ordering::Relaxed);
        let h = Self::mix(self.corrupt_seed.load(Ordering::Relaxed), offset, index);
        if h % 1000 < permille {
            let bit = ((h >> 10) % (buf.len() as u64 * 8)) as usize;
            buf[bit / 8] ^= 1 << (bit % 8);
            self.reads_corrupted.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl Default for MemDevice {
    fn default() -> Self {
        Self::new()
    }
}

impl BlockDevice for MemDevice {
    fn read_at(&self, offset: u64, buf: &mut [u8]) {
        Self::run_hooks(&self.read_hooks, offset, buf.len());
        self.counters.record_read(buf.len());
        {
            let data = self.data.read().unwrap();
            let off = offset as usize;
            let have = data.len().saturating_sub(off).min(buf.len());
            if have > 0 {
                buf[..have].copy_from_slice(&data[off..off + have]);
            }
            buf[have..].fill(0);
        }
        self.maybe_corrupt(offset, buf);
    }

    fn write_at(&self, offset: u64, buf: &[u8]) {
        Self::run_hooks(&self.write_hooks, offset, buf.len());
        self.counters.record_write(buf.len());
        let mut data = self.data.write().unwrap();
        let end = offset as usize + buf.len();
        if data.len() < end {
            data.resize(end, 0);
        }
        data[offset as usize..end].copy_from_slice(buf);
    }

    fn len(&self) -> u64 {
        self.data.read().unwrap().len() as u64
    }

    fn stats(&self) -> DeviceStatsSnapshot {
        self.counters.snapshot()
    }
}

/// A device backed by a real file — lets experiments exercise the OS I/O
/// path when wanted (the paper used direct I/O to NAND; we simply use
/// ordinary file I/O since the latency model lives in [`SimNvram`]).
pub struct FileDevice {
    file: Mutex<File>,
    counters: DeviceCounters,
}

impl FileDevice {
    pub fn create<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        let file = File::options().read(true).write(true).create(true).truncate(true).open(path)?;
        Ok(Self { file: Mutex::new(file), counters: DeviceCounters::default() })
    }
}

impl BlockDevice for FileDevice {
    fn read_at(&self, offset: u64, buf: &mut [u8]) {
        self.counters.record_read(buf.len());
        let mut f = self.file.lock().unwrap();
        let len = f.seek(SeekFrom::End(0)).expect("seek");
        if offset >= len {
            buf.fill(0);
            return;
        }
        f.seek(SeekFrom::Start(offset)).expect("seek");
        let have = ((len - offset) as usize).min(buf.len());
        f.read_exact(&mut buf[..have]).expect("read");
        buf[have..].fill(0);
    }

    fn write_at(&self, offset: u64, buf: &[u8]) {
        self.counters.record_write(buf.len());
        let mut f = self.file.lock().unwrap();
        f.seek(SeekFrom::Start(offset)).expect("seek");
        f.write_all(buf).expect("write");
    }

    fn len(&self) -> u64 {
        let mut f = self.file.lock().unwrap();
        f.seek(SeekFrom::End(0)).expect("seek")
    }

    fn stats(&self) -> DeviceStatsSnapshot {
        self.counters.snapshot()
    }
}

/// Latency/concurrency profile of a storage tier.
///
/// The latencies are *simulation-scaled*: real NAND page reads cost tens to
/// hundreds of microseconds, but the reproduction runs graphs ~10^4 times
/// smaller than the paper's, so profiles keep the *ratios* between tiers
/// while shrinking absolute values enough for experiments to finish.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeviceProfile {
    pub name: &'static str,
    /// Added latency per read access.
    pub read_latency_ns: u64,
    /// Added latency per write access.
    pub write_latency_ns: u64,
    /// Maximum in-flight accesses (NAND channel parallelism).
    pub concurrency: usize,
}

impl DeviceProfile {
    /// DRAM tier: no added latency.
    pub const fn dram() -> Self {
        Self { name: "dram", read_latency_ns: 0, write_latency_ns: 0, concurrency: usize::MAX }
    }

    /// Enterprise PCIe NAND (the paper's Fusion-io tier), scaled: real
    /// ~50 us/page -> 2 us here.
    pub const fn fusion_io() -> Self {
        Self { name: "fusion-io", read_latency_ns: 2_000, write_latency_ns: 4_000, concurrency: 32 }
    }

    /// Commodity SATA SSD (the paper's Trestles tier), scaled: real
    /// ~150 us/page -> 6 us here. Lower internal parallelism.
    pub const fn sata_ssd() -> Self {
        Self { name: "sata-ssd", read_latency_ns: 6_000, write_latency_ns: 12_000, concurrency: 8 }
    }

    /// Enterprise PCIe NAND at *real* (unscaled) latency: ~100 us/page
    /// read. Coarse enough that simulated waits sleep — blocking the
    /// calling thread like real I/O — so experiments about overlapping
    /// device latency (the intra-rank worker-pool speedup table) measure
    /// genuine overlap even on a low-core host.
    pub const fn fusion_io_realtime() -> Self {
        Self {
            name: "fusion-io-rt",
            read_latency_ns: 100_000,
            write_latency_ns: 200_000,
            concurrency: 32,
        }
    }
}

/// Counting semaphore bounding in-flight accesses.
struct Gate {
    permits: Mutex<usize>,
    cv: Condvar,
}

impl Gate {
    fn new(permits: usize) -> Self {
        Self { permits: Mutex::new(permits), cv: Condvar::new() }
    }

    fn acquire(&self) {
        let mut p = self.permits.lock().unwrap();
        while *p == 0 {
            p = self.cv.wait(p).unwrap();
        }
        *p -= 1;
    }

    fn release(&self) {
        *self.permits.lock().unwrap() += 1;
        self.cv.notify_one();
    }
}

/// Wraps an inner device with a [`DeviceProfile`]'s latency and concurrency
/// limits; this is the "NAND Flash" of the reproduction.
pub struct SimNvram<D: BlockDevice> {
    inner: D,
    profile: DeviceProfile,
    gate: Option<Gate>,
    busy_ns: AtomicU64,
}

impl<D: BlockDevice> SimNvram<D> {
    pub fn new(inner: D, profile: DeviceProfile) -> Self {
        let gate = (profile.concurrency != usize::MAX).then(|| Gate::new(profile.concurrency));
        Self { inner, profile, gate, busy_ns: AtomicU64::new(0) }
    }

    pub fn profile(&self) -> DeviceProfile {
        self.profile
    }

    /// Total simulated latency injected so far.
    pub fn busy_time(&self) -> Duration {
        Duration::from_nanos(self.busy_ns.load(Ordering::Relaxed))
    }

    fn delay(&self, ns: u64) {
        if ns == 0 {
            return;
        }
        self.busy_ns.fetch_add(ns, Ordering::Relaxed);
        let target = Duration::from_nanos(ns);
        // Waits at or above OS sleep granularity block like real I/O does
        // — yielding the core, so concurrent accessors overlap their
        // simulated latency even on a single-core host. Sub-granularity
        // NAND-scale waits spin against a monotonic clock instead (Linux
        // sleep granularity, ~50 us min, would distort them badly).
        const SLEEP_GRANULARITY: Duration = Duration::from_micros(100);
        if target >= SLEEP_GRANULARITY {
            std::thread::sleep(target);
        } else {
            let start = Instant::now();
            while start.elapsed() < target {
                std::hint::spin_loop();
            }
        }
    }
}

impl<D: BlockDevice> BlockDevice for SimNvram<D> {
    fn read_at(&self, offset: u64, buf: &mut [u8]) {
        if let Some(g) = &self.gate {
            g.acquire();
        }
        self.delay(self.profile.read_latency_ns);
        self.inner.read_at(offset, buf);
        if let Some(g) = &self.gate {
            g.release();
        }
    }

    fn write_at(&self, offset: u64, buf: &[u8]) {
        if let Some(g) = &self.gate {
            g.acquire();
        }
        self.delay(self.profile.write_latency_ns);
        self.inner.write_at(offset, buf);
        if let Some(g) = &self.gate {
            g.release();
        }
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn concurrency_hint(&self) -> usize {
        self.profile.concurrency
    }

    fn stats(&self) -> DeviceStatsSnapshot {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(dev: &dyn BlockDevice) {
        dev.write_at(10, b"hello world");
        let mut buf = [0u8; 11];
        dev.read_at(10, &mut buf);
        assert_eq!(&buf, b"hello world");
        // partial overlap rewrite
        dev.write_at(14, b"HAVOQ");
        let mut buf2 = [0u8; 11];
        dev.read_at(10, &mut buf2);
        assert_eq!(&buf2, b"hellHAVOQld");
    }

    #[test]
    fn mem_device_roundtrip() {
        roundtrip(&MemDevice::new());
    }

    #[test]
    fn file_device_roundtrip() {
        let dir = std::env::temp_dir().join(format!("havoq-nvram-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dev = FileDevice::create(dir.join("dev.bin")).unwrap();
        roundtrip(&dev);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reads_past_end_are_zero() {
        let dev = MemDevice::new();
        dev.write_at(0, &[1, 2, 3]);
        let mut buf = [9u8; 6];
        dev.read_at(1, &mut buf);
        assert_eq!(buf, [2, 3, 0, 0, 0, 0]);
        let mut far = [7u8; 4];
        dev.read_at(1000, &mut far);
        assert_eq!(far, [0; 4]);
    }

    #[test]
    fn stats_count_accesses() {
        let dev = MemDevice::new();
        dev.write_at(0, &[0u8; 100]);
        let mut b = [0u8; 40];
        dev.read_at(0, &mut b);
        dev.read_at(0, &mut b);
        let s = dev.stats();
        assert_eq!(s.writes, 1);
        assert_eq!(s.reads, 2);
        assert_eq!(s.bytes_written, 100);
        assert_eq!(s.bytes_read, 80);
    }

    #[test]
    fn read_corruption_is_transient_and_seeded() {
        let dev = MemDevice::new();
        dev.write_at(0, &[0xAAu8; 256]);
        dev.set_read_corruption(500, 42);
        let mut corrupted = 0;
        for _ in 0..200 {
            let mut buf = [0u8; 256];
            dev.read_at(0, &mut buf);
            if buf != [0xAAu8; 256] {
                corrupted += 1;
                // exactly one bit differs
                let flipped: u32 = buf.iter().map(|&b| (b ^ 0xAA).count_ones()).sum();
                assert_eq!(flipped, 1, "corruption must flip exactly one bit");
            }
        }
        assert!(corrupted > 50, "50% rate must fire often, got {corrupted}");
        assert_eq!(dev.reads_corrupted(), corrupted);
        // the stored bytes were never harmed
        dev.set_read_corruption(0, 0);
        let mut buf = [0u8; 256];
        dev.read_at(0, &mut buf);
        assert_eq!(buf, [0xAAu8; 256], "corruption must be transient");
    }

    #[test]
    fn hooks_compose() {
        use std::sync::atomic::AtomicU64;
        let dev = MemDevice::new();
        let a = std::sync::Arc::new(AtomicU64::new(0));
        let b = std::sync::Arc::new(AtomicU64::new(0));
        let (ac, bc) = (std::sync::Arc::clone(&a), std::sync::Arc::clone(&b));
        dev.add_read_hook(std::sync::Arc::new(move |_, _| {
            ac.fetch_add(1, Ordering::Relaxed);
        }));
        dev.add_read_hook(std::sync::Arc::new(move |_, _| {
            bc.fetch_add(1, Ordering::Relaxed);
        }));
        let mut buf = [0u8; 4];
        dev.read_at(0, &mut buf);
        dev.read_at(8, &mut buf);
        assert_eq!(a.load(Ordering::Relaxed), 2, "first hook still fires");
        assert_eq!(b.load(Ordering::Relaxed), 2, "second hook composes");
    }

    #[test]
    fn sim_nvram_injects_latency() {
        let dev = SimNvram::new(
            MemDevice::new(),
            DeviceProfile {
                name: "t",
                read_latency_ns: 100_000,
                write_latency_ns: 0,
                concurrency: 4,
            },
        );
        let mut b = [0u8; 8];
        let t0 = Instant::now();
        for _ in 0..10 {
            dev.read_at(0, &mut b);
        }
        assert!(t0.elapsed() >= Duration::from_micros(1000));
        assert!(dev.busy_time() >= Duration::from_micros(1000));
    }

    #[test]
    fn dram_profile_is_free() {
        let dev = SimNvram::new(MemDevice::new(), DeviceProfile::dram());
        dev.write_at(0, &[5; 16]);
        let mut b = [0u8; 16];
        dev.read_at(0, &mut b);
        assert_eq!(b, [5; 16]);
        assert_eq!(dev.busy_time(), Duration::ZERO);
    }

    #[test]
    fn profiles_preserve_tier_ordering() {
        let d = DeviceProfile::dram();
        let f = DeviceProfile::fusion_io();
        let s = DeviceProfile::sata_ssd();
        assert!(d.read_latency_ns < f.read_latency_ns);
        assert!(f.read_latency_ns < s.read_latency_ns);
        assert!(f.concurrency > s.concurrency);
    }

    #[test]
    fn concurrent_access_under_gate() {
        let dev = std::sync::Arc::new(SimNvram::new(
            MemDevice::with_capacity(1 << 16),
            DeviceProfile {
                name: "t",
                read_latency_ns: 1_000,
                write_latency_ns: 1_000,
                concurrency: 2,
            },
        ));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let dev = std::sync::Arc::clone(&dev);
            handles.push(std::thread::spawn(move || {
                let mut buf = [0u8; 64];
                for i in 0..20u64 {
                    dev.write_at(t * 4096 + i * 64, &[t as u8; 64]);
                    dev.read_at(t * 4096 + i * 64, &mut buf);
                    assert_eq!(buf, [t as u8; 64]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
