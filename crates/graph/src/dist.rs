//! The distributed partitioned graph (paper Section III-A).
//!
//! [`DistGraph`] is built collectively by all ranks of a `havoq-comm` world.
//! With [`PartitionStrategy::EdgeList`] (the paper's contribution) the edge
//! list is globally sorted by source and split exactly evenly; adjacency
//! lists of boundary vertices — including hubs — span consecutive
//! partitions, forming master/replica chains addressed through
//! `min_owner(v)` / `max_owner(v)` (Figure 3). With
//! [`PartitionStrategy::OneD`] vertices are block-partitioned and each
//! adjacency list lives whole on one rank (the Figure 12 baseline).
//!
//! Every rank also stores the *state range* `[lo, end)` of vertices it keeps
//! algorithm state for. Ranges tile `[0, n)`; they overlap exactly on split
//! vertices, whose state is replicated along the chain (the `min_owner`
//! partition is the master). Vertices with no out-edges are folded into the
//! gap-filling range of the nearest following partition so that every vertex
//! has a unique master.

use havoq_util::FxHashMap;

use havoq_comm::RankCtx;

use crate::csr::{GraphConfig, LocalCsr};
use crate::partition::block_start;
use crate::sort::sort_edges_even;
use crate::types::{Edge, VertexId};

/// How the edge list is distributed over ranks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// The paper's edge-list partitioning: sorted, exactly even, split
    /// adjacency lists with replica chains.
    EdgeList,
    /// Classic 1D vertex-block partitioning (baseline, Figure 12).
    OneD,
}

/// Upper bound on locally tracked ghost candidates.
const MAX_GHOST_CANDIDATES: usize = 4096;

/// One rank's view of the distributed graph.
pub struct DistGraph {
    rank: usize,
    ranks: usize,
    n: u64,
    global_edges: u64,
    strategy: PartitionStrategy,
    /// Per-rank state-range starts (inclusive), replicated.
    lo: Vec<u64>,
    /// Per-rank state-range ends (exclusive), replicated.
    end: Vec<u64>,
    csr: LocalCsr,
    /// Global (whole-adjacency) out-degree of each local vertex. For
    /// symmetrized graphs this is the undirected degree k-core needs.
    total_degree: Vec<u64>,
    /// For local *split* vertices: the offset of this rank's adjacency
    /// slice within the vertex's whole (chain-ordered) adjacency list.
    split_offsets: FxHashMap<u64, u64>,
    /// Local high-in-frequency targets: `(vertex, local in-edge count)`,
    /// descending by count — the pool ghosts are selected from.
    ghost_candidates: Vec<(u64, u64)>,
}

impl DistGraph {
    /// Collectively build the graph from each rank's slice of the edge
    /// list. The slices may be arbitrary (the build redistributes).
    pub fn build(
        ctx: &RankCtx,
        mut local_edges: Vec<Edge>,
        strategy: PartitionStrategy,
        cfg: GraphConfig,
    ) -> Self {
        let p = ctx.size();
        // global vertex count: inferred from the edges unless given
        let local_max = crate::types::max_vertex(&local_edges);
        let inferred = ctx.all_reduce_max(local_max).max(1);
        let n = match cfg.num_vertices {
            Some(n) => {
                assert!(n >= inferred, "num_vertices {n} below max endpoint {inferred}");
                n
            }
            None => inferred,
        };

        if cfg.remove_self_loops {
            local_edges.retain(|e| !e.is_self_loop());
        }

        let (edges, lo, end) = match strategy {
            PartitionStrategy::EdgeList => {
                let mut edges = sort_edges_even(ctx, local_edges);
                if cfg.dedup {
                    dedup_global(ctx, &mut edges);
                }
                let (lo, end) = edge_list_ranges(ctx, &edges, n);
                (edges, lo, end)
            }
            PartitionStrategy::OneD => {
                let mut buckets: Vec<Vec<Edge>> = (0..p).map(|_| Vec::new()).collect();
                for e in local_edges.drain(..) {
                    buckets[crate::partition::block_owner(e.src, n, p)].push(e);
                }
                let mut edges: Vec<Edge> = ctx.all_to_allv(buckets).into_iter().flatten().collect();
                edges.sort_unstable_by_key(|e| e.key());
                if cfg.dedup {
                    edges.dedup();
                }
                let lo: Vec<u64> = (0..p).map(|r| block_start(r, n, p)).collect();
                let end: Vec<u64> = (0..p).map(|r| block_start(r + 1, n, p)).collect();
                (edges, lo, end)
            }
        };

        let my_lo = lo[ctx.rank()];
        let nv = (end[ctx.rank()] - my_lo) as usize;

        // ghost candidates: local in-edge frequency of remote-or-hub targets
        let ghost_candidates = ghost_candidates_of(&edges);

        let global_edges = ctx.all_reduce_sum(edges.len() as u64);
        let csr = LocalCsr::build(my_lo, nv, &edges, cfg.storage);
        drop(edges);

        let mut g = Self {
            rank: ctx.rank(),
            ranks: p,
            n,
            global_edges,
            strategy,
            lo,
            end,
            csr,
            total_degree: Vec::new(),
            split_offsets: FxHashMap::default(),
            ghost_candidates,
        };
        let (deg, offsets) = g.compute_total_degrees(ctx);
        g.total_degree = deg;
        g.split_offsets = offsets;
        g
    }

    /// Convenience: every rank passes the same full edge list and takes its
    /// contiguous share (useful for examples and tests).
    pub fn build_replicated(
        ctx: &RankCtx,
        all_edges: &[Edge],
        strategy: PartitionStrategy,
        cfg: GraphConfig,
    ) -> Self {
        let p = ctx.size();
        let m = all_edges.len();
        let lo = m * ctx.rank() / p;
        let hi = m * (ctx.rank() + 1) / p;
        Self::build(ctx, all_edges[lo..hi].to_vec(), strategy, cfg)
    }

    /// Sum local out-degrees of split vertices across their replica chains;
    /// also compute this rank's slice offset within each split adjacency.
    fn compute_total_degrees(&self, ctx: &RankCtx) -> (Vec<u64>, FxHashMap<u64, u64>) {
        let my_lo = self.lo[self.rank];
        let nv = self.num_local_vertices();
        let mut deg: Vec<u64> = (0..nv).map(|li| self.csr.local_out_degree(li)).collect();
        // only the first/last local vertices can be split
        let mut mine: Vec<(u64, u64)> = Vec::new();
        if nv > 0 {
            for v in [my_lo, my_lo + nv as u64 - 1] {
                if self.is_split(VertexId(v)) {
                    mine.push((v, self.csr.local_out_degree((v - my_lo) as usize)));
                    if nv == 1 {
                        break; // first == last
                    }
                }
            }
            mine.dedup();
        }
        let all: Vec<Vec<(u64, u64)>> = ctx.all_gather(mine);
        let mut sums: FxHashMap<u64, u64> = FxHashMap::default();
        let mut offsets: FxHashMap<u64, u64> = FxHashMap::default();
        for (r, contrib) in all.iter().enumerate() {
            for &(v, d) in contrib {
                if r < self.rank {
                    // chain order = rank order: lower ranks' slices precede
                    *offsets.entry(v).or_insert(0) += d;
                }
                *sums.entry(v).or_insert(0) += d;
            }
        }
        offsets.retain(|&v, _| self.is_local(VertexId(v)));
        for (v, total) in sums {
            if self.is_local(VertexId(v)) {
                deg[(v - my_lo) as usize] = total;
            }
        }
        (deg, offsets)
    }

    // ---- topology queries -------------------------------------------------

    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    #[inline]
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Global vertex count.
    #[inline]
    pub fn num_vertices(&self) -> u64 {
        self.n
    }

    /// Global directed edge count (after cleaning).
    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.global_edges
    }

    #[inline]
    pub fn strategy(&self) -> PartitionStrategy {
        self.strategy
    }

    /// Lowest rank holding state for `v` — the master partition.
    #[inline]
    pub fn min_owner(&self, v: VertexId) -> usize {
        debug_assert!(v.0 < self.n);
        self.end.partition_point(|&e| e <= v.0)
    }

    /// Highest rank holding state for `v` (end of the replica chain).
    #[inline]
    pub fn max_owner(&self, v: VertexId) -> usize {
        debug_assert!(v.0 < self.n);
        self.lo.partition_point(|&l| l <= v.0) - 1
    }

    /// True if `v`'s adjacency list spans multiple partitions.
    #[inline]
    pub fn is_split(&self, v: VertexId) -> bool {
        self.min_owner(v) != self.max_owner(v)
    }

    /// True if this rank holds state for `v` (as master or replica).
    #[inline]
    pub fn is_local(&self, v: VertexId) -> bool {
        self.lo[self.rank] <= v.0 && v.0 < self.end[self.rank]
    }

    /// True if this rank is `v`'s master partition.
    #[inline]
    pub fn is_master(&self, v: VertexId) -> bool {
        self.min_owner(v) == self.rank
    }

    /// Local state index of `v` (must be local).
    #[inline]
    pub fn local_index(&self, v: VertexId) -> usize {
        debug_assert!(self.is_local(v), "vertex {v} not local to rank {}", self.rank);
        (v.0 - self.lo[self.rank]) as usize
    }

    /// Global id of local state index `li`.
    #[inline]
    pub fn vertex_at(&self, li: usize) -> VertexId {
        VertexId(self.lo[self.rank] + li as u64)
    }

    /// Number of vertices this rank keeps state for.
    #[inline]
    pub fn num_local_vertices(&self) -> usize {
        (self.end[self.rank] - self.lo[self.rank]) as usize
    }

    /// Iterate this rank's state range as global ids.
    pub fn local_vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (self.lo[self.rank]..self.end[self.rank]).map(VertexId)
    }

    // ---- adjacency --------------------------------------------------------

    /// Run `f` over the *local slice* of `v`'s adjacency (sorted targets).
    /// Replica ranks see only their portion, as in the paper.
    #[inline]
    pub fn with_adj<R>(&self, v: VertexId, f: impl FnOnce(&[u64]) -> R) -> R {
        self.csr.with_adj(self.local_index(v), f)
    }

    /// Scan `v`'s local adjacency slice in order until `pred` hits,
    /// returning `(targets_scanned, Some(hit))` or `(degree, None)`. On
    /// compressed storage the gap decoder stops at the hit instead of
    /// decoding the whole slice; the scanned count is identical across
    /// storage backends (see [`LocalCsr::scan_adj`]).
    #[inline]
    pub fn scan_adj(&self, v: VertexId, pred: impl FnMut(u64) -> bool) -> (u64, Option<u64>) {
        self.csr.scan_adj(self.local_index(v), pred)
    }

    /// Local slice length of `v`'s adjacency.
    #[inline]
    pub fn local_out_degree(&self, v: VertexId) -> u64 {
        self.csr.local_out_degree(self.local_index(v))
    }

    /// Whole-adjacency out-degree of local vertex `v` (summed over the
    /// replica chain at build time).
    #[inline]
    pub fn total_degree(&self, v: VertexId) -> u64 {
        self.total_degree[self.local_index(v)]
    }

    /// True if `target` is in `v`'s *local* adjacency slice.
    #[inline]
    pub fn local_adj_contains(&self, v: VertexId, target: VertexId) -> bool {
        self.csr.adj_contains(self.local_index(v), target.0)
    }

    /// Offset of this rank's slice within local vertex `v`'s whole
    /// adjacency list (0 unless `v` is split and this rank is not the
    /// chain head).
    #[inline]
    pub fn local_adj_offset(&self, v: VertexId) -> u64 {
        debug_assert!(self.is_local(v));
        self.split_offsets.get(&v.0).copied().unwrap_or(0)
    }

    /// The target at global adjacency position `pos` of local vertex `v`,
    /// if that position falls inside this rank's slice. Positions index the
    /// whole chain-ordered adjacency `0..total_degree(v)`; exactly one rank
    /// of the chain answers `Some`.
    pub fn local_adj_at(&self, v: VertexId, pos: u64) -> Option<u64> {
        let off = self.local_adj_offset(v);
        let len = self.local_out_degree(v);
        if pos < off || pos >= off + len {
            return None;
        }
        self.with_adj(v, |adj| Some(adj[(pos - off) as usize]))
    }

    /// The local CSR (for storage statistics).
    pub fn csr(&self) -> &LocalCsr {
        &self.csr
    }

    // ---- ghosts -----------------------------------------------------------

    /// The `k` highest locally-observed in-frequency targets — the paper's
    /// per-partition ghost selection ("each partition locally identifies
    /// high-degree vertices from its edges' targets").
    pub fn ghost_topk(&self, k: usize) -> Vec<VertexId> {
        self.ghost_candidates.iter().take(k).map(|&(v, _)| VertexId(v)).collect()
    }

    /// All tracked candidates with their local in-edge counts.
    pub fn ghost_candidates(&self) -> &[(u64, u64)] {
        &self.ghost_candidates
    }
}

/// Compute state ranges from each rank's sorted edge slice (see module
/// docs): gather per-rank source ranges and tile `[0, n)`.
fn edge_list_ranges(ctx: &RankCtx, edges: &[Edge], n: u64) -> (Vec<u64>, Vec<u64>) {
    let my = if edges.is_empty() { None } else { Some((edges[0].src, edges[edges.len() - 1].src)) };
    let ranges = ctx.all_gather(my);
    let p = ctx.size();
    let mut lo = vec![0u64; p];
    let mut end = vec![0u64; p];
    let mut prev_end = 0u64;
    for r in 0..p {
        match ranges[r] {
            None => {
                lo[r] = prev_end;
                end[r] = prev_end;
            }
            Some((smin, smax)) => {
                // smin == prev_end - 1 -> split replica chain; smin >
                // prev_end -> fold the zero-out-degree gap into this rank
                lo[r] = smin.min(prev_end);
                end[r] = smax + 1;
                prev_end = end[r];
            }
        }
    }
    end[p - 1] = end[p - 1].max(n);
    if lo[p - 1] > end[p - 1] {
        lo[p - 1] = end[p - 1];
    }
    (lo, end)
}

/// Remove duplicate edges globally: local dedup plus a boundary fix-up so a
/// run of equal edges spanning a partition boundary keeps exactly one copy
/// (the first). Operates on each rank's sorted slice.
fn dedup_global(ctx: &RankCtx, edges: &mut Vec<Edge>) {
    edges.dedup();
    // summaries: (first_key, last_key, len) — after local dedup each rank
    // holds distinct keys, so at most its single leading edge can duplicate
    // the effective predecessor tail.
    let my = if edges.is_empty() {
        None
    } else {
        Some((edges[0], edges[edges.len() - 1], edges.len() as u64))
    };
    let all = ctx.all_gather(my);
    // replay rank order to find each rank's effective predecessor tail key
    let mut eff_last: Option<Edge> = None;
    let mut my_pred: Option<Edge> = None;
    for (r, summary) in all.iter().enumerate() {
        if r == ctx.rank() {
            my_pred = eff_last;
        }
        if let Some((first, last, len)) = summary {
            let emptied = *len == 1 && eff_last.map(|e| e.key()) == Some(first.key());
            if !emptied {
                eff_last = Some(*last);
            }
        }
    }
    if let Some(pred) = my_pred {
        if !edges.is_empty() && edges[0].key() == pred.key() {
            edges.remove(0);
        }
    }
}

/// Count local in-edge frequencies and keep the top candidates.
fn ghost_candidates_of(edges: &[Edge]) -> Vec<(u64, u64)> {
    let mut counts: FxHashMap<u64, u64> = FxHashMap::default();
    for e in edges {
        *counts.entry(e.dst).or_insert(0) += 1;
    }
    let mut cands: Vec<(u64, u64)> = counts.into_iter().filter(|&(_, c)| c >= 2).collect();
    cands.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    cands.truncate(MAX_GHOST_CANDIDATES);
    cands
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::rmat::RmatGenerator;
    use havoq_comm::CommWorld;

    /// The paper's Figure 3 example: 8 vertices, 16 edges, 4 partitions.
    fn figure3_edges() -> Vec<Edge> {
        [
            (0, 1),
            (1, 0),
            (1, 2),
            (2, 1),
            (2, 3),
            (2, 4),
            (2, 5),
            (2, 6),
            (2, 7),
            (3, 2),
            (4, 2),
            (5, 2),
            (5, 7),
            (6, 2),
            (7, 2),
            (7, 5),
        ]
        .iter()
        .map(|&(s, d)| Edge::new(s, d))
        .collect()
    }

    #[test]
    fn figure3_owners_match_paper() {
        let edges = figure3_edges();
        CommWorld::run(4, |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default(),
            );
            assert_eq!(g.num_vertices(), 8);
            assert_eq!(g.num_edges(), 16);
            // exactly the paper's example values
            assert_eq!(g.min_owner(VertexId(2)), 0);
            assert_eq!(g.max_owner(VertexId(2)), 2);
            assert_eq!(g.min_owner(VertexId(5)), 2);
            assert_eq!(g.max_owner(VertexId(5)), 3);
            assert!(g.is_split(VertexId(2)));
            assert!(g.is_split(VertexId(5)));
            assert!(!g.is_split(VertexId(0)));
            // every partition holds exactly 4 edges
            assert_eq!(g.csr().num_edges(), 4);
        });
    }

    #[test]
    fn figure3_split_adjacency_reassembles() {
        let edges = figure3_edges();
        let slices = CommWorld::run(4, |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default(),
            );
            if g.is_local(VertexId(2)) {
                g.with_adj(VertexId(2), |a| a.to_vec())
            } else {
                Vec::new()
            }
        });
        let mut whole: Vec<u64> = slices.into_iter().flatten().collect();
        whole.sort_unstable();
        assert_eq!(whole, vec![1, 3, 4, 5, 6, 7], "vertex 2's full adjacency");
    }

    #[test]
    fn figure3_adjacency_positions_resolve_once() {
        let edges = figure3_edges();
        let resolved = CommWorld::run(4, |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default(),
            );
            let mut out = Vec::new();
            if g.is_local(VertexId(2)) {
                for pos in 0..6u64 {
                    if let Some(t) = g.local_adj_at(VertexId(2), pos) {
                        out.push((pos, t));
                    }
                }
            }
            out
        });
        let mut all: Vec<(u64, u64)> = resolved.into_iter().flatten().collect();
        all.sort_unstable();
        // exactly one resolver per position; the chain-ordered adjacency of
        // vertex 2 is its sorted target list (slices are sorted and chain
        // order follows source-sorted ranks)
        let positions: Vec<u64> = all.iter().map(|&(p, _)| p).collect();
        assert_eq!(positions, vec![0, 1, 2, 3, 4, 5]);
        let mut targets: Vec<u64> = all.iter().map(|&(_, t)| t).collect();
        targets.sort_unstable();
        assert_eq!(targets, vec![1, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn figure3_total_degree_sums_chain() {
        let edges = figure3_edges();
        CommWorld::run(4, |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default(),
            );
            if g.is_local(VertexId(2)) {
                assert_eq!(g.total_degree(VertexId(2)), 6);
            }
            if g.is_local(VertexId(5)) {
                assert_eq!(g.total_degree(VertexId(5)), 2);
            }
            if g.is_local(VertexId(0)) {
                assert_eq!(g.total_degree(VertexId(0)), 1);
            }
        });
    }

    /// The three storage backends with tiny caches, for equivalence tests.
    fn storage_matrix() -> Vec<GraphConfig> {
        use havoq_nvram::cache::PageCacheConfig;
        use havoq_nvram::device::DeviceProfile;
        let cache = PageCacheConfig {
            page_size: 64,
            capacity_pages: 4,
            shards: 1,
            ..PageCacheConfig::default()
        };
        vec![
            GraphConfig::default(),
            GraphConfig::external(DeviceProfile::dram(), cache),
            GraphConfig::external_compressed(DeviceProfile::dram(), cache),
        ]
    }

    #[test]
    fn figure3_split_adjacency_matches_across_storages() {
        // Satellite: chain-ordered target_at positions must resolve
        // identically whether slices are raw u64s or gap-decoded bytes.
        let edges = figure3_edges();
        for cfg in storage_matrix() {
            let resolved = CommWorld::run(4, |ctx| {
                let g = DistGraph::build_replicated(ctx, &edges, PartitionStrategy::EdgeList, cfg);
                let mut out = Vec::new();
                for v in [VertexId(2), VertexId(5)] {
                    if g.is_local(v) {
                        for pos in 0..g.total_degree(v) {
                            if let Some(t) = g.local_adj_at(v, pos) {
                                out.push((v.0, pos, t));
                            }
                        }
                    }
                }
                out
            });
            let mut all: Vec<(u64, u64, u64)> = resolved.into_iter().flatten().collect();
            all.sort_unstable();
            // identical position → target map on every backend (vertex 2 is
            // split over ranks 0..=2, vertex 5 over ranks 2..=3)
            assert_eq!(
                all,
                vec![
                    (2, 0, 1),
                    (2, 1, 3),
                    (2, 2, 4),
                    (2, 3, 5),
                    (2, 4, 6),
                    (2, 5, 7),
                    (5, 0, 2),
                    (5, 1, 7),
                ],
                "storage {}",
                cfg.storage.label()
            );
        }
    }

    #[test]
    fn figure3_scan_adj_equivalent_across_storages() {
        let edges = figure3_edges();
        let mut per_storage = Vec::new();
        for cfg in storage_matrix() {
            let scans = CommWorld::run(4, |ctx| {
                let g = DistGraph::build_replicated(ctx, &edges, PartitionStrategy::EdgeList, cfg);
                let mut out = Vec::new();
                for v in g.local_vertices() {
                    for needle in 0..8u64 {
                        out.push(g.scan_adj(v, |t| t == needle));
                    }
                }
                out
            });
            per_storage.push(scans);
        }
        assert_eq!(per_storage[0], per_storage[1], "ext diverges from mem");
        assert_eq!(per_storage[0], per_storage[2], "ext-comp diverges from mem");
    }

    fn owner_invariants(g: &DistGraph) {
        for v in 0..g.num_vertices() {
            let v = VertexId(v);
            let (mn, mx) = (g.min_owner(v), g.max_owner(v));
            assert!(mn <= mx, "{v}: min {mn} > max {mx}");
            assert!(mx < g.ranks());
        }
    }

    #[test]
    fn every_vertex_has_owners_on_rmat() {
        let g = RmatGenerator::graph500(8);
        let edges = g.symmetric_edges(17);
        for p in [1usize, 3, 4, 7] {
            CommWorld::run(p, |ctx| {
                let dg = DistGraph::build_replicated(
                    ctx,
                    &edges,
                    PartitionStrategy::EdgeList,
                    GraphConfig::default(),
                );
                owner_invariants(&dg);
                // local coverage: each local vertex round-trips
                for v in dg.local_vertices() {
                    assert_eq!(dg.vertex_at(dg.local_index(v)), v);
                    let mn = dg.min_owner(v);
                    let mx = dg.max_owner(v);
                    assert!((mn..=mx).contains(&ctx.rank()));
                }
            });
        }
    }

    #[test]
    fn edge_list_balance_is_perfect() {
        let g = RmatGenerator::graph500(9);
        let edges = g.symmetric_edges(23);
        let counts = CommWorld::run(5, |ctx| {
            let dg = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                // keep duplicates so the even split stays exact
                GraphConfig { dedup: false, ..GraphConfig::default() },
            );
            dg.csr().num_edges()
        });
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max - min <= 1, "edge-list partitions must be even: {counts:?}");
    }

    #[test]
    fn one_d_keeps_adjacency_whole() {
        let g = RmatGenerator::graph500(8);
        let edges = g.symmetric_edges(31);
        CommWorld::run(4, |ctx| {
            let dg = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::OneD,
                GraphConfig::default(),
            );
            owner_invariants(&dg);
            for v in 0..dg.num_vertices() {
                assert!(!dg.is_split(VertexId(v)), "1D must not split adjacency lists");
            }
        });
    }

    #[test]
    fn one_d_and_edge_list_agree_on_graph_content() {
        let g = RmatGenerator::graph500(7);
        let edges = g.symmetric_edges(3);
        let edges = &edges;
        let collect = |strategy| {
            CommWorld::run(3, move |ctx| {
                let dg = DistGraph::build_replicated(ctx, edges, strategy, GraphConfig::default());
                let mut out = Vec::new();
                for v in dg.local_vertices() {
                    if dg.is_master(v) || dg.strategy() == PartitionStrategy::EdgeList {
                        dg.with_adj(v, |a| {
                            out.extend(a.iter().map(|&t| Edge::new(v.0, t)));
                        });
                    }
                }
                out
            })
        };
        let mut a: Vec<Edge> = collect(PartitionStrategy::EdgeList).into_iter().flatten().collect();
        let mut b: Vec<Edge> = collect(PartitionStrategy::OneD).into_iter().flatten().collect();
        a.sort_unstable_by_key(|e| e.key());
        b.sort_unstable_by_key(|e| e.key());
        assert_eq!(a, b, "both partitionings must store the same cleaned edge set");
    }

    #[test]
    fn dedup_removes_cross_boundary_duplicates() {
        // 8 copies of one edge + filler: duplicates must collapse to one
        // even though the run spans partition boundaries
        let mut edges: Vec<Edge> = (0..8).map(|_| Edge::new(3, 4)).collect();
        edges.extend((0..8).map(|i| Edge::new(i % 3, i % 5 + 3)));
        let totals = CommWorld::run(4, |ctx| {
            let dg = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default(),
            );
            dg.num_edges()
        });
        let mut unique: Vec<Edge> = edges.clone();
        unique.sort_unstable_by_key(|e| e.key());
        unique.dedup();
        let want = unique.iter().filter(|e| !e.is_self_loop()).count() as u64;
        assert!(totals.iter().all(|&t| t == want), "{totals:?} != {want}");
    }

    #[test]
    fn ghost_candidates_rank_hubs_first() {
        let g = RmatGenerator::graph500(10);
        let edges = g.symmetric_edges(5);
        CommWorld::run(2, |ctx| {
            let dg = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default(),
            );
            let cands = dg.ghost_candidates();
            assert!(!cands.is_empty(), "RMAT must surface hub targets");
            assert!(cands.windows(2).all(|w| w[0].1 >= w[1].1), "descending by count");
            let topk = dg.ghost_topk(4);
            assert_eq!(topk.len(), 4.min(cands.len()));
        });
    }

    #[test]
    fn single_rank_world_owns_everything() {
        let edges = figure3_edges();
        CommWorld::run(1, |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default(),
            );
            for v in 0..8 {
                assert_eq!(g.min_owner(VertexId(v)), 0);
                assert_eq!(g.max_owner(VertexId(v)), 0);
                assert!(g.is_master(VertexId(v)));
            }
        });
    }

    #[test]
    fn more_ranks_than_edges() {
        let edges = vec![Edge::new(0, 1), Edge::new(1, 0), Edge::new(1, 2), Edge::new(2, 1)];
        CommWorld::run(6, |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default(),
            );
            owner_invariants(&g);
            assert_eq!(g.num_edges(), 4);
        });
    }

    #[test]
    fn zero_out_degree_vertices_have_unique_master() {
        // vertex 5 exists only as a target
        let edges = vec![Edge::new(0, 5), Edge::new(1, 5), Edge::new(7, 5)];
        CommWorld::run(3, |ctx| {
            let g = DistGraph::build(
                ctx,
                if ctx.rank() == 0 { edges.clone() } else { Vec::new() },
                PartitionStrategy::EdgeList,
                GraphConfig::default(),
            );
            owner_invariants(&g);
            let masters: u64 = ctx.all_reduce_sum(g.is_master(VertexId(5)) as u64);
            assert_eq!(masters, 1, "exactly one master for a sink vertex");
        });
    }
}
