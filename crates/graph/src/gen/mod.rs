//! Synthetic graph generators (paper Section VII-A).
//!
//! Three models, as in the paper's evaluation:
//!
//! - [`rmat`] — Graph500-style RMAT scale-free graphs (the BFS and k-core
//!   workloads, Figures 5, 6, 8, 9, 12, 13).
//! - [`pa`] — Barabási–Albert preferential attachment with an optional
//!   random-rewire step interpolating toward a random graph (Figure 11).
//! - [`smallworld`] — Watts–Strogatz small-world graphs with uniform degree
//!   and a rewire-controlled diameter (Figures 7, 10).
//!
//! After generation, all vertex labels are uniformly permuted
//! ([`permute::RandomPermutation`]) to destroy locality artifacts from the
//! generators, exactly as the paper prescribes.

pub mod pa;
pub mod permute;
pub mod rmat;
pub mod smallworld;

/// SplitMix64 — the seed/stream mixer used to derive independent per-edge
/// random streams so generation is deterministic and embarrassingly
/// parallel across ranks.
#[inline]
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Tiny counter-based RNG: a fresh independent stream per (seed, index).
/// Public because downstream sampling algorithms (e.g. wedge sampling)
/// need the same deterministic, coordination-free randomness.
#[derive(Clone)]
pub struct StreamRng {
    state: u64,
}

impl StreamRng {
    #[inline]
    pub fn new(seed: u64, stream: u64) -> Self {
        Self { state: splitmix64(seed ^ splitmix64(stream)) }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = splitmix64(self.state);
        self.state
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // 128-bit multiply avoids modulo bias well enough for synthetic data.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = StreamRng::new(1, 2);
        let mut b = StreamRng::new(1, 2);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_differ_by_index() {
        let mut a = StreamRng::new(1, 2);
        let mut b = StreamRng::new(1, 3);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StreamRng::new(7, 0);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound_and_covers() {
        let mut r = StreamRng::new(3, 0);
        let mut seen = [false; 8];
        for _ in 0..500 {
            let v = r.next_below(8);
            assert!(v < 8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }
}
