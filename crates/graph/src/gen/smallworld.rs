//! Watts–Strogatz small-world generator.
//!
//! Uniform vertex degree with a rewire probability interpolating between a
//! ring lattice (rewire 0: huge diameter, no hubs) and a random graph
//! (rewire 1: logarithmic diameter). The paper uses this model to isolate
//! topological effects: diameter for BFS (Figure 10) and the absence of hub
//! growth for triangle-count weak scaling (Figure 7).
//!
//! Generation is counter-based per lattice edge, so ranks can generate
//! their slices independently.

use super::permute::RandomPermutation;
use super::StreamRng;
use crate::types::{symmetrize, Edge};

#[derive(Clone, Copy, Debug)]
pub struct SmallWorldGenerator {
    /// Number of vertices.
    pub vertices: u64,
    /// Lattice degree `k` (must be even): each vertex links to its k/2
    /// clockwise neighbors; symmetrization yields uniform degree k.
    pub degree: u64,
    /// Probability each lattice edge is rewired to a uniform random target.
    pub rewire_probability: f64,
    pub permute_labels: bool,
}

impl SmallWorldGenerator {
    pub fn new(vertices: u64, degree: u64) -> Self {
        assert!(degree.is_multiple_of(2), "small-world degree must be even");
        assert!(degree < vertices, "degree must be below vertex count");
        Self { vertices, degree, rewire_probability: 0.0, permute_labels: true }
    }

    pub fn with_rewire(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        self.rewire_probability = p;
        self
    }

    /// Number of directed lattice edges (before symmetrization).
    pub fn num_edges(&self) -> u64 {
        self.vertices * self.degree / 2
    }

    /// Generate lattice edge `index` (independent of all others).
    pub fn edge_at(&self, seed: u64, index: u64) -> Edge {
        let half = self.degree / 2;
        let v = index / half;
        let j = index % half + 1; // neighbor distance 1..=k/2
        let mut rng = StreamRng::new(seed, index);
        let dst = if self.rewire_probability > 0.0 && rng.next_f64() < self.rewire_probability {
            let mut t = rng.next_below(self.vertices);
            while t == v {
                t = rng.next_below(self.vertices);
            }
            t
        } else {
            (v + j) % self.vertices
        };
        if self.permute_labels {
            let perm = RandomPermutation::new(self.vertices, seed ^ 0x5111_5EED);
            Edge::new(perm.apply(v), perm.apply(dst))
        } else {
            Edge::new(v, dst)
        }
    }

    /// Stream a contiguous range of the directed edge list.
    pub fn edges_range(
        &self,
        seed: u64,
        range: std::ops::Range<u64>,
    ) -> impl Iterator<Item = Edge> + '_ {
        // hoist the permutation out of the per-edge path
        let perm = if self.permute_labels {
            RandomPermutation::new(self.vertices, seed ^ 0x5111_5EED)
        } else {
            RandomPermutation::identity(self.vertices)
        };
        let half = self.degree / 2;
        range.map(move |index| {
            let v = index / half;
            let j = index % half + 1;
            let mut rng = StreamRng::new(seed, index);
            let dst = if self.rewire_probability > 0.0 && rng.next_f64() < self.rewire_probability {
                let mut t = rng.next_below(self.vertices);
                while t == v {
                    t = rng.next_below(self.vertices);
                }
                t
            } else {
                (v + j) % self.vertices
            };
            Edge::new(perm.apply(v), perm.apply(dst))
        })
    }

    pub fn edges(&self, seed: u64) -> Vec<Edge> {
        self.edges_range(seed, 0..self.num_edges()).collect()
    }

    pub fn symmetric_edges(&self, seed: u64) -> Vec<Edge> {
        let mut es = self.edges(seed);
        symmetrize(&mut es);
        es
    }

    /// Rank `rank`'s contiguous slice of the directed edge list.
    pub fn edges_for_rank(&self, seed: u64, rank: usize, ranks: usize) -> Vec<Edge> {
        let m = self.num_edges();
        let lo = m * rank as u64 / ranks as u64;
        let hi = m * (rank as u64 + 1) / ranks as u64;
        self.edges_range(seed, lo..hi).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_structure_without_rewire() {
        let mut g = SmallWorldGenerator::new(10, 4);
        g.permute_labels = false;
        let edges = g.edges(1);
        assert_eq!(edges.len(), 20);
        // vertex 0 connects to 1 and 2
        assert!(edges.contains(&Edge::new(0, 1)));
        assert!(edges.contains(&Edge::new(0, 2)));
        // ring wraps
        assert!(edges.contains(&Edge::new(9, 0)));
        assert!(edges.contains(&Edge::new(9, 1)));
    }

    #[test]
    fn uniform_degree_after_symmetrization() {
        let g = SmallWorldGenerator::new(100, 6);
        let mut deg = vec![0u64; 100];
        for e in g.symmetric_edges(2) {
            deg[e.src as usize] += 1;
        }
        assert!(deg.iter().all(|&d| d == 6), "rewire 0 must give uniform degree");
    }

    #[test]
    fn rewire_preserves_edge_count() {
        let g = SmallWorldGenerator::new(256, 8).with_rewire(0.3);
        assert_eq!(g.edges(3).len() as u64, g.num_edges());
    }

    #[test]
    fn no_self_loops() {
        let g = SmallWorldGenerator::new(64, 4).with_rewire(1.0);
        assert!(g.edges(4).iter().all(|e| !e.is_self_loop()));
    }

    #[test]
    fn edge_at_matches_range() {
        let g = SmallWorldGenerator::new(128, 4).with_rewire(0.25);
        let all = g.edges(9);
        for i in [0u64, 5, 100, 255] {
            assert_eq!(g.edge_at(9, i), all[i as usize]);
        }
    }

    #[test]
    fn rank_slices_tile() {
        let g = SmallWorldGenerator::new(64, 4).with_rewire(0.1);
        let all = g.edges(6);
        let mut stitched = Vec::new();
        for r in 0..5 {
            stitched.extend(g.edges_for_rank(6, r, 5));
        }
        assert_eq!(stitched, all);
    }

    #[test]
    fn rewire_fraction_tracks_probability() {
        let mut g = SmallWorldGenerator::new(10_000, 4).with_rewire(0.2);
        g.permute_labels = false;
        let half = 2;
        let rewired = g
            .edges(11)
            .iter()
            .enumerate()
            .filter(|(i, e)| {
                let v = *i as u64 / half;
                let j = *i as u64 % half + 1;
                e.dst != (v + j) % 10_000
            })
            .count();
        let frac = rewired as f64 / g.num_edges() as f64;
        assert!((frac - 0.2).abs() < 0.02, "rewire fraction {frac}");
    }
}
