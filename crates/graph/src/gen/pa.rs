//! Barabási–Albert preferential attachment generator with the paper's
//! optional random-rewire step.
//!
//! The rewire probability interpolates between a pure PA graph (rewire 0,
//! maximal hub growth) and an Erdős–Rényi-like random graph (rewire 1,
//! bounded degrees) — the knob Figure 11 sweeps to isolate the effect of
//! maximum vertex degree on triangle counting.

use super::permute::RandomPermutation;
use super::StreamRng;
use crate::types::{symmetrize, Edge};

#[derive(Clone, Copy, Debug)]
pub struct PaGenerator {
    /// Number of vertices.
    pub vertices: u64,
    /// Edges attached per new vertex (m).
    pub edges_per_vertex: u64,
    /// Probability that each generated edge's target is rewired to a
    /// uniformly random vertex.
    pub rewire_probability: f64,
    pub permute_labels: bool,
}

impl PaGenerator {
    pub fn new(vertices: u64, edges_per_vertex: u64) -> Self {
        assert!(vertices > edges_per_vertex, "need more vertices than edges per vertex");
        assert!(edges_per_vertex > 0);
        Self { vertices, edges_per_vertex, rewire_probability: 0.0, permute_labels: true }
    }

    pub fn with_rewire(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        self.rewire_probability = p;
        self
    }

    /// Number of directed edges generated (before symmetrization).
    pub fn num_edges(&self) -> u64 {
        // the first m+1 vertices form a seed clique-ish chain; every later
        // vertex adds m edges
        let m = self.edges_per_vertex;
        m + (self.vertices - m - 1) * m
    }

    /// Generate the directed edge list. Preferential attachment is
    /// inherently sequential, so unlike RMAT this materializes centrally;
    /// the scales used by the experiments (<= 2^20 vertices) make that
    /// cheap.
    pub fn edges(&self, seed: u64) -> Vec<Edge> {
        let m = self.edges_per_vertex as usize;
        let n = self.vertices;
        let mut rng = StreamRng::new(seed, 0xBA);
        let mut edges: Vec<Edge> = Vec::with_capacity(self.num_edges() as usize);
        // endpoint multiset: picking uniformly from it = degree-proportional
        let mut endpoints: Vec<u64> = Vec::with_capacity(2 * self.num_edges() as usize);

        // seed: a chain over vertices 0..=m so every vertex has degree >= 1
        for v in 1..=(m as u64) {
            edges.push(Edge::new(v, v - 1));
            endpoints.push(v);
            endpoints.push(v - 1);
        }
        for v in (m as u64 + 1)..n {
            for _ in 0..m {
                let target = endpoints[rng.next_below(endpoints.len() as u64) as usize];
                edges.push(Edge::new(v, target));
                endpoints.push(v);
                endpoints.push(target);
            }
        }

        // optional rewire: each target replaced by a uniform vertex with
        // probability `rewire_probability` (self-loops re-drawn)
        if self.rewire_probability > 0.0 {
            for e in edges.iter_mut() {
                if rng.next_f64() < self.rewire_probability {
                    let mut t = rng.next_below(n);
                    while t == e.src {
                        t = rng.next_below(n);
                    }
                    e.dst = t;
                }
            }
        }

        if self.permute_labels {
            let perm = RandomPermutation::new(n, seed ^ 0x9A_5EED);
            for e in edges.iter_mut() {
                e.src = perm.apply(e.src);
                e.dst = perm.apply(e.dst);
            }
        }
        edges
    }

    /// Symmetrized edge list for undirected algorithms.
    pub fn symmetric_edges(&self, seed: u64) -> Vec<Edge> {
        let mut es = self.edges(seed);
        symmetrize(&mut es);
        es
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_degree(edges: &[Edge], n: u64) -> u64 {
        let mut deg = vec![0u64; n as usize];
        for e in edges {
            deg[e.src as usize] += 1;
            deg[e.dst as usize] += 1;
        }
        deg.into_iter().max().unwrap()
    }

    #[test]
    fn edge_count_matches() {
        let g = PaGenerator::new(1000, 4);
        assert_eq!(g.edges(1).len() as u64, g.num_edges());
    }

    #[test]
    fn endpoints_in_range_no_self_loops_after_rewire() {
        let g = PaGenerator::new(500, 3).with_rewire(0.5);
        for e in g.edges(2) {
            assert!(e.src < 500 && e.dst < 500);
        }
    }

    #[test]
    fn pure_pa_has_hubs() {
        let g = PaGenerator::new(4096, 4);
        let edges = g.edges(7);
        let mean = 2.0 * edges.len() as f64 / 4096.0;
        let max = max_degree(&edges, 4096);
        assert!(max as f64 > 8.0 * mean, "PA should grow hubs: max {max}, mean {mean}");
    }

    #[test]
    fn rewire_shrinks_max_degree() {
        let base = PaGenerator::new(4096, 4);
        let pure = max_degree(&base.edges(7), 4096);
        let mixed = max_degree(&base.with_rewire(0.5).edges(7), 4096);
        let random = max_degree(&base.with_rewire(1.0).edges(7), 4096);
        assert!(pure > mixed, "rewire must dilute hubs: {pure} vs {mixed}");
        assert!(mixed > random, "more rewire, smaller hubs: {mixed} vs {random}");
    }

    #[test]
    fn every_vertex_touched() {
        let g = PaGenerator::new(300, 2);
        let mut deg = vec![0u64; 300];
        for e in g.edges(3) {
            deg[e.src as usize] += 1;
            deg[e.dst as usize] += 1;
        }
        assert!(deg.iter().all(|&d| d > 0), "PA attaches every vertex");
    }

    #[test]
    fn deterministic_per_seed() {
        let g = PaGenerator::new(200, 3).with_rewire(0.2);
        assert_eq!(g.edges(9), g.edges(9));
        assert_ne!(g.edges(9), g.edges(10));
    }
}
