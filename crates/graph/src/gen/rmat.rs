//! RMAT scale-free graph generator (Chakrabarti et al.), with the Graph500
//! parameterization the paper uses: `A = 0.57, B = 0.19, C = 0.19, D = 0.05`,
//! edge factor 16, vertex labels uniformly permuted after generation.
//!
//! Every edge is generated from an independent counter-based random stream,
//! so rank `r` of a simulated world can produce exactly its slice of the
//! edge list without coordination — the distributed analogue of the
//! Graph500 parallel generator.

use super::permute::RandomPermutation;
use super::StreamRng;
use crate::types::Edge;

/// RMAT generator description.
#[derive(Clone, Copy, Debug)]
pub struct RmatGenerator {
    pub scale: u32,
    /// Directed edges generated = edge_factor * 2^scale.
    pub edge_factor: u64,
    pub a: f64,
    pub b: f64,
    pub c: f64,
    /// Uniformly permute vertex labels (paper default: on).
    pub permute_labels: bool,
}

impl RmatGenerator {
    /// The Graph500 V1.2 parameterization used throughout the paper.
    pub fn graph500(scale: u32) -> Self {
        Self { scale, edge_factor: 16, a: 0.57, b: 0.19, c: 0.19, permute_labels: true }
    }

    pub fn num_vertices(&self) -> u64 {
        1u64 << self.scale
    }

    /// Number of *directed* edges the generator emits (before
    /// symmetrization).
    pub fn num_edges(&self) -> u64 {
        self.edge_factor << self.scale
    }

    fn permutation(&self, seed: u64) -> RandomPermutation {
        if self.permute_labels {
            RandomPermutation::new(self.num_vertices(), seed ^ 0x05EE_D0F1_ABE1)
        } else {
            RandomPermutation::identity(self.num_vertices())
        }
    }

    /// Generate edge `index` (independent of all others).
    pub fn edge_at(&self, seed: u64, index: u64) -> Edge {
        let perm = self.permutation(seed);
        self.edge_at_with(&perm, seed, index)
    }

    #[inline]
    fn edge_at_with(&self, perm: &RandomPermutation, seed: u64, index: u64) -> Edge {
        let mut rng = StreamRng::new(seed, index);
        let mut src = 0u64;
        let mut dst = 0u64;
        for _ in 0..self.scale {
            src <<= 1;
            dst <<= 1;
            let u = rng.next_f64();
            if u < self.a {
                // quadrant A: (0, 0)
            } else if u < self.a + self.b {
                dst |= 1;
            } else if u < self.a + self.b + self.c {
                src |= 1;
            } else {
                src |= 1;
                dst |= 1;
            }
        }
        Edge::new(perm.apply(src), perm.apply(dst))
    }

    /// Stream a contiguous range of the directed edge list.
    pub fn edges_range(
        &self,
        seed: u64,
        range: std::ops::Range<u64>,
    ) -> impl Iterator<Item = Edge> + '_ {
        let perm = self.permutation(seed);
        range.map(move |i| self.edge_at_with(&perm, seed, i))
    }

    /// All directed edges.
    pub fn edges(&self, seed: u64) -> Vec<Edge> {
        self.edges_range(seed, 0..self.num_edges()).collect()
    }

    /// All edges, symmetrized for undirected algorithms (both directions,
    /// self-loops kept single).
    pub fn symmetric_edges(&self, seed: u64) -> Vec<Edge> {
        let mut es = self.edges(seed);
        crate::types::symmetrize(&mut es);
        es
    }

    /// The slice of the directed edge list assigned to `rank` of `ranks`
    /// (contiguous even split, the input each simulated rank generates
    /// locally).
    pub fn edges_for_rank(&self, seed: u64, rank: usize, ranks: usize) -> Vec<Edge> {
        let m = self.num_edges();
        let lo = m * rank as u64 / ranks as u64;
        let hi = m * (rank as u64 + 1) / ranks as u64;
        self.edges_range(seed, lo..hi).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_spec() {
        let g = RmatGenerator::graph500(8);
        assert_eq!(g.num_vertices(), 256);
        assert_eq!(g.num_edges(), 16 * 256);
        assert_eq!(g.edges(1).len() as u64, g.num_edges());
    }

    #[test]
    fn deterministic_and_independent_indexing() {
        let g = RmatGenerator::graph500(6);
        let all = g.edges(99);
        for i in [0u64, 1, 500, 1023] {
            assert_eq!(g.edge_at(99, i), all[i as usize]);
        }
    }

    #[test]
    fn rank_slices_tile_the_edge_list() {
        let g = RmatGenerator::graph500(6);
        let all = g.edges(5);
        let mut stitched = Vec::new();
        for r in 0..7 {
            stitched.extend(g.edges_for_rank(5, r, 7));
        }
        assert_eq!(stitched, all);
    }

    #[test]
    fn endpoints_in_range() {
        let g = RmatGenerator::graph500(7);
        for e in g.edges(3) {
            assert!(e.src < 128 && e.dst < 128);
        }
    }

    #[test]
    fn degree_distribution_is_skewed() {
        // RMAT must produce hubs: max degree far above the mean.
        let g = RmatGenerator::graph500(12);
        let mut deg = vec![0u64; g.num_vertices() as usize];
        for e in g.edges(7) {
            deg[e.src as usize] += 1;
        }
        let max = *deg.iter().max().unwrap();
        let mean = g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(max as f64 > 8.0 * mean, "expected hub growth: max {max} vs mean {mean}");
    }

    #[test]
    fn permutation_destroys_block_structure() {
        // Without permutation, RMAT concentrates sources in low ids; with
        // permutation, the low-id half should hold roughly half the edges.
        let mut g = RmatGenerator::graph500(10);
        g.permute_labels = false;
        let low_raw = g.edges(11).iter().filter(|e| e.src < 512).count();
        g.permute_labels = true;
        let low_perm = g.edges(11).iter().filter(|e| e.src < 512).count();
        let m = g.num_edges() as f64;
        assert!(low_raw as f64 / m > 0.65, "raw RMAT should skew low: {low_raw}");
        assert!(
            (low_perm as f64 / m - 0.5).abs() < 0.1,
            "permuted labels should be uniform: {low_perm}"
        );
    }

    #[test]
    fn symmetric_edges_contains_both_directions() {
        let g = RmatGenerator::graph500(5);
        let sym = g.symmetric_edges(2);
        use std::collections::HashSet;
        let set: HashSet<(u64, u64)> = sym.iter().map(|e| e.key()).collect();
        for e in g.edges(2) {
            assert!(set.contains(&(e.src, e.dst)));
            if !e.is_self_loop() {
                assert!(set.contains(&(e.dst, e.src)));
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let g = RmatGenerator::graph500(6);
        assert_ne!(g.edges(1), g.edges(2));
    }
}
