//! Uniform pseudorandom vertex relabeling.
//!
//! The paper permutes all vertex labels after generation to destroy locality
//! artifacts from the generators. Rather than materializing a permutation
//! vector (which would cost O(V) memory per rank), this is a keyed Feistel
//! network over the smallest power-of-two domain covering `n`, with
//! cycle-walking to stay inside `[0, n)` — a bijection computable in O(1)
//! from any rank, which keeps generation embarrassingly parallel.

use super::splitmix64;

/// A keyed bijection on `[0, n)`.
#[derive(Clone, Copy, Debug)]
pub struct RandomPermutation {
    n: u64,
    half_bits: u32,
    half_mask: u64,
    keys: [u64; 4],
}

impl RandomPermutation {
    /// Identity permutation (used when callers disable relabeling).
    pub fn identity(n: u64) -> Self {
        Self { n, half_bits: 0, half_mask: 0, keys: [0; 4] }
    }

    pub fn new(n: u64, seed: u64) -> Self {
        assert!(n > 0, "empty permutation domain");
        if n == 1 {
            return Self::identity(1);
        }
        // domain = [0, 2^(2*half_bits)), the smallest even-bit power of two >= n
        let bits = 64 - (n - 1).leading_zeros();
        let half_bits = bits.div_ceil(2);
        let keys = [
            splitmix64(seed ^ 0xA076_1D64_78BD_642F),
            splitmix64(seed ^ 0xE703_7ED1_A0B4_28DB),
            splitmix64(seed ^ 0x8EBC_6AF0_9C88_C6E3),
            splitmix64(seed ^ 0x5899_65CC_7537_4CC3),
        ];
        Self { n, half_bits, half_mask: (1u64 << half_bits) - 1, keys }
    }

    #[inline]
    fn round(&self, r: u64, key: u64) -> u64 {
        splitmix64(r ^ key) & self.half_mask
    }

    #[inline]
    fn feistel(&self, x: u64) -> u64 {
        let mut l = x >> self.half_bits;
        let mut r = x & self.half_mask;
        for &k in &self.keys {
            let nl = r;
            let nr = l ^ self.round(r, k);
            l = nl;
            r = nr;
        }
        (l << self.half_bits) | r
    }

    /// Apply the permutation to `x < n`.
    #[inline]
    pub fn apply(&self, x: u64) -> u64 {
        debug_assert!(x < self.n, "permutation input {x} out of domain {}", self.n);
        if self.half_bits == 0 {
            return x; // identity
        }
        // cycle-walk: the Feistel network permutes the power-of-two superset;
        // iterate until we land back inside [0, n). Expected < 4 steps since
        // the superset is < 4x n.
        let mut y = self.feistel(x);
        while y >= self.n {
            y = self.feistel(y);
        }
        y
    }

    pub fn domain(&self) -> u64 {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_bijection(n: u64, seed: u64) {
        let p = RandomPermutation::new(n, seed);
        let mut seen = vec![false; n as usize];
        for x in 0..n {
            let y = p.apply(x);
            assert!(y < n, "n={n} x={x} -> {y}");
            assert!(!seen[y as usize], "collision at n={n} x={x} -> {y}");
            seen[y as usize] = true;
        }
    }

    #[test]
    fn bijection_various_sizes() {
        for n in [1u64, 2, 3, 5, 16, 17, 100, 1000, 4096, 5000] {
            assert_bijection(n, 42);
        }
    }

    #[test]
    fn bijection_various_seeds() {
        for seed in [0u64, 1, 7, 0xDEAD_BEEF] {
            assert_bijection(257, seed);
        }
    }

    #[test]
    fn seeds_give_different_permutations() {
        let a = RandomPermutation::new(1000, 1);
        let b = RandomPermutation::new(1000, 2);
        let diff = (0..1000).filter(|&x| a.apply(x) != b.apply(x)).count();
        assert!(diff > 900, "only {diff} positions differ");
    }

    #[test]
    fn permutation_actually_scrambles() {
        let p = RandomPermutation::new(1 << 16, 9);
        // adjacent inputs should land far apart on average
        let mut adjacent_close = 0;
        for x in 0..1000u64 {
            let d = p.apply(x).abs_diff(p.apply(x + 1));
            if d < 16 {
                adjacent_close += 1;
            }
        }
        assert!(adjacent_close < 10, "{adjacent_close} adjacent pairs stayed close");
    }

    #[test]
    fn identity_is_identity() {
        let p = RandomPermutation::identity(50);
        for x in 0..50 {
            assert_eq!(p.apply(x), x);
        }
    }

    #[test]
    fn deterministic() {
        let a = RandomPermutation::new(999, 5);
        let b = RandomPermutation::new(999, 5);
        for x in 0..999 {
            assert_eq!(a.apply(x), b.apply(x));
        }
    }
}
