//! Partition assignment functions and the imbalance metric of Figure 2.
//!
//! Three ways to place a directed edge list onto `p` partitions:
//!
//! - **1D**: vertices are split into `p` contiguous blocks; an edge lives
//!   with its source's block. A hub's entire adjacency list lands on one
//!   partition, so imbalance grows with hub size (Figure 2's upper curve).
//! - **2D**: the adjacency matrix is tiled by a `sqrt(p) x sqrt(p)` process
//!   grid; an edge lives at (source block row, target block column). Hubs
//!   are spread over `O(sqrt(p))` partitions (Figure 2's lower curve).
//! - **Edge-list**: the globally source-sorted edge list is split evenly;
//!   imbalance is 1 by construction (the paper's contribution).
//!
//! These assignment functions are used both by the Figure 2 experiment
//! (imbalance only, no graph built) and by [`crate::dist::DistGraph`].

use crate::types::Edge;

/// 1D block owner of vertex `v` among `p` partitions over `n` vertices.
/// Exact dual of [`block_start`]: `block_owner(v) == r` iff
/// `block_start(r) <= v < block_start(r + 1)`.
#[inline]
pub fn block_owner(v: u64, n: u64, p: usize) -> usize {
    debug_assert!(v < n);
    (((v as u128 + 1) * p as u128 - 1) / n as u128) as usize
}

/// First vertex of 1D block `r` (`floor(n * r / p)`).
#[inline]
pub fn block_start(r: usize, n: u64, p: usize) -> u64 {
    (n as u128 * r as u128 / p as u128) as u64
}

/// 1D partition of an edge: the source vertex's block.
#[inline]
pub fn one_d_partition(e: Edge, n: u64, p: usize) -> usize {
    block_owner(e.src, n, p)
}

/// Process-grid dimensions for 2D partitioning: the squarest factorization.
pub fn grid_dims(p: usize) -> (usize, usize) {
    let mut best = 1;
    let mut r = 1;
    while r * r <= p {
        if p.is_multiple_of(r) {
            best = r;
        }
        r += 1;
    }
    (best, p / best)
}

/// 2D partition of an edge: `(source row block, target column block)` on an
/// `rows x cols` process grid.
#[inline]
pub fn two_d_partition(e: Edge, n: u64, rows: usize, cols: usize) -> usize {
    let r = block_owner(e.src, n, rows);
    let c = block_owner(e.dst, n, cols);
    r * cols + c
}

/// Edge counts per partition under an arbitrary assignment.
pub fn partition_histogram(
    edges: impl Iterator<Item = Edge>,
    p: usize,
    assign: impl Fn(Edge) -> usize,
) -> Vec<u64> {
    let mut h = vec![0u64; p];
    for e in edges {
        h[assign(e)] += 1;
    }
    h
}

/// The paper's imbalance metric: max edges per partition / mean edges per
/// partition. 1.0 is perfect balance.
pub fn imbalance(histogram: &[u64]) -> f64 {
    let total: u64 = histogram.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let mean = total as f64 / histogram.len() as f64;
    *histogram.iter().max().unwrap() as f64 / mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::rmat::RmatGenerator;

    #[test]
    fn block_owner_tiles_evenly() {
        let n = 100;
        let p = 7;
        let mut counts = vec![0u64; p];
        for v in 0..n {
            let r = block_owner(v, n, p);
            assert!(r < p);
            counts[r] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max - min <= 1, "blocks must differ by at most one: {counts:?}");
        // blocks are contiguous & monotone
        for v in 1..n {
            assert!(block_owner(v, n, p) >= block_owner(v - 1, n, p));
        }
    }

    #[test]
    fn block_start_inverts_owner() {
        let n = 1000;
        let p = 13;
        for r in 0..p {
            let s = block_start(r, n, p);
            assert_eq!(block_owner(s, n, p), r);
            if s > 0 {
                assert_eq!(block_owner(s - 1, n, p), r - 1);
            }
        }
    }

    #[test]
    fn grid_dims_factor() {
        assert_eq!(grid_dims(16), (4, 4));
        assert_eq!(grid_dims(12), (3, 4));
        assert_eq!(grid_dims(7), (1, 7));
    }

    #[test]
    fn imbalance_of_uniform_is_one() {
        assert!((imbalance(&[5, 5, 5, 5]) - 1.0).abs() < 1e-12);
        assert!((imbalance(&[]) - 1.0).abs() < 1e-12 || imbalance(&[0]) == 1.0);
    }

    #[test]
    fn imbalance_detects_skew() {
        assert!((imbalance(&[30, 0, 0]) - 3.0).abs() < 1e-12);
    }

    /// The paper's Figure 2 claim in miniature: on RMAT graphs, 1D imbalance
    /// exceeds 2D imbalance, which exceeds edge-list imbalance (~1).
    #[test]
    fn figure2_ordering_holds_on_rmat() {
        let g = RmatGenerator::graph500(12);
        let n = g.num_vertices();
        let p = 16;
        let edges = g.edges(42);

        let h1 = partition_histogram(edges.iter().copied(), p, |e| one_d_partition(e, n, p));
        let (rows, cols) = grid_dims(p);
        let h2 =
            partition_histogram(edges.iter().copied(), p, |e| two_d_partition(e, n, rows, cols));
        // edge-list partitioning: even by construction
        let m = edges.len() as u64;
        let hel: Vec<u64> =
            (0..p as u64).map(|r| m * (r + 1) / p as u64 - m * r / p as u64).collect();

        let i1 = imbalance(&h1);
        let i2 = imbalance(&h2);
        let iel = imbalance(&hel);
        assert!(i1 > i2, "1D ({i1:.2}) should be worse than 2D ({i2:.2})");
        assert!(i2 > iel, "2D ({i2:.2}) should be worse than edge-list ({iel:.6})");
        assert!(iel < 1.001, "edge-list is even by construction");
    }
}
