//! Scale-free graph generation, partitioning and storage for the HavoqGT
//! reproduction.
//!
//! This crate provides every graph-side substrate the paper depends on:
//!
//! - [`gen`] — the three synthetic models of Section VII-A: Graph500 V1.2
//!   RMAT, preferential attachment with optional random rewiring, and
//!   Watts–Strogatz small-world with rewiring; plus the uniform vertex
//!   permutation the paper applies to destroy generator locality.
//! - [`sort`] — a distributed sample sort producing the globally sorted,
//!   evenly split edge list that *edge list partitioning* requires
//!   (Section III-A1).
//! - [`partition`] — partition assignment functions for 1D, 2D and
//!   edge-list partitioning plus the imbalance metric of Figure 2.
//! - [`csr`] — local compressed-sparse-row storage, in memory, semi-external
//!   (offsets in DRAM, targets behind the NVRAM page cache), or
//!   semi-external *gap-compressed* (varint-delta adjacency bytes behind
//!   the cache, decoded per slice — DESIGN.md §14).
//! - [`varint`] — the LEB128 gap codec the compressed CSR encodes with.
//! - [`dist`] — [`dist::DistGraph`]: the per-rank partitioned graph with
//!   `min_owner` / `max_owner`, split-vertex replica chains, global degrees
//!   and ghost candidates, built collectively over a `havoq-comm` world.
//! - [`analysis`] — degree censuses and hub statistics (Figure 1).

pub mod analysis;
pub mod csr;
pub mod dist;
pub mod gen;
pub mod io;
pub mod partition;
pub mod sort;
pub mod types;
pub mod varint;

pub use csr::{CsrStorage, GraphConfig, LocalCsr};
pub use dist::{DistGraph, PartitionStrategy};
pub use types::{Edge, VertexId};
