//! Core graph value types.

use std::fmt;

use havoq_comm::WireCodec;

/// A global vertex identifier.
///
/// Identifiers are dense in `0..num_vertices`. The paper stores partition
/// owner bits inside the identifier for O(1) `min_owner`; this reproduction
/// uses the paper's stated alternative — an `O(lg p)` binary search over the
/// replicated partition boundary table — which keeps identifiers plain.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VertexId(pub u64);

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u64> for VertexId {
    fn from(v: u64) -> Self {
        VertexId(v)
    }
}

impl WireCodec for VertexId {
    const WIRE_SIZE: usize = 8;
    type DecodeCtx = ();

    #[inline]
    fn encode(&self, buf: &mut [u8]) {
        self.0.encode(buf);
    }

    #[inline]
    fn decode(buf: &[u8], ctx: &()) -> Self {
        VertexId(u64::decode(buf, ctx))
    }
}

/// A directed edge. Undirected graphs are stored symmetrized (both
/// directions present), exactly as the Graph500 CSR the paper uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    pub src: u64,
    pub dst: u64,
}

impl Edge {
    #[inline]
    pub fn new(src: u64, dst: u64) -> Self {
        Edge { src, dst }
    }

    /// The edge with endpoints swapped.
    #[inline]
    pub fn reversed(self) -> Self {
        Edge { src: self.dst, dst: self.src }
    }

    #[inline]
    pub fn is_self_loop(self) -> bool {
        self.src == self.dst
    }

    /// Sort key used everywhere: by source, then target.
    #[inline]
    pub fn key(self) -> (u64, u64) {
        (self.src, self.dst)
    }
}

impl WireCodec for Edge {
    const WIRE_SIZE: usize = 16;
    type DecodeCtx = ();

    #[inline]
    fn encode(&self, buf: &mut [u8]) {
        self.src.encode(&mut buf[..8]);
        self.dst.encode(&mut buf[8..16]);
    }

    #[inline]
    fn decode(buf: &[u8], ctx: &()) -> Self {
        Edge { src: u64::decode(&buf[..8], ctx), dst: u64::decode(&buf[8..16], ctx) }
    }
}

/// Append the reverse of every edge (symmetrization for undirected graphs).
pub fn symmetrize(edges: &mut Vec<Edge>) {
    let n = edges.len();
    edges.reserve(n);
    for i in 0..n {
        let e = edges[i];
        if !e.is_self_loop() {
            edges.push(e.reversed());
        }
    }
}

/// Largest endpoint + 1 (the implied vertex-set size of an edge list).
pub fn max_vertex(edges: &[Edge]) -> u64 {
    edges.iter().map(|e| e.src.max(e.dst) + 1).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_helpers() {
        let e = Edge::new(3, 7);
        assert_eq!(e.reversed(), Edge::new(7, 3));
        assert!(!e.is_self_loop());
        assert!(Edge::new(5, 5).is_self_loop());
        assert_eq!(e.key(), (3, 7));
    }

    #[test]
    fn symmetrize_skips_self_loops() {
        let mut es = vec![Edge::new(0, 1), Edge::new(2, 2)];
        symmetrize(&mut es);
        assert_eq!(es, vec![Edge::new(0, 1), Edge::new(2, 2), Edge::new(1, 0)]);
    }

    #[test]
    fn max_vertex_of_empty_is_zero() {
        assert_eq!(max_vertex(&[]), 0);
        assert_eq!(max_vertex(&[Edge::new(0, 9)]), 10);
    }

    #[test]
    fn wire_codecs_roundtrip() {
        let v = VertexId(0xdead_beef_1234_5678);
        let mut buf = [0u8; 8];
        v.encode(&mut buf);
        assert_eq!(VertexId::decode(&buf, &()), v);

        let e = Edge::new(u64::MAX, 42);
        let mut buf = [0u8; 16];
        e.encode(&mut buf);
        assert_eq!(Edge::decode(&buf, &()), e);
    }
}
