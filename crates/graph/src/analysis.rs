//! Degree censuses and hub statistics (paper Figure 1).

use crate::types::Edge;

/// Out-degree census over a streamed edge list.
pub struct DegreeCensus {
    degrees: Vec<u64>,
}

impl DegreeCensus {
    pub fn from_edges(num_vertices: u64, edges: impl Iterator<Item = Edge>) -> Self {
        let mut degrees = vec![0u64; num_vertices as usize];
        for e in edges {
            degrees[e.src as usize] += 1;
        }
        Self { degrees }
    }

    /// Undirected census (count both endpoints of each directed edge).
    pub fn undirected_from_edges(num_vertices: u64, edges: impl Iterator<Item = Edge>) -> Self {
        let mut degrees = vec![0u64; num_vertices as usize];
        for e in edges {
            degrees[e.src as usize] += 1;
            degrees[e.dst as usize] += 1;
        }
        Self { degrees }
    }

    pub fn degrees(&self) -> &[u64] {
        &self.degrees
    }

    pub fn max_degree(&self) -> u64 {
        self.degrees.iter().copied().max().unwrap_or(0)
    }

    pub fn mean_degree(&self) -> f64 {
        if self.degrees.is_empty() {
            0.0
        } else {
            self.degrees.iter().sum::<u64>() as f64 / self.degrees.len() as f64
        }
    }

    /// Total edges belonging to vertices with degree >= `threshold`
    /// (Figure 1's "edges on hubs" series).
    pub fn edges_on_hubs(&self, threshold: u64) -> u64 {
        self.degrees.iter().filter(|&&d| d >= threshold).sum()
    }

    /// Number of vertices with degree >= `threshold`.
    pub fn hub_count(&self, threshold: u64) -> u64 {
        self.degrees.iter().filter(|&&d| d >= threshold).count() as u64
    }

    /// Full hub statistics row for a Figure 1-style table.
    pub fn hub_stats(&self, thresholds: &[u64]) -> HubStats {
        HubStats {
            max_degree: self.max_degree(),
            mean_degree: self.mean_degree(),
            edges_on_hubs: thresholds.iter().map(|&t| (t, self.edges_on_hubs(t))).collect(),
        }
    }
}

/// One row of Figure 1: the max-degree hub and edge mass on hubs above each
/// threshold.
#[derive(Clone, Debug)]
pub struct HubStats {
    pub max_degree: u64,
    pub mean_degree: f64,
    pub edges_on_hubs: Vec<(u64, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::rmat::RmatGenerator;

    #[test]
    fn census_counts_out_degree() {
        let edges = vec![Edge::new(0, 1), Edge::new(0, 2), Edge::new(1, 0)];
        let c = DegreeCensus::from_edges(3, edges.into_iter());
        assert_eq!(c.degrees(), &[2, 1, 0]);
        assert_eq!(c.max_degree(), 2);
        assert!((c.mean_degree() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn undirected_census_counts_both_ends() {
        let edges = vec![Edge::new(0, 1), Edge::new(1, 2)];
        let c = DegreeCensus::undirected_from_edges(3, edges.into_iter());
        assert_eq!(c.degrees(), &[1, 2, 1]);
    }

    #[test]
    fn hub_metrics() {
        let c = DegreeCensus { degrees: vec![100, 5, 5, 50] };
        assert_eq!(c.edges_on_hubs(50), 150);
        assert_eq!(c.hub_count(50), 2);
        assert_eq!(c.edges_on_hubs(1000), 0);
        let hs = c.hub_stats(&[10, 50]);
        assert_eq!(hs.max_degree, 100);
        assert_eq!(hs.edges_on_hubs, vec![(10, 150), (50, 150)]);
    }

    /// Figure 1's qualitative claim: hub mass grows with scale while mean
    /// degree stays ~2x edge factor (directed census of symmetric list).
    #[test]
    fn hub_growth_with_scale() {
        let mass: Vec<u64> = [10u32, 12, 14]
            .iter()
            .map(|&s| {
                let g = RmatGenerator::graph500(s);
                let c = DegreeCensus::from_edges(g.num_vertices(), g.edges(7).into_iter());
                c.edges_on_hubs(256)
            })
            .collect();
        assert!(mass[0] < mass[1] && mass[1] < mass[2], "hub mass must grow: {mass:?}");
    }
}
