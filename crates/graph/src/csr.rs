//! Local compressed-sparse-row storage, in memory or semi-external.
//!
//! Each rank stores its partition of the edge list as CSR (paper Section
//! III-A1: "we choose to store each local partition as a compressed sparse
//! row"). In the semi-external configurations the offset array and all
//! algorithm state stay in DRAM while the target array lives behind the
//! NVRAM page cache — the paper's Section VIII-A argument for why edge-list
//! partitioning suits semi-external memory (vertex-proportional state in
//! memory, edge-proportional bulk on flash).
//!
//! The third storage variant compresses the external target pool: sorted
//! neighbor lists are delta-encoded with LEB128 varint gaps
//! ([`crate::varint`]) into a byte-granular pool, and the per-vertex
//! `offsets` become *byte* offsets paired with a DRAM degree table. Slices
//! are decoded on access into a per-thread scratch buffer, trading decode
//! CPU for several-fold more edges per cache byte (DESIGN.md §14).

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use havoq_nvram::cache::{CacheStatsSnapshot, PageCache, PageCacheConfig};
use havoq_nvram::device::{BlockDevice, DeviceProfile, MemDevice, SimNvram};
use havoq_nvram::extvec::{ExtStore, ExternalVec};

use crate::types::Edge;
use crate::varint;

/// Where the CSR target array lives.
#[derive(Clone, Copy, Debug)]
pub enum CsrStorage {
    /// Targets in DRAM (the paper's BG/P configuration).
    InMemory,
    /// Targets behind a page cache over a simulated NVRAM device (the
    /// Hyperion-DIT configuration).
    External { profile: DeviceProfile, cache: PageCacheConfig },
    /// Targets gap-compressed (varint deltas over sorted neighbor lists)
    /// into a byte pool behind the page cache; adjacency slices are decoded
    /// on access. Duplicate targets (`GraphConfig { dedup: false }`) encode
    /// as zero gaps and round-trip exactly (see [`crate::varint`]).
    ExternalCompressed { profile: DeviceProfile, cache: PageCacheConfig },
}

impl CsrStorage {
    /// Short label for bench tables and test matrices.
    pub fn label(&self) -> &'static str {
        match self {
            CsrStorage::InMemory => "mem",
            CsrStorage::External { .. } => "ext",
            CsrStorage::ExternalCompressed { .. } => "ext-comp",
        }
    }
}

/// Graph construction options.
#[derive(Clone, Copy, Debug)]
pub struct GraphConfig {
    pub storage: CsrStorage,
    /// Drop duplicate edges during construction.
    pub dedup: bool,
    /// Drop self-loops during construction.
    pub remove_self_loops: bool,
    /// Global vertex count. `None` infers `max endpoint + 1` from the edge
    /// list; set it explicitly when trailing vertices may be isolated.
    pub num_vertices: Option<u64>,
}

impl Default for GraphConfig {
    fn default() -> Self {
        Self {
            storage: CsrStorage::InMemory,
            dedup: true,
            remove_self_loops: true,
            num_vertices: None,
        }
    }
}

impl GraphConfig {
    /// Semi-external configuration with the given device tier and cache
    /// capacity.
    pub fn external(profile: DeviceProfile, cache: PageCacheConfig) -> Self {
        Self { storage: CsrStorage::External { profile, cache }, ..Self::default() }
    }

    /// Semi-external gap-compressed configuration: same device tier and
    /// cache budget as [`GraphConfig::external`], but targets are stored as
    /// varint gap bytes and decoded per slice on access.
    pub fn external_compressed(profile: DeviceProfile, cache: PageCacheConfig) -> Self {
        Self { storage: CsrStorage::ExternalCompressed { profile, cache }, ..Self::default() }
    }

    /// Set the global vertex count explicitly.
    pub fn with_num_vertices(mut self, n: u64) -> Self {
        self.num_vertices = Some(n);
        self
    }
}

enum Targets {
    Mem(Vec<u64>),
    Ext {
        vec: ExternalVec<u64>,
        cache: Arc<PageCache>,
    },
    ExtCompressed {
        /// Varint gap bytes, all vertices concatenated; `offsets` index it
        /// in *bytes*.
        pool: ExternalVec<u8>,
        cache: Arc<PageCache>,
        /// DRAM degree table — byte offsets can't recover element counts.
        degrees: Vec<u64>,
        /// Uncompressed size (`num_edges * 8`), for the compression ratio.
        raw_bytes: u64,
        /// Slices decoded since construction.
        adj_decodes: AtomicU64,
        /// Encoded bytes pulled through the decoder since construction.
        adj_decoded_bytes: AtomicU64,
    },
}

/// Storage-layer counters for the compressed CSR: how big the encoded pool
/// is versus raw `u64` targets, and how much decode work traversals did.
/// Folded into `TraversalStats` next to the page-cache counters so the
/// decode-CPU-vs-IO-stall trade is measured, not guessed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CsrStorageSnapshot {
    /// Total edges stored.
    pub num_edges: u64,
    /// Bytes of the encoded target pool.
    pub encoded_bytes: u64,
    /// Bytes the same targets would occupy uncompressed (`num_edges * 8`).
    pub raw_bytes: u64,
    /// Adjacency slices decoded since construction.
    pub adj_decodes: u64,
    /// Encoded bytes pulled through the decoder since construction.
    pub adj_decoded_bytes: u64,
}

impl CsrStorageSnapshot {
    /// Encoded bytes per stored edge (8.0 for the uncompressed layout).
    pub fn bytes_per_edge(&self) -> f64 {
        if self.num_edges == 0 {
            0.0
        } else {
            self.encoded_bytes as f64 / self.num_edges as f64
        }
    }

    /// `raw_bytes / encoded_bytes` — edges-per-cache-byte multiplier versus
    /// the uncompressed layout at equal cache budget.
    pub fn compression_ratio(&self) -> f64 {
        if self.encoded_bytes == 0 {
            1.0
        } else {
            self.raw_bytes as f64 / self.encoded_bytes as f64
        }
    }
}

/// One rank's CSR partition covering the contiguous vertex range
/// `[vertex_base, vertex_base + num_vertices)`.
pub struct LocalCsr {
    vertex_base: u64,
    /// `offsets[i]..offsets[i+1]` indexes local vertex i's targets — in
    /// elements for `Mem`/`Ext`, in *bytes* of the encoded pool for
    /// `ExtCompressed` (degrees then come from the DRAM degree table).
    offsets: Vec<u64>,
    /// Total edge count, independent of offset granularity.
    edge_count: u64,
    targets: Targets,
}

thread_local! {
    /// Scratch buffer for external adjacency reads (one rank = one thread).
    static ADJ_SCRATCH: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// Scratch for the encoded byte slice of one compressed adjacency read.
    static BYTE_SCRATCH: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

impl LocalCsr {
    /// Build from this rank's slice of the globally sorted edge list.
    /// `edges` must be sorted by `(src, dst)` with all sources inside
    /// `[vertex_base, vertex_base + num_vertices)`; duplicate/self-loop
    /// filtering has already happened upstream.
    pub fn build(
        vertex_base: u64,
        num_vertices: usize,
        edges: &[Edge],
        storage: CsrStorage,
    ) -> Self {
        let mut offsets = vec![0u64; num_vertices + 1];
        for e in edges {
            debug_assert!(
                e.src >= vertex_base && e.src < vertex_base + num_vertices as u64,
                "edge source {} outside partition [{vertex_base}, +{num_vertices})",
                e.src
            );
            offsets[(e.src - vertex_base) as usize + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        debug_assert!(edges.windows(2).all(|w| w[0].key() <= w[1].key()), "edges not sorted");
        let edge_count = edges.len() as u64;
        let targets = match storage {
            CsrStorage::InMemory => Targets::Mem(edges.iter().map(|e| e.dst).collect()),
            CsrStorage::External { profile, cache } => {
                let device: Arc<dyn BlockDevice> =
                    Arc::new(SimNvram::new(MemDevice::new(), profile));
                let cache = Arc::new(PageCache::new(device, cache));
                let store = ExtStore::new(Arc::clone(&cache));
                let tmp: Vec<u64> = edges.iter().map(|e| e.dst).collect();
                let vec = store.alloc_from(&tmp);
                // construction traffic shouldn't pollute traversal stats
                cache.flush();
                cache.reset_stats();
                Targets::Ext { vec, cache }
            }
            CsrStorage::ExternalCompressed { profile, cache } => {
                // Gap-encode each vertex's sorted slice, then rewrite the
                // element offsets into byte offsets over the encoded pool.
                let mut pool_bytes = Vec::new();
                let mut byte_offsets = vec![0u64; num_vertices + 1];
                let mut degrees = vec![0u64; num_vertices];
                let mut slice = Vec::new();
                for li in 0..num_vertices {
                    let (s, e) = (offsets[li] as usize, offsets[li + 1] as usize);
                    degrees[li] = (e - s) as u64;
                    slice.clear();
                    slice.extend(edges[s..e].iter().map(|ed| ed.dst));
                    varint::encode_gaps(&slice, &mut pool_bytes);
                    byte_offsets[li + 1] = pool_bytes.len() as u64;
                }
                offsets = byte_offsets;
                let device: Arc<dyn BlockDevice> =
                    Arc::new(SimNvram::new(MemDevice::new(), profile));
                let cache = Arc::new(PageCache::new(device, cache));
                let store = ExtStore::new(Arc::clone(&cache));
                let pool = store.alloc_from(&pool_bytes);
                cache.flush();
                cache.reset_stats();
                Targets::ExtCompressed {
                    pool,
                    cache,
                    degrees,
                    raw_bytes: edge_count * 8,
                    adj_decodes: AtomicU64::new(0),
                    adj_decoded_bytes: AtomicU64::new(0),
                }
            }
        };
        Self { vertex_base, offsets, edge_count, targets }
    }

    #[inline]
    pub fn vertex_base(&self) -> u64 {
        self.vertex_base
    }

    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.edge_count
    }

    /// Local out-degree of local vertex `li` (this partition's slice of the
    /// adjacency list only). On compressed storage this reads the DRAM
    /// degree table — never the encoded pool.
    #[inline]
    pub fn local_out_degree(&self, li: usize) -> u64 {
        match &self.targets {
            Targets::ExtCompressed { degrees, .. } => degrees[li],
            _ => self.offsets[li + 1] - self.offsets[li],
        }
    }

    /// Run `f` over local vertex `li`'s (sorted) targets.
    #[inline]
    pub fn with_adj<R>(&self, li: usize, f: impl FnOnce(&[u64]) -> R) -> R {
        let start = self.offsets[li] as usize;
        let end = self.offsets[li + 1] as usize;
        match &self.targets {
            Targets::Mem(t) => f(&t[start..end]),
            Targets::Ext { vec, .. } => ADJ_SCRATCH.with(|s| {
                let mut s = s.borrow_mut();
                s.clear();
                s.resize(end - start, 0);
                // overlap: queue background prefetch of the whole slice
                // (no-op in sync I/O mode) before the blocking scan
                vec.advise(start, end - start);
                vec.read_range(start, &mut s);
                f(&s)
            }),
            Targets::ExtCompressed { pool, degrees, adj_decodes, adj_decoded_bytes, .. } => {
                let degree = degrees[li] as usize;
                if degree == 0 {
                    return f(&[]);
                }
                adj_decodes.fetch_add(1, Ordering::Relaxed);
                adj_decoded_bytes.fetch_add((end - start) as u64, Ordering::Relaxed);
                BYTE_SCRATCH.with(|b| {
                    let mut b = b.borrow_mut();
                    b.clear();
                    b.resize(end - start, 0);
                    pool.advise(start, end - start);
                    pool.read_bytes(start, &mut b);
                    ADJ_SCRATCH.with(|s| {
                        let mut s = s.borrow_mut();
                        s.clear();
                        varint::decode_gaps(&b, degree, &mut s);
                        f(&s)
                    })
                })
            }
        }
    }

    /// Scan local vertex `li`'s targets in order until `pred` returns true,
    /// yielding `(targets_scanned, Some(hit))` — or `(degree, None)` after a
    /// full scan. On compressed storage this streams the gap decoder and
    /// stops decoding at the hit; on the other backends it walks the slice.
    /// The scanned count is identical across storages, so `edges_inspected`
    /// fingerprints stay storage-invariant.
    pub fn scan_adj(&self, li: usize, mut pred: impl FnMut(u64) -> bool) -> (u64, Option<u64>) {
        if let Targets::ExtCompressed { pool, degrees, adj_decodes, adj_decoded_bytes, .. } =
            &self.targets
        {
            let degree = degrees[li] as usize;
            if degree == 0 {
                return (0, None);
            }
            let start = self.offsets[li] as usize;
            let end = self.offsets[li + 1] as usize;
            adj_decodes.fetch_add(1, Ordering::Relaxed);
            adj_decoded_bytes.fetch_add((end - start) as u64, Ordering::Relaxed);
            return BYTE_SCRATCH.with(|b| {
                let mut b = b.borrow_mut();
                b.clear();
                b.resize(end - start, 0);
                pool.advise(start, end - start);
                pool.read_bytes(start, &mut b);
                let mut dec = varint::GapDecoder::new(&b);
                for scanned in 0..degree as u64 {
                    let t = dec.next_target();
                    if pred(t) {
                        return (scanned + 1, Some(t));
                    }
                }
                (degree as u64, None)
            });
        }
        self.with_adj(li, |adj| {
            for (scanned, &t) in adj.iter().enumerate() {
                if pred(t) {
                    return (scanned as u64 + 1, Some(t));
                }
            }
            (adj.len() as u64, None)
        })
    }

    /// True if local vertex `li`'s slice contains `target` (binary search —
    /// targets are sorted because edges were sorted by `(src, dst)`).
    pub fn adj_contains(&self, li: usize, target: u64) -> bool {
        self.with_adj(li, |adj| adj.binary_search(&target).is_ok())
    }

    /// Page-cache statistics (external storage only).
    pub fn cache_stats(&self) -> Option<CacheStatsSnapshot> {
        match &self.targets {
            Targets::Mem(_) => None,
            Targets::Ext { cache, .. } | Targets::ExtCompressed { cache, .. } => {
                Some(cache.stats())
            }
        }
    }

    /// I/O engine statistics — queue depths, outstanding gauge, service
    /// times (external storage only).
    pub fn io_stats(&self) -> Option<havoq_nvram::IoStatsSnapshot> {
        match &self.targets {
            Targets::Mem(_) => None,
            Targets::Ext { cache, .. } | Targets::ExtCompressed { cache, .. } => {
                Some(cache.io_stats())
            }
        }
    }

    /// The page cache (external storage only), e.g. to clear before a
    /// cold-cache run.
    pub fn cache(&self) -> Option<&Arc<PageCache>> {
        match &self.targets {
            Targets::Mem(_) => None,
            Targets::Ext { cache, .. } | Targets::ExtCompressed { cache, .. } => Some(cache),
        }
    }

    /// Compression + decode counters (compressed storage only).
    pub fn storage_snapshot(&self) -> Option<CsrStorageSnapshot> {
        match &self.targets {
            Targets::ExtCompressed { raw_bytes, adj_decodes, adj_decoded_bytes, .. } => {
                Some(CsrStorageSnapshot {
                    num_edges: self.edge_count,
                    encoded_bytes: *self.offsets.last().unwrap(),
                    raw_bytes: *raw_bytes,
                    adj_decodes: adj_decodes.load(Ordering::Relaxed),
                    adj_decoded_bytes: adj_decoded_bytes.load(Ordering::Relaxed),
                })
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_edges() -> Vec<Edge> {
        // base 10, 4 vertices: 10->{11,12}, 11->{10}, 13->{10,11,12}
        vec![
            Edge::new(10, 11),
            Edge::new(10, 12),
            Edge::new(11, 10),
            Edge::new(13, 10),
            Edge::new(13, 11),
            Edge::new(13, 12),
        ]
    }

    fn check(csr: &LocalCsr) {
        assert_eq!(csr.num_vertices(), 4);
        assert_eq!(csr.num_edges(), 6);
        assert_eq!(csr.local_out_degree(0), 2);
        assert_eq!(csr.local_out_degree(1), 1);
        assert_eq!(csr.local_out_degree(2), 0);
        assert_eq!(csr.local_out_degree(3), 3);
        csr.with_adj(0, |a| assert_eq!(a, &[11, 12]));
        csr.with_adj(2, |a| assert!(a.is_empty()));
        csr.with_adj(3, |a| assert_eq!(a, &[10, 11, 12]));
        assert!(csr.adj_contains(3, 11));
        assert!(!csr.adj_contains(3, 13));
        assert!(!csr.adj_contains(2, 10));
    }

    #[test]
    fn in_memory_build() {
        let csr = LocalCsr::build(10, 4, &sample_edges(), CsrStorage::InMemory);
        check(&csr);
        assert!(csr.cache_stats().is_none());
    }

    #[test]
    fn external_build_matches_in_memory() {
        let storage = CsrStorage::External {
            profile: DeviceProfile::dram(),
            cache: PageCacheConfig {
                page_size: 64,
                capacity_pages: 2,
                shards: 1,
                ..PageCacheConfig::default()
            },
        };
        let csr = LocalCsr::build(10, 4, &sample_edges(), storage);
        check(&csr);
        let stats = csr.cache_stats().unwrap();
        assert!(stats.accesses() > 0, "external reads must hit the cache layer");
    }

    #[test]
    fn external_large_adjacency_spills() {
        let base = 0u64;
        let n = 64usize;
        let mut edges = Vec::new();
        for v in 0..n as u64 {
            for t in 0..32u64 {
                edges.push(Edge::new(v, (v + t) % n as u64));
            }
        }
        edges.sort_unstable_by_key(|e| e.key());
        edges.dedup();
        let storage = CsrStorage::External {
            profile: DeviceProfile::dram(),
            cache: PageCacheConfig {
                page_size: 256,
                capacity_pages: 4,
                shards: 2,
                ..PageCacheConfig::default()
            },
        };
        let csr = LocalCsr::build(base, n, &edges, storage);
        // two sweeps: second should be recognizable in stats as well
        let mut count = 0u64;
        for _ in 0..2 {
            for v in 0..n {
                csr.with_adj(v, |a| count += a.len() as u64);
            }
        }
        assert_eq!(count, 2 * csr.num_edges());
        let st = csr.cache_stats().unwrap();
        assert!(st.evictions > 0, "tiny cache must evict: {st:?}");
    }

    #[test]
    fn external_async_io_matches_in_memory() {
        use havoq_nvram::IoConfig;
        let storage = CsrStorage::External {
            profile: DeviceProfile::fusion_io(),
            cache: PageCacheConfig {
                page_size: 64,
                capacity_pages: 8,
                shards: 2,
                readahead_pages: 4,
                io: IoConfig::asynchronous(),
                ..PageCacheConfig::default()
            },
        };
        let csr = LocalCsr::build(10, 4, &sample_edges(), storage);
        check(&csr);
        let io = csr.io_stats().unwrap();
        assert!(io.workers > 0, "async engine must be running: {io:?}");
    }

    #[test]
    fn empty_partition() {
        let csr = LocalCsr::build(5, 0, &[], CsrStorage::InMemory);
        assert_eq!(csr.num_vertices(), 0);
        assert_eq!(csr.num_edges(), 0);
    }

    fn compressed_storage(page_size: usize, pages: usize) -> CsrStorage {
        CsrStorage::ExternalCompressed {
            profile: DeviceProfile::dram(),
            cache: PageCacheConfig {
                page_size,
                capacity_pages: pages,
                shards: 1,
                ..PageCacheConfig::default()
            },
        }
    }

    #[test]
    fn compressed_build_matches_in_memory() {
        let csr = LocalCsr::build(10, 4, &sample_edges(), compressed_storage(64, 2));
        check(&csr);
        let snap = csr.storage_snapshot().unwrap();
        assert_eq!(snap.num_edges, 6);
        assert_eq!(snap.raw_bytes, 48);
        assert!(snap.encoded_bytes < snap.raw_bytes, "gaps must compress: {snap:?}");
        assert!(snap.adj_decodes > 0, "check() decoded slices");
        assert!(csr.cache_stats().unwrap().accesses() > 0);
    }

    #[test]
    fn compressed_empty_adjacency_decodes_nothing() {
        let csr = LocalCsr::build(10, 4, &sample_edges(), compressed_storage(64, 2));
        let before = csr.storage_snapshot().unwrap().adj_decodes;
        csr.with_adj(2, |a| assert!(a.is_empty()));
        assert_eq!(csr.storage_snapshot().unwrap().adj_decodes, before);
    }

    #[test]
    fn compressed_large_adjacency_spills_across_pages() {
        // dense neighbor runs + tiny pages: slices straddle page boundaries
        let n = 64usize;
        let mut edges = Vec::new();
        for v in 0..n as u64 {
            for t in 0..32u64 {
                edges.push(Edge::new(v, (v + t) % n as u64));
            }
        }
        edges.sort_unstable_by_key(|e| e.key());
        edges.dedup();
        let mem = LocalCsr::build(0, n, &edges, CsrStorage::InMemory);
        let comp = LocalCsr::build(0, n, &edges, compressed_storage(64, 3));
        for v in 0..n {
            mem.with_adj(v, |want| {
                comp.with_adj(v, |got| assert_eq!(got, want, "vertex {v}"));
            });
            assert_eq!(comp.local_out_degree(v), mem.local_out_degree(v));
        }
        let st = comp.cache_stats().unwrap();
        assert!(st.evictions > 0, "tiny cache must evict: {st:?}");
        let snap = comp.storage_snapshot().unwrap();
        // mostly gap-1 runs: near one byte per edge after the absolute head
        assert!(snap.bytes_per_edge() < 2.0, "expected dense compression: {snap:?}");
        assert!(snap.compression_ratio() > 4.0, "{snap:?}");
    }

    #[test]
    fn compressed_accepts_duplicate_targets() {
        // dedup: false upstream — zero gaps must round-trip exactly
        let edges = vec![
            Edge::new(0, 5),
            Edge::new(0, 5),
            Edge::new(0, 5),
            Edge::new(0, 9),
            Edge::new(1, 9),
            Edge::new(1, 9),
        ];
        let csr = LocalCsr::build(0, 2, &edges, compressed_storage(64, 2));
        csr.with_adj(0, |a| assert_eq!(a, &[5, 5, 5, 9]));
        csr.with_adj(1, |a| assert_eq!(a, &[9, 9]));
        assert_eq!(csr.num_edges(), 6);
        assert_eq!(csr.local_out_degree(0), 4);
    }

    #[test]
    fn scan_adj_counts_match_across_storages() {
        let edges = sample_edges();
        let mem = LocalCsr::build(10, 4, &edges, CsrStorage::InMemory);
        let comp = LocalCsr::build(10, 4, &edges, compressed_storage(64, 2));
        for li in 0..4 {
            for needle in [10u64, 11, 12, 13, 99] {
                let want = mem.scan_adj(li, |t| t == needle);
                let got = comp.scan_adj(li, |t| t == needle);
                assert_eq!(got, want, "li={li} needle={needle}");
            }
        }
        // early exit: hit on the first target scans exactly one
        assert_eq!(comp.scan_adj(3, |t| t == 10), (1, Some(10)));
        // miss scans the whole degree
        assert_eq!(comp.scan_adj(3, |t| t == 99), (3, None));
    }

    #[test]
    fn compressed_snapshot_zero_after_build() {
        let csr = LocalCsr::build(10, 4, &sample_edges(), compressed_storage(64, 2));
        let snap = csr.storage_snapshot().unwrap();
        assert_eq!(snap.adj_decodes, 0, "construction must not decode");
        assert_eq!(snap.adj_decoded_bytes, 0);
    }
}
