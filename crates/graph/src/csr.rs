//! Local compressed-sparse-row storage, in memory or semi-external.
//!
//! Each rank stores its partition of the edge list as CSR (paper Section
//! III-A1: "we choose to store each local partition as a compressed sparse
//! row"). In the semi-external configuration the offset array and all
//! algorithm state stay in DRAM while the target array lives behind the
//! NVRAM page cache — the paper's Section VIII-A argument for why edge-list
//! partitioning suits semi-external memory (vertex-proportional state in
//! memory, edge-proportional bulk on flash).

use std::cell::RefCell;
use std::sync::Arc;

use havoq_nvram::cache::{CacheStatsSnapshot, PageCache, PageCacheConfig};
use havoq_nvram::device::{BlockDevice, DeviceProfile, MemDevice, SimNvram};
use havoq_nvram::extvec::{ExtStore, ExternalVec};

use crate::types::Edge;

/// Where the CSR target array lives.
#[derive(Clone, Copy, Debug)]
pub enum CsrStorage {
    /// Targets in DRAM (the paper's BG/P configuration).
    InMemory,
    /// Targets behind a page cache over a simulated NVRAM device (the
    /// Hyperion-DIT configuration).
    External { profile: DeviceProfile, cache: PageCacheConfig },
}

/// Graph construction options.
#[derive(Clone, Copy, Debug)]
pub struct GraphConfig {
    pub storage: CsrStorage,
    /// Drop duplicate edges during construction.
    pub dedup: bool,
    /// Drop self-loops during construction.
    pub remove_self_loops: bool,
    /// Global vertex count. `None` infers `max endpoint + 1` from the edge
    /// list; set it explicitly when trailing vertices may be isolated.
    pub num_vertices: Option<u64>,
}

impl Default for GraphConfig {
    fn default() -> Self {
        Self {
            storage: CsrStorage::InMemory,
            dedup: true,
            remove_self_loops: true,
            num_vertices: None,
        }
    }
}

impl GraphConfig {
    /// Semi-external configuration with the given device tier and cache
    /// capacity.
    pub fn external(profile: DeviceProfile, cache: PageCacheConfig) -> Self {
        Self { storage: CsrStorage::External { profile, cache }, ..Self::default() }
    }

    /// Set the global vertex count explicitly.
    pub fn with_num_vertices(mut self, n: u64) -> Self {
        self.num_vertices = Some(n);
        self
    }
}

enum Targets {
    Mem(Vec<u64>),
    Ext { vec: ExternalVec<u64>, cache: Arc<PageCache> },
}

/// One rank's CSR partition covering the contiguous vertex range
/// `[vertex_base, vertex_base + num_vertices)`.
pub struct LocalCsr {
    vertex_base: u64,
    /// `offsets[i]..offsets[i+1]` indexes local vertex i's targets.
    offsets: Vec<u64>,
    targets: Targets,
}

thread_local! {
    /// Scratch buffer for external adjacency reads (one rank = one thread).
    static ADJ_SCRATCH: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

impl LocalCsr {
    /// Build from this rank's slice of the globally sorted edge list.
    /// `edges` must be sorted by `(src, dst)` with all sources inside
    /// `[vertex_base, vertex_base + num_vertices)`; duplicate/self-loop
    /// filtering has already happened upstream.
    pub fn build(
        vertex_base: u64,
        num_vertices: usize,
        edges: &[Edge],
        storage: CsrStorage,
    ) -> Self {
        let mut offsets = vec![0u64; num_vertices + 1];
        for e in edges {
            debug_assert!(
                e.src >= vertex_base && e.src < vertex_base + num_vertices as u64,
                "edge source {} outside partition [{vertex_base}, +{num_vertices})",
                e.src
            );
            offsets[(e.src - vertex_base) as usize + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        debug_assert!(edges.windows(2).all(|w| w[0].key() <= w[1].key()), "edges not sorted");
        let targets = match storage {
            CsrStorage::InMemory => Targets::Mem(edges.iter().map(|e| e.dst).collect()),
            CsrStorage::External { profile, cache } => {
                let device: Arc<dyn BlockDevice> =
                    Arc::new(SimNvram::new(MemDevice::new(), profile));
                let cache = Arc::new(PageCache::new(device, cache));
                let store = ExtStore::new(Arc::clone(&cache));
                let tmp: Vec<u64> = edges.iter().map(|e| e.dst).collect();
                let vec = store.alloc_from(&tmp);
                // construction traffic shouldn't pollute traversal stats
                cache.flush();
                cache.reset_stats();
                Targets::Ext { vec, cache }
            }
        };
        Self { vertex_base, offsets, targets }
    }

    #[inline]
    pub fn vertex_base(&self) -> u64 {
        self.vertex_base
    }

    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    #[inline]
    pub fn num_edges(&self) -> u64 {
        *self.offsets.last().unwrap()
    }

    /// Local out-degree of local vertex `li` (this partition's slice of the
    /// adjacency list only).
    #[inline]
    pub fn local_out_degree(&self, li: usize) -> u64 {
        self.offsets[li + 1] - self.offsets[li]
    }

    /// Run `f` over local vertex `li`'s (sorted) targets.
    #[inline]
    pub fn with_adj<R>(&self, li: usize, f: impl FnOnce(&[u64]) -> R) -> R {
        let start = self.offsets[li] as usize;
        let end = self.offsets[li + 1] as usize;
        match &self.targets {
            Targets::Mem(t) => f(&t[start..end]),
            Targets::Ext { vec, .. } => ADJ_SCRATCH.with(|s| {
                let mut s = s.borrow_mut();
                s.clear();
                s.resize(end - start, 0);
                // overlap: queue background prefetch of the whole slice
                // (no-op in sync I/O mode) before the blocking scan
                vec.advise(start, end - start);
                vec.read_range(start, &mut s);
                f(&s)
            }),
        }
    }

    /// True if local vertex `li`'s slice contains `target` (binary search —
    /// targets are sorted because edges were sorted by `(src, dst)`).
    pub fn adj_contains(&self, li: usize, target: u64) -> bool {
        self.with_adj(li, |adj| adj.binary_search(&target).is_ok())
    }

    /// Page-cache statistics (external storage only).
    pub fn cache_stats(&self) -> Option<CacheStatsSnapshot> {
        match &self.targets {
            Targets::Mem(_) => None,
            Targets::Ext { cache, .. } => Some(cache.stats()),
        }
    }

    /// I/O engine statistics — queue depths, outstanding gauge, service
    /// times (external storage only).
    pub fn io_stats(&self) -> Option<havoq_nvram::IoStatsSnapshot> {
        match &self.targets {
            Targets::Mem(_) => None,
            Targets::Ext { cache, .. } => Some(cache.io_stats()),
        }
    }

    /// The page cache (external storage only), e.g. to clear before a
    /// cold-cache run.
    pub fn cache(&self) -> Option<&Arc<PageCache>> {
        match &self.targets {
            Targets::Mem(_) => None,
            Targets::Ext { cache, .. } => Some(cache),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_edges() -> Vec<Edge> {
        // base 10, 4 vertices: 10->{11,12}, 11->{10}, 13->{10,11,12}
        vec![
            Edge::new(10, 11),
            Edge::new(10, 12),
            Edge::new(11, 10),
            Edge::new(13, 10),
            Edge::new(13, 11),
            Edge::new(13, 12),
        ]
    }

    fn check(csr: &LocalCsr) {
        assert_eq!(csr.num_vertices(), 4);
        assert_eq!(csr.num_edges(), 6);
        assert_eq!(csr.local_out_degree(0), 2);
        assert_eq!(csr.local_out_degree(1), 1);
        assert_eq!(csr.local_out_degree(2), 0);
        assert_eq!(csr.local_out_degree(3), 3);
        csr.with_adj(0, |a| assert_eq!(a, &[11, 12]));
        csr.with_adj(2, |a| assert!(a.is_empty()));
        csr.with_adj(3, |a| assert_eq!(a, &[10, 11, 12]));
        assert!(csr.adj_contains(3, 11));
        assert!(!csr.adj_contains(3, 13));
        assert!(!csr.adj_contains(2, 10));
    }

    #[test]
    fn in_memory_build() {
        let csr = LocalCsr::build(10, 4, &sample_edges(), CsrStorage::InMemory);
        check(&csr);
        assert!(csr.cache_stats().is_none());
    }

    #[test]
    fn external_build_matches_in_memory() {
        let storage = CsrStorage::External {
            profile: DeviceProfile::dram(),
            cache: PageCacheConfig {
                page_size: 64,
                capacity_pages: 2,
                shards: 1,
                ..PageCacheConfig::default()
            },
        };
        let csr = LocalCsr::build(10, 4, &sample_edges(), storage);
        check(&csr);
        let stats = csr.cache_stats().unwrap();
        assert!(stats.accesses() > 0, "external reads must hit the cache layer");
    }

    #[test]
    fn external_large_adjacency_spills() {
        let base = 0u64;
        let n = 64usize;
        let mut edges = Vec::new();
        for v in 0..n as u64 {
            for t in 0..32u64 {
                edges.push(Edge::new(v, (v + t) % n as u64));
            }
        }
        edges.sort_unstable_by_key(|e| e.key());
        edges.dedup();
        let storage = CsrStorage::External {
            profile: DeviceProfile::dram(),
            cache: PageCacheConfig {
                page_size: 256,
                capacity_pages: 4,
                shards: 2,
                ..PageCacheConfig::default()
            },
        };
        let csr = LocalCsr::build(base, n, &edges, storage);
        // two sweeps: second should be recognizable in stats as well
        let mut count = 0u64;
        for _ in 0..2 {
            for v in 0..n {
                csr.with_adj(v, |a| count += a.len() as u64);
            }
        }
        assert_eq!(count, 2 * csr.num_edges());
        let st = csr.cache_stats().unwrap();
        assert!(st.evictions > 0, "tiny cache must evict: {st:?}");
    }

    #[test]
    fn external_async_io_matches_in_memory() {
        use havoq_nvram::IoConfig;
        let storage = CsrStorage::External {
            profile: DeviceProfile::fusion_io(),
            cache: PageCacheConfig {
                page_size: 64,
                capacity_pages: 8,
                shards: 2,
                readahead_pages: 4,
                io: IoConfig::asynchronous(),
                ..PageCacheConfig::default()
            },
        };
        let csr = LocalCsr::build(10, 4, &sample_edges(), storage);
        check(&csr);
        let io = csr.io_stats().unwrap();
        assert!(io.workers > 0, "async engine must be running: {io:?}");
    }

    #[test]
    fn empty_partition() {
        let csr = LocalCsr::build(5, 0, &[], CsrStorage::InMemory);
        assert_eq!(csr.num_vertices(), 0);
        assert_eq!(csr.num_edges(), 0);
    }
}
