//! Edge-list file I/O.
//!
//! The paper notes that "in many graph file formats the edge list is
//! already sorted", feeding directly into edge-list partitioning. This
//! module reads and writes the two interchange formats a downstream user
//! actually has:
//!
//! - **text**: one `src dst` pair per line (whitespace separated; `#`
//!   comments), the SNAP/common crawl style;
//! - **binary**: little-endian `u64` pairs, the Graph500 edge-list style.
//!
//! Readers stream; writers buffer. Rank-sliced readers let each rank of a
//! world load only its share of a file.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::types::Edge;

/// Write a text edge list (`src dst` per line).
pub fn write_text<P: AsRef<Path>>(path: P, edges: &[Edge]) -> std::io::Result<()> {
    let mut out = BufWriter::new(File::create(path)?);
    writeln!(out, "# havoq edge list: {} edges", edges.len())?;
    for e in edges {
        writeln!(out, "{} {}", e.src, e.dst)?;
    }
    out.flush()
}

/// Read a text edge list, skipping blank lines and `#`/`%` comments.
pub fn read_text<P: AsRef<Path>>(path: P) -> std::io::Result<Vec<Edge>> {
    let mut edges = Vec::new();
    let mut reader = BufReader::new(File::open(path)?);
    let mut line = String::new();
    let mut lineno = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let parse = |tok: Option<&str>| -> std::io::Result<u64> {
            tok.ok_or_else(|| bad_line(lineno))?.parse().map_err(|_| bad_line(lineno))
        };
        let src = parse(it.next())?;
        let dst = parse(it.next())?;
        edges.push(Edge::new(src, dst));
    }
    Ok(edges)
}

fn bad_line(lineno: usize) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, format!("malformed edge at line {lineno}"))
}

/// Write a binary edge list: little-endian `(u64 src, u64 dst)` pairs.
pub fn write_binary<P: AsRef<Path>>(path: P, edges: &[Edge]) -> std::io::Result<()> {
    let mut out = BufWriter::new(File::create(path)?);
    for e in edges {
        out.write_all(&e.src.to_le_bytes())?;
        out.write_all(&e.dst.to_le_bytes())?;
    }
    out.flush()
}

/// Number of edges in a binary edge-list file.
pub fn binary_edge_count<P: AsRef<Path>>(path: P) -> std::io::Result<u64> {
    let len = std::fs::metadata(path)?.len();
    if len % 16 != 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "binary edge list length is not a multiple of 16",
        ));
    }
    Ok(len / 16)
}

/// Read the whole binary edge list.
pub fn read_binary<P: AsRef<Path>>(path: P) -> std::io::Result<Vec<Edge>> {
    let n = binary_edge_count(&path)?;
    read_binary_slice(path, 0, n)
}

/// Read edges `[start, start + count)` of a binary edge list — each rank of
/// a world loads `binary_edge_count * rank / p ..` without touching the
/// rest of the file.
pub fn read_binary_slice<P: AsRef<Path>>(
    path: P,
    start: u64,
    count: u64,
) -> std::io::Result<Vec<Edge>> {
    let mut f = File::open(path)?;
    f.seek(SeekFrom::Start(start * 16))?;
    let mut reader = BufReader::new(f);
    let mut edges = Vec::with_capacity(count as usize);
    let mut buf = [0u8; 16];
    for _ in 0..count {
        reader.read_exact(&mut buf)?;
        let src = u64::from_le_bytes(buf[..8].try_into().unwrap());
        let dst = u64::from_le_bytes(buf[8..].try_into().unwrap());
        edges.push(Edge::new(src, dst));
    }
    Ok(edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::rmat::RmatGenerator;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("havoq-io-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn text_roundtrip() {
        let edges = RmatGenerator::graph500(6).edges(3);
        let path = tmp("t.txt");
        write_text(&path, &edges).unwrap();
        assert_eq!(read_text(&path).unwrap(), edges);
    }

    #[test]
    fn text_skips_comments_and_blank_lines() {
        let path = tmp("c.txt");
        std::fs::write(&path, "# header\n\n1 2\n% pajek style\n3   4\n").unwrap();
        assert_eq!(read_text(&path).unwrap(), vec![Edge::new(1, 2), Edge::new(3, 4)]);
    }

    #[test]
    fn text_rejects_garbage() {
        let path = tmp("g.txt");
        std::fs::write(&path, "1 banana\n").unwrap();
        let err = read_text(&path).unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn binary_roundtrip() {
        let edges = RmatGenerator::graph500(7).edges(9);
        let path = tmp("b.bin");
        write_binary(&path, &edges).unwrap();
        assert_eq!(binary_edge_count(&path).unwrap(), edges.len() as u64);
        assert_eq!(read_binary(&path).unwrap(), edges);
    }

    #[test]
    fn binary_slices_tile_the_file() {
        let edges = RmatGenerator::graph500(6).edges(1);
        let path = tmp("s.bin");
        write_binary(&path, &edges).unwrap();
        let n = edges.len() as u64;
        let p = 5u64;
        let mut stitched = Vec::new();
        for r in 0..p {
            let lo = n * r / p;
            let hi = n * (r + 1) / p;
            stitched.extend(read_binary_slice(&path, lo, hi - lo).unwrap());
        }
        assert_eq!(stitched, edges);
    }

    #[test]
    fn binary_rejects_truncated_file() {
        let path = tmp("bad.bin");
        std::fs::write(&path, [0u8; 20]).unwrap();
        assert!(binary_edge_count(&path).is_err());
    }
}
