//! Distributed sample sort of edge lists.
//!
//! Edge-list partitioning (Section III-A1) requires the global edge list to
//! be sorted by source vertex and split into exactly even contiguous
//! partitions. The paper notes this is "not an onerous requirement" because
//! distributed sorting is a solved problem; this module supplies that
//! solution for the simulated world: a classic sample sort (local sort,
//! splitter selection from gathered samples, all-to-all bucket exchange)
//! followed by an exact rebalance so rank `r` holds edges
//! `[r*E/p, (r+1)*E/p)` of the global sorted order.

use havoq_comm::RankCtx;

use crate::types::Edge;

/// Oversampling factor for splitter selection.
const OVERSAMPLE: usize = 8;

/// Sort the distributed edge list by `(src, dst)` and rebalance so every
/// rank ends with exactly its `[r*E/p, (r+1)*E/p)` slice of the global
/// order. Collective: every rank passes its local slice.
pub fn sort_edges_even(ctx: &RankCtx, mut local: Vec<Edge>) -> Vec<Edge> {
    let p = ctx.size();
    local.sort_unstable_by_key(|e| e.key());
    if p == 1 {
        return local;
    }

    // 1. splitter selection from gathered regular samples
    let want = (p * OVERSAMPLE).min(local.len().max(1));
    let samples: Vec<Edge> = (0..want)
        .filter_map(|i| if local.is_empty() { None } else { Some(local[i * local.len() / want]) })
        .collect();
    let mut all_samples: Vec<Edge> = ctx.all_gather(samples).into_iter().flatten().collect();
    all_samples.sort_unstable_by_key(|e| e.key());
    let splitters: Vec<Edge> = (1..p)
        .map(|i| {
            if all_samples.is_empty() {
                Edge::new(u64::MAX, u64::MAX)
            } else {
                all_samples[i * all_samples.len() / p]
            }
        })
        .collect();

    // 2. bucket by splitter and exchange
    let mut buckets: Vec<Vec<Edge>> = (0..p).map(|_| Vec::new()).collect();
    {
        let mut b = 0usize;
        for e in local.drain(..) {
            while b < p - 1 && e.key() >= splitters[b].key() {
                b += 1;
            }
            buckets[b].push(e);
        }
    }
    let incoming = ctx.all_to_allv(buckets);

    // 3. merge: each incoming run is sorted; a full sort keeps it simple
    let mut merged: Vec<Edge> = incoming.into_iter().flatten().collect();
    merged.sort_unstable_by_key(|e| e.key());

    rebalance_sorted(ctx, merged)
}

/// Given globally sorted but unevenly distributed runs (rank order = global
/// order), move edges so rank `r` holds exactly `[r*E/p, (r+1)*E/p)`.
fn rebalance_sorted(ctx: &RankCtx, local: Vec<Edge>) -> Vec<Edge> {
    let p = ctx.size();
    let counts = ctx.all_gather(local.len() as u64);
    let total: u64 = counts.iter().sum();
    let my_start: u64 = counts[..ctx.rank()].iter().sum();

    let target_lo = |r: usize| total * r as u64 / p as u64;

    // slice my run by the target boundaries and ship each piece
    let mut outgoing: Vec<Vec<Edge>> = (0..p).map(|_| Vec::new()).collect();
    for (i, e) in local.into_iter().enumerate() {
        let g = my_start + i as u64;
        // destination rank: the r with target_lo(r) <= g < target_lo(r+1)
        let r = ((g as u128 * p as u128) / total.max(1) as u128) as usize;
        // integer floor division can land one off around boundaries; fix up
        let r = fixup_target(r, g, total, p, target_lo);
        outgoing[r].push(e);
    }
    let incoming = ctx.all_to_allv(outgoing);
    // pieces from ascending source ranks are ascending slices of the global
    // order, so concatenation in rank order is already sorted
    incoming.into_iter().flatten().collect()
}

#[inline]
fn fixup_target(
    mut r: usize,
    g: u64,
    total: u64,
    p: usize,
    target_lo: impl Fn(usize) -> u64,
) -> usize {
    let _ = total;
    while r + 1 < p && g >= target_lo(r + 1) {
        r += 1;
    }
    while r > 0 && g < target_lo(r) {
        r -= 1;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::rmat::RmatGenerator;
    use havoq_comm::CommWorld;

    fn check_sorted_even(p: usize, per_rank: impl Fn(usize) -> Vec<Edge> + Sync) {
        let results = CommWorld::run(p, |ctx| {
            let local = per_rank(ctx.rank());
            let sorted = sort_edges_even(ctx, local);
            (ctx.rank(), sorted)
        });
        let total: usize = results.iter().map(|(_, v)| v.len()).sum();
        // exact even split
        for (r, v) in &results {
            let lo = total * r / p;
            let hi = total * (r + 1) / p;
            assert_eq!(v.len(), hi - lo, "rank {r} holds wrong share");
        }
        // concatenation globally sorted
        let all: Vec<Edge> = results.into_iter().flat_map(|(_, v)| v).collect();
        assert!(all.windows(2).all(|w| w[0].key() <= w[1].key()), "not globally sorted");
    }

    #[test]
    fn sorts_rmat_slices() {
        let g = RmatGenerator::graph500(8);
        check_sorted_even(4, |r| g.edges_for_rank(3, r, 4));
    }

    #[test]
    fn preserves_multiset() {
        let g = RmatGenerator::graph500(7);
        let p = 3;
        let results =
            CommWorld::run(p, |ctx| sort_edges_even(ctx, g.edges_for_rank(5, ctx.rank(), p)));
        let mut got: Vec<Edge> = results.into_iter().flatten().collect();
        let mut want = g.edges(5);
        got.sort_unstable_by_key(|e| e.key());
        want.sort_unstable_by_key(|e| e.key());
        assert_eq!(got, want);
    }

    #[test]
    fn handles_skewed_input() {
        // all edges start on rank 0; many duplicate keys (hub pattern)
        check_sorted_even(5, |r| {
            if r == 0 {
                (0..1000)
                    .map(|i| Edge::new(7, i % 13))
                    .chain((0..500).map(|i| Edge::new(i % 29, 7)))
                    .collect()
            } else {
                Vec::new()
            }
        });
    }

    #[test]
    fn handles_empty_world_input() {
        check_sorted_even(3, |_| Vec::new());
    }

    #[test]
    fn handles_fewer_edges_than_ranks() {
        check_sorted_even(6, |r| {
            if r == 2 {
                vec![Edge::new(5, 1), Edge::new(1, 2)]
            } else {
                Vec::new()
            }
        });
    }

    #[test]
    fn single_rank_is_local_sort() {
        let out = CommWorld::run(1, |ctx| {
            sort_edges_even(ctx, vec![Edge::new(3, 1), Edge::new(0, 2), Edge::new(3, 0)])
        });
        assert_eq!(out[0], vec![Edge::new(0, 2), Edge::new(3, 0), Edge::new(3, 1)]);
    }
}
