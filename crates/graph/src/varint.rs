//! LEB128 varint gap codec for compressed adjacency storage.
//!
//! Sorted neighbor lists compress well as *gaps*: the first target is
//! stored absolute, every following target as its difference from the
//! predecessor, each value LEB128-encoded (7 payload bits per byte, high
//! bit = continuation). Scale-free adjacency lists sort into dense runs,
//! so most gaps fit one byte — the webgraph/GBBS observation that buys
//! several-fold more edges per cache byte (DESIGN.md §14).
//!
//! The codec is deliberately permissive about *zero gaps*: with
//! `GraphConfig { dedup: false }` a vertex's sorted target list may contain
//! duplicates, which gap-encode as `0`. LEB128 represents zero as a single
//! `0x00` byte, so duplicate targets round-trip exactly rather than
//! corrupting the stream — the encoder requires only that input lists are
//! sorted (non-decreasing), never that they are strict.

/// Upper bound on the encoded size of one `u64` (⌈64 / 7⌉ bytes).
pub const MAX_VARINT_BYTES: usize = 10;

/// Append the LEB128 encoding of `v` to `out`.
#[inline]
pub fn encode_u64(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decode one LEB128 value at `*pos`, advancing `*pos` past it.
///
/// Panics on a truncated stream or a value wider than 64 bits — both mean
/// the byte pool is corrupt, and the storage layer below already CRC-guards
/// against silent corruption, so this is a programming error, not data.
#[inline]
pub fn decode_u64(buf: &[u8], pos: &mut usize) -> u64 {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = buf[*pos];
        *pos += 1;
        debug_assert!(shift < 64, "varint wider than u64");
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

/// Gap-encode a sorted (non-decreasing) target list: first value absolute,
/// the rest as deltas. Duplicates (zero gaps) are accepted — see the module
/// docs. Returns the number of bytes appended.
pub fn encode_gaps(targets: &[u64], out: &mut Vec<u8>) -> usize {
    let before = out.len();
    let mut prev = 0u64;
    for (i, &t) in targets.iter().enumerate() {
        if i == 0 {
            encode_u64(t, out);
        } else {
            debug_assert!(t >= prev, "gap encoding requires sorted targets: {t} < {prev}");
            encode_u64(t - prev, out);
        }
        prev = t;
    }
    out.len() - before
}

/// Decode `count` gap-encoded targets from `buf` into `out` (appended).
pub fn decode_gaps(buf: &[u8], count: usize, out: &mut Vec<u64>) {
    let mut dec = GapDecoder::new(buf);
    out.reserve(count);
    for _ in 0..count {
        out.push(dec.next_target());
    }
}

/// Streaming gap decoder — the early-exit path for bottom-up BFS scans:
/// callers pull one target at a time and stop as soon as a predicate hits,
/// paying decode CPU only for the scanned prefix.
pub struct GapDecoder<'a> {
    buf: &'a [u8],
    pos: usize,
    prev: u64,
    first: bool,
}

impl<'a> GapDecoder<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0, prev: 0, first: true }
    }

    /// Decode the next target. The caller bounds the pull count by the
    /// vertex's degree (from the DRAM degree table).
    #[inline]
    pub fn next_target(&mut self) -> u64 {
        let raw = decode_u64(self.buf, &mut self.pos);
        let t = if self.first { raw } else { self.prev + raw };
        self.first = false;
        self.prev = t;
        t
    }

    /// Bytes consumed so far.
    #[inline]
    pub fn consumed(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(targets: &[u64]) {
        let mut buf = Vec::new();
        let n = encode_gaps(targets, &mut buf);
        assert_eq!(n, buf.len());
        let mut out = Vec::new();
        decode_gaps(&buf, targets.len(), &mut out);
        assert_eq!(out, targets);
    }

    #[test]
    fn single_values_roundtrip() {
        for v in [0u64, 1, 127, 128, 129, 16383, 16384, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            encode_u64(v, &mut buf);
            assert!(buf.len() <= MAX_VARINT_BYTES);
            let mut pos = 0;
            assert_eq!(decode_u64(&buf, &mut pos), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn small_values_take_one_byte() {
        let mut buf = Vec::new();
        encode_u64(127, &mut buf);
        assert_eq!(buf.len(), 1);
        buf.clear();
        encode_u64(128, &mut buf);
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn gap_lists_roundtrip() {
        roundtrip(&[]);
        roundtrip(&[0]);
        roundtrip(&[u64::MAX]);
        roundtrip(&[1, 2, 3, 4, 5]);
        roundtrip(&[10, 1000, 1_000_000, 1_000_000_000_000]);
        roundtrip(&[0, u64::MAX]); // the maximum possible gap
    }

    #[test]
    fn zero_gaps_from_duplicates_roundtrip() {
        // dedup-off construction: duplicate targets are legal input
        roundtrip(&[7, 7, 7, 9, 9, 12]);
        roundtrip(&[0, 0]);
        roundtrip(&[u64::MAX, u64::MAX]);
    }

    #[test]
    fn dense_runs_compress_to_one_byte_per_edge() {
        let targets: Vec<u64> = (1000..2000).collect();
        let mut buf = Vec::new();
        encode_gaps(&targets, &mut buf);
        // absolute head (2 bytes) + 999 single-byte gaps
        assert_eq!(buf.len(), 2 + 999);
    }

    #[test]
    fn streaming_decoder_matches_bulk() {
        let targets = [3u64, 3, 40, 1000, 1000, u64::MAX];
        let mut buf = Vec::new();
        encode_gaps(&targets, &mut buf);
        let mut dec = GapDecoder::new(&buf);
        for &want in &targets {
            assert_eq!(dec.next_target(), want);
        }
        assert_eq!(dec.consumed(), buf.len());
    }
}
