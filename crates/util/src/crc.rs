//! In-tree CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320), table-driven.
//!
//! Shared by the comm layer (frame trailers on the wire) and the NVRAM
//! layer (per-page write-back checksums), so both planes of the
//! end-to-end integrity story detect corruption with the same code. The
//! build environment has no registry access, so this replaces the usual
//! `crc32fast` dependency.

const fn build_crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = build_crc32_table();

/// CRC-32 of `bytes`. Detects any single-bit error and any error burst up
/// to 32 bits long; random multi-bit corruption slips through with
/// probability 2^-32.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // the canonical CRC-32/IEEE check value
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn single_bit_flips_always_detected() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1024).collect();
        let clean = crc32(&data);
        let mut flipped = data.clone();
        for bit in [0usize, 7, 8, 1000, 1024 * 8 - 1] {
            flipped[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32(&flipped), clean, "bit {bit} undetected");
            flipped[bit / 8] ^= 1 << (bit % 8);
        }
        assert_eq!(crc32(&flipped), clean);
    }
}
