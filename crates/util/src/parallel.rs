//! Dependency-free intra-rank parallelism primitives.
//!
//! The traversal core runs each simulated rank on one OS thread; the
//! worker-pool refactor (DESIGN.md §11) adds a small set of primitives so
//! a rank can fan visitor execution out to a pool of worker threads
//! without pulling in rayon/crossbeam (the build environment has no
//! registry access):
//!
//! - [`WorkerPool`]: a persistent pool with a scoped `broadcast` — every
//!   worker runs the same closure (borrowing from the caller's stack) and
//!   `broadcast` does not return until all of them finish, so plain
//!   references into the coordinator's frame are sound to share.
//! - [`AtomicBitVec`]: a bit-per-index atomic bitmap, usable both as a
//!   visited/dirty set (`test_and_set`) and as an array of one-bit
//!   spinlocks (`lock`/`unlock`) guarding per-vertex state slots.
//! - [`SharedSlots`]: an unsafe-interior view of a `Vec<T>` letting
//!   workers mutate *disjoint* (caller-locked) slots concurrently.
//! - [`PerWorker`]: cache-padded per-worker cells (send shards, stat
//!   counters) written race-free by index and drained by the coordinator.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Pads (and aligns) a value to a cache line so per-worker cells never
/// false-share.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct CachePadded<T>(pub T);

/// A bit-per-index atomic bitmap.
///
/// Two usage patterns, both lock-free on the word level:
///
/// - visited/dirty set: [`AtomicBitVec::test_and_set`] returns whether the
///   bit was already set, so "first caller wins" races resolve atomically;
/// - one-bit spinlocks: [`AtomicBitVec::lock`] spins until it wins the
///   bit, [`AtomicBitVec::unlock`] releases it. Critical sections guarded
///   this way must be short (a slot copy or merge), never I/O.
pub struct AtomicBitVec {
    words: Vec<AtomicU64>,
    bits: usize,
}

impl AtomicBitVec {
    /// An all-zero bitmap over `bits` indices.
    pub fn new(bits: usize) -> Self {
        let words = (0..bits.div_ceil(64)).map(|_| AtomicU64::new(0)).collect();
        Self { words, bits }
    }

    /// Number of addressable bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.bits
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Read bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.bits);
        self.words[i / 64].load(Ordering::Acquire) & (1 << (i % 64)) != 0
    }

    /// Atomically set bit `i`, returning whether it was already set.
    #[inline]
    pub fn test_and_set(&self, i: usize) -> bool {
        debug_assert!(i < self.bits);
        let mask = 1u64 << (i % 64);
        self.words[i / 64].fetch_or(mask, Ordering::AcqRel) & mask != 0
    }

    /// Atomically clear bit `i`.
    #[inline]
    pub fn clear(&self, i: usize) {
        debug_assert!(i < self.bits);
        self.words[i / 64].fetch_and(!(1u64 << (i % 64)), Ordering::Release);
    }

    /// Spin until bit `i` is acquired (treats the bit as a spinlock).
    #[inline]
    pub fn lock(&self, i: usize) {
        while self.test_and_set(i) {
            std::hint::spin_loop();
        }
    }

    /// Release the bit-spinlock `i`. Must pair with a prior [`Self::lock`].
    #[inline]
    pub fn unlock(&self, i: usize) {
        self.clear(i);
    }

    /// Number of backing 64-bit words (`ceil(len / 64)`).
    #[inline]
    pub fn num_words(&self) -> usize {
        self.words.len()
    }

    /// Read backing word `wi` (bit `i` lives in word `i / 64`).
    #[inline]
    pub fn word(&self, wi: usize) -> u64 {
        self.words[wi].load(Ordering::Acquire)
    }

    /// Atomically OR `bits` into backing word `wi` — the dense-frontier
    /// merge step when remote frontier words arrive off the wire.
    #[inline]
    pub fn or_word(&self, wi: usize, bits: u64) {
        self.words[wi].fetch_or(bits, Ordering::AcqRel);
    }

    /// Reset every bit to zero. Not atomic as a whole (concurrent setters
    /// may survive); callers must quiesce writers first.
    pub fn clear_all(&self) {
        for w in &self.words {
            w.store(0, Ordering::Release);
        }
    }

    /// Visit the index of every set bit, in increasing order.
    pub fn for_each_set(&self, mut f: impl FnMut(usize)) {
        for (wi, w) in self.words.iter().enumerate() {
            let mut bits = w.load(Ordering::Acquire);
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                f(wi * 64 + b);
                bits &= bits - 1;
            }
        }
    }
}

/// A shared mutable view over the slots of a `Vec<T>`.
///
/// Workers holding the matching per-slot lock (an [`AtomicBitVec`] bit)
/// may mutate "their" slot concurrently with other workers mutating other
/// slots. The view borrows the vec mutably, so the coordinator cannot
/// touch the storage while any `SharedSlots` is alive.
pub struct SharedSlots<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// Safety: access discipline is delegated to the caller (each slot must be
// reached by at most one thread at a time, enforced by the bit-locks), so
// sharing the view only requires the element type to cross threads.
unsafe impl<T: Send> Sync for SharedSlots<'_, T> {}
unsafe impl<T: Send> Send for SharedSlots<'_, T> {}

impl<'a, T> SharedSlots<'a, T> {
    pub fn new(slots: &'a mut [T]) -> Self {
        Self { ptr: slots.as_mut_ptr(), len: slots.len(), _marker: std::marker::PhantomData }
    }

    /// Mutable access to slot `i`.
    ///
    /// # Safety
    ///
    /// The caller must guarantee exclusive access to slot `i` for the
    /// lifetime of the returned borrow (hold the slot's bit-lock, or be
    /// the only thread running).
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slot(&self, i: usize) -> &mut T {
        debug_assert!(i < self.len);
        &mut *self.ptr.add(i)
    }
}

/// One cache-padded cell per worker, written by index from worker threads
/// and drained by the coordinator.
///
/// The unsafe shared access ([`PerWorker::cell`]) is race-free by the same
/// convention the pool enforces: worker `w` is the only thread that ever
/// touches cell `w` while a broadcast is running, and the coordinator only
/// drains after the broadcast returns.
pub struct PerWorker<T> {
    cells: Vec<CachePadded<std::cell::UnsafeCell<T>>>,
}

// Safety: per-index exclusivity is the caller's contract (see above).
unsafe impl<T: Send> Sync for PerWorker<T> {}

impl<T> PerWorker<T> {
    pub fn new_with(n: usize, mut init: impl FnMut(usize) -> T) -> Self {
        Self { cells: (0..n).map(|i| CachePadded(std::cell::UnsafeCell::new(init(i)))).collect() }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Mutable access to cell `w` from worker `w`.
    ///
    /// # Safety
    ///
    /// The caller must be the only thread accessing cell `w` for the
    /// lifetime of the returned borrow.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn cell(&self, w: usize) -> &mut T {
        &mut *self.cells[w].0.get()
    }

    /// Exclusive (coordinator-side) access to cell `w`.
    #[inline]
    pub fn cell_mut(&mut self, w: usize) -> &mut T {
        self.cells[w].0.get_mut()
    }

    /// Exclusive (coordinator-side) iteration over all cells.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.cells.iter_mut().map(|c| c.0.get_mut())
    }
}

/// The type-erased job a broadcast distributes: a raw fat pointer to the
/// caller's closure. Only alive while `broadcast` blocks, which is what
/// makes the lifetime erasure sound.
#[derive(Clone, Copy)]
struct Job(*const (dyn Fn(usize) + Sync));

// Safety: the pointee is `Sync` (the closure is shared by reference across
// workers) and outlives every worker's use of it (broadcast blocks).
unsafe impl Send for Job {}

struct PoolState {
    /// Bumped once per broadcast; workers run the job when they observe a
    /// newer epoch than the last one they executed.
    epoch: u64,
    job: Option<Job>,
    /// Workers still running the current epoch's job.
    remaining: usize,
    shutdown: bool,
    /// First worker panic of the current epoch, re-raised by `broadcast`.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers wait here for a new epoch (or shutdown).
    work_cv: Condvar,
    /// The coordinator waits here for `remaining == 0`.
    done_cv: Condvar,
}

/// A persistent scoped worker pool.
///
/// Threads are spawned once and parked between jobs; [`WorkerPool::broadcast`]
/// hands every worker the same `Fn(worker_index)` closure and blocks until
/// all of them return, so the closure may borrow freely from the caller's
/// stack. A worker panic is captured and re-raised on the caller's thread
/// after the remaining workers finish. Dropping the pool joins the threads.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn a pool of `threads` workers (`threads >= 1`).
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "a worker pool needs at least one worker");
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                remaining: 0,
                shutdown: false,
                panic: None,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = (0..threads)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("havoq-worker-{w}"))
                    .spawn(move || Self::worker_loop(&shared, w))
                    .expect("spawn pool worker")
            })
            .collect();
        Self { shared, handles }
    }

    /// Number of workers.
    #[inline]
    pub fn size(&self) -> usize {
        self.handles.len()
    }

    fn worker_loop(shared: &PoolShared, w: usize) {
        let mut seen_epoch = 0u64;
        loop {
            let job = {
                let mut st = shared.state.lock().unwrap();
                loop {
                    if st.shutdown {
                        return;
                    }
                    if st.epoch > seen_epoch {
                        break;
                    }
                    st = shared.work_cv.wait(st).unwrap();
                }
                seen_epoch = st.epoch;
                st.job.expect("job set for the live epoch")
            };
            let outcome = catch_unwind(AssertUnwindSafe(|| unsafe { (*job.0)(w) }));
            let mut st = shared.state.lock().unwrap();
            if let Err(e) = outcome {
                if st.panic.is_none() {
                    st.panic = Some(e);
                }
            }
            st.remaining -= 1;
            if st.remaining == 0 {
                shared.done_cv.notify_all();
            }
        }
    }

    /// Run `f(worker_index)` on every worker concurrently; blocks until
    /// all workers have returned. Re-raises the first worker panic.
    pub fn broadcast(&self, f: &(dyn Fn(usize) + Sync)) {
        // Erase the closure's lifetime into a raw fat pointer; sound
        // because this function does not return until every worker is done
        // with it.
        let job = Job(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(f)
        });
        let mut st = self.shared.state.lock().unwrap();
        debug_assert_eq!(st.remaining, 0, "overlapping broadcasts");
        st.job = Some(job);
        st.remaining = self.handles.len();
        st.epoch += 1;
        self.shared.work_cv.notify_all();
        while st.remaining > 0 {
            st = self.shared.done_cv.wait(st).unwrap();
        }
        st.job = None;
        if let Some(p) = st.panic.take() {
            drop(st);
            resume_unwind(p);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            // a worker that panicked mid-broadcast already reported through
            // `broadcast`; ignore the poisoned join here
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn bitvec_set_get_clear() {
        let b = AtomicBitVec::new(130);
        assert_eq!(b.len(), 130);
        assert!(!b.get(0) && !b.get(64) && !b.get(129));
        assert!(!b.test_and_set(64));
        assert!(b.test_and_set(64));
        assert!(b.get(64));
        b.clear(64);
        assert!(!b.get(64));
    }

    #[test]
    fn bitvec_word_level_ops() {
        let b = AtomicBitVec::new(130);
        assert_eq!(b.num_words(), 3);
        b.or_word(1, 0b101);
        assert!(b.get(64) && !b.get(65) && b.get(66));
        assert_eq!(b.word(1), 0b101);
        b.test_and_set(129);
        let mut seen = Vec::new();
        b.for_each_set(|i| seen.push(i));
        assert_eq!(seen, vec![64, 66, 129]);
        b.clear_all();
        assert_eq!(b.word(0) | b.word(1) | b.word(2), 0);
    }

    #[test]
    fn bitvec_spinlock_excludes() {
        let bits = AtomicBitVec::new(8);
        let mut count = 0u64;
        {
            let slots = SharedSlots::new(std::slice::from_mut(&mut count));
            std::thread::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| {
                        for _ in 0..10_000 {
                            bits.lock(3);
                            unsafe { *slots.slot(0) += 1 };
                            bits.unlock(3);
                        }
                    });
                }
            });
        }
        assert_eq!(count, 40_000);
    }

    #[test]
    fn pool_broadcast_runs_every_worker_and_borrows_stack() {
        let pool = WorkerPool::new(4);
        let hits = AtomicUsize::new(0);
        let seen = Mutex::new(Vec::new());
        pool.broadcast(&|w| {
            hits.fetch_add(1, Ordering::Relaxed);
            seen.lock().unwrap().push(w);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4);
        let mut s = seen.into_inner().unwrap();
        s.sort_unstable();
        assert_eq!(s, vec![0, 1, 2, 3]);
    }

    #[test]
    fn pool_is_reusable_across_broadcasts() {
        let pool = WorkerPool::new(3);
        let total = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.broadcast(&|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 150);
    }

    #[test]
    fn pool_propagates_worker_panics() {
        let pool = WorkerPool::new(2);
        let res = catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(&|w| {
                if w == 1 {
                    panic!("deliberate worker failure");
                }
            });
        }));
        assert!(res.is_err());
        // the pool must survive a panicked broadcast
        let ok = AtomicUsize::new(0);
        pool.broadcast(&|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn shared_slots_disjoint_writes_land() {
        let pool = WorkerPool::new(4);
        let mut data = vec![0u64; 64];
        {
            let slots = SharedSlots::new(&mut data);
            pool.broadcast(&|w| {
                for i in (w..64).step_by(4) {
                    // disjoint by construction: worker w owns i ≡ w (mod 4)
                    unsafe { *slots.slot(i) = i as u64 * 10 };
                }
            });
        }
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as u64 * 10);
        }
    }

    #[test]
    fn shared_slots_locked_increments_are_exact() {
        let pool = WorkerPool::new(4);
        let mut data = vec![0u64; 8];
        let locks = AtomicBitVec::new(8);
        {
            let slots = SharedSlots::new(&mut data);
            pool.broadcast(&|_| {
                for _ in 0..5_000 {
                    for i in 0..8 {
                        locks.lock(i);
                        unsafe { *slots.slot(i) += 1 };
                        locks.unlock(i);
                    }
                }
            });
        }
        assert_eq!(data, vec![20_000u64; 8]);
    }

    #[test]
    fn per_worker_cells_drain_to_coordinator() {
        let pool = WorkerPool::new(4);
        let cells: PerWorker<u64> = PerWorker::new_with(4, |_| 0);
        pool.broadcast(&|w| {
            for _ in 0..1000 {
                unsafe { *cells.cell(w) += 1 };
            }
        });
        let mut cells = cells;
        assert_eq!(cells.iter_mut().map(|c| *c).sum::<u64>(), 4000);
    }
}
