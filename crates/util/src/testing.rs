//! A deterministic property-test harness.
//!
//! Replaces proptest for this workspace: each property runs over a fixed
//! number of seeded cases, with the failing case's seed printed so a run
//! can be reproduced with [`TestRng::new`] directly. No shrinking — cases
//! are intentionally small, so raw counterexamples stay readable.

/// SplitMix64 PRNG: tiny, fast, and statistically solid for test-case
/// generation. Deterministic for a given seed.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`. Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // multiply-shift range reduction; bias is negligible for test sizes
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform in `[lo, hi)`. Panics if the range is empty.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// Uniform usize in `[lo, hi)`.
    #[inline]
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range(lo as u64, hi as u64) as usize
    }

    #[inline]
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    #[inline]
    pub fn u8(&mut self) -> u8 {
        self.next_u64() as u8
    }
}

/// Run `cases` seeded instances of a property. On panic, the failing case
/// index and its RNG seed are reported, then the panic is re-raised.
pub fn run_cases(cases: u64, f: impl Fn(&mut TestRng)) {
    for case in 0..cases {
        let seed = 0x5eed_0000_0000_0000 ^ case.wrapping_mul(0x2545_f491_4f6c_dd1d);
        let mut rng = TestRng::new(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng)));
        if let Err(e) = outcome {
            eprintln!("property failed at case {case}/{cases} (TestRng seed {seed:#x})");
            std::panic::resume_unwind(e);
        }
    }
}

/// Run a seeded simulation under each of `seeds`, in order, and shrink to
/// the first failing seed: on a failure, the closure is re-run under that
/// seed alone to confirm the failure is deterministic (not leakage from an
/// earlier case), the seed is reported, and the panic is re-raised.
///
/// Built for the fault-injection sweep — `f(seed)` typically runs a full
/// traversal under a `FaultConfig` derived from the seed and asserts the
/// result matches a fault-free baseline. Reproduce locally by calling
/// `f(reported_seed)` directly.
pub fn sweep_seeds(seeds: impl IntoIterator<Item = u64>, f: impl Fn(u64)) {
    for (case, seed) in seeds.into_iter().enumerate() {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(seed)));
        if let Err(e) = outcome {
            let confirm = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(seed)));
            let verdict = if confirm.is_err() {
                "failure reproduces under this seed alone"
            } else {
                "WARNING: failure did not reproduce on re-run; suspect cross-case state"
            };
            eprintln!("seed sweep failed at case {case} (seed {seed:#x}); {verdict}");
            std::panic::resume_unwind(e);
        }
    }
}

/// The default seed set for fault sweeps: `count` seeds derived from a
/// fixed base so every CI run exercises the same plans. Distinct from the
/// `run_cases` seed stream on purpose — fault plans and data generation
/// must not be correlated.
pub fn sweep_seed_set(count: u64) -> Vec<u64> {
    (0..count).map(|i| 0x000F_A017_5EED_u64 ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = TestRng::new(1);
        for n in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..100 {
                assert!(rng.below(n) < n);
            }
        }
    }

    #[test]
    fn range_covers_endpoints() {
        let mut rng = TestRng::new(2);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1000 {
            match rng.range(5, 8) {
                5 => seen_lo = true,
                7 => seen_hi = true,
                6 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn run_cases_executes_all() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let count = AtomicU64::new(0);
        run_cases(17, |_rng| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 17);
    }

    #[test]
    fn run_cases_propagates_failure() {
        let res = std::panic::catch_unwind(|| {
            run_cases(5, |_rng| panic!("deliberate property failure"));
        });
        assert!(res.is_err());
    }

    #[test]
    fn sweep_seeds_runs_all_in_order() {
        use std::sync::Mutex;
        let seen = Mutex::new(Vec::new());
        sweep_seeds([3u64, 1, 4, 1, 5], |s| seen.lock().unwrap().push(s));
        assert_eq!(*seen.lock().unwrap(), vec![3, 1, 4, 1, 5]);
    }

    #[test]
    fn sweep_seeds_stops_at_first_failing_seed() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let calls = AtomicU64::new(0);
        let res = std::panic::catch_unwind(|| {
            sweep_seeds([10u64, 20, 30], |s| {
                calls.fetch_add(1, Ordering::Relaxed);
                assert_ne!(s, 20, "deliberate failure on seed 20");
            });
        });
        assert!(res.is_err());
        // seed 10 passes, seed 20 fails and is re-run once to confirm,
        // seed 30 never runs
        assert_eq!(calls.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn sweep_seed_set_is_fixed_and_distinct() {
        let a = sweep_seed_set(32);
        let b = sweep_seed_set(32);
        assert_eq!(a, b, "seed set must be identical across runs");
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 32, "seeds must be distinct");
    }
}
