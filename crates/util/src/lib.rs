//! Dependency-free utilities shared across the workspace.
//!
//! The build environment has no access to a crates.io registry, so the
//! handful of small external crates the workspace used to lean on are
//! implemented here instead:
//!
//! - [`FxHashMap`] / [`FxHashSet`]: `HashMap`/`HashSet` using the Fx hash
//!   (the rustc-internal multiplicative hash) — non-cryptographic, very
//!   fast on the small integer keys the graph code hashes.
//! - [`Histogram`]: a tiny fixed-bucket histogram for instrumentation
//!   (I/O queue depths, frame fills) with exact mean/max tracking.
//! - [`testing`]: a deterministic property-test harness (seeded cases +
//!   a small PRNG) replacing proptest for the invariant suites.
//! - [`crc`]: table-driven CRC-32 shared by the wire frames and the page
//!   cache's per-page write-back checksums.
//! - [`parallel`]: a scoped worker pool, atomic bitmap, and per-worker
//!   cells backing the intra-rank parallel traversal (DESIGN.md §11).

pub mod crc;
pub mod parallel;
pub mod testing;

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed by [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` keyed by [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx multiplicative hash used inside rustc: fold each word into the
/// state with a rotate + xor + multiply. Not DoS-resistant; the workspace
/// only hashes trusted vertex ids and file offsets.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(tail) | (rem.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

/// Number of linear buckets in a [`Histogram`].
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A tiny fixed-size linear histogram for instrumentation counters.
///
/// Samples are `u64` values; sample `v` lands in bucket `min(v, 31)`, so
/// the histogram resolves depths 0..=30 exactly and lumps everything
/// larger into the final bucket. Alongside the buckets it tracks the
/// exact sum, count, and max, so [`Histogram::mean`] and
/// [`Histogram::max`] are exact even for clamped samples.
///
/// `Copy` and allocation-free on purpose: snapshots of live counters get
/// embedded in stats structs that cross thread and (simulated) rank
/// boundaries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    sum: u64,
    count: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram { buckets: [0; HISTOGRAM_BUCKETS], sum: 0, count: 0, max: 0 }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let idx = (value as usize).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[idx] += 1;
        self.sum += value;
        self.count += 1;
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    #[inline]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact maximum sample (0 if empty).
    #[inline]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact arithmetic mean of the samples (0.0 if empty).
    #[inline]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Per-bucket counts; bucket `i < 31` holds samples equal to `i`,
    /// bucket 31 holds samples `>= 31`.
    #[inline]
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Fold another histogram into this one (used to aggregate per-rank
    /// or per-worker histograms).
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.sum += other.sum;
        self.count += other.count;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, i * 3);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(&i), Some(&(i * 3)));
        }
    }

    #[test]
    fn set_dedups() {
        let mut s: FxHashSet<(u64, u64)> = FxHashSet::default();
        assert!(s.insert((1, 2)));
        assert!(!s.insert((1, 2)));
        assert!(s.insert((2, 1)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn hasher_is_deterministic_and_spreads() {
        let h = |v: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(v);
            hasher.finish()
        };
        assert_eq!(h(42), h(42));
        let mut outs: FxHashSet<u64> = FxHashSet::default();
        for i in 0..10_000u64 {
            outs.insert(h(i));
        }
        assert_eq!(outs.len(), 10_000, "no collisions on small sequential keys");
    }

    #[test]
    fn string_keys_work() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        m.insert("alpha".into(), 1);
        m.insert("beta".into(), 2);
        assert_eq!(m["alpha"], 1);
        assert_eq!(m["beta"], 2);
    }

    #[test]
    fn histogram_records_and_means() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        for v in [0u64, 1, 2, 3] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 6);
        assert_eq!(h.max(), 3);
        assert_eq!(h.mean(), 1.5);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[3], 1);
    }

    #[test]
    fn histogram_clamps_to_last_bucket_but_keeps_exact_stats() {
        let mut h = Histogram::new();
        h.record(1000);
        h.record(31);
        assert_eq!(h.buckets()[HISTOGRAM_BUCKETS - 1], 2);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.sum(), 1031);
    }

    #[test]
    fn histogram_merge_is_additive() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(2);
        a.record(5);
        b.record(7);
        b.record(40);
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.count(), 4);
        assert_eq!(merged.sum(), 54);
        assert_eq!(merged.max(), 40);
        assert_eq!(merged.buckets()[2], 1);
        assert_eq!(merged.buckets()[7], 1);
        assert_eq!(merged.buckets()[HISTOGRAM_BUCKETS - 1], 1);
    }
}
