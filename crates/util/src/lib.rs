//! Dependency-free utilities shared across the workspace.
//!
//! The build environment has no access to a crates.io registry, so the
//! handful of small external crates the workspace used to lean on are
//! implemented here instead:
//!
//! - [`FxHashMap`] / [`FxHashSet`]: `HashMap`/`HashSet` using the Fx hash
//!   (the rustc-internal multiplicative hash) — non-cryptographic, very
//!   fast on the small integer keys the graph code hashes.
//! - [`testing`]: a deterministic property-test harness (seeded cases +
//!   a small PRNG) replacing proptest for the invariant suites.

pub mod testing;

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed by [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` keyed by [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx multiplicative hash used inside rustc: fold each word into the
/// state with a rotate + xor + multiply. Not DoS-resistant; the workspace
/// only hashes trusted vertex ids and file offsets.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(tail) | (rem.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, i * 3);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(&i), Some(&(i * 3)));
        }
    }

    #[test]
    fn set_dedups() {
        let mut s: FxHashSet<(u64, u64)> = FxHashSet::default();
        assert!(s.insert((1, 2)));
        assert!(!s.insert((1, 2)));
        assert!(s.insert((2, 1)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn hasher_is_deterministic_and_spreads() {
        let h = |v: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(v);
            hasher.finish()
        };
        assert_eq!(h(42), h(42));
        let mut outs: FxHashSet<u64> = FxHashSet::default();
        for i in 0..10_000u64 {
            outs.insert(h(i));
        }
        assert_eq!(outs.len(), 10_000, "no collisions on small sequential keys");
    }

    #[test]
    fn string_keys_work() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        m.insert("alpha".into(), 1);
        m.insert("beta".into(), 2);
        assert_eq!(m["alpha"], 1);
        assert_eq!(m["beta"], 2);
    }
}
