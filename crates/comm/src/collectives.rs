//! Blocking collective operations built from point-to-point sends.
//!
//! The paper's framework only assumes non-blocking point-to-point MPI plus
//! the handful of collectives any MPI implementation provides (reductions for
//! triangle totals, barriers around timing regions, all-to-all for the
//! distributed edge-list sort). These are implemented here over binomial
//! trees so the simulated transport carries the same O(p log p) message
//! pattern a real MPI would.
//!
//! SPMD contract: every rank must invoke every collective in the same order
//! (each invocation draws a fresh world-agreed channel tag).

use havoq_util::FxHashMap;

use crate::runtime::RankCtx;

/// Binomial-tree parent of `rank` (root 0 has none): clear the lowest set bit.
#[inline]
pub fn tree_parent(rank: usize) -> Option<usize> {
    if rank == 0 {
        None
    } else {
        Some(rank & (rank - 1))
    }
}

/// Binomial-tree children of `rank` in a world of `ranks`.
pub fn tree_children(rank: usize, ranks: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let lowbit = if rank == 0 { usize::MAX } else { rank & rank.wrapping_neg() };
    let mut bit = 1usize;
    while bit < lowbit && bit < ranks {
        let c = rank | bit;
        if c != rank && c < ranks {
            out.push(c);
        }
        bit <<= 1;
    }
    out
}

impl RankCtx {
    /// Reduce `value` with `op` across all ranks; every rank gets the result.
    pub fn all_reduce<T, F>(&self, value: T, op: F) -> T
    where
        T: Send + Clone + 'static,
        F: Fn(T, T) -> T,
    {
        let tag = self.next_collective_tag();
        let ch = self.channel_internal::<T>(tag);
        let rank = self.rank();
        let children = tree_children(rank, self.size());
        let parent = tree_parent(rank);

        // Upward phase: fold children's partial results into ours.
        let mut acc = value;
        let mut pending_children = children.len();
        // A parent's broadcast can arrive while a slow sibling's reduce
        // message is still queued behind it, so stash it.
        let mut parent_result: Option<T> = None;
        while pending_children > 0 {
            let (src, v) = ch.recv_blocking(self);
            if Some(src) == parent {
                parent_result = Some(v);
            } else {
                acc = op(acc, v);
                pending_children -= 1;
            }
        }
        if let Some(p) = parent {
            ch.send(p, acc);
            // Downward phase: wait for the final result from our parent.
            let result = match parent_result {
                Some(v) => v,
                None => {
                    let (src, v) = ch.recv_blocking(self);
                    assert_eq!(src, p, "unexpected reduce message from rank {src}");
                    v
                }
            };
            for &c in &children {
                ch.send(c, result.clone());
            }
            result
        } else {
            for &c in &children {
                ch.send(c, acc.clone());
            }
            acc
        }
    }

    /// Sum-reduction convenience used throughout the experiments.
    pub fn all_reduce_sum(&self, v: u64) -> u64 {
        self.all_reduce(v, |a, b| a.wrapping_add(b))
    }

    /// Max-reduction convenience.
    pub fn all_reduce_max(&self, v: u64) -> u64 {
        self.all_reduce(v, u64::max)
    }

    /// Min-reduction convenience.
    pub fn all_reduce_min(&self, v: u64) -> u64 {
        self.all_reduce(v, u64::min)
    }

    /// Synchronize all ranks (binomial reduce + broadcast of a unit token).
    pub fn barrier(&self) {
        let _ = self.all_reduce_sum(0);
    }

    /// Broadcast `value` from `root` to every rank.
    pub fn broadcast<T>(&self, root: usize, value: Option<T>) -> T
    where
        T: Send + Clone + 'static,
    {
        assert!(root < self.size());
        let tag = self.next_collective_tag();
        let ch = self.channel_internal::<T>(tag);
        // Relabel ranks so `root` plays rank 0 in the binomial tree.
        let p = self.size();
        let virt = (self.rank() + p - root) % p;
        let to_real = |v: usize| (v + root) % p;
        let v = if virt == 0 {
            value.expect("broadcast root must supply a value")
        } else {
            let (_src, v) = ch.recv_blocking(self);
            v
        };
        for c in tree_children(virt, p) {
            ch.send(to_real(c), v.clone());
        }
        v
    }

    /// Gather one value from every rank onto every rank, indexed by rank.
    pub fn all_gather<T>(&self, value: T) -> Vec<T>
    where
        T: Send + Clone + 'static,
    {
        let tag = self.next_collective_tag();
        let ch = self.channel_internal::<(usize, T)>(tag);
        if self.rank() == 0 {
            let mut slots: FxHashMap<usize, T> = FxHashMap::default();
            slots.insert(0, value);
            while slots.len() < self.size() {
                let (_src, (r, v)) = ch.recv_blocking(self);
                slots.insert(r, v);
            }
            let all: Vec<T> = (0..self.size()).map(|r| slots.remove(&r).unwrap()).collect();
            self.broadcast(0, Some(all))
        } else {
            ch.send(0, (self.rank(), value));
            self.broadcast(0, None)
        }
    }

    /// Exclusive prefix sum of `value` over rank order (rank 0 gets 0).
    ///
    /// With the modest rank counts of the simulation an all-gather followed
    /// by a local prefix is both simple and optimal enough.
    pub fn exscan_sum(&self, value: u64) -> u64 {
        let all = self.all_gather(value);
        all[..self.rank()].iter().sum()
    }

    /// Personalized all-to-all: `outgoing[d]` is sent to rank `d`; returns
    /// `incoming[s]` = what rank `s` sent here. Used by the distributed
    /// edge-list sample sort.
    pub fn all_to_allv<T>(&self, mut outgoing: Vec<Vec<T>>) -> Vec<Vec<T>>
    where
        T: Send + 'static,
    {
        let p = self.size();
        assert_eq!(outgoing.len(), p, "all_to_allv needs one bucket per rank");
        let tag = self.next_collective_tag();
        let ch = self.channel_internal::<Vec<T>>(tag);
        for (dst, buf) in outgoing.drain(..).enumerate() {
            let n = buf.len() as u64;
            // byte volume is an in-memory estimate (typed channel, not framed)
            ch.send_counted(dst, buf, n, n * std::mem::size_of::<T>() as u64);
        }
        let mut incoming: Vec<Option<Vec<T>>> = (0..p).map(|_| None).collect();
        let mut remaining = p;
        while remaining > 0 {
            let (src, buf) = ch.recv_blocking(self);
            assert!(incoming[src].is_none(), "duplicate all_to_allv message from {src}");
            incoming[src] = Some(buf);
            remaining -= 1;
        }
        incoming.into_iter().map(|o| o.unwrap()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::CommWorld;

    #[test]
    fn tree_shape_is_consistent() {
        for p in [1usize, 2, 3, 5, 8, 13, 16, 31] {
            for r in 0..p {
                for c in tree_children(r, p) {
                    assert_eq!(tree_parent(c), Some(r), "p={p} r={r} c={c}");
                    assert!(c < p);
                }
            }
            // every non-root rank is some rank's child exactly once
            let mut seen = vec![0usize; p];
            for r in 0..p {
                for c in tree_children(r, p) {
                    seen[c] += 1;
                }
            }
            assert_eq!(seen[0], 0);
            assert!(seen[1..].iter().all(|&s| s == 1), "p={p}: {seen:?}");
        }
    }

    #[test]
    fn all_reduce_sum_works_for_awkward_sizes() {
        for p in [1usize, 2, 3, 5, 7, 12, 16] {
            let expect: u64 = (0..p as u64).sum();
            let got = CommWorld::run(p, |ctx| ctx.all_reduce_sum(ctx.rank() as u64));
            assert!(got.iter().all(|&g| g == expect), "p={p}: {got:?}");
        }
    }

    #[test]
    fn all_reduce_min_max() {
        let got = CommWorld::run(5, |ctx| {
            let v = (ctx.rank() as u64 + 3) * 7 % 11;
            (ctx.all_reduce_min(v), ctx.all_reduce_max(v))
        });
        let vals: Vec<u64> = (0..5u64).map(|r| (r + 3) * 7 % 11).collect();
        let (lo, hi) = (*vals.iter().min().unwrap(), *vals.iter().max().unwrap());
        assert!(got.iter().all(|&g| g == (lo, hi)));
    }

    #[test]
    fn broadcast_from_every_root() {
        for root in 0..4 {
            let got = CommWorld::run(4, |ctx| {
                let v = if ctx.rank() == root { Some(root as u64 * 11 + 1) } else { None };
                ctx.broadcast(root, v)
            });
            assert!(got.iter().all(|&g| g == root as u64 * 11 + 1));
        }
    }

    #[test]
    fn all_gather_orders_by_rank() {
        let got = CommWorld::run(6, |ctx| ctx.all_gather(ctx.rank() as u64 * 2));
        for g in got {
            assert_eq!(g, vec![0, 2, 4, 6, 8, 10]);
        }
    }

    #[test]
    fn exscan_matches_prefix() {
        let got = CommWorld::run(5, |ctx| ctx.exscan_sum(ctx.rank() as u64 + 1));
        assert_eq!(got, vec![0, 1, 3, 6, 10]);
    }

    #[test]
    fn all_to_allv_transposes() {
        let p = 4;
        let got = CommWorld::run(p, |ctx| {
            let out: Vec<Vec<u64>> =
                (0..p).map(|d| vec![(ctx.rank() * 10 + d) as u64; d + 1]).collect();
            ctx.all_to_allv(out)
        });
        for (me, incoming) in got.iter().enumerate() {
            for (src, buf) in incoming.iter().enumerate() {
                assert_eq!(buf.len(), me + 1);
                assert!(buf.iter().all(|&v| v == (src * 10 + me) as u64));
            }
        }
    }

    #[test]
    fn repeated_collectives_do_not_cross_talk() {
        let got = CommWorld::run(3, |ctx| {
            let mut acc = 0;
            for i in 0..20u64 {
                acc += ctx.all_reduce_sum(i + ctx.rank() as u64);
            }
            acc
        });
        // sum over i of (3i + 0+1+2)
        let expect: u64 = (0..20u64).map(|i| 3 * i + 3).sum();
        assert!(got.iter().all(|&g| g == expect));
    }

    #[test]
    fn barrier_many_times() {
        CommWorld::run(7, |ctx| {
            for _ in 0..50 {
                ctx.barrier();
            }
        });
    }
}
