//! SPMD launch: one thread per simulated MPI rank.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::fault::{FaultConfig, FaultPlan};
use crate::registry::Registry;
use crate::transport::Transport;

/// Handle that launches SPMD regions over `p` simulated ranks.
///
/// ```
/// use havoq_comm::CommWorld;
/// let sums = CommWorld::run(4, |ctx| {
///     // every rank executes this closure, like `mpirun -np 4`
///     ctx.all_reduce_sum(ctx.rank() as u64)
/// });
/// assert_eq!(sums, vec![6, 6, 6, 6]); // 0+1+2+3 on every rank
/// ```
pub struct CommWorld;

impl CommWorld {
    /// Run `f` on `ranks` threads; returns each rank's result in rank order.
    ///
    /// If any rank panics, the world is poisoned (peers blocked in collectives
    /// or blocking receives unblock with a panic) and the first panic payload
    /// is re-raised on the caller thread.
    pub fn run<R, F>(ranks: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&RankCtx) -> R + Sync,
    {
        Self::run_with_faults(ranks, None, f)
    }

    /// Like [`CommWorld::run`], but every user-tag channel injects the
    /// deterministic faults described by `faults` (see [`FaultConfig`]).
    /// `None`, or a config with all knobs zero, behaves exactly like
    /// [`CommWorld::run`]. Control channels (collectives, termination) are
    /// never perturbed.
    pub fn run_with_faults<R, F>(ranks: usize, faults: Option<FaultConfig>, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&RankCtx) -> R + Sync,
    {
        assert!(ranks > 0, "world must have at least one rank");
        let registry = Arc::new(Registry::new(ranks));
        let poisoned = Arc::new(AtomicBool::new(false));
        let plan = faults.filter(FaultConfig::is_active).map(|cfg| Arc::new(FaultPlan::new(cfg)));

        let results: Vec<std::thread::Result<R>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..ranks)
                .map(|rank| {
                    let registry = Arc::clone(&registry);
                    let poisoned = Arc::clone(&poisoned);
                    let plan = plan.clone();
                    let f = &f;
                    scope.spawn(move || {
                        let ctx = RankCtx::new(rank, ranks, registry, Arc::clone(&poisoned), plan);
                        let out = catch_unwind(AssertUnwindSafe(|| f(&ctx)));
                        if out.is_err() {
                            poisoned.store(true, Ordering::SeqCst);
                        }
                        out
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("rank thread join")).collect()
        });

        let mut out = Vec::with_capacity(ranks);
        let mut panic_payload = None;
        for r in results {
            match r {
                Ok(v) => out.push(v),
                Err(e) => {
                    if panic_payload.is_none() {
                        panic_payload = Some(e);
                    }
                }
            }
        }
        if let Some(p) = panic_payload {
            std::panic::resume_unwind(p);
        }
        out
    }
}

/// Per-rank execution context handed to the SPMD closure.
///
/// Provides the rank's identity, typed point-to-point channels
/// ([`RankCtx::channel`]), and blocking collectives (see
/// [`crate::collectives`]). Collectives must be invoked by all ranks in the
/// same order, exactly as MPI requires.
pub struct RankCtx {
    rank: usize,
    ranks: usize,
    registry: Arc<Registry>,
    poisoned: Arc<AtomicBool>,
    /// Per-kind invocation counters so every collective call gets a fresh,
    /// world-agreed channel tag (SPMD same-order requirement).
    pub(crate) collective_seq: Cell<u64>,
    /// Counter backing [`RankCtx::auto_tag`].
    auto_seq: Cell<u64>,
    /// Fault plan shared by all ranks of a [`CommWorld::run_with_faults`]
    /// world; `None` on unperturbed runs.
    faults: Option<Arc<FaultPlan>>,
}

/// Base of the tag namespace handed out by [`RankCtx::auto_tag`].
pub const AUTO_TAG_BASE: u64 = 1 << 40;

impl RankCtx {
    fn new(
        rank: usize,
        ranks: usize,
        registry: Arc<Registry>,
        poisoned: Arc<AtomicBool>,
        faults: Option<Arc<FaultPlan>>,
    ) -> Self {
        Self {
            rank,
            ranks,
            registry,
            poisoned,
            collective_seq: Cell::new(0),
            auto_seq: Cell::new(0),
            faults,
        }
    }

    /// The world's fault plan, if this is a fault-injected run.
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.faults.as_ref()
    }

    /// The rank the fault plan kills while writing checkpoint `epoch` on
    /// the given `incarnation`, or `None` — on fault-free worlds, always
    /// `None`. Every rank computes the same verdict from the shared plan
    /// (the simulation's failure detector), which is what lets the
    /// checkpointed traversal agree collectively on when to restore.
    pub fn crash_victim(&self, epoch: u64, incarnation: u64) -> Option<usize> {
        self.faults.as_ref().and_then(|p| p.crash_victim(epoch, incarnation, self.ranks))
    }

    /// Allocate a fresh world-agreed user channel tag. Like collectives,
    /// every rank must call this in the same order (SPMD), so matching
    /// calls yield matching tags. Used by subsystems (e.g. the visitor
    /// queue) that open one channel set per logical traversal.
    pub fn auto_tag(&self) -> u64 {
        let seq = self.auto_seq.get();
        self.auto_seq.set(seq + 1);
        AUTO_TAG_BASE + seq
    }

    /// This rank's id in `0..self.size()`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    #[inline]
    pub fn size(&self) -> usize {
        self.ranks
    }

    /// True once any rank has panicked.
    #[inline]
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Relaxed)
    }

    /// Panic (joining the world-wide shutdown) if a peer rank has panicked.
    /// Called from blocking loops so a single failure cannot deadlock the run.
    #[inline]
    pub fn check_poison(&self) {
        if self.is_poisoned() {
            panic!("rank {}: aborting, a peer rank panicked", self.rank);
        }
    }

    /// Open the typed point-to-point channel `(M, tag)`.
    ///
    /// All ranks may open each `(M, tag)` pair at most once. `tag` must be
    /// below [`crate::registry::RESERVED_TAG_BASE`].
    pub fn channel<M: Send + 'static>(&self, tag: u64) -> Transport<M> {
        self.channel_with_capacity(tag, None)
    }

    /// Open the typed point-to-point channel `(M, tag)` with a per-queue
    /// capacity bound. `None` is unbounded; `Some(n)` makes sends into a
    /// full queue fail (backpressure), which the mailbox turns into its
    /// blocking-with-poison-check slow path. All ranks must pass the same
    /// capacity for a given tag (SPMD contract, asserted by the registry).
    pub fn channel_with_capacity<M: Send + 'static>(
        &self,
        tag: u64,
        capacity: Option<usize>,
    ) -> Transport<M> {
        assert!(
            tag < crate::registry::RESERVED_TAG_BASE,
            "user channel tags must be below RESERVED_TAG_BASE"
        );
        self.channel_internal_with(tag, capacity)
    }

    pub(crate) fn channel_internal<M: Send + 'static>(&self, tag: u64) -> Transport<M> {
        self.channel_internal_with(tag, None)
    }

    pub(crate) fn channel_internal_with<M: Send + 'static>(
        &self,
        tag: u64,
        capacity: Option<usize>,
    ) -> Transport<M> {
        let set = self.registry.channel_set_with_capacity::<M>(tag, capacity);
        let receiver = self.registry.take_receiver::<M>(tag, self.rank);
        Transport::new(
            self.rank,
            self.ranks,
            tag,
            set,
            receiver,
            Arc::clone(&self.poisoned),
            self.faults.clone(),
        )
    }

    pub(crate) fn next_collective_tag(&self) -> u64 {
        let seq = self.collective_seq.get();
        self.collective_seq.set(seq + 1);
        crate::registry::COLLECTIVE_TAG_BASE + seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_every_rank_once() {
        let got = CommWorld::run(8, |ctx| (ctx.rank(), ctx.size()));
        assert_eq!(got, (0..8).map(|r| (r, 8)).collect::<Vec<_>>());
    }

    #[test]
    fn single_rank_world() {
        assert_eq!(CommWorld::run(1, |ctx| ctx.rank()), vec![0]);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = CommWorld::run(0, |_| ());
    }

    #[test]
    fn p2p_roundtrip() {
        let got = CommWorld::run(2, |ctx| {
            let ch = ctx.channel::<u64>(0);
            ch.send(1 - ctx.rank(), ctx.rank() as u64 + 100);
            let (src, v) = ch.recv_blocking(ctx);
            assert_eq!(src, 1 - ctx.rank());
            v
        });
        assert_eq!(got, vec![101, 100]);
    }

    #[test]
    fn closure_can_borrow_environment() {
        let data: Vec<u64> = (0..100).collect();
        let sums = CommWorld::run(4, |ctx| {
            // scoped threads: shared read-only borrow, no Arc needed
            data.iter().skip(ctx.rank()).step_by(4).sum::<u64>()
        });
        assert_eq!(sums.iter().sum::<u64>(), 4950);
    }

    #[test]
    fn rank_panic_propagates() {
        let res = std::panic::catch_unwind(|| {
            CommWorld::run(4, |ctx| {
                if ctx.rank() == 2 {
                    panic!("boom on rank 2");
                }
                // peers block on a receive that will never arrive; the poison
                // flag must unblock them instead of deadlocking
                let ch = ctx.channel::<u8>(0);
                let _ = ch.recv_blocking(ctx);
            })
        });
        assert!(res.is_err());
    }
}
