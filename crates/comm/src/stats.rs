//! Per-channel-pair traffic counters.
//!
//! The paper argues (Section III-B) that dense all-to-all communication is a
//! primary scaling obstacle and that routed mailboxes cut the number of
//! communicating pairs from `O(p)` per rank to `O(sqrt(p))` (2D) or
//! `O(p^(1/3))` per axis (3D). These counters let experiments observe that
//! reduction directly: every transport-level send is recorded against its
//! (source, destination) pair, in messages, payload items, *and bytes* —
//! the paper's evaluation is ultimately about bytes on the wire
//! (64-byte visitor messages, Section VI), so byte volume is first-class.
//! Bounded channels additionally record backpressure stalls per pair.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared traffic matrix for one transport channel set.
///
/// Counts are recorded with relaxed ordering; they are read only after the
/// SPMD region joins, when all writes are already synchronized by the thread
/// join.
pub struct ChannelStats {
    ranks: usize,
    /// `msgs[src * ranks + dst]`: transport messages sent src -> dst.
    msgs: Vec<AtomicU64>,
    /// `items[src * ranks + dst]`: payload items carried by those messages
    /// (for batched transports a message carries many items).
    items: Vec<AtomicU64>,
    /// `bytes[src * ranks + dst]`: wire bytes carried by those messages.
    /// Exact frame sizes on the byte-framed mailbox path; an in-memory
    /// payload estimate on typed control channels (collectives).
    bytes: Vec<AtomicU64>,
    /// `stalls[src * ranks + dst]`: failed sends into a full bounded
    /// channel (each retry loop iteration counts once).
    stalls: Vec<AtomicU64>,
    /// Fault-injection counters, one matrix per fault type, all indexed
    /// `src * ranks + dst` like the traffic matrices above. Zero on
    /// fault-free runs. `dup` counts duplicated frames at the sender;
    /// the rest count events observed at the receiver.
    fault_delays: Vec<AtomicU64>,
    fault_reorders: Vec<AtomicU64>,
    fault_dups: Vec<AtomicU64>,
    fault_dedups: Vec<AtomicU64>,
    fault_stalls: Vec<AtomicU64>,
    fault_throttles: Vec<AtomicU64>,
    /// Injected integrity faults: frames whose bytes were flipped and
    /// frames discarded before delivery, both observed at the receiver.
    fault_corrupts: Vec<AtomicU64>,
    fault_drops: Vec<AtomicU64>,
    /// Integrity-layer recovery events: CRC failures detected at the
    /// receiver, NACKs it sent back, and retransmissions the sender shipped
    /// (NACK- or timeout-driven). Like duplicate copies, retransmitted
    /// frames never appear in the `msgs`/`items`/`bytes` matrices.
    corrupt_detected: Vec<AtomicU64>,
    nacks: Vec<AtomicU64>,
    retransmits: Vec<AtomicU64>,
    /// Checkpoint/restart events, indexed by rank (they are per-rank, not
    /// per-pair): complete checkpoint epochs written, torn writes from an
    /// injected crash, and restores performed.
    checkpoints: Vec<AtomicU64>,
    crashes: Vec<AtomicU64>,
    restores: Vec<AtomicU64>,
    /// Per-rank lifecycle events: cancel records applied, traversals
    /// aborted by the progress watchdog.
    cancels: Vec<AtomicU64>,
    aborts: Vec<AtomicU64>,
}

impl ChannelStats {
    pub fn new(ranks: usize) -> Self {
        let zeros = || (0..ranks * ranks).map(|_| AtomicU64::new(0)).collect();
        let per_rank = || (0..ranks).map(|_| AtomicU64::new(0)).collect();
        Self {
            ranks,
            msgs: zeros(),
            items: zeros(),
            bytes: zeros(),
            stalls: zeros(),
            fault_delays: zeros(),
            fault_reorders: zeros(),
            fault_dups: zeros(),
            fault_dedups: zeros(),
            fault_stalls: zeros(),
            fault_throttles: zeros(),
            fault_corrupts: zeros(),
            fault_drops: zeros(),
            corrupt_detected: zeros(),
            nacks: zeros(),
            retransmits: zeros(),
            checkpoints: per_rank(),
            crashes: per_rank(),
            restores: per_rank(),
            cancels: per_rank(),
            aborts: per_rank(),
        }
    }

    #[inline]
    pub fn record(&self, src: usize, dst: usize, items: u64, bytes: u64) {
        let i = src * self.ranks + dst;
        self.msgs[i].fetch_add(1, Ordering::Relaxed);
        self.items[i].fetch_add(items, Ordering::Relaxed);
        self.bytes[i].fetch_add(bytes, Ordering::Relaxed);
    }

    #[inline]
    pub fn record_stall(&self, src: usize, dst: usize) {
        self.stalls[src * self.ranks + dst].fetch_add(1, Ordering::Relaxed);
    }

    /// A message src -> dst was held back by an injected delay.
    #[inline]
    pub fn record_fault_delay(&self, src: usize, dst: usize) {
        self.fault_delays[src * self.ranks + dst].fetch_add(1, Ordering::Relaxed);
    }

    /// A message src -> dst was delivered ahead of an earlier arrival.
    #[inline]
    pub fn record_fault_reorder(&self, src: usize, dst: usize) {
        self.fault_reorders[src * self.ranks + dst].fetch_add(1, Ordering::Relaxed);
    }

    /// A frame src -> dst was shipped twice by the fault layer.
    #[inline]
    pub fn record_fault_dup(&self, src: usize, dst: usize) {
        self.fault_dups[src * self.ranks + dst].fetch_add(1, Ordering::Relaxed);
    }

    /// A duplicate delivery src -> dst was dropped by the dedup window.
    #[inline]
    pub fn record_fault_dedup(&self, src: usize, dst: usize) {
        self.fault_dedups[src * self.ranks + dst].fetch_add(1, Ordering::Relaxed);
    }

    /// An arrival src -> dst opened an injected receive-stall window.
    #[inline]
    pub fn record_fault_stall(&self, src: usize, dst: usize) {
        self.fault_stalls[src * self.ranks + dst].fetch_add(1, Ordering::Relaxed);
    }

    /// A delivery src -> dst paid the slow-rank throttle at receiver `dst`.
    #[inline]
    pub fn record_fault_throttle(&self, src: usize, dst: usize) {
        self.fault_throttles[src * self.ranks + dst].fetch_add(1, Ordering::Relaxed);
    }

    /// A frame src -> dst had a payload bit flipped by the fault layer.
    #[inline]
    pub fn record_fault_corrupt(&self, src: usize, dst: usize) {
        self.fault_corrupts[src * self.ranks + dst].fetch_add(1, Ordering::Relaxed);
    }

    /// A frame src -> dst was discarded (lost) by the fault layer.
    #[inline]
    pub fn record_fault_drop(&self, src: usize, dst: usize) {
        self.fault_drops[src * self.ranks + dst].fetch_add(1, Ordering::Relaxed);
    }

    /// Receiver `dst` detected a CRC mismatch on a frame from `src`.
    #[inline]
    pub fn record_corrupt_detected(&self, src: usize, dst: usize) {
        self.corrupt_detected[src * self.ranks + dst].fetch_add(1, Ordering::Relaxed);
    }

    /// Receiver `dst` NACKed a frame back to sender `src`.
    #[inline]
    pub fn record_nack(&self, src: usize, dst: usize) {
        self.nacks[src * self.ranks + dst].fetch_add(1, Ordering::Relaxed);
    }

    /// Sender `src` retransmitted a buffered frame to `dst`.
    #[inline]
    pub fn record_retransmit(&self, src: usize, dst: usize) {
        self.retransmits[src * self.ranks + dst].fetch_add(1, Ordering::Relaxed);
    }

    /// Rank `rank` committed one complete checkpoint epoch.
    #[inline]
    pub fn record_checkpoint(&self, rank: usize) {
        self.checkpoints[rank].fetch_add(1, Ordering::Relaxed);
    }

    /// Rank `rank` died mid-write (its checkpoint epoch is torn).
    #[inline]
    pub fn record_crash(&self, rank: usize) {
        self.crashes[rank].fetch_add(1, Ordering::Relaxed);
    }

    /// Rank `rank` rewound to an earlier checkpoint epoch.
    #[inline]
    pub fn record_restore(&self, rank: usize) {
        self.restores[rank].fetch_add(1, Ordering::Relaxed);
    }

    /// Rank `rank` applied one cancel record to a live query.
    #[inline]
    pub fn record_cancel(&self, rank: usize) {
        self.cancels[rank].fetch_add(1, Ordering::Relaxed);
    }

    /// Rank `rank` aborted a traversal on a watchdog verdict.
    #[inline]
    pub fn record_abort(&self, rank: usize) {
        self.aborts[rank].fetch_add(1, Ordering::Relaxed);
    }

    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Immutable snapshot for post-run analysis.
    pub fn snapshot(&self) -> ChannelStatsSnapshot {
        let load = |v: &Vec<AtomicU64>| v.iter().map(|a| a.load(Ordering::Relaxed)).collect();
        ChannelStatsSnapshot {
            ranks: self.ranks,
            msgs: load(&self.msgs),
            items: load(&self.items),
            bytes: load(&self.bytes),
            stalls: load(&self.stalls),
            fault_delays: load(&self.fault_delays),
            fault_reorders: load(&self.fault_reorders),
            fault_dups: load(&self.fault_dups),
            fault_dedups: load(&self.fault_dedups),
            fault_stalls: load(&self.fault_stalls),
            fault_throttles: load(&self.fault_throttles),
            fault_corrupts: load(&self.fault_corrupts),
            fault_drops: load(&self.fault_drops),
            corrupt_detected: load(&self.corrupt_detected),
            nacks: load(&self.nacks),
            retransmits: load(&self.retransmits),
            checkpoints: load(&self.checkpoints),
            crashes: load(&self.crashes),
            restores: load(&self.restores),
            cancels: load(&self.cancels),
            aborts: load(&self.aborts),
        }
    }
}

/// Plain-data snapshot of a [`ChannelStats`] matrix.
#[derive(Clone, Debug)]
pub struct ChannelStatsSnapshot {
    pub ranks: usize,
    pub msgs: Vec<u64>,
    pub items: Vec<u64>,
    pub bytes: Vec<u64>,
    pub stalls: Vec<u64>,
    pub fault_delays: Vec<u64>,
    pub fault_reorders: Vec<u64>,
    pub fault_dups: Vec<u64>,
    pub fault_dedups: Vec<u64>,
    pub fault_stalls: Vec<u64>,
    pub fault_throttles: Vec<u64>,
    /// Injected integrity faults (bit flips / frame losses) per pair.
    pub fault_corrupts: Vec<u64>,
    pub fault_drops: Vec<u64>,
    /// Integrity recovery events per pair: CRC failures detected, NACKs
    /// sent, retransmissions shipped.
    pub corrupt_detected: Vec<u64>,
    pub nacks: Vec<u64>,
    pub retransmits: Vec<u64>,
    /// Per-rank (length `ranks`, not a matrix): complete checkpoint epochs
    /// written, injected mid-write crashes, and restores performed.
    pub checkpoints: Vec<u64>,
    pub crashes: Vec<u64>,
    pub restores: Vec<u64>,
    /// Per-rank lifecycle events: cancels applied, watchdog aborts.
    pub cancels: Vec<u64>,
    pub aborts: Vec<u64>,
}

impl ChannelStatsSnapshot {
    #[inline]
    pub fn msgs_between(&self, src: usize, dst: usize) -> u64 {
        self.msgs[src * self.ranks + dst]
    }

    #[inline]
    pub fn items_between(&self, src: usize, dst: usize) -> u64 {
        self.items[src * self.ranks + dst]
    }

    #[inline]
    pub fn bytes_between(&self, src: usize, dst: usize) -> u64 {
        self.bytes[src * self.ranks + dst]
    }

    #[inline]
    pub fn stalls_between(&self, src: usize, dst: usize) -> u64 {
        self.stalls[src * self.ranks + dst]
    }

    pub fn total_msgs(&self) -> u64 {
        self.msgs.iter().sum()
    }

    pub fn total_items(&self) -> u64 {
        self.items.iter().sum()
    }

    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    pub fn total_stalls(&self) -> u64 {
        self.stalls.iter().sum()
    }

    pub fn total_fault_delays(&self) -> u64 {
        self.fault_delays.iter().sum()
    }

    pub fn total_fault_reorders(&self) -> u64 {
        self.fault_reorders.iter().sum()
    }

    pub fn total_fault_dups(&self) -> u64 {
        self.fault_dups.iter().sum()
    }

    pub fn total_fault_dedups(&self) -> u64 {
        self.fault_dedups.iter().sum()
    }

    pub fn total_fault_stalls(&self) -> u64 {
        self.fault_stalls.iter().sum()
    }

    pub fn total_fault_throttles(&self) -> u64 {
        self.fault_throttles.iter().sum()
    }

    pub fn total_fault_corrupts(&self) -> u64 {
        self.fault_corrupts.iter().sum()
    }

    pub fn total_fault_drops(&self) -> u64 {
        self.fault_drops.iter().sum()
    }

    pub fn total_corrupt_detected(&self) -> u64 {
        self.corrupt_detected.iter().sum()
    }

    pub fn total_nacks(&self) -> u64 {
        self.nacks.iter().sum()
    }

    pub fn total_retransmits(&self) -> u64 {
        self.retransmits.iter().sum()
    }

    pub fn total_checkpoints(&self) -> u64 {
        self.checkpoints.iter().sum()
    }

    pub fn total_crashes(&self) -> u64 {
        self.crashes.iter().sum()
    }

    pub fn total_restores(&self) -> u64 {
        self.restores.iter().sum()
    }

    pub fn total_cancels(&self) -> u64 {
        self.cancels.iter().sum()
    }

    pub fn total_aborts(&self) -> u64 {
        self.aborts.iter().sum()
    }

    /// Sum of all fault events of every type — nonzero iff the fault layer
    /// perturbed at least one message on this channel set. Recovery events
    /// (detections, NACKs, retransmits) are consequences, not faults, and
    /// are excluded.
    pub fn total_faults(&self) -> u64 {
        self.total_fault_delays()
            + self.total_fault_reorders()
            + self.total_fault_dups()
            + self.total_fault_dedups()
            + self.total_fault_stalls()
            + self.total_fault_throttles()
            + self.total_fault_corrupts()
            + self.total_fault_drops()
    }

    /// Number of distinct destinations rank `src` ever sent to.
    ///
    /// For a `Direct` mailbox under an all-to-all workload this approaches
    /// `p - 1`; for `Routed2D` it is bounded by row + column peers.
    pub fn channels_used_by(&self, src: usize) -> usize {
        (0..self.ranks).filter(|&d| d != src && self.msgs[src * self.ranks + d] > 0).count()
    }

    /// Maximum over all ranks of [`Self::channels_used_by`].
    pub fn max_channels_used(&self) -> usize {
        (0..self.ranks).map(|r| self.channels_used_by(r)).max().unwrap_or(0)
    }

    /// Payload items received per rank; the spread of this distribution shows
    /// communication hotspots (the paper's high in-degree hub problem).
    pub fn items_received_per_rank(&self) -> Vec<u64> {
        (0..self.ranks)
            .map(|d| (0..self.ranks).map(|s| self.items[s * self.ranks + d]).sum())
            .collect()
    }

    /// Wire bytes received per rank.
    pub fn bytes_received_per_rank(&self) -> Vec<u64> {
        (0..self.ranks)
            .map(|d| (0..self.ranks).map(|s| self.bytes[s * self.ranks + d]).sum())
            .collect()
    }

    /// max/mean imbalance of items received per rank (1.0 = perfectly even).
    pub fn receive_imbalance(&self) -> f64 {
        let per = self.items_received_per_rank();
        let total: u64 = per.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / self.ranks as f64;
        per.iter().copied().max().unwrap_or(0) as f64 / mean
    }

    /// Mean payload items per transport message (the aggregation factor the
    /// paper's routed mailbox is designed to increase).
    pub fn aggregation_factor(&self) -> f64 {
        let m = self.total_msgs();
        if m == 0 {
            0.0
        } else {
            self.total_items() as f64 / m as f64
        }
    }

    /// Mean wire bytes per transport message.
    pub fn mean_msg_bytes(&self) -> f64 {
        let m = self.total_msgs();
        if m == 0 {
            0.0
        } else {
            self.total_bytes() as f64 / m as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let s = ChannelStats::new(4);
        s.record(0, 1, 10, 100);
        s.record(0, 1, 5, 50);
        s.record(2, 3, 1, 9);
        let snap = s.snapshot();
        assert_eq!(snap.msgs_between(0, 1), 2);
        assert_eq!(snap.items_between(0, 1), 15);
        assert_eq!(snap.bytes_between(0, 1), 150);
        assert_eq!(snap.msgs_between(1, 0), 0);
        assert_eq!(snap.total_msgs(), 3);
        assert_eq!(snap.total_items(), 16);
        assert_eq!(snap.total_bytes(), 159);
    }

    #[test]
    fn stalls_are_tracked_per_pair() {
        let s = ChannelStats::new(3);
        s.record_stall(0, 2);
        s.record_stall(0, 2);
        s.record_stall(1, 0);
        let snap = s.snapshot();
        assert_eq!(snap.stalls_between(0, 2), 2);
        assert_eq!(snap.stalls_between(1, 0), 1);
        assert_eq!(snap.total_stalls(), 3);
        assert_eq!(snap.total_msgs(), 0, "stalls are not messages");
    }

    #[test]
    fn channels_used_ignores_self() {
        let s = ChannelStats::new(3);
        s.record(0, 0, 1, 8);
        s.record(0, 1, 1, 8);
        let snap = s.snapshot();
        assert_eq!(snap.channels_used_by(0), 1);
        assert_eq!(snap.channels_used_by(1), 0);
        assert_eq!(snap.max_channels_used(), 1);
    }

    #[test]
    fn receive_imbalance_even_and_skewed() {
        let s = ChannelStats::new(2);
        s.record(0, 1, 4, 32);
        s.record(1, 0, 4, 32);
        assert!((s.snapshot().receive_imbalance() - 1.0).abs() < 1e-12);

        let skew = ChannelStats::new(2);
        skew.record(0, 1, 8, 64);
        // rank0 receives nothing: max/mean = 8 / 4 = 2
        assert!((skew.snapshot().receive_imbalance() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn aggregation_factor_and_mean_bytes() {
        let s = ChannelStats::new(2);
        s.record(0, 1, 64, 640);
        s.record(0, 1, 32, 320);
        let snap = s.snapshot();
        assert!((snap.aggregation_factor() - 48.0).abs() < 1e-12);
        assert!((snap.mean_msg_bytes() - 480.0).abs() < 1e-12);
    }

    #[test]
    fn fault_counters_are_tracked_per_pair() {
        let s = ChannelStats::new(3);
        s.record_fault_delay(0, 1);
        s.record_fault_delay(0, 1);
        s.record_fault_reorder(1, 2);
        s.record_fault_dup(2, 0);
        s.record_fault_dedup(2, 0);
        s.record_fault_stall(0, 2);
        s.record_fault_throttle(1, 0);
        s.record_fault_corrupt(0, 1);
        s.record_fault_drop(1, 2);
        let snap = s.snapshot();
        assert_eq!(snap.fault_delays[1], 2);
        assert_eq!(snap.total_fault_delays(), 2);
        assert_eq!(snap.total_fault_reorders(), 1);
        assert_eq!(snap.total_fault_dups(), 1);
        assert_eq!(snap.total_fault_dedups(), 1);
        assert_eq!(snap.total_fault_stalls(), 1);
        assert_eq!(snap.total_fault_throttles(), 1);
        assert_eq!(snap.total_fault_corrupts(), 1);
        assert_eq!(snap.total_fault_drops(), 1);
        assert_eq!(snap.total_faults(), 9);
        assert_eq!(snap.total_msgs(), 0, "fault events are not messages");
    }

    #[test]
    fn integrity_recovery_counters_are_not_faults() {
        let s = ChannelStats::new(2);
        s.record_corrupt_detected(0, 1);
        s.record_corrupt_detected(0, 1);
        s.record_nack(0, 1);
        s.record_retransmit(0, 1);
        let snap = s.snapshot();
        assert_eq!(snap.total_corrupt_detected(), 2);
        assert_eq!(snap.total_nacks(), 1);
        assert_eq!(snap.total_retransmits(), 1);
        assert_eq!(snap.total_faults(), 0, "recovery events are consequences, not faults");
        assert_eq!(snap.total_msgs(), 0, "retransmits never count as messages");
    }

    #[test]
    fn checkpoint_counters_are_tracked_per_rank() {
        let s = ChannelStats::new(3);
        s.record_checkpoint(0);
        s.record_checkpoint(0);
        s.record_checkpoint(1);
        s.record_crash(2);
        s.record_restore(0);
        s.record_restore(1);
        s.record_restore(2);
        let snap = s.snapshot();
        assert_eq!(snap.checkpoints, vec![2, 1, 0]);
        assert_eq!(snap.crashes, vec![0, 0, 1]);
        assert_eq!(snap.total_checkpoints(), 3);
        assert_eq!(snap.total_crashes(), 1);
        assert_eq!(snap.total_restores(), 3);
        assert_eq!(snap.total_msgs(), 0, "checkpoint events are not messages");
        assert_eq!(snap.total_faults(), 0, "process faults are not message faults");
    }

    #[test]
    fn lifecycle_counters_are_tracked_per_rank() {
        let s = ChannelStats::new(3);
        s.record_cancel(0);
        s.record_cancel(0);
        s.record_cancel(2);
        s.record_abort(1);
        let snap = s.snapshot();
        assert_eq!(snap.cancels, vec![2, 0, 1]);
        assert_eq!(snap.aborts, vec![0, 1, 0]);
        assert_eq!(snap.total_cancels(), 3);
        assert_eq!(snap.total_aborts(), 1);
        assert_eq!(snap.total_msgs(), 0, "lifecycle events are not messages");
        assert_eq!(snap.total_faults(), 0, "lifecycle events are not faults");
    }

    #[test]
    fn empty_stats() {
        let snap = ChannelStats::new(4).snapshot();
        assert_eq!(snap.total_msgs(), 0);
        assert_eq!(snap.total_bytes(), 0);
        assert_eq!(snap.total_stalls(), 0);
        assert_eq!(snap.total_faults(), 0);
        assert_eq!(snap.aggregation_factor(), 0.0);
        assert_eq!(snap.mean_msg_bytes(), 0.0);
        assert_eq!(snap.receive_imbalance(), 1.0);
    }
}
