//! The paper's mailbox abstraction: `send(rank, data)` / `receive()` with
//! message aggregation and routing (Sections III-B and V).
//!
//! Payload messages are buffered per next-hop and shipped in batches. With a
//! routed topology an intermediate rank re-buffers transit batches toward
//! their final destinations, which is exactly where the paper's extra
//! aggregation factor of `O(sqrt(p))` comes from: a routed rank merges
//! payloads from many sources heading to the same column.
//!
//! End-to-end payload counters (`sent`, `received`) feed the quiescence
//! detector: a payload counts as sent when the origin rank accepts it and as
//! received when the final destination dequeues it, so in-flight transit
//! batches keep the traversal alive.

use crate::runtime::RankCtx;
use crate::topology::{Topology, TopologyKind};
use crate::transport::Transport;
use std::collections::VecDeque;

/// A payload plus its final destination, as carried inside transport batches.
struct Pkt<M> {
    dst: u32,
    msg: M,
}

/// Configuration for a [`Mailbox`].
#[derive(Clone, Copy, Debug)]
pub struct MailboxConfig {
    /// Routing topology for dense communication.
    pub topology: TopologyKind,
    /// Flush a per-next-hop buffer once it holds this many payloads.
    pub batch_size: usize,
    /// Simulated network cost charged at the receiver per delivered
    /// payload, in nanoseconds. Zero (the default) disables the model.
    ///
    /// Shared-memory channels make a "network" message as cheap as a local
    /// call, which hides the per-message receive overhead every real
    /// interconnect has — the overhead that serializes at a hub's master
    /// partition and that ghost filtering exists to remove (Figure 13).
    /// Setting a few hundred nanoseconds restores that cost honestly:
    /// it is charged for every delivered payload, whoever sent it.
    pub recv_cost_ns: u64,
}

impl Default for MailboxConfig {
    fn default() -> Self {
        Self { topology: TopologyKind::Direct, batch_size: 64, recv_cost_ns: 0 }
    }
}

impl MailboxConfig {
    pub fn with_topology(topology: TopologyKind) -> Self {
        Self { topology, ..Self::default() }
    }

    pub fn with_recv_cost_ns(mut self, ns: u64) -> Self {
        self.recv_cost_ns = ns;
        self
    }
}

/// Aggregating, optionally routed mailbox for payload type `M`.
pub struct Mailbox<M: Send + 'static> {
    transport: Transport<Vec<Pkt<M>>>,
    topo: Box<dyn Topology>,
    batch_size: usize,
    /// Out-buffers, indexed by next-hop rank; lazily grown.
    out: Vec<Vec<Pkt<M>>>,
    /// Total payloads currently waiting in `out`.
    pending_out: usize,
    /// Loopback queue for self-sends.
    local: VecDeque<M>,
    recv_cost_ns: u64,
    sent: u64,
    received: u64,
    transit_forwarded: u64,
}

/// Busy-wait for `ns` nanoseconds (sleep granularity is far coarser).
#[inline]
fn spin_ns(ns: u64) {
    if ns == 0 {
        return;
    }
    let start = std::time::Instant::now();
    let target = std::time::Duration::from_nanos(ns);
    while start.elapsed() < target {
        std::hint::spin_loop();
    }
}

impl<M: Send + 'static> Mailbox<M> {
    /// Open the mailbox on channel `tag` with the given config. Collective:
    /// all ranks must open the same `(M, tag)` mailbox.
    pub fn open(ctx: &RankCtx, tag: u64, cfg: MailboxConfig) -> Self {
        let transport = ctx.channel::<Vec<Pkt<M>>>(tag);
        let p = ctx.size();
        Self {
            transport,
            topo: cfg.topology.build(p),
            batch_size: cfg.batch_size.max(1),
            out: (0..p).map(|_| Vec::new()).collect(),
            pending_out: 0,
            local: VecDeque::new(),
            recv_cost_ns: cfg.recv_cost_ns,
            sent: 0,
            received: 0,
            transit_forwarded: 0,
        }
    }

    #[inline]
    pub fn rank(&self) -> usize {
        self.transport.rank()
    }

    #[inline]
    pub fn ranks(&self) -> usize {
        self.transport.ranks()
    }

    /// Queue `msg` for delivery to `dst` (paper: `mb.send(rank, data)`).
    pub fn send(&mut self, dst: usize, msg: M) {
        self.sent += 1;
        if dst == self.rank() {
            // Local delivery bypasses the network, like MPI self-sends the
            // paper short-circuits.
            self.local.push_back(msg);
            return;
        }
        self.buffer_toward(dst, msg);
    }

    fn buffer_toward(&mut self, dst: usize, msg: M) {
        let hop = self.topo.route(self.rank(), dst);
        debug_assert_ne!(hop, self.rank(), "topology routed a remote message to self");
        self.out[hop].push(Pkt { dst: dst as u32, msg });
        self.pending_out += 1;
        if self.out[hop].len() >= self.batch_size {
            self.flush_hop(hop);
        }
    }

    fn flush_hop(&mut self, hop: usize) {
        if self.out[hop].is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.out[hop]);
        self.pending_out -= batch.len();
        let n = batch.len() as u64;
        self.transport.send_counted(hop, batch, n);
    }

    /// Flush every partially-filled aggregation buffer.
    pub fn flush(&mut self) {
        for hop in 0..self.out.len() {
            self.flush_hop(hop);
        }
    }

    /// Drain arrived payloads into `out`, forwarding transit batches toward
    /// their destinations. Returns the number of payloads delivered locally.
    ///
    /// Must be called regularly even by "idle" ranks — under a routed
    /// topology every rank is also a router.
    pub fn poll(&mut self, out: &mut Vec<M>) -> usize {
        let mut delivered = 0;
        while let Some(m) = self.local.pop_front() {
            self.received += 1;
            out.push(m);
            delivered += 1;
        }
        while let Some((_src, batch)) = self.transport.try_recv() {
            for pkt in batch {
                if pkt.dst as usize == self.rank() {
                    self.received += 1;
                    out.push(pkt.msg);
                    delivered += 1;
                } else {
                    self.transit_forwarded += 1;
                    self.buffer_toward(pkt.dst as usize, pkt.msg);
                }
            }
        }
        // network cost model: per-payload receive overhead (see
        // `MailboxConfig::recv_cost_ns`); self-sends are charged too — the
        // paper's queue pushes even local visitors through the mailbox
        spin_ns(self.recv_cost_ns.saturating_mul(delivered as u64));
        delivered
    }

    /// Payloads accepted by `send` on this rank (end-to-end counter).
    #[inline]
    pub fn sent_count(&self) -> u64 {
        self.sent
    }

    /// Payloads delivered to this rank by `poll` (end-to-end counter).
    #[inline]
    pub fn received_count(&self) -> u64 {
        self.received
    }

    /// Payloads waiting in this rank's aggregation buffers (origin or
    /// transit). Zero is a precondition for reporting idle to the
    /// quiescence detector.
    #[inline]
    pub fn pending_out(&self) -> usize {
        self.pending_out
    }

    /// Local snapshot of mailbox counters.
    pub fn stats(&self) -> MailboxStatsSnapshot {
        MailboxStatsSnapshot {
            sent: self.sent,
            received: self.received,
            transit_forwarded: self.transit_forwarded,
        }
    }

    /// World-wide transport traffic matrix (batches and payload items).
    pub fn transport_stats(&self) -> crate::stats::ChannelStatsSnapshot {
        self.transport.stats_snapshot()
    }
}

/// Plain-data snapshot of one rank's mailbox counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct MailboxStatsSnapshot {
    pub sent: u64,
    pub received: u64,
    /// Payloads this rank forwarded as an intermediate router.
    pub transit_forwarded: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::CommWorld;

    /// Every rank sends `msgs_each` tagged payloads to every rank (incl.
    /// itself); polls until the quiescence detector confirms global
    /// delivery. Blocking collectives must NOT be used here: under a routed
    /// topology every rank is also a router, and a rank parked inside a
    /// blocking collective stops forwarding other ranks' transit batches.
    /// Returns per-rank stats plus the transport matrix.
    fn all_to_all_exercise(
        p: usize,
        cfg: MailboxConfig,
        msgs_each: usize,
    ) -> Vec<(MailboxStatsSnapshot, crate::stats::ChannelStatsSnapshot, u64)> {
        CommWorld::run(p, |ctx| {
            let mut mb = Mailbox::<u64>::open(ctx, 1, cfg);
            let mut q = crate::termination::Quiescence::new(ctx, 1);
            for dst in 0..p {
                for i in 0..msgs_each {
                    mb.send(dst, (ctx.rank() * 1_000_000 + dst * 1000 + i) as u64);
                }
            }
            let expect = (p * msgs_each) as u64;
            let mut got = Vec::new();
            loop {
                if mb.poll(&mut got) == 0 {
                    // flush partially-filled origin/transit batches, exactly
                    // like the traversal loop does when idle
                    mb.flush();
                    let idle = mb.pending_out() == 0;
                    if q.poll(mb.sent_count(), mb.received_count(), idle) {
                        break;
                    }
                }
            }
            assert_eq!(mb.received_count(), expect, "rank {} missed payloads", ctx.rank());
            let checksum = got.iter().fold(0u64, |a, &m| a.wrapping_add(m));
            (mb.stats(), mb.transport_stats(), checksum)
        })
    }

    fn expected_checksum(p: usize, me: usize, msgs_each: usize) -> u64 {
        let mut sum = 0u64;
        for src in 0..p {
            for i in 0..msgs_each {
                sum = sum.wrapping_add((src * 1_000_000 + me * 1000 + i) as u64);
            }
        }
        sum
    }

    #[test]
    fn direct_delivers_everything() {
        let p = 4;
        let res = all_to_all_exercise(p, MailboxConfig::default(), 10);
        for (me, (st, _, sum)) in res.iter().enumerate() {
            assert_eq!(st.sent, (p * 10) as u64);
            assert_eq!(st.received, (p * 10) as u64);
            assert_eq!(st.transit_forwarded, 0);
            assert_eq!(*sum, expected_checksum(p, me, 10));
        }
    }

    #[test]
    fn routed2d_delivers_everything_and_forwards() {
        let p = 16;
        let cfg = MailboxConfig { topology: TopologyKind::Routed2D, batch_size: 4, ..MailboxConfig::default() };
        let res = all_to_all_exercise(p, cfg, 6);
        let mut total_forwarded = 0;
        for (me, (st, _, sum)) in res.iter().enumerate() {
            assert_eq!(st.received, (p * 6) as u64, "rank {me}");
            assert_eq!(*sum, expected_checksum(p, me, 6));
            total_forwarded += st.transit_forwarded;
        }
        assert!(total_forwarded > 0, "2D routing must use intermediate hops");
    }

    #[test]
    fn routed3d_delivers_everything() {
        let p = 8;
        let cfg = MailboxConfig { topology: TopologyKind::Routed3D, batch_size: 3, ..MailboxConfig::default() };
        let res = all_to_all_exercise(p, cfg, 5);
        for (me, (st, _, sum)) in res.iter().enumerate() {
            assert_eq!(st.received, (p * 5) as u64);
            assert_eq!(*sum, expected_checksum(p, me, 5));
        }
    }

    #[test]
    fn routed2d_uses_fewer_channels_than_direct() {
        let p = 16;
        let direct = all_to_all_exercise(p, MailboxConfig::default(), 4);
        let routed = all_to_all_exercise(
            p,
            MailboxConfig { topology: TopologyKind::Routed2D, batch_size: 2, ..MailboxConfig::default() },
            4,
        );
        let d = direct[0].1.max_channels_used();
        let r = routed[0].1.max_channels_used();
        assert_eq!(d, p - 1, "direct all-to-all opens p-1 channels");
        // 4x4 grid: at most 3 row + 3 column peers
        assert!(r <= 6, "2D routing should use O(sqrt p) channels, got {r}");
    }

    #[test]
    fn batching_aggregates_payloads() {
        let p = 4;
        let cfg = MailboxConfig { topology: TopologyKind::Direct, batch_size: 16, ..MailboxConfig::default() };
        let res = all_to_all_exercise(p, cfg, 32);
        let snap = &res[0].1;
        assert!(
            snap.aggregation_factor() >= 8.0,
            "expected strong aggregation, got {}",
            snap.aggregation_factor()
        );
    }

    #[test]
    fn self_send_bypasses_network() {
        CommWorld::run(1, |ctx| {
            let mut mb = Mailbox::<u32>::open(ctx, 1, MailboxConfig::default());
            mb.send(0, 5);
            assert_eq!(mb.pending_out(), 0);
            let mut out = Vec::new();
            assert_eq!(mb.poll(&mut out), 1);
            assert_eq!(out, vec![5]);
            assert_eq!(mb.transport_stats().total_msgs(), 0);
        });
    }

    #[test]
    fn recv_cost_model_charges_receiver() {
        CommWorld::run(1, |ctx| {
            let cfg = MailboxConfig::default().with_recv_cost_ns(100_000);
            let mut mb = Mailbox::<u32>::open(ctx, 3, cfg);
            for i in 0..20 {
                mb.send(0, i);
            }
            let mut out = Vec::new();
            let t0 = std::time::Instant::now();
            while mb.received_count() < 20 {
                mb.poll(&mut out);
            }
            // 20 payloads x 100 us = 2 ms minimum
            assert!(t0.elapsed() >= std::time::Duration::from_millis(2));
        });
    }

    #[test]
    fn pending_out_tracks_buffered_payloads() {
        CommWorld::run(2, |ctx| {
            let mut mb = Mailbox::<u32>::open(
                ctx,
                1,
                MailboxConfig { topology: TopologyKind::Direct, batch_size: 100, ..MailboxConfig::default() },
            );
            if ctx.rank() == 0 {
                for i in 0..5 {
                    mb.send(1, i);
                }
                assert_eq!(mb.pending_out(), 5);
                mb.flush();
                assert_eq!(mb.pending_out(), 0);
            }
            ctx.barrier();
            if ctx.rank() == 1 {
                let mut out = Vec::new();
                while mb.received_count() < 5 {
                    mb.poll(&mut out);
                }
                assert_eq!(out, vec![0, 1, 2, 3, 4]);
            }
        });
    }
}
