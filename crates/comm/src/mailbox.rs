//! The paper's mailbox abstraction: `send(rank, data)` / `receive()` with
//! message aggregation and routing (Sections III-B and V) — byte-framed.
//!
//! Payloads are encoded through [`WireCodec`] and packed per next-hop into
//! [`Frame`] buffers (header + fixed-size records, see `codec.rs`). A frame
//! ships when it holds `batch_size` records or `frame_bytes` of payload,
//! whichever limit binds first. With a routed topology an intermediate rank
//! re-packs transit records toward their final destinations *by copying raw
//! record bytes* — exactly where the paper's extra aggregation factor of
//! `O(sqrt(p))` comes from: a routed rank merges records from many sources
//! heading to the same column.
//!
//! Frame buffers are recycled through a per-mailbox [`FramePool`]: in steady
//! state a rank receives about as many frames as it sends, so traversal
//! ships frames with zero allocation.
//!
//! Channels are bounded (capacity [`MailboxConfig::channel_capacity`]); a
//! full channel makes `ship` run the blocking slow path: count the stall,
//! drain this rank's own receiver into an inbox (so mutually-blocked ranks
//! always make progress), check for world poison, retry.
//!
//! End-to-end payload counters (`sent`, `received`) feed the quiescence
//! detector: a payload counts as sent when the origin rank accepts it and as
//! received when the final destination dequeues it, so in-flight transit
//! frames keep the traversal alive.
//!
//! # Integrity layer
//!
//! With [`MailboxConfig::integrity`] enabled (the default) every shipped
//! frame carries a CRC-32 trailer, sealed at flush time and verified (and
//! stripped) on receive. The sender keeps a copy of each sealed frame in a
//! per-destination retransmit buffer until the receiver's cumulative ACK
//! covers its sequence number; a receiver that detects a corrupt frame or a
//! persistent sequence gap NACKs the missing number over an unfaulted
//! reserved-tag control channel and the sender re-ships its buffered copy.
//! Tail loss — a dropped *last* frame leaves no gap to NACK — is repaired by
//! a sender-side retransmit timeout. Both repair paths back off
//! exponentially and give up (panic) after a bounded number of attempts.
//!
//! Exactly-once delivery survives all of this because retransmitted copies
//! reuse their original wire sequence number and a per-source window
//! advances only on *verified* deliveries: a corrupt copy never marks its
//! number delivered (so the repair is accepted later), and whichever of a
//! crossed original/retransmit pair lands second is dropped as a duplicate.
//! Corruption and frame loss are injected here, on the receive path, keyed
//! on a per-arrival nonce so a retransmitted copy draws a fresh verdict —
//! the mailbox is the only layer that owns frame bytes.

use crate::chan::TrySendError;
use crate::codec::{
    frame_init, frame_record_count, frame_record_size, frame_seal, frame_set_count,
    frame_verify_and_strip, Frame, FramePool, WireCodec, FRAME_CRC_BYTES, FRAME_HEADER_BYTES,
    RECORD_DST_BYTES,
};
use crate::runtime::RankCtx;
use crate::topology::{Topology, TopologyKind};
use crate::transport::Transport;
use std::collections::{BTreeMap, HashSet, VecDeque};

/// Configuration for a [`Mailbox`].
#[derive(Clone, Copy, Debug)]
pub struct MailboxConfig {
    /// Routing topology for dense communication.
    pub topology: TopologyKind,
    /// Flush a per-next-hop frame once it holds this many payload records.
    pub batch_size: usize,
    /// Flush a per-next-hop frame once it reaches this many bytes (header
    /// included). The record-count cap is
    /// `min(batch_size, (frame_bytes - header) / record_size)`, so whichever
    /// limit binds first triggers the flush. Default 4 KiB.
    pub frame_bytes: usize,
    /// Per-queue bound on in-flight frames between a rank pair. `None` is
    /// unbounded (no backpressure, the seed behavior); `Some(n)` makes a
    /// full queue stall the sender into the drain-and-retry slow path.
    pub channel_capacity: Option<usize>,
    /// Simulated network cost charged at the receiver per delivered
    /// payload, in nanoseconds. Zero (the default) disables the model.
    ///
    /// Shared-memory channels make a "network" message as cheap as a local
    /// call, which hides the per-message receive overhead every real
    /// interconnect has — the overhead that serializes at a hub's master
    /// partition and that ghost filtering exists to remove (Figure 13).
    /// Setting a few hundred nanoseconds restores that cost honestly:
    /// it is charged for every delivered payload, whoever sent it.
    pub recv_cost_ns: u64,
    /// CRC-frame every shipped frame and run the ACK/NACK/retransmit
    /// machinery (see the module docs). On by default; turning it off
    /// removes the trailer and the retransmit buffer (the measured-overhead
    /// baseline), and is rejected when the world's fault plan can corrupt
    /// or drop frames — nothing else could repair them.
    pub integrity: bool,
}

/// Default per-queue frame capacity: deep enough that healthy traversals
/// never stall, shallow enough that a stuck receiver backpressures its
/// senders instead of buffering without limit.
pub const DEFAULT_CHANNEL_CAPACITY: usize = 1024;

impl Default for MailboxConfig {
    fn default() -> Self {
        Self {
            topology: TopologyKind::Direct,
            batch_size: 64,
            frame_bytes: 4096,
            channel_capacity: Some(DEFAULT_CHANNEL_CAPACITY),
            recv_cost_ns: 0,
            integrity: true,
        }
    }
}

impl MailboxConfig {
    pub fn with_topology(topology: TopologyKind) -> Self {
        Self { topology, ..Self::default() }
    }

    pub fn with_recv_cost_ns(mut self, ns: u64) -> Self {
        self.recv_cost_ns = ns;
        self
    }

    pub fn with_frame_bytes(mut self, bytes: usize) -> Self {
        self.frame_bytes = bytes;
        self
    }

    pub fn with_channel_capacity(mut self, capacity: Option<usize>) -> Self {
        self.channel_capacity = capacity;
        self
    }

    pub fn with_integrity(mut self, integrity: bool) -> Self {
        self.integrity = integrity;
        self
    }
}

/// ACK/NACK control messages of the integrity layer. They travel on an
/// unfaulted, unbounded, FIFO reserved-tag channel
/// ([`crate::registry::INTEGRITY_TAG_BASE`] + the mailbox's tag) — lose the
/// control plane too and no retransmission scheme could terminate.
#[derive(Clone, Copy, Debug)]
enum Control {
    /// Cumulative acknowledgement: every frame with `seq < hi` sent to the
    /// acking rank has been verified and delivered, so the sender may prune
    /// its retransmit buffer below `hi`.
    Ack(u64),
    /// The receiver discarded (or never saw) frame `seq`; the sender must
    /// re-ship its buffered copy.
    Nack(u64),
}

/// Send a cumulative ACK after this many verified deliveries from one
/// source; deliveries below the threshold are covered by a lazy ACK a few
/// polls later, so tails are acknowledged promptly and retransmit buffers
/// stay small.
const ACK_EVERY_FRAMES: u64 = 32;
/// Polls after a delivery before the lazy cumulative ACK fires.
const ACK_LAZY_TICKS: u64 = 16;
/// Polls a sequence gap may persist before its first NACK: reordered
/// frames usually close gaps on their own, and an over-eager NACK only
/// costs a redundant retransmit (the window absorbs it).
const NACK_GRACE_TICKS: u64 = 64;
/// Sender-side retransmit timeout, in polls: how long an unacknowledged
/// frame may linger before being re-shipped unprompted. Generous because a
/// spurious re-ship is harmless but noisy — the receiver usually ACKs far
/// sooner.
const RTO_TICKS: u64 = 1024;
/// Back-off cap for both repair timers (each doubles up to this).
const BACKOFF_CAP_TICKS: u64 = 1 << 16;
/// Repair attempts before a frame is declared unrecoverable. Every attempt
/// draws an independent loss verdict, so reaching this bound under any
/// plausible loss rate means the machinery itself is broken.
const MAX_REPAIR_ATTEMPTS: u32 = 64;

/// Per-source receive window: sequence numbers below `hi` are
/// verified-and-delivered, `ahead` holds verified numbers past a gap. Same
/// compaction scheme as the transport fault buffer's dedup window, but
/// advanced only *after* CRC verification — a corrupt copy must never mark
/// its number delivered, or the retransmitted repair would be dropped as a
/// duplicate.
#[derive(Default)]
struct RecvWindow {
    hi: u64,
    ahead: HashSet<u64>,
    /// One past the highest sequence number observed (delivered or not —
    /// a discarded corrupt frame still proves its number exists).
    max_seen: u64,
    /// The cumulative point last advertised to the source.
    acked_hi: u64,
    delivered_since_ack: u64,
    /// Tick when the lazy cumulative ACK fires.
    ack_due: Option<u64>,
    /// Tick when the lowest missing number gets (re)NACKed.
    nack_due: Option<u64>,
    nack_backoff: u64,
    nack_attempts: u32,
}

impl RecvWindow {
    /// Record the verified delivery of `seq`; false if already delivered
    /// (this copy is redundant).
    fn first_delivery(&mut self, seq: u64) -> bool {
        self.max_seen = self.max_seen.max(seq + 1);
        if seq < self.hi || self.ahead.contains(&seq) {
            return false;
        }
        self.ahead.insert(seq);
        let before = self.hi;
        while self.ahead.remove(&self.hi) {
            self.hi += 1;
        }
        if self.hi != before {
            // progress: whatever gap remains is a fresh one, give it a
            // fresh grace period
            self.nack_due = None;
            self.nack_backoff = 0;
            self.nack_attempts = 0;
        }
        true
    }

    /// True while at least one sequence number below `max_seen` is missing.
    #[inline]
    fn gap(&self) -> bool {
        self.hi < self.max_seen
    }

    /// Note that a cumulative ACK for the current `hi` is being sent;
    /// returns the value to advertise.
    fn note_acked(&mut self) -> u64 {
        self.acked_hi = self.hi;
        self.delivered_since_ack = 0;
        self.ack_due = None;
        self.hi
    }
}

/// Per-destination retransmit buffer: sealed frames not yet covered by a
/// cumulative ACK, keyed by their wire sequence number.
#[derive(Default)]
struct SendBuffer {
    unacked: BTreeMap<u64, Vec<u8>>,
    /// Tick when the oldest unacknowledged frame is re-shipped unprompted.
    rto_due: Option<u64>,
    rto_backoff: u64,
    rto_attempts: u32,
}

/// State of the mailbox integrity layer (present when
/// [`MailboxConfig::integrity`] is on).
struct Integrity {
    control: Transport<Control>,
    windows: Vec<RecvWindow>,
    sends: Vec<SendBuffer>,
    /// Service clock: one tick per poll (and per backpressure retry).
    tick: u64,
    /// Frame arrival counter — the corruption/loss injection nonce, so a
    /// retransmitted copy draws a fresh verdict and recovery converges.
    arrivals: u64,
    /// True when the world's fault plan can corrupt or drop frames. The
    /// repair machinery (NACK timers, RTO) runs only then, so loss-free
    /// runs — including the fault-free baselines the chaos sweeps compare
    /// against — never emit spurious repair traffic.
    repair: bool,
}

/// Aggregating, optionally routed, byte-framed mailbox for payload type `M`.
pub struct Mailbox<M: Send + WireCodec + 'static> {
    transport: Transport<Frame>,
    topo: Box<dyn Topology>,
    /// Records per frame before a flush (both limits folded in).
    cap_records: usize,
    /// Bytes per record on the wire: 4-byte destination prefix + payload.
    record_size: usize,
    decode_ctx: M::DecodeCtx,
    /// Frame under construction per next-hop rank (empty = none started).
    out: Vec<Vec<u8>>,
    /// Record count of each frame under construction.
    out_counts: Vec<u32>,
    /// Total payloads currently waiting in `out`.
    pending_out: usize,
    /// Loopback queue for self-sends.
    local: VecDeque<M>,
    /// Frames drained off our receiver while waiting for channel space
    /// (already CRC-verified and windowed when the integrity layer is on).
    inbox: VecDeque<Vec<u8>>,
    integrity: Option<Integrity>,
    pool: FramePool,
    recv_cost_ns: u64,
    // end-to-end payload counters
    sent: u64,
    received: u64,
    transit_forwarded: u64,
    // byte-level counters
    frames_sent: u64,
    frames_received: u64,
    bytes_sent: u64,
    bytes_received: u64,
    records_sent: u64,
    backpressure_stalls: u64,
    fill_hist: [u64; 8],
}

/// Busy-wait for `ns` nanoseconds (sleep granularity is far coarser).
#[inline]
fn spin_ns(ns: u64) {
    if ns == 0 {
        return;
    }
    let start = std::time::Instant::now();
    let target = std::time::Duration::from_nanos(ns);
    while start.elapsed() < target {
        std::hint::spin_loop();
    }
}

impl<M: Send + WireCodec + 'static> Mailbox<M> {
    /// Open the mailbox on channel `tag` with the given config. Collective:
    /// all ranks must open the same `(M, tag)` mailbox. For payload types
    /// whose [`WireCodec::DecodeCtx`] is not `Default`, use
    /// [`Mailbox::open_with`].
    pub fn open(ctx: &RankCtx, tag: u64, cfg: MailboxConfig) -> Self
    where
        M::DecodeCtx: Default,
    {
        Self::open_with(ctx, tag, cfg, M::DecodeCtx::default())
    }

    /// Open the mailbox supplying the decode context used to reconstruct
    /// payloads from their wire bytes (e.g. a rank-replicated subset table).
    pub fn open_with(
        ctx: &RankCtx,
        tag: u64,
        cfg: MailboxConfig,
        decode_ctx: M::DecodeCtx,
    ) -> Self {
        let transport = ctx.channel_with_capacity::<Frame>(tag, cfg.channel_capacity);
        let p = ctx.size();
        let record_size = RECORD_DST_BYTES + M::WIRE_SIZE;
        let frame_overhead = FRAME_HEADER_BYTES + if cfg.integrity { FRAME_CRC_BYTES } else { 0 };
        let by_bytes = cfg.frame_bytes.saturating_sub(frame_overhead) / record_size;
        let cap_records = cfg.batch_size.max(1).min(by_bytes.max(1));
        let frame_cap = frame_overhead + cap_records * record_size;
        let repair = transport.fault_plan().is_some_and(|plan| plan.config().loses_frames());
        assert!(
            cfg.integrity || !repair,
            "the fault plan corrupts or drops frames: MailboxConfig::integrity must stay \
             enabled, nothing else can repair them"
        );
        if repair {
            // The integrity window dedups by (src, seq) *after* CRC
            // verification; the transport-level window would mark a corrupt
            // copy delivered and silently swallow its retransmission.
            transport.disable_fault_dedup();
        }
        let integrity = cfg.integrity.then(|| Integrity {
            control: ctx.channel_internal::<Control>(crate::registry::INTEGRITY_TAG_BASE + tag),
            windows: (0..p).map(|_| RecvWindow::default()).collect(),
            sends: (0..p).map(|_| SendBuffer::default()).collect(),
            tick: 0,
            arrivals: 0,
            repair,
        });
        Self {
            transport,
            topo: cfg.topology.build(p),
            cap_records,
            record_size,
            decode_ctx,
            out: (0..p).map(|_| Vec::new()).collect(),
            out_counts: vec![0; p],
            pending_out: 0,
            local: VecDeque::new(),
            inbox: VecDeque::new(),
            integrity,
            // a rank builds at most one frame per hop and keeps a few spares
            // for receive churn
            pool: FramePool::new(frame_cap, 2 * p + 8),
            recv_cost_ns: cfg.recv_cost_ns,
            sent: 0,
            received: 0,
            transit_forwarded: 0,
            frames_sent: 0,
            frames_received: 0,
            bytes_sent: 0,
            bytes_received: 0,
            records_sent: 0,
            backpressure_stalls: 0,
            fill_hist: [0; 8],
        }
    }

    #[inline]
    pub fn rank(&self) -> usize {
        self.transport.rank()
    }

    #[inline]
    pub fn ranks(&self) -> usize {
        self.transport.ranks()
    }

    /// Records per frame before a flush triggers (the fill-ratio
    /// denominator).
    #[inline]
    pub fn frame_capacity_records(&self) -> usize {
        self.cap_records
    }

    /// Queue `msg` for delivery to `dst` (paper: `mb.send(rank, data)`).
    pub fn send(&mut self, dst: usize, msg: M) {
        self.sent += 1;
        if dst == self.rank() {
            // Local delivery bypasses the network, like MPI self-sends the
            // paper short-circuits.
            self.local.push_back(msg);
            return;
        }
        let hop = self.route_toward(dst);
        self.begin_record(hop, dst);
        let buf = &mut self.out[hop];
        let start = buf.len();
        buf.resize(start + M::WIRE_SIZE, 0);
        msg.encode(&mut buf[start..]);
        self.end_record(hop);
    }

    /// A fresh per-worker staging shard for this mailbox (see
    /// [`SendShard`]).
    pub fn make_shard(&self) -> SendShard<M> {
        SendShard { buf: Vec::new() }
    }

    /// Drain a worker's staged sends through the normal [`Mailbox::send`]
    /// path, in staging order. Every framing, CRC, sequencing, loopback and
    /// counter behavior is exactly that of the equivalent direct `send`
    /// calls — shards only *defer* sends, they never bypass the wire path.
    pub fn absorb(&mut self, shard: &mut SendShard<M>) {
        for (dst, msg) in shard.buf.drain(..) {
            self.send(dst as usize, msg);
        }
    }

    /// Re-buffer a transit record toward `dst` by raw byte copy — transit
    /// hops never decode payloads.
    fn buffer_raw(&mut self, dst: usize, payload: &[u8]) {
        let hop = self.route_toward(dst);
        self.begin_record(hop, dst);
        self.out[hop].extend_from_slice(payload);
        self.end_record(hop);
    }

    #[inline]
    fn route_toward(&self, dst: usize) -> usize {
        let hop = self.topo.route(self.rank(), dst);
        debug_assert_ne!(hop, self.rank(), "topology routed a remote message to self");
        hop
    }

    /// Start a record in hop's frame: lazily init the frame, write the
    /// destination prefix.
    fn begin_record(&mut self, hop: usize, dst: usize) {
        if self.out[hop].is_empty() {
            let mut buf = self.pool.get();
            frame_init(&mut buf, self.record_size as u32);
            self.out[hop] = buf;
        }
        self.out[hop].extend_from_slice(&(dst as u32).to_le_bytes());
    }

    /// Close a record: bump counts and flush the frame if it is full.
    fn end_record(&mut self, hop: usize) {
        self.out_counts[hop] += 1;
        self.pending_out += 1;
        if self.out_counts[hop] as usize >= self.cap_records {
            self.flush_hop(hop);
        }
    }

    fn flush_hop(&mut self, hop: usize) {
        let records = self.out_counts[hop];
        if records == 0 {
            return;
        }
        let mut buf = std::mem::take(&mut self.out[hop]);
        self.out_counts[hop] = 0;
        frame_set_count(&mut buf, records);
        if self.integrity.is_some() {
            frame_seal(&mut buf);
        }
        self.pending_out -= records as usize;
        let bytes = buf.len() as u64;
        self.frames_sent += 1;
        self.bytes_sent += bytes;
        self.records_sent += records as u64;
        // fill bucket b covers (b/8, (b+1)/8] of capacity
        let bucket = ((records as usize * 8).saturating_sub(1) / self.cap_records).min(7);
        self.fill_hist[bucket] += 1;
        self.ship(hop, Frame { buf }, records as u64, bytes);
    }

    /// Hand one finalized frame to the transport, running the backpressure
    /// slow path if the bounded channel is full: count the stall, drain our
    /// own receiver into the inbox (a blocked sender must keep consuming so
    /// the world always makes progress), check for poison, retry.
    ///
    /// Under fault injection the plan may ask for this frame to be shipped
    /// twice: the copy reuses the original's sequence number and the
    /// receiver's dedup window drops whichever lands second. The decision
    /// keys on the sequence number the send will carry, so it is stable
    /// across backpressure retries.
    fn ship(&mut self, hop: usize, frame: Frame, records: u64, bytes: u64) {
        let duplicate =
            self.transport.wants_duplicate(hop).then(|| Frame { buf: frame.buf.clone() });
        // the integrity layer holds a copy of the sealed frame until the
        // receiver's cumulative ACK covers its sequence number
        let retain = self.integrity.is_some().then(|| frame.buf.clone());
        let mut frame = frame;
        loop {
            match self.transport.try_send_counted(hop, frame, records, bytes) {
                Ok(()) => {
                    if let Some(buf) = retain {
                        let seq = self.transport.peek_seq(hop) - 1;
                        let integ = self.integrity.as_mut().unwrap();
                        let sb = &mut integ.sends[hop];
                        if sb.unacked.is_empty() {
                            sb.rto_due = Some(integ.tick + RTO_TICKS);
                        }
                        sb.unacked.insert(seq, buf);
                    }
                    if let Some(copy) = duplicate {
                        self.transport.send_duplicate(hop, copy);
                    }
                    return;
                }
                Err(TrySendError::Full(f)) => {
                    self.backpressure_stalls += 1;
                    // servicing ACK/NACK while blocked keeps repair live:
                    // the peer we are waiting on may itself be waiting for
                    // one of our retransmissions
                    self.service_integrity();
                    let mut drained = false;
                    while let Some(buf) = self.recv_verified() {
                        self.inbox.push_back(buf);
                        drained = true;
                    }
                    if !drained {
                        self.transport.check_poison();
                        std::thread::yield_now();
                    }
                    frame = f;
                }
                Err(TrySendError::Disconnected(f)) => {
                    // world shutting down: delivery no longer matters
                    self.pool.put(f.buf);
                    return;
                }
            }
        }
    }

    /// Flush every partially-filled aggregation frame.
    pub fn flush(&mut self) {
        for hop in 0..self.out.len() {
            self.flush_hop(hop);
        }
    }

    /// Drain arrived payloads into `out`, forwarding transit records toward
    /// their destinations. Returns the number of payloads delivered locally.
    ///
    /// Must be called regularly even by "idle" ranks — under a routed
    /// topology every rank is also a router.
    pub fn poll(&mut self, out: &mut Vec<M>) -> usize {
        self.service_integrity();
        let mut delivered = 0;
        while let Some(m) = self.local.pop_front() {
            self.received += 1;
            out.push(m);
            delivered += 1;
        }
        // frames drained during a backpressure stall are processed first
        while let Some(buf) = self.inbox.pop_front() {
            delivered += self.process_frame(buf, out);
        }
        while let Some(buf) = self.recv_verified() {
            delivered += self.process_frame(buf, out);
        }
        // network cost model: per-payload receive overhead (see
        // `MailboxConfig::recv_cost_ns`); self-sends are charged too — the
        // paper's queue pushes even local visitors through the mailbox
        spin_ns(self.recv_cost_ns.saturating_mul(delivered as u64));
        delivered
    }

    /// Pull the next *deliverable* frame off the transport. Under the
    /// integrity layer this is where injected corruption and loss are
    /// applied (receive side, nonce-keyed), the CRC verified and stripped,
    /// corrupt frames NACKed, and redundant copies — fault duplicates or
    /// crossed retransmissions — dropped by the per-source window. Without
    /// the layer it is a plain receive.
    fn recv_verified(&mut self) -> Option<Vec<u8>> {
        loop {
            let w = self.transport.try_recv_wire()?;
            let (src, seq) = (w.src as usize, w.seq);
            let mut buf = w.msg.buf;
            let Some(integ) = self.integrity.as_mut() else {
                return Some(buf);
            };
            let me = self.transport.rank();
            let nonce = integ.arrivals;
            integ.arrivals += 1;
            if integ.repair {
                let plan = self.transport.fault_plan().expect("repair implies a fault plan");
                let tag = self.transport.tag();
                if plan.drop_frame(tag, src, me, seq, nonce) {
                    // injected loss: the frame vanishes, but its number is
                    // still known missing so gap repair can reclaim it
                    self.transport.stats().record_fault_drop(src, me);
                    let win = &mut integ.windows[src];
                    win.max_seen = win.max_seen.max(seq + 1);
                    self.pool.put(buf);
                    continue;
                }
                if let Some(h) = plan.corrupt_draw(tag, src, me, seq, nonce) {
                    let bit = (h % (buf.len() as u64 * 8)) as usize;
                    buf[bit / 8] ^= 1 << (bit % 8);
                    self.transport.stats().record_fault_corrupt(src, me);
                }
            }
            if !frame_verify_and_strip(&mut buf) {
                self.transport.stats().record_corrupt_detected(src, me);
                let win = &mut integ.windows[src];
                win.max_seen = win.max_seen.max(seq + 1);
                // NACK unless some copy of this number already made it
                // through (a corrupted duplicate needs no repair)
                if seq >= win.hi && !win.ahead.contains(&seq) {
                    integ.control.send(src, Control::Nack(seq));
                    self.transport.stats().record_nack(src, me);
                }
                self.pool.put(buf);
                continue;
            }
            let win = &mut integ.windows[src];
            if !win.first_delivery(seq) {
                // redundant copy. A retransmit of an already-delivered
                // frame usually means our ACK has not reached the sender
                // yet, so re-advertise the cumulative point immediately.
                if self.transport.fault_plan().is_some() {
                    self.transport.stats().record_fault_dedup(src, me);
                }
                integ.control.send(src, Control::Ack(win.note_acked()));
                self.pool.put(buf);
                continue;
            }
            win.delivered_since_ack += 1;
            if win.delivered_since_ack >= ACK_EVERY_FRAMES {
                integ.control.send(src, Control::Ack(win.note_acked()));
            } else if win.ack_due.is_none() {
                win.ack_due = Some(integ.tick + ACK_LAZY_TICKS);
            }
            return Some(buf);
        }
    }

    /// One tick of the integrity layer's service clock: drain the ACK/NACK
    /// control channel (pruning retransmit buffers, re-shipping NACKed
    /// frames), fire matured lazy ACKs, NACK persistent sequence gaps with
    /// exponential back-off, and re-ship unacknowledged tails past their
    /// retransmit timeout. No-op when the layer is off.
    fn service_integrity(&mut self) {
        let Some(integ) = self.integrity.as_mut() else { return };
        integ.tick += 1;
        let tick = integ.tick;
        let me = self.transport.rank();
        // control plane first: ACKs free buffer space, NACKs are urgent
        while let Some((peer, ctrl)) = integ.control.try_recv() {
            match ctrl {
                Control::Ack(hi) => {
                    let sb = &mut integ.sends[peer];
                    let before = sb.unacked.len();
                    sb.unacked = sb.unacked.split_off(&hi);
                    if sb.unacked.len() != before {
                        // progress: the tail timer restarts from scratch
                        sb.rto_backoff = 0;
                        sb.rto_attempts = 0;
                        sb.rto_due = (!sb.unacked.is_empty()).then(|| tick + RTO_TICKS);
                    }
                }
                Control::Nack(seq) => {
                    // a stale NACK (number already pruned by a later ACK)
                    // is ignored — the receiver got a copy after all
                    if let Some(buf) = integ.sends[peer].unacked.get(&seq) {
                        self.transport.send_retransmit(peer, seq, Frame { buf: buf.clone() });
                    }
                }
            }
        }
        for (src, win) in integ.windows.iter_mut().enumerate() {
            if win.ack_due.is_some_and(|due| tick >= due) {
                win.ack_due = None;
                if win.hi > win.acked_hi {
                    integ.control.send(src, Control::Ack(win.note_acked()));
                }
            }
            if !integ.repair || !win.gap() {
                continue;
            }
            match win.nack_due {
                None => win.nack_due = Some(tick + NACK_GRACE_TICKS),
                Some(due) if tick >= due => {
                    assert!(
                        win.nack_attempts < MAX_REPAIR_ATTEMPTS,
                        "rank {me}: frame seq {} from rank {src} unrecoverable after {} NACKs",
                        win.hi,
                        win.nack_attempts,
                    );
                    integ.control.send(src, Control::Nack(win.hi));
                    self.transport.stats().record_nack(src, me);
                    win.nack_attempts += 1;
                    win.nack_backoff =
                        (win.nack_backoff.max(NACK_GRACE_TICKS) * 2).min(BACKOFF_CAP_TICKS);
                    win.nack_due = Some(tick + win.nack_backoff);
                }
                _ => {}
            }
        }
        if integ.repair {
            for (dst, sb) in integ.sends.iter_mut().enumerate() {
                if sb.unacked.is_empty() {
                    continue;
                }
                match sb.rto_due {
                    None => sb.rto_due = Some(tick + RTO_TICKS),
                    Some(due) if tick >= due => {
                        assert!(
                            sb.rto_attempts < MAX_REPAIR_ATTEMPTS,
                            "rank {me}: frame to rank {dst} unacknowledged after {} timeouts",
                            sb.rto_attempts,
                        );
                        let (&seq, buf) = sb.unacked.iter().next().unwrap();
                        self.transport.send_retransmit(dst, seq, Frame { buf: buf.clone() });
                        sb.rto_attempts += 1;
                        sb.rto_backoff = (sb.rto_backoff.max(RTO_TICKS) * 2).min(BACKOFF_CAP_TICKS);
                        sb.rto_due = Some(tick + sb.rto_backoff);
                    }
                    _ => {}
                }
            }
        }
    }

    /// Unpack one received frame: deliver records addressed here, re-buffer
    /// transit records, recycle the buffer.
    fn process_frame(&mut self, buf: Vec<u8>, out: &mut Vec<M>) -> usize {
        self.frames_received += 1;
        // the CRC trailer was verified and stripped on receive; count it
        // here so wire-volume conservation (bytes sent == bytes received)
        // still holds
        let crc = if self.integrity.is_some() { FRAME_CRC_BYTES as u64 } else { 0 };
        self.bytes_received += buf.len() as u64 + crc;
        debug_assert_eq!(frame_record_size(&buf) as usize, self.record_size);
        let count = frame_record_count(&buf) as usize;
        let me = self.rank() as u32;
        let mut delivered = 0;
        for r in 0..count {
            let off = FRAME_HEADER_BYTES + r * self.record_size;
            let dst = u32::from_le_bytes(buf[off..off + RECORD_DST_BYTES].try_into().unwrap());
            let payload = &buf[off + RECORD_DST_BYTES..off + self.record_size];
            if dst == me {
                self.received += 1;
                out.push(M::decode(payload, &self.decode_ctx));
                delivered += 1;
            } else {
                self.transit_forwarded += 1;
                self.buffer_raw(dst as usize, payload);
            }
        }
        self.pool.put(buf);
        delivered
    }

    /// Payloads accepted by `send` on this rank (end-to-end counter).
    #[inline]
    pub fn sent_count(&self) -> u64 {
        self.sent
    }

    /// Payloads delivered to this rank by `poll` (end-to-end counter).
    #[inline]
    pub fn received_count(&self) -> u64 {
        self.received
    }

    /// Payloads waiting in this rank's aggregation frames (origin or
    /// transit). Zero is a precondition for reporting idle to the
    /// quiescence detector.
    #[inline]
    pub fn pending_out(&self) -> usize {
        self.pending_out
    }

    /// Local snapshot of mailbox counters.
    pub fn stats(&self) -> MailboxStatsSnapshot {
        MailboxStatsSnapshot {
            sent: self.sent,
            received: self.received,
            transit_forwarded: self.transit_forwarded,
            frames_sent: self.frames_sent,
            frames_received: self.frames_received,
            bytes_sent: self.bytes_sent,
            bytes_received: self.bytes_received,
            records_sent: self.records_sent,
            backpressure_stalls: self.backpressure_stalls,
            frame_capacity_records: self.cap_records as u64,
            frame_fill_hist: self.fill_hist,
            pool_allocated: self.pool.allocated(),
            pool_reused: self.pool.reused(),
        }
    }

    /// World-wide transport traffic matrix (frames, payload items, bytes).
    pub fn transport_stats(&self) -> crate::stats::ChannelStatsSnapshot {
        self.transport.stats_snapshot()
    }

    /// The wire sequence number the next frame to each destination rank
    /// will carry — the "seq-number table" a checkpoint records. Sequence
    /// numbers are never rewound on restore (the receiver-side dedup
    /// window must stay gap-free), so a restored table is only used to
    /// assert monotonicity, never re-applied.
    pub fn wire_seqs(&self) -> Vec<u64> {
        (0..self.ranks()).map(|d| self.transport.peek_seq(d)).collect()
    }

    /// World-shared live statistics of this mailbox's channel set, for
    /// recording checkpoint/crash/restore events against the traversal's
    /// own channel (see [`crate::stats::ChannelStats::record_checkpoint`]).
    pub fn channel_stats(&self) -> &crate::stats::ChannelStats {
        self.transport.stats()
    }
}

/// A per-worker staging buffer for messages produced off the mailbox's
/// owning thread.
///
/// The mailbox itself is single-threaded by design — its framing, CRC
/// sealing, sequence numbering and retransmit buffers all assume one
/// writer. When a rank fans work out to a worker pool (DESIGN.md §11),
/// each worker stages its `(dst, msg)` pairs in its own `SendShard` and
/// the coordinator later drains them through [`Mailbox::absorb`] (or a
/// caller-side filter over [`SendShard::drain`]), preserving the exact
/// wire path and counter semantics of direct sends.
pub struct SendShard<M> {
    buf: Vec<(u32, M)>,
}

impl<M> Default for SendShard<M> {
    fn default() -> Self {
        SendShard { buf: Vec::new() }
    }
}

impl<M> SendShard<M> {
    /// Stage `msg` for later delivery to `dst`.
    #[inline]
    pub fn send(&mut self, dst: usize, msg: M) {
        self.buf.push((dst as u32, msg));
    }

    /// Number of staged messages.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Drain the staged `(dst, msg)` pairs in staging order.
    pub fn drain(&mut self) -> impl Iterator<Item = (usize, M)> + '_ {
        self.buf.drain(..).map(|(d, m)| (d as usize, m))
    }
}

/// Plain-data snapshot of one rank's mailbox counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct MailboxStatsSnapshot {
    pub sent: u64,
    pub received: u64,
    /// Payloads this rank forwarded as an intermediate router.
    pub transit_forwarded: u64,
    /// Frames shipped / unpacked by this rank.
    pub frames_sent: u64,
    pub frames_received: u64,
    /// Wire bytes shipped / unpacked (headers included).
    pub bytes_sent: u64,
    pub bytes_received: u64,
    /// Records packed into shipped frames (origin + transit).
    pub records_sent: u64,
    /// Times a send found its bounded channel full and ran the slow path.
    pub backpressure_stalls: u64,
    /// The fill-ratio denominator: records per frame before a flush.
    pub frame_capacity_records: u64,
    /// Histogram of shipped-frame fill ratios; bucket `b` covers
    /// `(b/8, (b+1)/8]` of `frame_capacity_records`.
    pub frame_fill_hist: [u64; 8],
    /// Frame buffers allocated from the system / served from the free list.
    pub pool_allocated: u64,
    pub pool_reused: u64,
}

impl MailboxStatsSnapshot {
    /// Mean fill ratio of shipped frames in `(0, 1]` (0.0 if none shipped).
    pub fn mean_frame_fill(&self) -> f64 {
        if self.frames_sent == 0 || self.frame_capacity_records == 0 {
            0.0
        } else {
            self.records_sent as f64 / (self.frames_sent * self.frame_capacity_records) as f64
        }
    }

    /// Merge another rank's counters into this one (histogram included).
    /// `frame_capacity_records` must match, as it does for mailboxes opened
    /// with the same config.
    pub fn merge(&mut self, other: &MailboxStatsSnapshot) {
        self.sent += other.sent;
        self.received += other.received;
        self.transit_forwarded += other.transit_forwarded;
        self.frames_sent += other.frames_sent;
        self.frames_received += other.frames_received;
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
        self.records_sent += other.records_sent;
        self.backpressure_stalls += other.backpressure_stalls;
        self.frame_capacity_records = self.frame_capacity_records.max(other.frame_capacity_records);
        for (a, b) in self.frame_fill_hist.iter_mut().zip(other.frame_fill_hist.iter()) {
            *a += b;
        }
        self.pool_allocated += other.pool_allocated;
        self.pool_reused += other.pool_reused;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::CommWorld;

    /// Every rank sends `msgs_each` tagged payloads to every rank (incl.
    /// itself); polls until the quiescence detector confirms global
    /// delivery. Blocking collectives must NOT be used here: under a routed
    /// topology every rank is also a router, and a rank parked inside a
    /// blocking collective stops forwarding other ranks' transit frames.
    /// Returns per-rank stats plus the transport matrix.
    fn all_to_all_exercise(
        p: usize,
        cfg: MailboxConfig,
        msgs_each: usize,
    ) -> Vec<(MailboxStatsSnapshot, crate::stats::ChannelStatsSnapshot, u64)> {
        all_to_all_faulted(p, cfg, msgs_each, None)
    }

    /// Like [`all_to_all_exercise`] but under an optional fault plan.
    fn all_to_all_faulted(
        p: usize,
        cfg: MailboxConfig,
        msgs_each: usize,
        faults: Option<crate::fault::FaultConfig>,
    ) -> Vec<(MailboxStatsSnapshot, crate::stats::ChannelStatsSnapshot, u64)> {
        CommWorld::run_with_faults(p, faults, |ctx| {
            let mut mb = Mailbox::<u64>::open(ctx, 1, cfg);
            let mut q = crate::termination::Quiescence::new(ctx, 1);
            for dst in 0..p {
                for i in 0..msgs_each {
                    mb.send(dst, (ctx.rank() * 1_000_000 + dst * 1000 + i) as u64);
                }
            }
            let expect = (p * msgs_each) as u64;
            let mut got = Vec::new();
            loop {
                if mb.poll(&mut got) == 0 {
                    // flush partially-filled origin/transit frames, exactly
                    // like the traversal loop does when idle
                    mb.flush();
                    let idle = mb.pending_out() == 0;
                    if q.poll(mb.sent_count(), mb.received_count(), idle) {
                        break;
                    }
                }
            }
            assert_eq!(mb.received_count(), expect, "rank {} missed payloads", ctx.rank());
            let checksum = got.iter().fold(0u64, |a, &m| a.wrapping_add(m));
            (mb.stats(), mb.transport_stats(), checksum)
        })
    }

    fn expected_checksum(p: usize, me: usize, msgs_each: usize) -> u64 {
        let mut sum = 0u64;
        for src in 0..p {
            for i in 0..msgs_each {
                sum = sum.wrapping_add((src * 1_000_000 + me * 1000 + i) as u64);
            }
        }
        sum
    }

    #[test]
    fn direct_delivers_everything() {
        let p = 4;
        let res = all_to_all_exercise(p, MailboxConfig::default(), 10);
        for (me, (st, _, sum)) in res.iter().enumerate() {
            assert_eq!(st.sent, (p * 10) as u64);
            assert_eq!(st.received, (p * 10) as u64);
            assert_eq!(st.transit_forwarded, 0);
            assert_eq!(*sum, expected_checksum(p, me, 10));
        }
    }

    #[test]
    fn routed2d_delivers_everything_and_forwards() {
        let p = 16;
        let cfg = MailboxConfig {
            topology: TopologyKind::Routed2D,
            batch_size: 4,
            ..MailboxConfig::default()
        };
        let res = all_to_all_exercise(p, cfg, 6);
        let mut total_forwarded = 0;
        for (me, (st, _, sum)) in res.iter().enumerate() {
            assert_eq!(st.received, (p * 6) as u64, "rank {me}");
            assert_eq!(*sum, expected_checksum(p, me, 6));
            total_forwarded += st.transit_forwarded;
        }
        assert!(total_forwarded > 0, "2D routing must use intermediate hops");
    }

    #[test]
    fn routed3d_delivers_everything() {
        let p = 8;
        let cfg = MailboxConfig {
            topology: TopologyKind::Routed3D,
            batch_size: 3,
            ..MailboxConfig::default()
        };
        let res = all_to_all_exercise(p, cfg, 5);
        for (me, (st, _, sum)) in res.iter().enumerate() {
            assert_eq!(st.received, (p * 5) as u64);
            assert_eq!(*sum, expected_checksum(p, me, 5));
        }
    }

    #[test]
    fn routed2d_uses_fewer_channels_than_direct() {
        let p = 16;
        let direct = all_to_all_exercise(p, MailboxConfig::default(), 4);
        let routed = all_to_all_exercise(
            p,
            MailboxConfig {
                topology: TopologyKind::Routed2D,
                batch_size: 2,
                ..MailboxConfig::default()
            },
            4,
        );
        let d = direct[0].1.max_channels_used();
        let r = routed[0].1.max_channels_used();
        assert_eq!(d, p - 1, "direct all-to-all opens p-1 channels");
        // 4x4 grid: at most 3 row + 3 column peers
        assert!(r <= 6, "2D routing should use O(sqrt p) channels, got {r}");
    }

    #[test]
    fn batching_aggregates_payloads() {
        let p = 4;
        let cfg = MailboxConfig {
            topology: TopologyKind::Direct,
            batch_size: 16,
            ..MailboxConfig::default()
        };
        let res = all_to_all_exercise(p, cfg, 32);
        let snap = &res[0].1;
        assert!(
            snap.aggregation_factor() >= 8.0,
            "expected strong aggregation, got {}",
            snap.aggregation_factor()
        );
    }

    #[test]
    fn byte_stats_match_frame_math() {
        // deterministic: all sends before any poll, Direct topology, so
        // every pair ships ceil(msgs/batch) frames of known size
        let p = 3;
        let msgs = 10usize;
        let batch = 4usize;
        let cfg = MailboxConfig {
            topology: TopologyKind::Direct,
            batch_size: batch,
            ..MailboxConfig::default()
        };
        let record = 4 + 8; // dst prefix + u64 payload
        let overhead = (FRAME_HEADER_BYTES + FRAME_CRC_BYTES) as u64; // integrity is on by default
        let res = all_to_all_exercise(p, cfg, msgs);
        for (me, (st, tr, _)) in res.iter().enumerate() {
            // per remote destination: 2 full frames of 4 + 1 frame of 2
            let frames_per_dst = msgs.div_ceil(batch) as u64;
            assert_eq!(st.frames_sent, frames_per_dst * (p as u64 - 1), "rank {me}");
            assert_eq!(st.records_sent, (msgs * (p - 1)) as u64);
            let expect_bytes =
                (p as u64 - 1) * (frames_per_dst * overhead + (msgs * record) as u64);
            assert_eq!(st.bytes_sent, expect_bytes, "rank {me}");
            assert_eq!(st.bytes_received, expect_bytes, "symmetric all-to-all");
            for dst in 0..p {
                if dst != me {
                    assert_eq!(tr.msgs_between(me, dst), frames_per_dst);
                    assert_eq!(
                        tr.bytes_between(me, dst),
                        frames_per_dst * overhead + (msgs * record) as u64
                    );
                }
            }
            // fill: 2 frames at 4/4 (bucket 7), 1 frame at 2/4 (bucket 3)
            assert_eq!(st.frame_fill_hist[7], 2 * (p as u64 - 1));
            assert_eq!(st.frame_fill_hist[3], p as u64 - 1);
            let fill = st.mean_frame_fill();
            assert!((fill - 10.0 / 12.0).abs() < 1e-12, "mean fill {fill}");
        }
    }

    #[test]
    fn frame_bytes_limit_binds_before_batch_size() {
        // frame_bytes 64: header 8 + records of 12 -> 4 records per frame
        // even though batch_size allows 64
        CommWorld::run(1, |ctx| {
            let cfg = MailboxConfig::default().with_frame_bytes(64);
            let mb = Mailbox::<u64>::open(ctx, 1, cfg);
            assert_eq!(mb.frame_capacity_records(), 4);
        });
    }

    #[test]
    fn pool_recycles_after_warmup() {
        // interleave send and poll the way a traversal loop does, so each
        // rank's received frames feed its future sends
        let rounds = 100u64;
        let res = CommWorld::run(2, |ctx| {
            let cfg = MailboxConfig { batch_size: 8, ..MailboxConfig::default() };
            let mut mb = Mailbox::<u64>::open(ctx, 1, cfg);
            let peer = 1 - ctx.rank();
            let mut out = Vec::new();
            for round in 0..rounds {
                for i in 0..8 {
                    mb.send(peer, round * 8 + i);
                }
                mb.flush();
                while mb.received_count() < (round + 1) * 8 {
                    mb.poll(&mut out);
                }
            }
            mb.stats()
        });
        for st in &res {
            assert!(
                st.pool_reused > st.pool_allocated,
                "steady state must recycle: allocated {} reused {}",
                st.pool_allocated,
                st.pool_reused
            );
        }
    }

    #[test]
    fn self_send_bypasses_network() {
        CommWorld::run(1, |ctx| {
            let mut mb = Mailbox::<u32>::open(ctx, 1, MailboxConfig::default());
            mb.send(0, 5);
            assert_eq!(mb.pending_out(), 0);
            let mut out = Vec::new();
            assert_eq!(mb.poll(&mut out), 1);
            assert_eq!(out, vec![5]);
            assert_eq!(mb.transport_stats().total_msgs(), 0);
            assert_eq!(mb.stats().bytes_sent, 0, "self-sends never hit the wire");
        });
    }

    #[test]
    fn recv_cost_model_charges_receiver() {
        CommWorld::run(1, |ctx| {
            let cfg = MailboxConfig::default().with_recv_cost_ns(100_000);
            let mut mb = Mailbox::<u32>::open(ctx, 3, cfg);
            for i in 0..20 {
                mb.send(0, i);
            }
            let mut out = Vec::new();
            let t0 = std::time::Instant::now();
            while mb.received_count() < 20 {
                mb.poll(&mut out);
            }
            // 20 payloads x 100 us = 2 ms minimum
            assert!(t0.elapsed() >= std::time::Duration::from_millis(2));
        });
    }

    #[test]
    fn pending_out_tracks_buffered_payloads() {
        CommWorld::run(2, |ctx| {
            let mut mb = Mailbox::<u32>::open(
                ctx,
                1,
                MailboxConfig {
                    topology: TopologyKind::Direct,
                    batch_size: 100,
                    ..MailboxConfig::default()
                },
            );
            if ctx.rank() == 0 {
                for i in 0..5 {
                    mb.send(1, i);
                }
                assert_eq!(mb.pending_out(), 5);
                mb.flush();
                assert_eq!(mb.pending_out(), 0);
            }
            ctx.barrier();
            if ctx.rank() == 1 {
                let mut out = Vec::new();
                while mb.received_count() < 5 {
                    mb.poll(&mut out);
                }
                assert_eq!(out, vec![0, 1, 2, 3, 4]);
            }
        });
    }

    #[test]
    fn capacity_one_ping_pong_terminates_with_stalls() {
        // the satellite scenario: two ranks, every frame channel holds ONE
        // frame, unaggregated sends. The exchange must terminate (the slow
        // path keeps draining) and must record stalls on at least one rank.
        let p = 2;
        let cfg = MailboxConfig {
            topology: TopologyKind::Direct,
            batch_size: 1,
            channel_capacity: Some(1),
            ..MailboxConfig::default()
        };
        let res = all_to_all_exercise(p, cfg, 300);
        let total_stalls: u64 = res.iter().map(|(st, _, _)| st.backpressure_stalls).sum();
        assert!(total_stalls > 0, "capacity 1 under 300 eager sends must stall");
        for (st, tr, _) in &res {
            assert_eq!(st.received, 600);
            assert_eq!(tr.total_stalls(), total_stalls, "shared matrix agrees");
        }
    }

    #[test]
    fn routed_ping_pong_with_tiny_capacity_terminates() {
        // same property through a routing topology: transit forwarding must
        // not deadlock against backpressure
        let p = 8;
        let cfg = MailboxConfig {
            topology: TopologyKind::Routed3D,
            batch_size: 2,
            channel_capacity: Some(1),
            ..MailboxConfig::default()
        };
        let res = all_to_all_exercise(p, cfg, 50);
        for (me, (st, _, sum)) in res.iter().enumerate() {
            assert_eq!(st.received, (p * 50) as u64);
            assert_eq!(*sum, expected_checksum(p, me, 50));
        }
    }

    #[test]
    fn integrity_off_uses_legacy_frame_math() {
        // the CRC-off baseline row: no trailer on the wire, byte counters
        // match the pre-integrity frame grammar exactly
        let p = 3;
        let msgs = 10usize;
        let batch = 4usize;
        let cfg = MailboxConfig {
            topology: TopologyKind::Direct,
            batch_size: batch,
            ..MailboxConfig::default()
        }
        .with_integrity(false);
        let record = 4 + 8;
        let res = all_to_all_exercise(p, cfg, msgs);
        for (me, (st, tr, _)) in res.iter().enumerate() {
            let frames_per_dst = msgs.div_ceil(batch) as u64;
            let expect_bytes = (p as u64 - 1)
                * (frames_per_dst * FRAME_HEADER_BYTES as u64 + (msgs * record) as u64);
            assert_eq!(st.bytes_sent, expect_bytes, "rank {me}");
            assert_eq!(st.bytes_received, expect_bytes);
            assert_eq!(tr.total_retransmits(), 0);
            assert_eq!(tr.total_nacks(), 0);
        }
    }

    #[test]
    fn corrupted_frames_are_detected_and_repaired() {
        use crate::fault::FaultConfig;
        let p = 2;
        let cfg = MailboxConfig { batch_size: 4, ..MailboxConfig::default() };
        let faults = FaultConfig::quiet(7).with_corrupt(300);
        let res = all_to_all_faulted(p, cfg, 200, Some(faults));
        for (me, (st, tr, sum)) in res.iter().enumerate() {
            assert_eq!(st.received, (p * 200) as u64, "rank {me}");
            assert_eq!(*sum, expected_checksum(p, me, 200));
            assert!(tr.total_fault_corrupts() > 0, "30% corruption must fire");
            assert_eq!(
                tr.total_corrupt_detected(),
                tr.total_fault_corrupts(),
                "every injected flip must be caught by the CRC"
            );
            assert!(tr.total_nacks() > 0);
            assert!(tr.total_retransmits() > 0, "corrupt frames must be re-shipped");
        }
    }

    #[test]
    fn dropped_frames_are_repaired() {
        use crate::fault::FaultConfig;
        let p = 2;
        let cfg = MailboxConfig { batch_size: 4, ..MailboxConfig::default() };
        let faults = FaultConfig::quiet(11).with_drop(300);
        let res = all_to_all_faulted(p, cfg, 200, Some(faults));
        for (me, (st, tr, sum)) in res.iter().enumerate() {
            assert_eq!(st.received, (p * 200) as u64, "rank {me}");
            assert_eq!(*sum, expected_checksum(p, me, 200));
            assert!(tr.total_fault_drops() > 0, "30% loss must fire");
            assert!(tr.total_retransmits() > 0, "lost frames must be re-shipped");
            assert_eq!(tr.total_corrupt_detected(), 0, "pure loss corrupts nothing");
        }
    }

    #[test]
    fn lossy_chaos_delivers_exactly_once_through_routing() {
        // the full gauntlet: delay + reorder + duplicate + stall + slow
        // ranks + corruption + loss, through a routed topology where every
        // rank is also a repairing router. Delivery must stay exactly-once.
        use crate::fault::FaultConfig;
        let p = 8;
        let cfg = MailboxConfig {
            topology: TopologyKind::Routed2D,
            batch_size: 3,
            ..MailboxConfig::default()
        };
        let res = all_to_all_faulted(p, cfg, 30, Some(FaultConfig::lossy(5)));
        let mut corrupts = 0;
        let mut drops = 0;
        for (me, (st, tr, sum)) in res.iter().enumerate() {
            assert_eq!(st.received, (p * 30) as u64, "rank {me}");
            assert_eq!(*sum, expected_checksum(p, me, 30), "rank {me} payloads differ");
            assert_eq!(tr.total_corrupt_detected(), tr.total_fault_corrupts());
            corrupts = tr.total_fault_corrupts();
            drops = tr.total_fault_drops();
        }
        assert!(corrupts + drops > 0, "lossy() must exercise the repair path");
    }

    #[test]
    #[should_panic(expected = "integrity")]
    fn loss_faults_require_integrity() {
        use crate::fault::FaultConfig;
        CommWorld::run_with_faults(1, Some(FaultConfig::lossy(3)), |ctx| {
            let cfg = MailboxConfig::default().with_integrity(false);
            let _mb = Mailbox::<u64>::open(ctx, 1, cfg);
        });
    }

    /// A shard-staged all-to-all must be indistinguishable from direct
    /// sends: same deliveries, same end-to-end counters, same frame and
    /// byte totals (the absorb path reuses `send` verbatim, so framing and
    /// CRC behavior cannot drift).
    #[test]
    fn shard_absorb_matches_direct_sends() {
        let p = 4;
        let msgs_each = 25;
        let run = |staged: bool| {
            CommWorld::run(p, move |ctx| {
                let mut mb = Mailbox::<u64>::open(ctx, 1, MailboxConfig::default());
                let mut q = crate::termination::Quiescence::new(ctx, 1);
                let mut shard = mb.make_shard();
                for dst in 0..p {
                    for i in 0..msgs_each {
                        let msg = (ctx.rank() * 1_000_000 + dst * 1000 + i) as u64;
                        if staged {
                            shard.send(dst, msg);
                        } else {
                            mb.send(dst, msg);
                        }
                    }
                }
                mb.absorb(&mut shard);
                assert!(shard.is_empty());
                let mut got = Vec::new();
                loop {
                    if mb.poll(&mut got) == 0 {
                        mb.flush();
                        let idle = mb.pending_out() == 0;
                        if q.poll(mb.sent_count(), mb.received_count(), idle) {
                            break;
                        }
                    }
                }
                got.sort_unstable();
                (mb.stats(), got)
            })
        };
        let direct = run(false);
        let staged = run(true);
        for (rank, ((ds, dg), (ss, sg))) in direct.iter().zip(staged.iter()).enumerate() {
            assert_eq!(dg, sg, "rank {rank}: staged delivery differs");
            assert_eq!(ds.sent, ss.sent, "rank {rank}");
            assert_eq!(ds.received, ss.received, "rank {rank}");
            assert_eq!(ds.frames_sent, ss.frames_sent, "rank {rank}");
            assert_eq!(ds.bytes_sent, ss.bytes_sent, "rank {rank}");
            assert_eq!(ds.records_sent, ss.records_sent, "rank {rank}");
        }
    }

    #[test]
    fn snapshot_merge_accumulates() {
        let mut a = MailboxStatsSnapshot {
            frames_sent: 2,
            records_sent: 6,
            frame_capacity_records: 4,
            ..Default::default()
        };
        let b = MailboxStatsSnapshot {
            frames_sent: 1,
            records_sent: 4,
            frame_capacity_records: 4,
            backpressure_stalls: 3,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.frames_sent, 3);
        assert_eq!(a.backpressure_stalls, 3);
        assert!((a.mean_frame_fill() - 10.0 / 12.0).abs() < 1e-12);
    }
}
