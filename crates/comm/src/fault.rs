//! Deterministic fault injection for the simulated network.
//!
//! The threaded [`CommWorld`] runtime normally exercises exactly one lucky
//! interleaving per run: channels are FIFO, delivery is immediate, and no
//! frame is ever lost, duplicated, or stalled. Real interconnects are not
//! that polite, and the paper's asynchronous visitor queue is only correct
//! because its quiescence detection tolerates arbitrary message delay and
//! reordering. This module makes those adversarial schedules reproducible:
//! a [`FaultPlan`] seeded from a single `u64` decides, as a *pure function
//! of each message's identity* `(channel tag, src, dst, sequence number)`,
//! whether that message is delayed, reordered, or duplicated — so the same
//! seed injects the same faults no matter how the OS schedules the rank
//! threads.
//!
//! Faults are injected on the receiver side of every **user-tag** channel
//! (tag below [`crate::registry::RESERVED_TAG_BASE`], which covers the
//! mailbox's byte-framed data plane). Control channels — collectives and
//! termination detection — keep the per-pair FIFO ordering MPI guarantees
//! for them; the adversary attacks payload *timing*, which is exactly where
//! distributed-BFS-style termination bugs live.
//!
//! The injectable faults:
//!
//! - **delay** — a message is held for a bounded number of receive polls
//!   ("ticks") before it becomes visible.
//! - **reorder** — a message is pushed behind later arrivals (and delay
//!   differences reorder messages on their own); the `reordered` counter
//!   measures *observed* overtakes at delivery time.
//! - **duplicate-then-dedup** — the mailbox ships a byte-identical copy of
//!   a frame with the same sequence number; the receiving transport's dedup
//!   layer drops whichever copy arrives second.
//! - **transient stall** — the receive side of a channel goes quiet for a
//!   bounded number of ticks (arrivals still drain into the fault buffer,
//!   so bounded channels cannot deadlock against a stall).
//! - **slow-rank throttle** — a seeded subset of ranks pays extra hold
//!   ticks on every delivery, modeling a straggler node.
//! - **corruption** — a seeded bit is flipped in a frame's payload bytes on
//!   arrival; the mailbox's CRC32 trailer detects the damage and a NACK
//!   triggers a retransmission (see `mailbox.rs`).
//! - **loss** — an arriving frame is discarded outright; the sender's
//!   retransmit buffer (ACK/NACK + timeout driven) re-ships it.
//!
//! Corruption and loss attack frame *bytes*, so they are injected by the
//! mailbox (the only layer that owns byte frames) rather than by the
//! generic per-message fault buffer below. Their decisions additionally mix
//! in a per-arrival nonce: a retransmitted copy of a seq draws a fresh
//! verdict, so a permille-rate plan cannot corrupt the same frame forever.
//!
//! Every fault is counted per `(src, dst)` pair in [`ChannelStats`] next to
//! the message/byte counters, so tests can assert that a seed actually
//! exercised a fault type.
//!
//! Liveness: held messages are released by ticks, and ticks advance on
//! every `try_recv` — which idle traversal loops call continuously until
//! quiescence fires — so no fault can hold a message forever, and the
//! quiescence detector (whose end-to-end payload counters only move on
//! true delivery) can never be tricked into terminating early by a held
//! frame.
//!
//! [`CommWorld`]: crate::runtime::CommWorld
//! [`ChannelStats`]: crate::stats::ChannelStats

use std::collections::BinaryHeap;

use havoq_util::FxHashMap;

use crate::chan::Receiver;
use crate::registry::Wire;
use crate::stats::ChannelStats;

/// Fault probabilities and magnitudes, all decided deterministically from
/// `seed`. Probabilities are per-mille (`0..=1000`); a zero probability
/// disables that fault entirely. The all-zero config (see
/// [`FaultConfig::quiet`]) injects nothing and is never threaded into
/// transports.
#[derive(Clone, Copy, Debug)]
pub struct FaultConfig {
    /// Root seed; every per-message decision hashes this.
    pub seed: u64,
    /// Per-mille chance a message is delayed.
    pub delay_permille: u16,
    /// Max extra receive polls a delayed message is held for (uniform in
    /// `1..=delay_max_ticks`).
    pub delay_max_ticks: u32,
    /// Per-mille chance a message is pushed behind later arrivals.
    pub reorder_permille: u16,
    /// How many later arrivals may overtake a reordered message.
    pub reorder_window: u32,
    /// Per-mille chance a shipped frame is duplicated by the mailbox.
    pub duplicate_permille: u16,
    /// Per-mille chance an arrival opens a receive stall window.
    pub stall_permille: u16,
    /// Length of a stall window in receive polls.
    pub stall_ticks: u32,
    /// Per-mille chance a given rank is designated slow for the whole run.
    pub slow_rank_permille: u16,
    /// Extra hold ticks a slow rank pays on every delivery.
    pub slow_rank_ticks: u32,
    /// Per-mille chance a checkpoint epoch kills one rank mid-write. Only
    /// consulted by checkpointed traversals (see `crash_victim`); epoch 0
    /// is exempt so a restore point always exists.
    pub crash_permille: u16,
    /// Deterministic crash: `(rank, epoch)` dies on the run's first
    /// incarnation. `(rank, 0)` never fires (epoch 0 is protected).
    pub forced_crash: Option<(usize, u64)>,
    /// Deterministic unbounded stall: `(rank, after_arrivals)` wedges the
    /// faulted channel's receive side on `rank` forever once it has
    /// accepted that many arrivals. Unlike `stall_permille`, this stall
    /// never releases — it exists to exercise the progress watchdog.
    pub hard_stall: Option<(usize, u64)>,
    /// Per-mille chance an arriving frame has one payload bit flipped.
    pub corrupt_permille: u16,
    /// Per-mille chance an arriving frame is dropped before delivery.
    pub drop_permille: u16,
}

impl FaultConfig {
    /// No faults at all (the implicit config of [`CommWorld::run`]).
    ///
    /// [`CommWorld::run`]: crate::runtime::CommWorld::run
    pub fn quiet(seed: u64) -> Self {
        Self {
            seed,
            delay_permille: 0,
            delay_max_ticks: 0,
            reorder_permille: 0,
            reorder_window: 0,
            duplicate_permille: 0,
            stall_permille: 0,
            stall_ticks: 0,
            slow_rank_permille: 0,
            slow_rank_ticks: 0,
            crash_permille: 0,
            forced_crash: None,
            hard_stall: None,
            corrupt_permille: 0,
            drop_permille: 0,
        }
    }

    /// The standard adversary of the fault sweep: delay, reorder and
    /// duplication all active at rates high enough that a short traversal
    /// exercises each, plus occasional stalls and a slow-rank chance.
    pub fn chaos(seed: u64) -> Self {
        Self {
            seed,
            delay_permille: 200,
            delay_max_ticks: 12,
            reorder_permille: 150,
            reorder_window: 6,
            duplicate_permille: 100,
            stall_permille: 25,
            stall_ticks: 24,
            slow_rank_permille: 250,
            slow_rank_ticks: 2,
            crash_permille: 0,
            forced_crash: None,
            hard_stall: None,
            corrupt_permille: 0,
            drop_permille: 0,
        }
    }

    /// The integrity adversary: everything [`FaultConfig::chaos`] injects,
    /// plus frame corruption and outright frame loss at rates that force
    /// the CRC + ACK/NACK retransmission machinery to carry real traffic.
    pub fn lossy(seed: u64) -> Self {
        Self::chaos(seed).with_corrupt(25).with_drop(25)
    }

    pub fn with_delay(mut self, permille: u16, max_ticks: u32) -> Self {
        self.delay_permille = permille;
        self.delay_max_ticks = max_ticks;
        self
    }

    pub fn with_reorder(mut self, permille: u16, window: u32) -> Self {
        self.reorder_permille = permille;
        self.reorder_window = window;
        self
    }

    pub fn with_duplicate(mut self, permille: u16) -> Self {
        self.duplicate_permille = permille;
        self
    }

    pub fn with_stall(mut self, permille: u16, ticks: u32) -> Self {
        self.stall_permille = permille;
        self.stall_ticks = ticks;
        self
    }

    pub fn with_slow_ranks(mut self, permille: u16, ticks: u32) -> Self {
        self.slow_rank_permille = permille;
        self.slow_rank_ticks = ticks;
        self
    }

    /// Seeded rank crashes at checkpoint epochs (checkpointed traversals
    /// only; a traversal that never checkpoints never consults this).
    pub fn with_crash(mut self, permille: u16) -> Self {
        self.crash_permille = permille;
        self
    }

    /// Kill exactly `rank` while it writes checkpoint `epoch`, once (the
    /// retry after restore survives). Epoch 0 is protected and never fires.
    pub fn with_forced_crash(mut self, rank: usize, epoch: u64) -> Self {
        self.forced_crash = Some((rank, epoch));
        self
    }

    /// Wedge `rank`'s receive side of every faulted (user-tag) channel
    /// forever once that channel has accepted `after_arrivals` messages.
    /// Collectives and termination detection are never faulted, so the
    /// progress watchdog can still reach a world-agreed abort. Unlike
    /// [`FaultConfig::with_stall`], this stall never releases; pairing it
    /// with a lossy plan would eventually trip the retransmit panic
    /// horizon, so keep hard-stall runs on non-lossy plans.
    pub fn with_hard_stall(mut self, rank: usize, after_arrivals: u64) -> Self {
        self.hard_stall = Some((rank, after_arrivals));
        self
    }

    /// Seeded single-bit flips in arriving frame payloads. Requires the
    /// mailbox integrity layer (on by default) — the CRC is what turns a
    /// flipped bit into a NACK instead of silent data corruption.
    pub fn with_corrupt(mut self, permille: u16) -> Self {
        self.corrupt_permille = permille;
        self
    }

    /// Seeded loss of arriving frames. Requires the mailbox integrity
    /// layer — the retransmit buffer is what keeps the traversal live.
    pub fn with_drop(mut self, permille: u16) -> Self {
        self.drop_permille = permille;
        self
    }

    /// True if any fault can ever fire under this config.
    ///
    /// Written as an exhaustive destructuring on purpose: adding a fault
    /// field without deciding whether it activates the plan is a compile
    /// error here, not silent drift in a hand-maintained `||` chain.
    pub fn is_active(&self) -> bool {
        let Self {
            seed: _,
            delay_permille,
            delay_max_ticks,
            reorder_permille,
            reorder_window,
            duplicate_permille,
            stall_permille,
            stall_ticks,
            slow_rank_permille,
            slow_rank_ticks,
            crash_permille,
            forced_crash,
            hard_stall,
            corrupt_permille,
            drop_permille,
        } = *self;
        (delay_permille > 0 && delay_max_ticks > 0)
            || (reorder_permille > 0 && reorder_window > 0)
            || duplicate_permille > 0
            || (stall_permille > 0 && stall_ticks > 0)
            || (slow_rank_permille > 0 && slow_rank_ticks > 0)
            || crash_permille > 0
            || forced_crash.is_some()
            || hard_stall.is_some()
            || corrupt_permille > 0
            || drop_permille > 0
    }

    /// True when frames can be corrupted or lost, i.e. the mailbox must run
    /// its injection hooks and the integrity layer must be enabled.
    pub fn loses_frames(&self) -> bool {
        self.corrupt_permille > 0 || self.drop_permille > 0
    }
}

/// Salts keeping the per-fault decision streams independent.
const SALT_DELAY: u64 = 0xD31A;
const SALT_REORDER: u64 = 0x2E0D;
const SALT_DUP: u64 = 0xD0B1;
const SALT_STALL: u64 = 0x57A1;
const SALT_SLOW: u64 = 0x510E;
const SALT_CRASH: u64 = 0xC4A5;
const SALT_CORRUPT: u64 = 0xC0FF;
const SALT_DROP: u64 = 0xD20F;

/// World-shared fault decision oracle. All methods are pure functions of
/// the seed and the message identity, so decisions are identical across
/// runs regardless of thread interleaving.
#[derive(Debug)]
pub struct FaultPlan {
    cfg: FaultConfig,
}

impl FaultPlan {
    pub fn new(cfg: FaultConfig) -> Self {
        Self { cfg }
    }

    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// SplitMix64-style avalanche over the seed, a salt, and the message
    /// identity.
    #[inline]
    fn mix(&self, salt: u64, a: u64, b: u64, c: u64) -> u64 {
        let mut z = self
            .cfg
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(salt)
            .wrapping_add(a.wrapping_mul(0xbf58_476d_1ce4_e5b9))
            .wrapping_add(b.wrapping_mul(0x94d0_49bb_1331_11eb))
            .wrapping_add(c.wrapping_mul(0x2545_f491_4f6c_dd1d));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    #[inline]
    fn hit(&self, h: u64, permille: u16) -> bool {
        permille > 0 && h % 1000 < permille as u64
    }

    /// Extra hold ticks for message `(tag, src, dst, seq)`; 0 = no delay.
    #[inline]
    pub fn delay_ticks(&self, tag: u64, src: usize, dst: usize, seq: u64) -> u32 {
        if self.cfg.delay_max_ticks == 0 {
            return 0;
        }
        let h = self.mix(SALT_DELAY, tag ^ ((src as u64) << 32), dst as u64, seq);
        if self.hit(h, self.cfg.delay_permille) {
            1 + ((h >> 10) % self.cfg.delay_max_ticks as u64) as u32
        } else {
            0
        }
    }

    /// How many later arrivals may overtake this message; 0 = in order.
    #[inline]
    pub fn reorder_shift(&self, tag: u64, src: usize, dst: usize, seq: u64) -> u32 {
        if self.cfg.reorder_window == 0 {
            return 0;
        }
        let h = self.mix(SALT_REORDER, tag ^ ((src as u64) << 32), dst as u64, seq);
        if self.hit(h, self.cfg.reorder_permille) {
            1 + ((h >> 10) % self.cfg.reorder_window as u64) as u32
        } else {
            0
        }
    }

    /// Should the frame `(tag, src, dst, seq)` be shipped twice?
    #[inline]
    pub fn duplicate(&self, tag: u64, src: usize, dst: usize, seq: u64) -> bool {
        let h = self.mix(SALT_DUP, tag ^ ((src as u64) << 32), dst as u64, seq);
        self.hit(h, self.cfg.duplicate_permille)
    }

    /// Stall window (in ticks) opened by arrival number `arrival` at
    /// receiver `dst` on channel `tag`; 0 = none.
    #[inline]
    pub fn stall_window(&self, tag: u64, dst: usize, arrival: u64) -> u32 {
        if self.cfg.stall_ticks == 0 {
            return 0;
        }
        let h = self.mix(SALT_STALL, tag, dst as u64, arrival);
        if self.hit(h, self.cfg.stall_permille) {
            self.cfg.stall_ticks
        } else {
            0
        }
    }

    /// Is `rank` a designated straggler for this run?
    #[inline]
    pub fn is_slow(&self, rank: usize) -> bool {
        if self.cfg.slow_rank_ticks == 0 {
            return false;
        }
        let h = self.mix(SALT_SLOW, rank as u64, 0, 0);
        self.hit(h, self.cfg.slow_rank_permille)
    }

    /// True when any message on any channel could be duplicated; receivers
    /// use this to decide whether to track delivered sequence numbers.
    #[inline]
    pub fn dedup_needed(&self) -> bool {
        self.cfg.duplicate_permille > 0
    }

    /// Entropy draw for corrupting the frame `(tag, src, dst, seq)` on its
    /// `attempt`-th arrival at the receiver; `Some(h)` means flip the bit
    /// the caller derives from `h` (mod the frame's bit length). Mixing in
    /// the arrival nonce means a retransmitted copy draws a fresh verdict,
    /// so recovery converges geometrically instead of looping forever.
    #[inline]
    pub fn corrupt_draw(
        &self,
        tag: u64,
        src: usize,
        dst: usize,
        seq: u64,
        attempt: u64,
    ) -> Option<u64> {
        if self.cfg.corrupt_permille == 0 {
            return None;
        }
        let h =
            self.mix(SALT_CORRUPT, tag ^ ((src as u64) << 32), (dst as u64) ^ (attempt << 16), seq);
        if self.hit(h, self.cfg.corrupt_permille) {
            Some(h >> 10)
        } else {
            None
        }
    }

    /// Should the frame `(tag, src, dst, seq)` be discarded on its
    /// `attempt`-th arrival at the receiver?
    #[inline]
    pub fn drop_frame(&self, tag: u64, src: usize, dst: usize, seq: u64, attempt: u64) -> bool {
        if self.cfg.drop_permille == 0 {
            return false;
        }
        let h =
            self.mix(SALT_DROP, tag ^ ((src as u64) << 32), (dst as u64) ^ (attempt << 16), seq);
        self.hit(h, self.cfg.drop_permille)
    }

    /// Which rank (if any) dies while writing checkpoint `epoch` on the
    /// traversal's `incarnation`-th life. Pure function of the plan, so
    /// every rank evaluates the same verdict — this stands in for the
    /// failure detector a real runtime would run.
    ///
    /// Epoch 0 never crashes (the initial checkpoint is the guaranteed
    /// restore point), and keying on `incarnation` keeps the run live: the
    /// retry of an epoch after a restore draws a fresh decision, and a
    /// forced crash fires only on incarnation 0.
    #[inline]
    pub fn crash_victim(&self, epoch: u64, incarnation: u64, ranks: usize) -> Option<usize> {
        if epoch == 0 || ranks == 0 {
            return None;
        }
        if incarnation == 0 {
            if let Some((rank, e)) = self.cfg.forced_crash {
                if e == epoch && rank < ranks {
                    return Some(rank);
                }
            }
        }
        let h = self.mix(SALT_CRASH, epoch, incarnation, 0);
        if self.hit(h, self.cfg.crash_permille) {
            Some(((h >> 10) % ranks as u64) as usize)
        } else {
            None
        }
    }
}

/// One message held by the fault buffer. Ordered by `(release, key)` so a
/// [`BinaryHeap`] of [`std::cmp::Reverse`]-wrapped entries pops the message
/// with the earliest release tick, FIFO (arrival order) within a tick
/// unless a reorder shift pushed the key back.
struct Held<M> {
    release: u64,
    key: u64,
    src: u32,
    seq: u64,
    msg: M,
}

impl<M> PartialEq for Held<M> {
    fn eq(&self, other: &Self) -> bool {
        (self.release, self.key) == (other.release, other.key)
    }
}

impl<M> Eq for Held<M> {}

impl<M> PartialOrd for Held<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Held<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // reversed: BinaryHeap is a max-heap, we pop the earliest release
        (other.release, other.key).cmp(&(self.release, self.key))
    }
}

/// Per-source dedup window: sequence numbers below `hi` have all been
/// delivered; `ahead` holds delivered numbers at or above it. The raw
/// channel is FIFO and the fault buffer reorders only within a bounded
/// window, so `ahead` stays small and the window self-compacts.
#[derive(Default)]
struct DedupWindow {
    hi: u64,
    ahead: std::collections::HashSet<u64>,
}

impl DedupWindow {
    /// Record delivery of `seq`; returns false if it was already delivered
    /// (i.e. this copy is a duplicate to drop).
    fn first_delivery(&mut self, seq: u64) -> bool {
        if seq < self.hi || self.ahead.contains(&seq) {
            return false;
        }
        self.ahead.insert(seq);
        while self.ahead.remove(&self.hi) {
            self.hi += 1;
        }
        true
    }
}

/// Receiver-side fault buffer for one transport endpoint. Owned by the
/// rank that owns the receiver, so all state is plain (interior mutability
/// is handled by the transport's `RefCell`).
pub(crate) struct FaultState<M> {
    plan: std::sync::Arc<FaultPlan>,
    tag: u64,
    /// The receiving rank (the `dst` of every fault decision here).
    rank: usize,
    slow: bool,
    /// Receive-poll clock; advances on every `try_recv`.
    tick: u64,
    /// Arrival counter; the FIFO key of held messages.
    arrivals: u64,
    held: BinaryHeap<Held<M>>,
    stall_until: u64,
    dedup: Option<FxHashMap<u32, DedupWindow>>,
}

impl<M: Send + 'static> FaultState<M> {
    pub(crate) fn new(plan: std::sync::Arc<FaultPlan>, tag: u64, rank: usize) -> Self {
        let slow = plan.is_slow(rank);
        let dedup = plan.dedup_needed().then(FxHashMap::default);
        Self {
            plan,
            tag,
            rank,
            slow,
            tick: 0,
            arrivals: 0,
            held: BinaryHeap::new(),
            stall_until: 0,
            dedup,
        }
    }

    /// Messages currently held back by faults (not yet visible to the
    /// receiver). Used by blocking receives to decide between waiting on
    /// the channel condvar and ticking the fault clock.
    pub(crate) fn pending(&self) -> usize {
        self.held.len()
    }

    /// Hand deduplication over to a higher layer: the mailbox's integrity
    /// window dedups by `(src, seq)` *after* CRC verification, so a
    /// corrupted first copy never blocks its retransmission. Leaving the
    /// transport window on as well would mark the corrupt copy delivered
    /// and silently swallow the repair.
    pub(crate) fn disable_dedup(&mut self) {
        self.dedup = None;
    }

    /// Pull everything off the raw channel into the fault buffer, then
    /// release the earliest due message. One call = one tick.
    pub(crate) fn try_recv(
        &mut self,
        receiver: &Receiver<Wire<M>>,
        stats: &ChannelStats,
    ) -> Option<Wire<M>> {
        self.tick += 1;
        // Always ingest, even mid-stall: the raw channel must keep draining
        // so bounded-channel senders never deadlock against a stall.
        while let Ok(w) = receiver.try_recv() {
            self.ingest(w, stats);
        }
        if self.tick < self.stall_until {
            return None;
        }
        self.release(stats)
    }

    /// Accept one message pulled off the raw channel by a blocking receive.
    pub(crate) fn ingest(&mut self, w: Wire<M>, stats: &ChannelStats) {
        let arrival = self.arrivals;
        self.arrivals += 1;
        let src = w.src as usize;
        if let Some((victim, after)) = self.plan.config().hard_stall {
            if victim == self.rank && self.arrivals > after && self.stall_until != u64::MAX {
                // permanent wedge: the channel keeps draining (ingest still
                // runs) but release never fires again on this endpoint
                self.stall_until = u64::MAX;
                stats.record_fault_stall(src, self.rank);
            }
        }
        let stall = self.plan.stall_window(self.tag, self.rank, arrival);
        if stall > 0 {
            self.stall_until = self.stall_until.max(self.tick + stall as u64);
            stats.record_fault_stall(src, self.rank);
        }
        let mut hold = self.plan.delay_ticks(self.tag, src, self.rank, w.seq);
        if hold > 0 {
            stats.record_fault_delay(src, self.rank);
        }
        if self.slow {
            hold += self.plan.config().slow_rank_ticks;
            stats.record_fault_throttle(src, self.rank);
        }
        let shift = self.plan.reorder_shift(self.tag, src, self.rank, w.seq);
        self.held.push(Held {
            release: self.tick + hold as u64,
            key: arrival + shift as u64,
            src: w.src,
            seq: w.seq,
            msg: w.msg,
        });
    }

    /// Pop the earliest due message, dropping duplicate deliveries.
    fn release(&mut self, stats: &ChannelStats) -> Option<Wire<M>> {
        loop {
            if self.held.peek().is_none_or(|h| h.release > self.tick) {
                return None;
            }
            let h = self.held.pop().unwrap();
            if let Some(dedup) = &mut self.dedup {
                if !dedup.entry(h.src).or_default().first_delivery(h.seq) {
                    stats.record_fault_dedup(h.src as usize, self.rank);
                    continue;
                }
            }
            // observed overtake: an earlier arrival is still held
            if self.held.iter().any(|o| o.key < h.key) {
                stats.record_fault_reorder(h.src as usize, self.rank);
            }
            return Some(Wire { src: h.src, seq: h.seq, msg: h.msg });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_functions() {
        let a = FaultPlan::new(FaultConfig::chaos(42));
        let b = FaultPlan::new(FaultConfig::chaos(42));
        for seq in 0..200 {
            assert_eq!(a.delay_ticks(7, 0, 1, seq), b.delay_ticks(7, 0, 1, seq));
            assert_eq!(a.reorder_shift(7, 0, 1, seq), b.reorder_shift(7, 0, 1, seq));
            assert_eq!(a.duplicate(7, 0, 1, seq), b.duplicate(7, 0, 1, seq));
            assert_eq!(a.stall_window(7, 1, seq), b.stall_window(7, 1, seq));
        }
        for r in 0..16 {
            assert_eq!(a.is_slow(r), b.is_slow(r));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::new(FaultConfig::chaos(1));
        let b = FaultPlan::new(FaultConfig::chaos(2));
        let differs = (0..500).any(|seq| {
            a.delay_ticks(0, 0, 1, seq) != b.delay_ticks(0, 0, 1, seq)
                || a.duplicate(0, 0, 1, seq) != b.duplicate(0, 0, 1, seq)
        });
        assert!(differs, "seeds 1 and 2 produced identical fault streams");
    }

    #[test]
    fn chaos_rates_are_roughly_calibrated() {
        let plan = FaultPlan::new(FaultConfig::chaos(7));
        let n = 10_000u64;
        let delayed = (0..n).filter(|&s| plan.delay_ticks(3, 0, 1, s) > 0).count() as f64;
        let dup = (0..n).filter(|&s| plan.duplicate(3, 0, 1, s)).count() as f64;
        let frac_delayed = delayed / n as f64;
        let frac_dup = dup / n as f64;
        assert!((0.15..0.25).contains(&frac_delayed), "delay rate {frac_delayed}");
        assert!((0.07..0.13).contains(&frac_dup), "dup rate {frac_dup}");
    }

    #[test]
    fn quiet_config_is_inactive() {
        assert!(!FaultConfig::quiet(9).is_active());
        assert!(FaultConfig::chaos(9).is_active());
        assert!(FaultConfig::quiet(9).with_delay(100, 4).is_active());
        assert!(FaultConfig::quiet(9).with_corrupt(20).is_active());
        assert!(FaultConfig::quiet(9).with_drop(20).is_active());
        assert!(FaultConfig::lossy(9).is_active());
    }

    #[test]
    fn corrupt_and_drop_redraw_per_attempt() {
        let plan = FaultPlan::new(FaultConfig::quiet(17).with_corrupt(500).with_drop(500));
        assert!(!plan.config().loses_frames() || plan.config().is_active());
        // With a 50% rate, some seq must flip its verdict between attempt 0
        // and attempt 1 — the property that makes retransmission converge.
        let corrupt_redraws = (0..200u64).any(|seq| {
            plan.corrupt_draw(3, 0, 1, seq, 0).is_some()
                != plan.corrupt_draw(3, 0, 1, seq, 1).is_some()
        });
        let drop_redraws = (0..200u64)
            .any(|seq| plan.drop_frame(3, 0, 1, seq, 0) != plan.drop_frame(3, 0, 1, seq, 1));
        assert!(corrupt_redraws, "corruption verdict ignores the arrival nonce");
        assert!(drop_redraws, "drop verdict ignores the arrival nonce");
        // decisions stay pure functions of their inputs
        for seq in 0..50 {
            assert_eq!(plan.corrupt_draw(3, 0, 1, seq, 2), plan.corrupt_draw(3, 0, 1, seq, 2));
            assert_eq!(plan.drop_frame(3, 0, 1, seq, 2), plan.drop_frame(3, 0, 1, seq, 2));
        }
        // a quiet plan never fires either fault
        let quiet = FaultPlan::new(FaultConfig::quiet(17).with_delay(100, 4));
        for seq in 0..50 {
            assert_eq!(quiet.corrupt_draw(3, 0, 1, seq, 0), None);
            assert!(!quiet.drop_frame(3, 0, 1, seq, 0));
        }
    }

    #[test]
    fn delay_bounded_by_max_ticks() {
        let plan = FaultPlan::new(FaultConfig::quiet(5).with_delay(1000, 7));
        for seq in 0..1000 {
            let d = plan.delay_ticks(0, 2, 3, seq);
            assert!((1..=7).contains(&d), "delay {d} out of bounds");
        }
    }

    #[test]
    fn crash_only_configs_are_active() {
        assert!(FaultConfig::quiet(9).with_crash(500).is_active());
        assert!(FaultConfig::quiet(9).with_forced_crash(1, 2).is_active());
    }

    #[test]
    fn crash_victim_is_deterministic_and_spares_epoch_zero() {
        let plan = FaultPlan::new(FaultConfig::quiet(11).with_crash(1000));
        assert_eq!(plan.crash_victim(0, 0, 4), None, "epoch 0 is protected");
        let mut hit = false;
        for epoch in 1..64 {
            for inc in 0..4 {
                let a = plan.crash_victim(epoch, inc, 4);
                let b = plan.crash_victim(epoch, inc, 4);
                assert_eq!(a, b, "verdict must be a pure function");
                if let Some(v) = a {
                    assert!(v < 4);
                    hit = true;
                }
            }
        }
        assert!(hit, "permille 1000 must crash somewhere");
        // different seeds draw different schedules
        let other = FaultPlan::new(FaultConfig::quiet(12).with_crash(1000));
        let same = (1..64u64).all(|e| plan.crash_victim(e, 0, 4) == other.crash_victim(e, 0, 4));
        assert!(!same, "seed must steer the crash schedule");
    }

    #[test]
    fn forced_crash_fires_once_on_first_incarnation() {
        let plan = FaultPlan::new(FaultConfig::quiet(3).with_forced_crash(2, 5));
        assert_eq!(plan.crash_victim(5, 0, 4), Some(2));
        assert_eq!(plan.crash_victim(5, 1, 4), None, "retry must survive");
        assert_eq!(plan.crash_victim(4, 0, 4), None);
        // forced target outside the world is ignored
        let oob = FaultPlan::new(FaultConfig::quiet(3).with_forced_crash(9, 5));
        assert_eq!(oob.crash_victim(5, 0, 4), None);
    }

    #[test]
    fn dedup_window_drops_repeats_and_compacts() {
        let mut w = DedupWindow::default();
        assert!(w.first_delivery(0));
        assert!(w.first_delivery(2)); // out of order
        assert!(!w.first_delivery(0)); // duplicate
        assert!(w.first_delivery(1));
        assert!(!w.first_delivery(2));
        assert_eq!(w.hi, 3, "window compacted past contiguous prefix");
        assert!(w.ahead.is_empty());
    }
}
