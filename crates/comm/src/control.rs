//! Lifecycle control records for the serving path.
//!
//! A [`CancelRecord`] is the wire form of "stop working on query q": the
//! origin rank broadcasts one record per peer over a dedicated user-tag
//! mailbox, so cancels ride the same CRC-framed, retransmitted, chaos-
//! hardened plane as visitor traffic. Delivery is made *cut-consistent*
//! by the lifecycle driver: the cancel mailbox's sent/received counters
//! are summed into the quiescence poll, so a round cut cannot confirm
//! while any cancel is still in flight — at every confirmed cut, all
//! ranks hold exactly the same set of cancel records and apply them
//! identically. Application itself is idempotent (an OR into a retired
//! bitmask), so a duplicated or retransmitted record is harmless.

use crate::codec::WireCodec;

/// One cancellation request for one in-flight batched query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CancelRecord {
    /// Batch slot of the query being cancelled (`0..64`).
    pub query: u32,
    /// Rank that issued the cancel (for stats/tracing only; application
    /// does not depend on the origin).
    pub origin: u32,
    /// Round (cut index) at which the origin issued the cancel. Purely
    /// diagnostic: application happens at whatever cut the record is
    /// confirmed under, which the quiescence sum makes identical on
    /// every rank.
    pub round: u64,
}

impl WireCodec for CancelRecord {
    const WIRE_SIZE: usize = 16;
    type DecodeCtx = ();

    #[inline]
    fn encode(&self, buf: &mut [u8]) {
        buf[0..4].copy_from_slice(&self.query.to_le_bytes());
        buf[4..8].copy_from_slice(&self.origin.to_le_bytes());
        buf[8..16].copy_from_slice(&self.round.to_le_bytes());
    }

    #[inline]
    fn decode(buf: &[u8], _ctx: &()) -> Self {
        Self {
            query: u32::from_le_bytes(buf[0..4].try_into().unwrap()),
            origin: u32::from_le_bytes(buf[4..8].try_into().unwrap()),
            round: u64::from_le_bytes(buf[8..16].try_into().unwrap()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_record_round_trips() {
        let r = CancelRecord { query: 63, origin: 7, round: 0xDEAD_BEEF_0123 };
        let mut buf = [0u8; CancelRecord::WIRE_SIZE];
        r.encode(&mut buf);
        assert_eq!(CancelRecord::decode(&buf, &()), r);
    }

    #[test]
    fn cancel_record_wire_size_matches_encoding() {
        let r = CancelRecord { query: u32::MAX, origin: u32::MAX, round: u64::MAX };
        let mut buf = [0u8; CancelRecord::WIRE_SIZE];
        r.encode(&mut buf);
        assert_eq!(buf[15], 0xFF, "encoding fills the full wire size");
    }
}
