//! Typed non-blocking point-to-point transport between ranks.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::chan::{Receiver, RecvTimeoutError, TrySendError};
use crate::fault::{FaultPlan, FaultState};
use crate::registry::{ChannelSet, Wire, RESERVED_TAG_BASE};
use crate::runtime::RankCtx;
use crate::stats::{ChannelStats, ChannelStatsSnapshot};

/// A rank's endpoint of one typed channel set: it can send to any rank and
/// receive messages addressed to itself. Unbounded sets never block on send
/// (the MPI eager protocol analogue); bounded sets surface backpressure
/// through [`Transport::try_send_counted`].
///
/// When the world runs with a [`FaultPlan`] and the channel's tag is in user
/// space (below [`RESERVED_TAG_BASE`]), every receive funnels through a
/// receiver-side fault buffer that delays, reorders, and dedups deliveries
/// deterministically. Control channels (collectives, termination) never
/// carry a fault buffer: MPI guarantees non-overtaking per pair, and the
/// quiescence wave protocol relies on it.
pub struct Transport<M: Send + 'static> {
    rank: usize,
    ranks: usize,
    tag: u64,
    set: Arc<ChannelSet<M>>,
    receiver: Receiver<Wire<M>>,
    poisoned: Arc<AtomicBool>,
    /// Next sequence number for each destination. Only this rank's thread
    /// sends through this endpoint, so these are uncontended; atomics keep
    /// `send` on `&self` without interior-mutability gymnastics.
    next_seq: Vec<AtomicU64>,
    /// Present only on faulted user-tag channels. `RefCell` is sound here
    /// because a transport endpoint is owned and polled by exactly one rank
    /// thread.
    fault: Option<(Arc<FaultPlan>, RefCell<FaultState<M>>)>,
}

impl<M: Send + 'static> Transport<M> {
    pub(crate) fn new(
        rank: usize,
        ranks: usize,
        tag: u64,
        set: Arc<ChannelSet<M>>,
        receiver: Receiver<Wire<M>>,
        poisoned: Arc<AtomicBool>,
        faults: Option<Arc<FaultPlan>>,
    ) -> Self {
        let fault =
            faults.filter(|p| tag < RESERVED_TAG_BASE && p.config().is_active()).map(|plan| {
                let state = RefCell::new(FaultState::new(plan.clone(), tag, rank));
                (plan, state)
            });
        let next_seq = (0..ranks).map(|_| AtomicU64::new(0)).collect();
        Self { rank, ranks, tag, set, receiver, poisoned, next_seq, fault }
    }

    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    #[inline]
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Capacity the underlying channel set was created with.
    #[inline]
    pub fn capacity(&self) -> Option<usize> {
        self.set.capacity
    }

    /// True when this endpoint injects faults on its receive path.
    #[inline]
    pub fn faults_active(&self) -> bool {
        self.fault.is_some()
    }

    /// The sequence number the next send to `dst` will carry. Only the
    /// owning rank thread sends, so this cannot race with a send.
    #[inline]
    pub(crate) fn peek_seq(&self, dst: usize) -> u64 {
        self.next_seq[dst].load(Ordering::Relaxed)
    }

    /// The channel tag this endpoint was opened with.
    #[inline]
    pub(crate) fn tag(&self) -> u64 {
        self.tag
    }

    /// The world's fault plan, when this endpoint injects faults.
    #[inline]
    pub(crate) fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.fault.as_ref().map(|(p, _)| p)
    }

    /// Hand dedup responsibility to a higher layer (see
    /// [`FaultState::disable_dedup`]): the mailbox's integrity window
    /// dedups after CRC verification so corrupt copies never block their
    /// retransmission.
    pub(crate) fn disable_fault_dedup(&self) {
        if let Some((_, state)) = &self.fault {
            state.borrow_mut().disable_dedup();
        }
    }

    /// Claim the next sequence number for a send to `dst`.
    #[inline]
    fn claim_seq(&self, dst: usize) -> u64 {
        self.next_seq[dst].fetch_add(1, Ordering::Relaxed)
    }

    /// Non-blocking send of one message to `dst`. Self-sends are allowed and
    /// loop back through this rank's own queue.
    #[inline]
    pub fn send(&self, dst: usize, msg: M) {
        self.send_counted(dst, msg, 1, std::mem::size_of::<M>() as u64)
    }

    /// Send recording `items` payload elements and `bytes` wire volume
    /// against the (src, dst) pair — used by batching layers so statistics
    /// reflect aggregated payloads.
    ///
    /// On a bounded channel this blocks until space frees up (receivers
    /// drain concurrently); layers that must not block use
    /// [`Self::try_send_counted`].
    #[inline]
    pub fn send_counted(&self, dst: usize, msg: M, items: u64, bytes: u64) {
        debug_assert!(dst < self.ranks, "destination rank out of range");
        self.set.stats.record(self.rank, dst, items, bytes);
        let seq = self.claim_seq(dst);
        // Receivers only disappear when the world is shutting down; at that
        // point delivery no longer matters.
        let _ = self.set.senders[dst].send(Wire { src: self.rank as u32, seq, msg });
    }

    /// Non-blocking send attempt. Statistics are recorded only on success;
    /// a full channel records a backpressure stall and hands the message
    /// back so the caller can retry after making progress elsewhere.
    ///
    /// The sequence number is claimed only on success, so a retried send
    /// reuses its number and receiver-side dedup windows stay gap-free.
    pub fn try_send_counted(
        &self,
        dst: usize,
        msg: M,
        items: u64,
        bytes: u64,
    ) -> Result<(), TrySendError<M>> {
        debug_assert!(dst < self.ranks, "destination rank out of range");
        let seq = self.peek_seq(dst);
        match self.set.senders[dst].try_send(Wire { src: self.rank as u32, seq, msg }) {
            Ok(()) => {
                self.claim_seq(dst);
                self.set.stats.record(self.rank, dst, items, bytes);
                Ok(())
            }
            Err(TrySendError::Full(w)) => {
                self.set.stats.record_stall(self.rank, dst);
                Err(TrySendError::Full(w.msg))
            }
            Err(TrySendError::Disconnected(w)) => Err(TrySendError::Disconnected(w.msg)),
        }
    }

    /// Should the *next* message sent to `dst` be shipped twice? Decided by
    /// the fault plan from the message's identity, so the answer is stable
    /// across retries of the same send. Loopback (`dst == self`) is never
    /// duplicated: a blocking duplicate send into this rank's own full
    /// queue would deadlock against itself.
    pub fn wants_duplicate(&self, dst: usize) -> bool {
        match &self.fault {
            Some((plan, _)) if dst != self.rank => {
                plan.duplicate(self.tag, self.rank, dst, self.peek_seq(dst))
            }
            _ => false,
        }
    }

    /// Ship a byte-identical copy of the message just sent to `dst`,
    /// reusing its sequence number so the receiver's dedup window drops
    /// whichever copy arrives second. Duplicate traffic is recorded in the
    /// fault counters only — never in the message/byte matrices — so
    /// conservation invariants (bytes sent == bytes received) still hold.
    ///
    /// The send blocks if the bounded channel is full; receivers drain
    /// their raw channels even inside injected stall windows, so this
    /// always completes.
    pub fn send_duplicate(&self, dst: usize, msg: M) {
        debug_assert!(dst != self.rank, "loopback frames are never duplicated");
        let seq = self.peek_seq(dst).checked_sub(1).expect("send_duplicate before any send");
        self.set.stats.record_fault_dup(self.rank, dst);
        let _ = self.set.senders[dst].send(Wire { src: self.rank as u32, seq, msg });
    }

    /// Re-ship a buffered copy of an earlier send to `dst`, reusing its
    /// original sequence number so the receiver's integrity window absorbs
    /// whichever copy is redundant. Like duplicates, retransmit traffic is
    /// recorded in the recovery counters only — never in the message/byte
    /// matrices — so conservation invariants still hold.
    pub(crate) fn send_retransmit(&self, dst: usize, seq: u64, msg: M) {
        debug_assert!(dst != self.rank, "loopback frames are never retransmitted");
        self.set.stats.record_retransmit(self.rank, dst);
        let _ = self.set.senders[dst].send(Wire { src: self.rank as u32, seq, msg });
    }

    /// Non-blocking receive: `Some((source_rank, message))` if one is queued.
    ///
    /// Under fault injection each call is one tick of the fault clock: raw
    /// arrivals are pulled into the fault buffer, then the earliest due
    /// message (if any) is released.
    #[inline]
    pub fn try_recv(&self) -> Option<(usize, M)> {
        self.try_recv_wire().map(|w| (w.src as usize, w.msg))
    }

    /// Non-blocking receive keeping the wire envelope — the mailbox's
    /// integrity layer needs `(src, seq)` for its dedup window and ACK/NACK
    /// bookkeeping.
    #[inline]
    pub(crate) fn try_recv_wire(&self) -> Option<Wire<M>> {
        match &self.fault {
            None => self.receiver.try_recv().ok(),
            Some((_, state)) => state.borrow_mut().try_recv(&self.receiver, &self.set.stats),
        }
    }

    /// Blocking receive that aborts (panics) if the world is poisoned by a
    /// peer rank's panic, so one failure never deadlocks the run.
    ///
    /// Waits on the channel condvar in 20 ms slices rather than spinning;
    /// under fault injection, while deliveries are held back by the fault
    /// buffer, it ticks the fault clock with a short yield instead (held
    /// messages release on ticks, not on channel arrivals).
    pub fn recv_blocking(&self, ctx: &RankCtx) -> (usize, M) {
        match &self.fault {
            None => loop {
                match self.receiver.recv_timeout(Duration::from_millis(20)) {
                    Ok(w) => return (w.src as usize, w.msg),
                    Err(RecvTimeoutError::Timeout) => ctx.check_poison(),
                    Err(RecvTimeoutError::Disconnected) => {
                        panic!("transport disconnected on rank {}", self.rank)
                    }
                }
            },
            Some((_, state)) => loop {
                let mut st = state.borrow_mut();
                if let Some(w) = st.try_recv(&self.receiver, &self.set.stats) {
                    return (w.src as usize, w.msg);
                }
                let pending = st.pending();
                drop(st);
                ctx.check_poison();
                if pending > 0 {
                    // Held messages release on ticks; yield and tick again.
                    std::thread::yield_now();
                } else {
                    // Nothing held: sleep on the condvar until an arrival.
                    match self.receiver.recv_timeout(Duration::from_millis(20)) {
                        Ok(w) => state.borrow_mut().ingest(w, &self.set.stats),
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => {
                            panic!("transport disconnected on rank {}", self.rank)
                        }
                    }
                }
            },
        }
    }

    /// True once any rank has panicked.
    #[inline]
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Relaxed)
    }

    /// Panic (joining the world-wide shutdown) if a peer rank has panicked.
    #[inline]
    pub fn check_poison(&self) {
        if self.is_poisoned() {
            panic!("rank {}: aborting, a peer rank panicked", self.rank);
        }
    }

    /// Shared traffic counters for this channel set.
    pub fn stats(&self) -> &ChannelStats {
        &self.set.stats
    }

    /// Snapshot of the traffic matrix (typically read after the SPMD region).
    pub fn stats_snapshot(&self) -> ChannelStatsSnapshot {
        self.set.stats.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use crate::fault::FaultConfig;
    use crate::runtime::CommWorld;

    #[test]
    fn self_send_loops_back() {
        CommWorld::run(1, |ctx| {
            let ch = ctx.channel::<u32>(0);
            ch.send(0, 7);
            assert_eq!(ch.try_recv(), Some((0, 7)));
            assert_eq!(ch.try_recv(), None);
        });
    }

    #[test]
    fn messages_from_one_source_preserve_order() {
        CommWorld::run(2, |ctx| {
            let ch = ctx.channel::<u32>(0);
            if ctx.rank() == 0 {
                for i in 0..100 {
                    ch.send(1, i);
                }
            } else {
                for i in 0..100 {
                    let (src, v) = ch.recv_blocking(ctx);
                    assert_eq!(src, 0);
                    assert_eq!(v, i);
                }
            }
        });
    }

    #[test]
    fn all_to_all_delivery() {
        let p = 6;
        let totals = CommWorld::run(p, |ctx| {
            let ch = ctx.channel::<u64>(1);
            for dst in 0..p {
                ch.send(dst, ctx.rank() as u64);
            }
            let mut got = 0u64;
            for _ in 0..p {
                let (_, v) = ch.recv_blocking(ctx);
                got += v;
            }
            got
        });
        // every rank receives 0+1+..+5 = 15
        assert!(totals.iter().all(|&t| t == 15));
    }

    #[test]
    fn stats_track_per_pair_traffic() {
        let snaps = CommWorld::run(3, |ctx| {
            let ch = ctx.channel::<u8>(2);
            if ctx.rank() == 0 {
                ch.send(1, 1);
                ch.send(1, 2);
                ch.send(2, 3);
            }
            // crude sync: everyone waits until rank 0's sends are visible
            if ctx.rank() != 0 {
                let _ = ch.recv_blocking(ctx);
            }
            if ctx.rank() == 1 {
                let _ = ch.recv_blocking(ctx);
            }
            ch.stats_snapshot()
        });
        let s = &snaps[0];
        assert_eq!(s.msgs_between(0, 1), 2);
        assert_eq!(s.msgs_between(0, 2), 1);
        assert_eq!(s.bytes_between(0, 1), 2, "u8 payloads estimate 1 byte each");
        assert_eq!(s.channels_used_by(0), 2);
        assert_eq!(s.channels_used_by(1), 0);
    }

    #[test]
    fn bounded_channel_surfaces_backpressure() {
        CommWorld::run(1, |ctx| {
            let ch = ctx.channel_with_capacity::<u32>(5, Some(2));
            assert!(ch.try_send_counted(0, 1, 1, 4).is_ok());
            assert!(ch.try_send_counted(0, 2, 1, 4).is_ok());
            match ch.try_send_counted(0, 3, 1, 4) {
                Err(crate::chan::TrySendError::Full(v)) => assert_eq!(v, 3),
                other => panic!("expected Full, got {other:?}"),
            }
            let snap = ch.stats_snapshot();
            assert_eq!(snap.msgs_between(0, 0), 2, "failed send records no message");
            assert_eq!(snap.stalls_between(0, 0), 1);
            // draining frees a slot
            assert_eq!(ch.try_recv(), Some((0, 1)));
            assert!(ch.try_send_counted(0, 3, 1, 4).is_ok());
        });
    }

    #[test]
    fn fault_recv_blocking_delivers_all_delayed_messages() {
        // Regression for the recv_blocking busy-spin: under heavy delay
        // every message is held at arrival, so the receive loop must keep
        // ticking the fault clock (not sleep forever on the condvar) and
        // still deliver everything exactly once.
        let cfg = FaultConfig::quiet(11).with_delay(1000, 8).with_reorder(500, 4);
        CommWorld::run_with_faults(2, Some(cfg), |ctx| {
            let ch = ctx.channel::<u64>(0);
            assert!(ch.faults_active());
            if ctx.rank() == 0 {
                for i in 0..200u64 {
                    ch.send(1, i);
                }
            } else {
                let mut got: Vec<u64> = (0..200).map(|_| ch.recv_blocking(ctx).1).collect();
                got.sort_unstable();
                assert_eq!(got, (0..200).collect::<Vec<_>>());
                let snap = ch.stats_snapshot();
                assert_eq!(snap.total_fault_delays(), 200, "every message was delayed");
            }
            ctx.barrier();
        });
    }

    #[test]
    fn hard_stall_wedges_victim_channel_forever() {
        // A hard stall wedges the victim's user-tag receive side after the
        // configured arrival count: everything already released stays
        // delivered, nothing after the wedge ever surfaces, and collectives
        // (unfaulted) still make progress so the world can agree to abort.
        let cfg = FaultConfig::quiet(5).with_hard_stall(1, 2);
        CommWorld::run_with_faults(2, Some(cfg), |ctx| {
            let ch = ctx.channel::<u64>(0);
            if ctx.rank() == 0 {
                for i in 0..6u64 {
                    ch.send(1, i);
                }
            }
            // unfaulted collective: sends above are in flight or queued
            ctx.barrier();
            if ctx.rank() == 1 {
                let mut got = Vec::new();
                for _ in 0..10_000 {
                    if let Some((_, v)) = ch.try_recv() {
                        got.push(v);
                    }
                }
                // the quiet plan delivers in order; the wedge fires once
                // arrivals exceed 2, so at most the first two messages land
                assert!(got.len() <= 2, "wedged channel released {got:?}");
                assert_eq!(got, (0..got.len() as u64).collect::<Vec<_>>());
                let snap = ch.stats_snapshot();
                assert_eq!(snap.total_fault_stalls(), 1, "wedge records one stall");
            }
            ctx.barrier();
        });
    }

    #[test]
    fn fault_control_channels_stay_fifo() {
        // Reserved-tag channels (collectives, termination) must never get a
        // fault buffer even when the world runs with faults; barriers and
        // reductions below would hang or misorder otherwise.
        let cfg = FaultConfig::chaos(3);
        CommWorld::run_with_faults(4, Some(cfg), |ctx| {
            let sum = ctx.all_reduce_sum(ctx.rank() as u64);
            assert_eq!(sum, 6);
            ctx.barrier();
        });
    }

    #[test]
    fn fault_duplicates_are_deduped() {
        let cfg = FaultConfig::quiet(21).with_duplicate(1000);
        CommWorld::run_with_faults(2, Some(cfg), |ctx| {
            let ch = ctx.channel::<u64>(0);
            if ctx.rank() == 0 {
                for i in 0..50u64 {
                    assert!(ch.wants_duplicate(1), "permille=1000 duplicates every send");
                    ch.send(1, i);
                    ch.send_duplicate(1, i);
                }
            } else {
                let mut got: Vec<u64> = (0..50).map(|_| ch.recv_blocking(ctx).1).collect();
                got.sort_unstable();
                assert_eq!(got, (0..50).collect::<Vec<_>>(), "each message delivered once");
                // Keep ticking until every duplicate copy has arrived and
                // been dropped; a 51st unique delivery never appears.
                let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
                while ch.stats_snapshot().total_fault_dedups() < 50 {
                    assert!(std::time::Instant::now() < deadline, "duplicate drops never landed");
                    assert_eq!(ch.try_recv(), None, "a duplicate escaped the dedup window");
                    std::thread::yield_now();
                }
                let snap = ch.stats_snapshot();
                assert_eq!(snap.total_fault_dups(), 50);
                assert_eq!(snap.total_fault_dedups(), 50);
                assert_eq!(snap.msgs_between(0, 1), 50, "duplicates not counted as traffic");
            }
            ctx.barrier();
        });
    }
}
