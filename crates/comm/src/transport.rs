//! Typed non-blocking point-to-point transport between ranks.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::chan::{Receiver, RecvTimeoutError, TrySendError};
use crate::registry::{ChannelSet, Wire};
use crate::runtime::RankCtx;
use crate::stats::{ChannelStats, ChannelStatsSnapshot};

/// A rank's endpoint of one typed channel set: it can send to any rank and
/// receive messages addressed to itself. Unbounded sets never block on send
/// (the MPI eager protocol analogue); bounded sets surface backpressure
/// through [`Transport::try_send_counted`].
pub struct Transport<M: Send + 'static> {
    rank: usize,
    ranks: usize,
    set: Arc<ChannelSet<M>>,
    receiver: Receiver<Wire<M>>,
    poisoned: Arc<AtomicBool>,
}

impl<M: Send + 'static> Transport<M> {
    pub(crate) fn new(
        rank: usize,
        ranks: usize,
        set: Arc<ChannelSet<M>>,
        receiver: Receiver<Wire<M>>,
        poisoned: Arc<AtomicBool>,
    ) -> Self {
        Self { rank, ranks, set, receiver, poisoned }
    }

    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    #[inline]
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Capacity the underlying channel set was created with.
    #[inline]
    pub fn capacity(&self) -> Option<usize> {
        self.set.capacity
    }

    /// Non-blocking send of one message to `dst`. Self-sends are allowed and
    /// loop back through this rank's own queue.
    #[inline]
    pub fn send(&self, dst: usize, msg: M) {
        self.send_counted(dst, msg, 1, std::mem::size_of::<M>() as u64)
    }

    /// Send recording `items` payload elements and `bytes` wire volume
    /// against the (src, dst) pair — used by batching layers so statistics
    /// reflect aggregated payloads.
    ///
    /// On a bounded channel this blocks until space frees up (receivers
    /// drain concurrently); layers that must not block use
    /// [`Self::try_send_counted`].
    #[inline]
    pub fn send_counted(&self, dst: usize, msg: M, items: u64, bytes: u64) {
        debug_assert!(dst < self.ranks, "destination rank out of range");
        self.set.stats.record(self.rank, dst, items, bytes);
        // Receivers only disappear when the world is shutting down; at that
        // point delivery no longer matters.
        let _ = self.set.senders[dst].send(Wire { src: self.rank as u32, msg });
    }

    /// Non-blocking send attempt. Statistics are recorded only on success;
    /// a full channel records a backpressure stall and hands the message
    /// back so the caller can retry after making progress elsewhere.
    pub fn try_send_counted(
        &self,
        dst: usize,
        msg: M,
        items: u64,
        bytes: u64,
    ) -> Result<(), TrySendError<M>> {
        debug_assert!(dst < self.ranks, "destination rank out of range");
        match self.set.senders[dst].try_send(Wire { src: self.rank as u32, msg }) {
            Ok(()) => {
                self.set.stats.record(self.rank, dst, items, bytes);
                Ok(())
            }
            Err(TrySendError::Full(w)) => {
                self.set.stats.record_stall(self.rank, dst);
                Err(TrySendError::Full(w.msg))
            }
            Err(TrySendError::Disconnected(w)) => Err(TrySendError::Disconnected(w.msg)),
        }
    }

    /// Non-blocking receive: `Some((source_rank, message))` if one is queued.
    #[inline]
    pub fn try_recv(&self) -> Option<(usize, M)> {
        self.receiver.try_recv().ok().map(|w| (w.src as usize, w.msg))
    }

    /// Blocking receive that aborts (panics) if the world is poisoned by a
    /// peer rank's panic, so one failure never deadlocks the run.
    pub fn recv_blocking(&self, ctx: &RankCtx) -> (usize, M) {
        loop {
            match self.receiver.recv_timeout(Duration::from_millis(20)) {
                Ok(w) => return (w.src as usize, w.msg),
                Err(RecvTimeoutError::Timeout) => ctx.check_poison(),
                Err(RecvTimeoutError::Disconnected) => {
                    panic!("transport disconnected on rank {}", self.rank)
                }
            }
        }
    }

    /// True once any rank has panicked.
    #[inline]
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Relaxed)
    }

    /// Panic (joining the world-wide shutdown) if a peer rank has panicked.
    #[inline]
    pub fn check_poison(&self) {
        if self.is_poisoned() {
            panic!("rank {}: aborting, a peer rank panicked", self.rank);
        }
    }

    /// Shared traffic counters for this channel set.
    pub fn stats(&self) -> &ChannelStats {
        &self.set.stats
    }

    /// Snapshot of the traffic matrix (typically read after the SPMD region).
    pub fn stats_snapshot(&self) -> ChannelStatsSnapshot {
        self.set.stats.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use crate::runtime::CommWorld;

    #[test]
    fn self_send_loops_back() {
        CommWorld::run(1, |ctx| {
            let ch = ctx.channel::<u32>(0);
            ch.send(0, 7);
            assert_eq!(ch.try_recv(), Some((0, 7)));
            assert_eq!(ch.try_recv(), None);
        });
    }

    #[test]
    fn messages_from_one_source_preserve_order() {
        CommWorld::run(2, |ctx| {
            let ch = ctx.channel::<u32>(0);
            if ctx.rank() == 0 {
                for i in 0..100 {
                    ch.send(1, i);
                }
            } else {
                for i in 0..100 {
                    let (src, v) = ch.recv_blocking(ctx);
                    assert_eq!(src, 0);
                    assert_eq!(v, i);
                }
            }
        });
    }

    #[test]
    fn all_to_all_delivery() {
        let p = 6;
        let totals = CommWorld::run(p, |ctx| {
            let ch = ctx.channel::<u64>(1);
            for dst in 0..p {
                ch.send(dst, ctx.rank() as u64);
            }
            let mut got = 0u64;
            for _ in 0..p {
                let (_, v) = ch.recv_blocking(ctx);
                got += v;
            }
            got
        });
        // every rank receives 0+1+..+5 = 15
        assert!(totals.iter().all(|&t| t == 15));
    }

    #[test]
    fn stats_track_per_pair_traffic() {
        let snaps = CommWorld::run(3, |ctx| {
            let ch = ctx.channel::<u8>(2);
            if ctx.rank() == 0 {
                ch.send(1, 1);
                ch.send(1, 2);
                ch.send(2, 3);
            }
            // crude sync: everyone waits until rank 0's sends are visible
            if ctx.rank() != 0 {
                let _ = ch.recv_blocking(ctx);
            }
            if ctx.rank() == 1 {
                let _ = ch.recv_blocking(ctx);
            }
            ch.stats_snapshot()
        });
        let s = &snaps[0];
        assert_eq!(s.msgs_between(0, 1), 2);
        assert_eq!(s.msgs_between(0, 2), 1);
        assert_eq!(s.bytes_between(0, 1), 2, "u8 payloads estimate 1 byte each");
        assert_eq!(s.channels_used_by(0), 2);
        assert_eq!(s.channels_used_by(1), 0);
    }

    #[test]
    fn bounded_channel_surfaces_backpressure() {
        CommWorld::run(1, |ctx| {
            let ch = ctx.channel_with_capacity::<u32>(5, Some(2));
            assert!(ch.try_send_counted(0, 1, 1, 4).is_ok());
            assert!(ch.try_send_counted(0, 2, 1, 4).is_ok());
            match ch.try_send_counted(0, 3, 1, 4) {
                Err(crate::chan::TrySendError::Full(v)) => assert_eq!(v, 3),
                other => panic!("expected Full, got {other:?}"),
            }
            let snap = ch.stats_snapshot();
            assert_eq!(snap.msgs_between(0, 0), 2, "failed send records no message");
            assert_eq!(snap.stalls_between(0, 0), 1);
            // draining frees a slot
            assert_eq!(ch.try_recv(), Some((0, 1)));
            assert!(ch.try_send_counted(0, 3, 1, 4).is_ok());
        });
    }
}
