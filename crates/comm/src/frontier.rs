//! Dense-frontier bitmap exchange for direction-optimizing traversals
//! (DESIGN.md §13).
//!
//! Before a bottom-up BFS level every rank must know the *global* frontier
//! — "is vertex `t` at the current level?" for any `t` its local adjacency
//! slices mention — so unvisited vertices can scan their neighbors for a
//! parent without asking the owner. The frontier is shipped as the sparse
//! set of nonzero 64-bit words of each rank's master-frontier bitmap:
//! `(word_index, bits)` records broadcast to every peer through a regular
//! [`Mailbox`], so the exchange rides the CRC-framed wire plane and
//! inherits frame integrity, NACK/retransmit repair and duplicate
//! suppression for free (PR 5 machinery).
//!
//! Each [`FrontierPlane::exchange`] call is a one-shot all-to-all closed
//! by a non-terminal [`Quiescence::poll_cut`] on the plane's own detector:
//! every rank keeps polling — applying words *and servicing the integrity
//! plane's ACK/NACK/retransmit traffic* — until the cut confirms that
//! every word sent anywhere this round has been delivered. Completing on
//! a local criterion instead (say, per-sender word counts) would let a
//! finished rank stop polling while a peer still NACKs a dropped frame at
//! it, making the loss unrecoverable; the global cut is what makes the
//! exchange safe under the lossy chaos adversary.
//!
//! The cut decision propagates root→leaves, so a rank near the tree root
//! may close round `k` and start broadcasting round `k+1` before a leaf's
//! own `poll_cut` has returned. The leaf can therefore receive a round
//! `k+1` record while still finishing round `k` — harmless, because the
//! cut already confirmed that every round-`k` record was delivered (and
//! counted, i.e. applied) everywhere before any round-`k+1` send existed.
//! Such early records are stashed and applied at the top of the next
//! `exchange`; anything further ahead (or behind) is a protocol bug and
//! panics loudly.

use crate::codec::WireCodec;
use crate::mailbox::{Mailbox, MailboxConfig};
use crate::runtime::RankCtx;
use crate::termination::Quiescence;

/// One frontier-bitmap wire record: word `idx` of the sender's master
/// frontier bitmap for exchange round `round`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrontierRecord {
    /// Sending rank.
    pub src: u32,
    /// Exchange round (monotone per plane; all ranks agree).
    pub round: u32,
    /// Bitmap word index (`vertex_id / 64`).
    pub idx: u64,
    /// The 64 frontier bits of word `idx`.
    pub bits: u64,
}

impl WireCodec for FrontierRecord {
    const WIRE_SIZE: usize = 24;
    type DecodeCtx = ();

    fn encode(&self, buf: &mut [u8]) {
        buf[..4].copy_from_slice(&self.src.to_le_bytes());
        buf[4..8].copy_from_slice(&self.round.to_le_bytes());
        buf[8..16].copy_from_slice(&self.idx.to_le_bytes());
        buf[16..24].copy_from_slice(&self.bits.to_le_bytes());
    }

    fn decode(buf: &[u8], _ctx: &()) -> Self {
        FrontierRecord {
            src: u32::from_le_bytes(buf[..4].try_into().unwrap()),
            round: u32::from_le_bytes(buf[4..8].try_into().unwrap()),
            idx: u64::from_le_bytes(buf[8..16].try_into().unwrap()),
            bits: u64::from_le_bytes(buf[16..24].try_into().unwrap()),
        }
    }
}

/// One rank's handle on the frontier-exchange wire plane.
pub struct FrontierPlane {
    mb: Mailbox<FrontierRecord>,
    quiescence: Quiescence,
    rank: usize,
    ranks: usize,
    round: u32,
    /// Records for round `round + 1` that arrived while this rank was
    /// still closing round `round` (see module docs); applied first thing
    /// next `exchange`.
    carry: Vec<FrontierRecord>,
    /// Cumulative words applied from remote ranks (telemetry).
    words_received: u64,
    /// Cumulative words broadcast to remote ranks (telemetry).
    words_sent: u64,
}

impl FrontierPlane {
    /// Collectively open the plane (draws a world-agreed mailbox tag; every
    /// rank must call this the same number of times in the same order).
    pub fn open(ctx: &RankCtx) -> Self {
        let tag = ctx.auto_tag();
        let mb = Mailbox::open(ctx, tag, MailboxConfig::default());
        let quiescence = Quiescence::new(ctx, tag);
        Self {
            mb,
            quiescence,
            rank: ctx.rank(),
            ranks: ctx.size(),
            round: 0,
            carry: Vec::new(),
            words_received: 0,
            words_sent: 0,
        }
    }

    /// All-to-all exchange of this rank's nonzero frontier words.
    /// Collective: every rank must call `exchange` the same number of
    /// times. `apply` receives every `(word_index, bits)` pair of the
    /// global frontier — the local contribution included — exactly once
    /// per sender; OR-ing into a dense bitmap makes the per-sender
    /// duplicates of shared words harmless. Returns the number of remote
    /// words applied.
    pub fn exchange(&mut self, words: &[(u64, u64)], mut apply: impl FnMut(u64, u64)) -> u64 {
        self.round += 1;
        let round = self.round;
        for dst in 0..self.ranks {
            if dst == self.rank {
                continue;
            }
            for &(idx, bits) in words {
                self.mb.send(dst, FrontierRecord { src: self.rank as u32, round, idx, bits });
            }
        }
        self.words_sent += (words.len() * (self.ranks.saturating_sub(1))) as u64;
        for &(idx, bits) in words {
            apply(idx, bits);
        }
        // Poll to the round's global cut: keep applying words and driving
        // the integrity plane (ACK/NACK/retransmit) until every record
        // sent anywhere this round has been delivered everywhere.
        let mut buf: Vec<FrontierRecord> = Vec::new();
        let mut applied = 0u64;
        for rec in std::mem::take(&mut self.carry) {
            assert_eq!(rec.round, round, "frontier carry round skew on rank {}", self.rank);
            applied += 1;
            apply(rec.idx, rec.bits);
        }
        loop {
            let delivered = self.mb.poll(&mut buf);
            for rec in buf.drain(..) {
                if rec.round == round {
                    applied += 1;
                    apply(rec.idx, rec.bits);
                } else if rec.round == round + 1 {
                    // the sender already saw this round's cut complete;
                    // ours is still propagating down the wave tree
                    self.carry.push(rec);
                } else {
                    panic!(
                        "frontier exchange round skew: rank {} got round {} from {} during {}",
                        self.rank, rec.round, rec.src, round
                    );
                }
            }
            if delivered == 0 {
                self.mb.flush();
                let drained = self.mb.pending_out() == 0;
                // flag=false: a reusable non-terminal cut, one per round
                if self
                    .quiescence
                    .poll_cut(self.mb.sent_count(), self.mb.received_count(), drained, false)
                    .is_some()
                {
                    break;
                }
                std::thread::yield_now();
            }
        }
        self.words_received += applied;
        applied
    }

    /// Cumulative remote frontier words applied by this rank.
    pub fn words_received(&self) -> u64 {
        self.words_received
    }

    /// Cumulative frontier words this rank broadcast.
    pub fn words_sent(&self) -> u64 {
        self.words_sent
    }

    /// Exchange rounds completed.
    pub fn rounds(&self) -> u32 {
        self.round
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultConfig;
    use crate::runtime::CommWorld;

    /// Every rank contributes a distinct word; all ranks converge to the
    /// same OR-ed bitmap, across several rounds and rank counts.
    #[test]
    fn exchange_converges_to_global_or() {
        for p in [1usize, 2, 5] {
            let maps = CommWorld::run(p, |ctx| {
                let mut plane = FrontierPlane::open(ctx);
                let mut out = Vec::new();
                for round in 0..3u64 {
                    let me = ctx.rank() as u64;
                    let words = vec![(me, 1u64 << (round + me)), (100 + me, me + 1)];
                    let mut dense = std::collections::BTreeMap::new();
                    plane.exchange(&words, |idx, bits| {
                        *dense.entry(idx).or_insert(0u64) |= bits;
                    });
                    out.push(dense);
                }
                out
            });
            for round in 0..3 {
                let want = &maps[0][round];
                assert_eq!(want.len(), 2 * p, "p={p} distinct words");
                for (r, m) in maps.iter().enumerate() {
                    assert_eq!(&m[round], want, "p={p} rank {r} round {round}");
                }
            }
        }
    }

    /// The exchange completes and stays exact under the lossy chaos plan
    /// (drops + corruption repaired by the mailbox integrity machinery).
    #[test]
    fn exchange_survives_lossy_faults() {
        for seed in [7u64, 21, 63] {
            let maps = CommWorld::run_with_faults(3, Some(FaultConfig::lossy(seed)), |ctx| {
                let mut plane = FrontierPlane::open(ctx);
                let mut dense = std::collections::BTreeMap::new();
                for round in 0..4u64 {
                    let me = ctx.rank() as u64;
                    let words: Vec<(u64, u64)> =
                        (0..8).map(|k| (round * 8 + k, me << (8 * k % 48))).collect();
                    plane.exchange(&words, |idx, bits| {
                        *dense.entry(idx).or_insert(0u64) |= bits;
                    });
                }
                dense
            });
            assert_eq!(maps[0].len(), 32, "seed={seed}");
            for m in &maps {
                assert_eq!(m, &maps[0], "seed={seed}");
            }
        }
    }
}
