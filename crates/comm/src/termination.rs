//! Asynchronous distributed termination detection (paper Section V,
//! `global_empty()`, citing Mattern's counting algorithms).
//!
//! The detector runs repeated O(log p) reduction waves over a binomial tree.
//! Each rank contributes `(sent, received, stable)` where `sent`/`received`
//! are its end-to-end payload counters and `stable` means *idle now and no
//! counter changed since my previous contribution*. Waves are sequenced by a
//! root broadcast, so every rank's window between two consecutive
//! contributions contains the instant the root combined the previous wave;
//! if every rank was stable across that common instant and the global send
//! and receive totals agree, there were no in-flight messages and no local
//! work at that instant — the traversal has terminated. This is Mattern's
//! four-counter ("double counting") method specialized to monotonic
//! counters.
//!
//! The check is fully asynchronous: waves piggyback on the normal polling
//! loop and only the final, already-quiescent wave pair costs synchronous
//! latency — exactly the property the paper highlights.

use crate::collectives::{tree_children, tree_parent};
use crate::runtime::RankCtx;
use crate::transport::Transport;

enum TermMsg {
    /// Child -> parent: subtree totals for `wave`.
    Up { wave: u64, sent: u64, recv: u64, stable: bool },
    /// Parent -> child: root decision for `wave`.
    Down { wave: u64, terminate: bool },
}

/// Per-rank handle on the termination-detection protocol.
pub struct Quiescence {
    ch: Transport<TermMsg>,
    parent: Option<usize>,
    children: Vec<usize>,
    wave: u64,
    /// Accumulated child contributions for the current wave.
    child_sent: u64,
    child_recv: u64,
    child_stable: bool,
    children_seen: usize,
    contributed: bool,
    prev_contrib: Option<(u64, u64)>,
    terminated: bool,
    waves_run: u64,
}

impl Quiescence {
    /// Open the detector. Collective: every rank must call with the same
    /// `instance` id (allows several independent traversals per world).
    pub fn new(ctx: &RankCtx, instance: u64) -> Self {
        let tag = crate::registry::TERMINATION_TAG_BASE + instance;
        let ch = ctx.channel_internal::<TermMsg>(tag);
        Self {
            parent: tree_parent(ctx.rank()),
            children: tree_children(ctx.rank(), ctx.size()),
            ch,
            wave: 0,
            child_sent: 0,
            child_recv: 0,
            child_stable: true,
            children_seen: 0,
            contributed: false,
            prev_contrib: None,
            terminated: false,
            waves_run: 0,
        }
    }

    fn reset_wave(&mut self) {
        self.wave += 1;
        self.child_sent = 0;
        self.child_recv = 0;
        self.child_stable = true;
        self.children_seen = 0;
        self.contributed = false;
        self.waves_run += 1;
    }

    /// Advance the protocol with this rank's current counters; returns true
    /// once global quiescence is confirmed (sticky).
    ///
    /// `sent`/`recv` must be monotonically non-decreasing end-to-end payload
    /// counters; `idle` must only be true when this rank has no queued work
    /// and no un-flushed outgoing buffers.
    pub fn poll(&mut self, sent: u64, recv: u64, idle: bool) -> bool {
        if self.terminated {
            return true;
        }
        if self.ch.is_poisoned() {
            // a peer rank panicked: detection can never complete, so join
            // the world-wide shutdown instead of spinning forever
            panic!("termination detector aborting: a peer rank panicked");
        }
        // Drain protocol messages.
        while let Some((_src, msg)) = self.ch.try_recv() {
            match msg {
                TermMsg::Up { wave, sent, recv, stable } => {
                    debug_assert_eq!(wave, self.wave, "child wave skew");
                    self.child_sent += sent;
                    self.child_recv += recv;
                    self.child_stable &= stable;
                    self.children_seen += 1;
                }
                TermMsg::Down { wave, terminate } => {
                    debug_assert_eq!(wave, self.wave, "parent wave skew");
                    for &c in &self.children {
                        self.ch.send(c, TermMsg::Down { wave, terminate });
                    }
                    if terminate {
                        self.terminated = true;
                        return true;
                    }
                    self.reset_wave();
                }
            }
        }
        // Contribute (and combine upward) once all children have reported.
        if !self.contributed && self.children_seen == self.children.len() {
            let stable = idle && self.prev_contrib == Some((sent, recv));
            self.prev_contrib = Some((sent, recv));
            self.contributed = true;
            let tot_sent = self.child_sent + sent;
            let tot_recv = self.child_recv + recv;
            let tot_stable = self.child_stable && stable;
            match self.parent {
                Some(p) => {
                    self.ch.send(
                        p,
                        TermMsg::Up {
                            wave: self.wave,
                            sent: tot_sent,
                            recv: tot_recv,
                            stable: tot_stable,
                        },
                    );
                }
                None => {
                    let terminate = tot_stable && tot_sent == tot_recv;
                    let wave = self.wave;
                    for &c in &self.children {
                        self.ch.send(c, TermMsg::Down { wave, terminate });
                    }
                    if terminate {
                        self.terminated = true;
                        return true;
                    }
                    self.reset_wave();
                }
            }
        }
        false
    }

    /// Number of completed (non-terminating) waves — a measure of how often
    /// the detector cycled; useful in tests and experiments.
    pub fn waves_run(&self) -> u64 {
        self.waves_run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mailbox::{Mailbox, MailboxConfig};
    use crate::runtime::CommWorld;
    use crate::topology::TopologyKind;

    #[test]
    fn single_rank_terminates_immediately() {
        CommWorld::run(1, |ctx| {
            let mut q = Quiescence::new(ctx, 0);
            let mut polls = 0;
            while !q.poll(0, 0, true) {
                polls += 1;
                assert!(polls < 100, "should terminate within a few waves");
            }
        });
    }

    #[test]
    fn idle_world_terminates() {
        for p in [2usize, 3, 5, 8] {
            CommWorld::run(p, |ctx| {
                let mut q = Quiescence::new(ctx, 0);
                let mut polls = 0u64;
                while !q.poll(0, 0, true) {
                    polls += 1;
                    if polls.is_multiple_of(64) {
                        std::thread::yield_now();
                    }
                    assert!(polls < 1_000_000, "termination too slow");
                }
            });
        }
    }

    #[test]
    fn does_not_terminate_while_work_remains() {
        CommWorld::run(2, |ctx| {
            let mut q = Quiescence::new(ctx, 0);
            // rank 0 pretends to have one eternally-unreceived message
            let (sent, recv) = if ctx.rank() == 0 { (1, 0) } else { (0, 0) };
            for _ in 0..500 {
                assert!(!q.poll(sent, recv, true), "sent != recv must block termination");
            }
        });
    }

    #[test]
    fn does_not_terminate_while_any_rank_busy() {
        CommWorld::run(3, |ctx| {
            let mut q = Quiescence::new(ctx, 0);
            let idle = ctx.rank() != 1;
            for _ in 0..500 {
                assert!(!q.poll(0, 0, idle), "busy rank must block termination");
            }
        });
    }

    /// The canonical integration scenario: a random "token storm" over a
    /// mailbox, like a miniature visitor traversal. Each token with ttl > 0
    /// spawns a token with ttl-1 to a pseudo-random rank. Termination must
    /// fire only after every token has been processed.
    fn token_storm(p: usize, topo: TopologyKind, seed_tokens: usize, ttl: u32) {
        let totals = CommWorld::run(p, |ctx| {
            let mut mb = Mailbox::<u32>::open(
                ctx,
                7,
                MailboxConfig { topology: topo, batch_size: 4, ..MailboxConfig::default() },
            );
            let mut q = Quiescence::new(ctx, 3);
            let mut rng_state = (ctx.rank() as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
            let mut next = move || {
                rng_state ^= rng_state << 13;
                rng_state ^= rng_state >> 7;
                rng_state ^= rng_state << 17;
                rng_state
            };
            let mut processed = 0u64;
            let mut queue: Vec<u32> = Vec::new();
            for _ in 0..seed_tokens {
                mb.send(next() as usize % p, ttl);
            }
            loop {
                mb.poll(&mut queue);
                if let Some(t) = queue.pop() {
                    processed += 1;
                    if t > 0 {
                        mb.send(next() as usize % p, t - 1);
                    }
                    continue;
                }
                mb.flush();
                let idle = queue.is_empty() && mb.pending_out() == 0;
                if q.poll(mb.sent_count(), mb.received_count(), idle) {
                    break;
                }
            }
            assert!(queue.is_empty());
            assert_eq!(mb.pending_out(), 0);
            (processed, mb.sent_count(), mb.received_count())
        });
        let processed: u64 = totals.iter().map(|t| t.0).sum();
        let sent: u64 = totals.iter().map(|t| t.1).sum();
        let recv: u64 = totals.iter().map(|t| t.2).sum();
        // every token is processed exactly once; chain length = ttl + 1
        assert_eq!(processed, (p * seed_tokens) as u64 * (ttl as u64 + 1));
        assert_eq!(sent, recv);
        assert_eq!(processed, recv);
    }

    #[test]
    fn token_storm_direct() {
        token_storm(4, TopologyKind::Direct, 8, 20);
    }

    #[test]
    fn token_storm_routed2d() {
        token_storm(9, TopologyKind::Routed2D, 5, 15);
    }

    #[test]
    fn token_storm_routed3d() {
        token_storm(8, TopologyKind::Routed3D, 5, 15);
    }

    #[test]
    fn token_storm_single_rank() {
        token_storm(1, TopologyKind::Direct, 10, 50);
    }

    #[test]
    fn detector_is_reusable_via_instances() {
        CommWorld::run(4, |ctx| {
            for instance in 0..3 {
                let mut q = Quiescence::new(ctx, instance);
                while !q.poll(5, 5, true) {}
            }
        });
    }
}
