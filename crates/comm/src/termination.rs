//! Asynchronous distributed termination detection (paper Section V,
//! `global_empty()`, citing Mattern's counting algorithms).
//!
//! The detector runs repeated O(log p) reduction waves over a binomial tree.
//! Each rank contributes `(sent, received, stable)` where `sent`/`received`
//! are its end-to-end payload counters and `stable` means *idle now and no
//! counter changed since my previous contribution*. Waves are sequenced by a
//! root broadcast, so every rank's window between two consecutive
//! contributions contains the instant the root combined the previous wave;
//! if every rank was stable across that common instant and the global send
//! and receive totals agree, there were no in-flight messages and no local
//! work at that instant — the traversal has terminated. This is Mattern's
//! four-counter ("double counting") method specialized to monotonic
//! counters.
//!
//! The check is fully asynchronous: waves piggyback on the normal polling
//! loop and only the final, already-quiescent wave pair costs synchronous
//! latency — exactly the property the paper highlights.

use crate::collectives::{tree_children, tree_parent};
use crate::runtime::RankCtx;
use crate::transport::Transport;

enum TermMsg {
    /// Child -> parent: subtree totals for `wave`. `flag` is the AND of the
    /// subtree's user flags (see [`Quiescence::poll_cut`]).
    Up { wave: u64, sent: u64, recv: u64, stable: bool, flag: bool },
    /// Parent -> child: root decision for `wave`, with the global flag AND.
    /// `abort` carries the stall watchdog's verdict (see
    /// [`Quiescence::arm_watchdog`]); it is only ever true when `terminate`
    /// is false, and every rank surfaces it as [`CutVerdict::Abort`].
    Down { wave: u64, terminate: bool, abort: bool, flag: bool },
}

/// What a completed detector wave decided, as surfaced by
/// [`Quiescence::poll_cut_watched`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CutVerdict {
    /// A non-terminal consistent cut confirmed (global flag AND was false);
    /// the detector rearmed for further cuts.
    Cut,
    /// Global quiescence confirmed with a true flag; sticky.
    Terminate,
    /// The stall watchdog fired: the world has been stable with
    /// `sent != recv` — in-flight traffic that is provably not being
    /// delivered — for the armed number of consecutive waves. Every rank
    /// receives the same verdict on the same wave; sticky.
    Abort,
}

/// Per-rank handle on the termination-detection protocol.
pub struct Quiescence {
    ch: Transport<TermMsg>,
    parent: Option<usize>,
    children: Vec<usize>,
    wave: u64,
    /// Accumulated child contributions for the current wave.
    child_sent: u64,
    child_recv: u64,
    child_stable: bool,
    child_flag: bool,
    children_seen: usize,
    contributed: bool,
    prev_contrib: Option<(u64, u64)>,
    terminated: bool,
    waves_run: u64,
    /// Consistent cuts confirmed with a false global flag (see
    /// [`Quiescence::poll_cut`]).
    cuts_fired: u64,
    /// Stall watchdog: abort after this many consecutive completed waves in
    /// which the world was stable but `sent != recv` (root-side count).
    watchdog_waves: Option<u64>,
    /// Root-side count of consecutive stalled waves (see above).
    stalled_waves: u64,
    /// Sticky abort verdict (set on every rank by the root's broadcast).
    aborted: bool,
}

impl Quiescence {
    /// Open the detector. Collective: every rank must call with the same
    /// `instance` id (allows several independent traversals per world).
    pub fn new(ctx: &RankCtx, instance: u64) -> Self {
        let tag = crate::registry::TERMINATION_TAG_BASE + instance;
        let ch = ctx.channel_internal::<TermMsg>(tag);
        Self {
            parent: tree_parent(ctx.rank()),
            children: tree_children(ctx.rank(), ctx.size()),
            ch,
            wave: 0,
            child_sent: 0,
            child_recv: 0,
            child_stable: true,
            child_flag: true,
            children_seen: 0,
            contributed: false,
            prev_contrib: None,
            terminated: false,
            waves_run: 0,
            cuts_fired: 0,
            watchdog_waves: None,
            stalled_waves: 0,
            aborted: false,
        }
    }

    /// Arm the stall watchdog: if `waves` consecutive completed waves see a
    /// globally stable world whose send and receive totals disagree — every
    /// rank idle, nothing moving, yet messages in flight that are never
    /// delivered — the root broadcasts an abort verdict and every rank's
    /// [`Quiescence::poll_cut_watched`] returns [`CutVerdict::Abort`] on
    /// the same wave. That signature cannot occur at a true quiescent point
    /// and is exactly what a hard receive stall (a dead NIC, a wedged peer)
    /// looks like; transient faults reset the count as soon as a delivery
    /// moves a counter. Collective: every rank must arm the same limit.
    ///
    /// Pick `waves` large enough to outlast legitimate repair traffic
    /// (NACK/RTO retransmission holds the stable-but-unbalanced signature
    /// for up to ~RTO sender ticks, roughly one wave per tick) — thousands
    /// of waves, not dozens, under lossy fault plans.
    pub fn arm_watchdog(&mut self, waves: u64) {
        self.watchdog_waves = Some(waves.max(1));
    }

    fn reset_wave(&mut self) {
        self.wave += 1;
        self.child_sent = 0;
        self.child_recv = 0;
        self.child_stable = true;
        self.child_flag = true;
        self.children_seen = 0;
        self.contributed = false;
        self.waves_run += 1;
    }

    /// Advance the protocol with this rank's current counters; returns true
    /// once global quiescence is confirmed (sticky).
    ///
    /// `sent`/`recv` must be monotonically non-decreasing end-to-end payload
    /// counters; `idle` must only be true when this rank has no queued work
    /// and no un-flushed outgoing buffers.
    pub fn poll(&mut self, sent: u64, recv: u64, idle: bool) -> bool {
        matches!(self.poll_cut(sent, recv, idle, true), Some(true))
    }

    /// Generalized, reusable quiescence: confirm a *consistent cut* — an
    /// instant with no in-flight messages — without necessarily stopping the
    /// detector. All ranks contribute `ready` (counted into `stable` exactly
    /// like `idle` in [`Quiescence::poll`]) and a user `flag`; when a wave
    /// confirms global readiness with `sent == recv`, `poll_cut` returns
    /// `Some(g)` on every rank, where `g` is the AND of all flags at the
    /// cut. A `Some(true)` cut is terminal (sticky, like `poll`); after a
    /// `Some(false)` cut the detector resets and can confirm further cuts.
    ///
    /// Checkpointed traversals pass `flag = "no local work queued"`, so a
    /// cut with all ranks drained reads as termination while a cut forced by
    /// a checkpoint threshold reads as a checkpointable barrier with the
    /// frontier parked in local heaps.
    fn verdict(terminated: bool) -> CutVerdict {
        if terminated {
            CutVerdict::Terminate
        } else {
            CutVerdict::Cut
        }
    }

    pub fn poll_cut(&mut self, sent: u64, recv: u64, ready: bool, flag: bool) -> Option<bool> {
        match self.poll_cut_watched(sent, recv, ready, flag) {
            None => None,
            Some(CutVerdict::Cut) => Some(false),
            Some(CutVerdict::Terminate) => Some(true),
            Some(CutVerdict::Abort) => panic!(
                "stall watchdog fired but the caller polls through poll_cut; \
                 armed detectors must be driven via poll_cut_watched"
            ),
        }
    }

    /// Like [`Quiescence::poll_cut`], but also surfaces the stall
    /// watchdog's verdict (see [`Quiescence::arm_watchdog`]). Returns
    /// `Some(CutVerdict::Abort)` — sticky, world-agreed — when the armed
    /// watchdog fires; with no watchdog armed it behaves exactly like
    /// `poll_cut` with `Cut`/`Terminate` standing in for `false`/`true`.
    pub fn poll_cut_watched(
        &mut self,
        sent: u64,
        recv: u64,
        ready: bool,
        flag: bool,
    ) -> Option<CutVerdict> {
        if self.aborted {
            return Some(CutVerdict::Abort);
        }
        if self.terminated {
            return Some(CutVerdict::Terminate);
        }
        if self.ch.is_poisoned() {
            // a peer rank panicked: detection can never complete, so join
            // the world-wide shutdown instead of spinning forever
            panic!("termination detector aborting: a peer rank panicked");
        }
        // Drain protocol messages.
        while let Some((_src, msg)) = self.ch.try_recv() {
            match msg {
                TermMsg::Up { wave, sent, recv, stable, flag } => {
                    debug_assert_eq!(wave, self.wave, "child wave skew");
                    self.child_sent += sent;
                    self.child_recv += recv;
                    self.child_stable &= stable;
                    self.child_flag &= flag;
                    self.children_seen += 1;
                }
                TermMsg::Down { wave, terminate, abort, flag } => {
                    debug_assert_eq!(wave, self.wave, "parent wave skew");
                    for &c in &self.children {
                        self.ch.send(c, TermMsg::Down { wave, terminate, abort, flag });
                    }
                    if abort {
                        self.aborted = true;
                        return Some(CutVerdict::Abort);
                    }
                    if terminate {
                        return Some(Self::verdict(self.finish_cut(flag)));
                    }
                    self.reset_wave();
                }
            }
        }
        // Contribute (and combine upward) once all children have reported.
        if !self.contributed && self.children_seen == self.children.len() {
            let stable = ready && self.prev_contrib == Some((sent, recv));
            self.prev_contrib = Some((sent, recv));
            self.contributed = true;
            let tot_sent = self.child_sent + sent;
            let tot_recv = self.child_recv + recv;
            let tot_stable = self.child_stable && stable;
            let tot_flag = self.child_flag && flag;
            match self.parent {
                Some(p) => {
                    self.ch.send(
                        p,
                        TermMsg::Up {
                            wave: self.wave,
                            sent: tot_sent,
                            recv: tot_recv,
                            stable: tot_stable,
                            flag: tot_flag,
                        },
                    );
                }
                None => {
                    let terminate = tot_stable && tot_sent == tot_recv;
                    // Root-side watchdog: a stable world with unbalanced
                    // totals is in-flight work that is not being delivered.
                    // Any wave that moves a counter (or finds a busy rank)
                    // resets the count, so only a persistent wedge aborts.
                    if tot_stable && tot_sent != tot_recv {
                        self.stalled_waves += 1;
                    } else {
                        self.stalled_waves = 0;
                    }
                    let abort =
                        !terminate && self.watchdog_waves.is_some_and(|w| self.stalled_waves >= w);
                    let wave = self.wave;
                    for &c in &self.children {
                        self.ch.send(c, TermMsg::Down { wave, terminate, abort, flag: tot_flag });
                    }
                    if abort {
                        self.aborted = true;
                        return Some(CutVerdict::Abort);
                    }
                    if terminate {
                        return Some(Self::verdict(self.finish_cut(tot_flag)));
                    }
                    self.reset_wave();
                }
            }
        }
        None
    }

    /// A wave just confirmed a cut with global flag AND `flag`: stick if
    /// terminal, otherwise rearm for the next cut. Clearing `prev_contrib`
    /// forces a full two-wave stability check before the next cut can fire.
    fn finish_cut(&mut self, flag: bool) -> bool {
        if flag {
            self.terminated = true;
        } else {
            self.cuts_fired += 1;
            self.prev_contrib = None;
            self.reset_wave();
        }
        flag
    }

    /// Number of completed (non-terminating) waves — a measure of how often
    /// the detector cycled; useful in tests and experiments.
    pub fn waves_run(&self) -> u64 {
        self.waves_run
    }

    /// Number of non-terminal consistent cuts this detector confirmed.
    pub fn cuts_fired(&self) -> u64 {
        self.cuts_fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mailbox::{Mailbox, MailboxConfig};
    use crate::runtime::CommWorld;
    use crate::topology::TopologyKind;

    #[test]
    fn single_rank_terminates_immediately() {
        CommWorld::run(1, |ctx| {
            let mut q = Quiescence::new(ctx, 0);
            let mut polls = 0;
            while !q.poll(0, 0, true) {
                polls += 1;
                assert!(polls < 100, "should terminate within a few waves");
            }
        });
    }

    #[test]
    fn idle_world_terminates() {
        for p in [2usize, 3, 5, 8] {
            CommWorld::run(p, |ctx| {
                let mut q = Quiescence::new(ctx, 0);
                let mut polls = 0u64;
                while !q.poll(0, 0, true) {
                    polls += 1;
                    if polls.is_multiple_of(64) {
                        std::thread::yield_now();
                    }
                    assert!(polls < 1_000_000, "termination too slow");
                }
            });
        }
    }

    #[test]
    fn does_not_terminate_while_work_remains() {
        CommWorld::run(2, |ctx| {
            let mut q = Quiescence::new(ctx, 0);
            // rank 0 pretends to have one eternally-unreceived message
            let (sent, recv) = if ctx.rank() == 0 { (1, 0) } else { (0, 0) };
            for _ in 0..500 {
                assert!(!q.poll(sent, recv, true), "sent != recv must block termination");
            }
        });
    }

    #[test]
    fn does_not_terminate_while_any_rank_busy() {
        CommWorld::run(3, |ctx| {
            let mut q = Quiescence::new(ctx, 0);
            let idle = ctx.rank() != 1;
            for _ in 0..500 {
                assert!(!q.poll(0, 0, idle), "busy rank must block termination");
            }
        });
    }

    /// The canonical integration scenario: a random "token storm" over a
    /// mailbox, like a miniature visitor traversal. Each token with ttl > 0
    /// spawns a token with ttl-1 to a pseudo-random rank. Termination must
    /// fire only after every token has been processed.
    fn token_storm(p: usize, topo: TopologyKind, seed_tokens: usize, ttl: u32) {
        let totals = CommWorld::run(p, |ctx| {
            let mut mb = Mailbox::<u32>::open(
                ctx,
                7,
                MailboxConfig { topology: topo, batch_size: 4, ..MailboxConfig::default() },
            );
            let mut q = Quiescence::new(ctx, 3);
            let mut rng_state = (ctx.rank() as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
            let mut next = move || {
                rng_state ^= rng_state << 13;
                rng_state ^= rng_state >> 7;
                rng_state ^= rng_state << 17;
                rng_state
            };
            let mut processed = 0u64;
            let mut queue: Vec<u32> = Vec::new();
            for _ in 0..seed_tokens {
                mb.send(next() as usize % p, ttl);
            }
            loop {
                mb.poll(&mut queue);
                if let Some(t) = queue.pop() {
                    processed += 1;
                    if t > 0 {
                        mb.send(next() as usize % p, t - 1);
                    }
                    continue;
                }
                mb.flush();
                let idle = queue.is_empty() && mb.pending_out() == 0;
                if q.poll(mb.sent_count(), mb.received_count(), idle) {
                    break;
                }
            }
            assert!(queue.is_empty());
            assert_eq!(mb.pending_out(), 0);
            (processed, mb.sent_count(), mb.received_count())
        });
        let processed: u64 = totals.iter().map(|t| t.0).sum();
        let sent: u64 = totals.iter().map(|t| t.1).sum();
        let recv: u64 = totals.iter().map(|t| t.2).sum();
        // every token is processed exactly once; chain length = ttl + 1
        assert_eq!(processed, (p * seed_tokens) as u64 * (ttl as u64 + 1));
        assert_eq!(sent, recv);
        assert_eq!(processed, recv);
    }

    #[test]
    fn token_storm_direct() {
        token_storm(4, TopologyKind::Direct, 8, 20);
    }

    #[test]
    fn token_storm_routed2d() {
        token_storm(9, TopologyKind::Routed2D, 5, 15);
    }

    #[test]
    fn token_storm_routed3d() {
        token_storm(8, TopologyKind::Routed3D, 5, 15);
    }

    #[test]
    fn token_storm_single_rank() {
        token_storm(1, TopologyKind::Direct, 10, 50);
    }

    /// The checkpoint-cut protocol: three non-terminal cuts (flag=false)
    /// must each fire exactly once on every rank, then a flag=true cut
    /// terminates and sticks.
    #[test]
    fn poll_cut_fires_repeatedly_then_terminates() {
        for p in [1usize, 2, 5, 8] {
            CommWorld::run(p, |ctx| {
                let mut q = Quiescence::new(ctx, 0);
                for cut in 0..3u64 {
                    let mut polls = 0u64;
                    loop {
                        match q.poll_cut(7, 7, true, false) {
                            Some(false) => break,
                            Some(true) => panic!("flag=false cut must not terminate"),
                            None => {
                                polls += 1;
                                if polls.is_multiple_of(64) {
                                    std::thread::yield_now();
                                }
                                assert!(polls < 1_000_000, "cut {cut} too slow (p={p})");
                            }
                        }
                    }
                    assert_eq!(q.cuts_fired(), cut + 1);
                }
                let mut polls = 0u64;
                while q.poll_cut(7, 7, true, true) != Some(true) {
                    polls += 1;
                    if polls.is_multiple_of(64) {
                        std::thread::yield_now();
                    }
                    assert!(polls < 1_000_000, "terminal cut too slow (p={p})");
                }
                // terminal cuts are sticky
                assert_eq!(q.poll_cut(7, 7, true, false), Some(true));
                assert!(q.poll(7, 7, true));
            });
        }
    }

    /// Readiness gates the cut: one rank polling `ready = false` blocks
    /// every cut, regardless of the flags the others contribute.
    #[test]
    fn poll_cut_blocks_on_unready_rank() {
        CommWorld::run(3, |ctx| {
            let mut q = Quiescence::new(ctx, 0);
            let ready = ctx.rank() != 2;
            for _ in 0..500 {
                assert_eq!(q.poll_cut(0, 0, ready, true), None);
            }
        });
    }

    #[test]
    fn detector_is_reusable_via_instances() {
        CommWorld::run(4, |ctx| {
            for instance in 0..3 {
                let mut q = Quiescence::new(ctx, instance);
                while !q.poll(5, 5, true) {}
            }
        });
    }

    /// An armed watchdog converts a persistent sent != recv imbalance
    /// (a receiver that will never drain) into a world-agreed Abort on
    /// every rank, instead of spinning forever.
    #[test]
    fn watchdog_aborts_on_persistent_imbalance() {
        for p in [1usize, 2, 4] {
            CommWorld::run(p, |ctx| {
                let mut q = Quiescence::new(ctx, 0);
                q.arm_watchdog(8);
                // rank 0 claims one message that is never delivered
                let (sent, recv) = if ctx.rank() == 0 { (1, 0) } else { (0, 0) };
                let mut polls = 0u64;
                loop {
                    match q.poll_cut_watched(sent, recv, true, false) {
                        Some(CutVerdict::Abort) => break,
                        Some(v) => panic!("imbalanced world produced {v:?} (p={p})"),
                        None => {
                            polls += 1;
                            if polls.is_multiple_of(64) {
                                std::thread::yield_now();
                            }
                            assert!(polls < 1_000_000, "watchdog too slow (p={p})");
                        }
                    }
                }
                // aborts are sticky
                assert_eq!(q.poll_cut_watched(sent, recv, true, false), Some(CutVerdict::Abort));
            });
        }
    }

    /// A balanced, idle world terminates normally even with the watchdog
    /// armed — the stall counter only advances on stable-but-unbalanced
    /// waves, which never occur here.
    #[test]
    fn watchdog_does_not_fire_on_clean_termination() {
        for p in [1usize, 2, 4] {
            CommWorld::run(p, |ctx| {
                let mut q = Quiescence::new(ctx, 0);
                q.arm_watchdog(2);
                let mut polls = 0u64;
                loop {
                    match q.poll_cut_watched(3, 3, true, true) {
                        Some(CutVerdict::Terminate) => break,
                        Some(v) => panic!("clean world produced {v:?} (p={p})"),
                        None => {
                            polls += 1;
                            if polls.is_multiple_of(64) {
                                std::thread::yield_now();
                            }
                            assert!(polls < 1_000_000, "termination too slow (p={p})");
                        }
                    }
                }
            });
        }
    }

    /// Non-terminal cuts fire normally under an armed watchdog: the
    /// detector still reports `Cut` for flag=false waves and only
    /// escalates when imbalance persists across full waves.
    #[test]
    fn watchdog_allows_nonterminal_cuts() {
        CommWorld::run(3, |ctx| {
            let mut q = Quiescence::new(ctx, 0);
            q.arm_watchdog(1000);
            for cut in 0..3u64 {
                let mut polls = 0u64;
                loop {
                    match q.poll_cut_watched(9, 9, true, false) {
                        Some(CutVerdict::Cut) => break,
                        Some(v) => panic!("non-terminal cut produced {v:?}"),
                        None => {
                            polls += 1;
                            if polls.is_multiple_of(64) {
                                std::thread::yield_now();
                            }
                            assert!(polls < 1_000_000, "cut {cut} too slow");
                        }
                    }
                }
                assert_eq!(q.cuts_fired(), cut + 1);
            }
        });
    }
}
