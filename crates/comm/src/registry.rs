//! Typed channel registry shared by all ranks of one [`CommWorld`] run.
//!
//! Ranks create typed point-to-point channel sets lazily and collectively: the
//! first rank to ask for `(message type, tag)` materializes one MPMC queue per
//! destination rank; every rank then clones the senders and takes its own
//! receiver exactly once. This mirrors how MPI programs agree on communicators
//! and tags out of band.
//!
//! [`CommWorld`]: crate::runtime::CommWorld

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::chan::{channel, Receiver, Sender};
use crate::stats::ChannelStats;

/// A message on the wire, carrying its source rank and a per-`(src, dst)`
/// sequence number. The sequence number exists for the fault-injection
/// layer: duplicated frames reuse the original's number so the receiver
/// can drop the second copy, and delayed frames stay identifiable no
/// matter when they surface. Fault-free runs stamp it but never read it.
#[derive(Debug)]
pub struct Wire<M> {
    pub src: u32,
    pub seq: u64,
    pub msg: M,
}

impl<M> Wire<M> {
    /// A wire envelope with sequence number 0 — for tests and callers that
    /// bypass [`Transport`](crate::transport::Transport) stamping.
    pub fn new(src: u32, msg: M) -> Self {
        Self { src, seq: 0, msg }
    }
}

/// One materialized channel set: `p` queues, one per destination rank.
///
/// `capacity` is fixed at creation: `None` for unbounded control channels
/// (collectives, termination), `Some(n)` for the bounded data-plane
/// channels the byte-framed mailbox uses for backpressure.
pub struct ChannelSet<M> {
    pub senders: Vec<Sender<Wire<M>>>,
    pub receivers: Vec<Mutex<Option<Receiver<Wire<M>>>>>,
    pub stats: Arc<ChannelStats>,
    pub capacity: Option<usize>,
}

impl<M> ChannelSet<M> {
    fn new(ranks: usize, capacity: Option<usize>) -> Self {
        let mut senders = Vec::with_capacity(ranks);
        let mut receivers = Vec::with_capacity(ranks);
        for _ in 0..ranks {
            let (s, r) = channel(capacity);
            senders.push(s);
            receivers.push(Mutex::new(Some(r)));
        }
        Self { senders, receivers, stats: Arc::new(ChannelStats::new(ranks)), capacity }
    }
}

/// Key for a channel set: the message type plus a user tag, so independent
/// subsystems (mailbox payloads, termination control, collectives) never share
/// queues even when they exchange the same Rust type.
type Key = (TypeId, u64);

/// World-wide registry of channel sets, keyed by `(TypeId, tag)`.
pub struct Registry {
    ranks: usize,
    slots: Mutex<HashMap<Key, Arc<dyn Any + Send + Sync>>>,
}

impl Registry {
    pub fn new(ranks: usize) -> Self {
        Self { ranks, slots: Mutex::new(HashMap::new()) }
    }

    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Get (creating on first call) the unbounded channel set for `(M, tag)`.
    pub fn channel_set<M: Send + 'static>(&self, tag: u64) -> Arc<ChannelSet<M>> {
        self.channel_set_with_capacity(tag, None)
    }

    /// Get (creating on first call) the channel set for `(M, tag)` with the
    /// given per-queue capacity. The first creator's capacity wins; under
    /// the SPMD contract every rank opens a tag with the same configuration,
    /// which is asserted here.
    pub fn channel_set_with_capacity<M: Send + 'static>(
        &self,
        tag: u64,
        capacity: Option<usize>,
    ) -> Arc<ChannelSet<M>> {
        let key = (TypeId::of::<M>(), tag);
        let mut slots = self.slots.lock().unwrap();
        let entry = slots
            .entry(key)
            .or_insert_with(|| {
                Arc::new(ChannelSet::<M>::new(self.ranks, capacity)) as Arc<dyn Any + Send + Sync>
            })
            .clone();
        drop(slots);
        let set = entry
            .downcast::<ChannelSet<M>>()
            .expect("registry slot type mismatch (TypeId collision is impossible)");
        assert_eq!(
            set.capacity, capacity,
            "ranks opened channel tag={tag} with different capacities (SPMD violation)"
        );
        set
    }

    /// Take rank `r`'s receiver for `(M, tag)`. Panics if taken twice: each
    /// rank may open a given channel exactly once, like an MPI communicator.
    pub fn take_receiver<M: Send + 'static>(&self, tag: u64, rank: usize) -> Receiver<Wire<M>> {
        let key = (TypeId::of::<M>(), tag);
        let entry = self
            .slots
            .lock()
            .unwrap()
            .get(&key)
            .cloned()
            .unwrap_or_else(|| panic!("channel tag={tag} not created before take_receiver"));
        let set = entry
            .downcast::<ChannelSet<M>>()
            .expect("registry slot type mismatch (TypeId collision is impossible)");
        let rx = set.receivers[rank].lock().unwrap().take();
        rx.unwrap_or_else(|| panic!("rank {rank} opened channel tag={tag} twice"))
    }
}

/// Tag namespaces. User code must tag channels below [`RESERVED_TAG_BASE`];
/// the runtime derives internal tags above it.
pub const RESERVED_TAG_BASE: u64 = 1 << 48;

/// Tag space for collective operations (one fresh channel per invocation).
pub const COLLECTIVE_TAG_BASE: u64 = RESERVED_TAG_BASE;

/// Tag space for termination-detection control channels.
pub const TERMINATION_TAG_BASE: u64 = RESERVED_TAG_BASE + (1 << 40);

/// Tag space for the mailbox integrity layer's ACK/NACK control channels
/// (one per mailbox, offset by the mailbox's own tag).
pub const INTEGRITY_TAG_BASE: u64 = RESERVED_TAG_BASE + (2 << 40);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_set_roundtrip() {
        let reg = Registry::new(2);
        let set = reg.channel_set::<u32>(7);
        let rx1 = reg.take_receiver::<u32>(7, 1);
        set.senders[1].send(Wire::new(0, 42u32)).unwrap();
        let w = rx1.try_recv().unwrap();
        assert_eq!(w.src, 0);
        assert_eq!(w.msg, 42);
    }

    #[test]
    fn distinct_tags_are_distinct_channels() {
        let reg = Registry::new(1);
        let a = reg.channel_set::<u32>(0);
        let b = reg.channel_set::<u32>(1);
        a.senders[0].send(Wire::new(0, 1)).unwrap();
        // Nothing arrives on tag 1's queue.
        let rx_b = reg.take_receiver::<u32>(1, 0);
        assert!(rx_b.try_recv().is_err());
        let rx_a = reg.take_receiver::<u32>(0, 0);
        assert_eq!(rx_a.try_recv().unwrap().msg, 1);
        drop(b);
    }

    #[test]
    fn distinct_types_same_tag_are_distinct() {
        let reg = Registry::new(1);
        let a = reg.channel_set::<u32>(0);
        let _b = reg.channel_set::<u64>(0);
        a.senders[0].send(Wire::new(0, 9)).unwrap();
        let rx64 = reg.take_receiver::<u64>(0, 0);
        assert!(rx64.try_recv().is_err());
    }

    #[test]
    fn bounded_sets_enforce_capacity() {
        let reg = Registry::new(1);
        let set = reg.channel_set_with_capacity::<u8>(3, Some(2));
        assert!(set.senders[0].try_send(Wire::new(0, 1)).is_ok());
        assert!(set.senders[0].try_send(Wire::new(0, 2)).is_ok());
        assert!(set.senders[0].try_send(Wire::new(0, 3)).is_err());
    }

    #[test]
    #[should_panic(expected = "different capacities")]
    fn mismatched_capacity_is_an_spmd_violation() {
        let reg = Registry::new(1);
        let _a = reg.channel_set_with_capacity::<u8>(0, Some(4));
        let _b = reg.channel_set_with_capacity::<u8>(0, None);
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn double_take_panics() {
        let reg = Registry::new(1);
        let _ = reg.channel_set::<u8>(0);
        let _ = reg.take_receiver::<u8>(0, 0);
        let _ = reg.take_receiver::<u8>(0, 0);
    }
}
