//! The byte-level wire format: fixed-size record codecs, frames, and the
//! reusable frame-buffer pool.
//!
//! Every payload that crosses a mailbox channel is encoded as a fixed-size
//! record and packed, together with its final-destination rank, into a
//! *frame*:
//!
//! ```text
//! frame   := header record* crc?
//! header  := record_size: u32 LE | record_count: u32 LE      (8 bytes)
//! record  := dst_rank: u32 LE | payload: WIRE_SIZE bytes
//! crc     := crc32(header record*): u32 LE                   (4 bytes)
//! ```
//!
//! The CRC trailer is appended by the mailbox when its integrity layer is
//! enabled (the default): [`frame_seal`] stamps it at flush time and
//! [`frame_verify_and_strip`] checks it on arrival, so any bit flip
//! anywhere in a frame — header, routing prefix, payload, or the trailer
//! itself — is detected before a single record is decoded.
//!
//! Frames are plain `Vec<u8>` buffers recycled through a [`FramePool`]
//! free list, so steady-state traversal ships frames without allocating.
//! Routed topologies forward transit records by copying raw record bytes
//! between frames — intermediate hops never decode payloads.

/// Fixed-size binary encoding for one wire record payload.
///
/// `encode` writes exactly [`WireCodec::WIRE_SIZE`] bytes; `decode` reads
/// them back. Types that carry rank-replicated context that cannot travel
/// on the wire (e.g. a shared subset table) declare it as
/// [`WireCodec::DecodeCtx`] and receive it at decode time; plain POD types
/// use `()`.
pub trait WireCodec: Sized {
    /// Encoded payload size in bytes (excluding the 4-byte routing prefix).
    const WIRE_SIZE: usize;

    /// Rank-local context needed to reconstruct a value from its bytes.
    type DecodeCtx: Clone + Send + Sync + 'static;

    /// Write exactly `WIRE_SIZE` bytes into `buf` (`buf.len() == WIRE_SIZE`).
    fn encode(&self, buf: &mut [u8]);

    /// Read a value back from exactly `WIRE_SIZE` bytes.
    fn decode(buf: &[u8], ctx: &Self::DecodeCtx) -> Self;
}

// --- primitive impls ------------------------------------------------------

macro_rules! impl_wire_int {
    ($($t:ty),*) => {$(
        impl WireCodec for $t {
            const WIRE_SIZE: usize = std::mem::size_of::<$t>();
            type DecodeCtx = ();

            #[inline]
            fn encode(&self, buf: &mut [u8]) {
                buf.copy_from_slice(&self.to_le_bytes());
            }

            #[inline]
            fn decode(buf: &[u8], _ctx: &()) -> Self {
                <$t>::from_le_bytes(buf.try_into().unwrap())
            }
        }
    )*};
}

impl_wire_int!(u8, u16, u32, u64, i8, i16, i32, i64);

impl WireCodec for () {
    const WIRE_SIZE: usize = 0;
    type DecodeCtx = ();

    #[inline]
    fn encode(&self, _buf: &mut [u8]) {}

    #[inline]
    fn decode(_buf: &[u8], _ctx: &()) -> Self {}
}

impl<A, B> WireCodec for (A, B)
where
    A: WireCodec<DecodeCtx = ()>,
    B: WireCodec<DecodeCtx = ()>,
{
    const WIRE_SIZE: usize = A::WIRE_SIZE + B::WIRE_SIZE;
    type DecodeCtx = ();

    #[inline]
    fn encode(&self, buf: &mut [u8]) {
        self.0.encode(&mut buf[..A::WIRE_SIZE]);
        self.1.encode(&mut buf[A::WIRE_SIZE..]);
    }

    #[inline]
    fn decode(buf: &[u8], _ctx: &()) -> Self {
        (A::decode(&buf[..A::WIRE_SIZE], &()), B::decode(&buf[A::WIRE_SIZE..], &()))
    }
}

impl<A, B, C> WireCodec for (A, B, C)
where
    A: WireCodec<DecodeCtx = ()>,
    B: WireCodec<DecodeCtx = ()>,
    C: WireCodec<DecodeCtx = ()>,
{
    const WIRE_SIZE: usize = A::WIRE_SIZE + B::WIRE_SIZE + C::WIRE_SIZE;
    type DecodeCtx = ();

    #[inline]
    fn encode(&self, buf: &mut [u8]) {
        self.0.encode(&mut buf[..A::WIRE_SIZE]);
        self.1.encode(&mut buf[A::WIRE_SIZE..A::WIRE_SIZE + B::WIRE_SIZE]);
        self.2.encode(&mut buf[A::WIRE_SIZE + B::WIRE_SIZE..]);
    }

    #[inline]
    fn decode(buf: &[u8], _ctx: &()) -> Self {
        (
            A::decode(&buf[..A::WIRE_SIZE], &()),
            B::decode(&buf[A::WIRE_SIZE..A::WIRE_SIZE + B::WIRE_SIZE], &()),
            C::decode(&buf[A::WIRE_SIZE + B::WIRE_SIZE..], &()),
        )
    }
}

// --- frames ---------------------------------------------------------------

/// Frame header: `record_size: u32` + `record_count: u32`, little-endian.
pub const FRAME_HEADER_BYTES: usize = 8;

/// Per-record routing prefix (the final-destination rank).
pub const RECORD_DST_BYTES: usize = 4;

/// One encoded frame travelling between ranks. A thin newtype over the
/// pooled byte buffer so transport channels carry a distinct message type.
#[derive(Debug)]
pub struct Frame {
    pub buf: Vec<u8>,
}

/// Start a frame in `buf`: clear it and write the header for records of
/// `record_size` bytes (routing prefix included), count 0.
#[inline]
pub fn frame_init(buf: &mut Vec<u8>, record_size: u32) {
    buf.clear();
    buf.extend_from_slice(&record_size.to_le_bytes());
    buf.extend_from_slice(&0u32.to_le_bytes());
}

/// Finalize a frame's record count.
#[inline]
pub fn frame_set_count(buf: &mut [u8], count: u32) {
    buf[4..8].copy_from_slice(&count.to_le_bytes());
}

/// The record size (routing prefix included) a frame was built with.
#[inline]
pub fn frame_record_size(buf: &[u8]) -> u32 {
    u32::from_le_bytes(buf[0..4].try_into().unwrap())
}

/// The number of records in a finalized frame.
#[inline]
pub fn frame_record_count(buf: &[u8]) -> u32 {
    u32::from_le_bytes(buf[4..8].try_into().unwrap())
}

// --- frame integrity ------------------------------------------------------

/// Size of the CRC32 trailer appended to integrity-protected frames.
pub const FRAME_CRC_BYTES: usize = 4;

/// CRC-32 (IEEE 802.3, reflected) shared with the NVRAM layer's per-page
/// checksums; detects any single-bit error and any error burst up to 32
/// bits, which covers the fault plan's one-bit corruption exactly.
pub use havoq_util::crc::crc32;

/// Seal a finalized frame: append the CRC32 trailer covering everything
/// currently in `buf` (header + records).
#[inline]
pub fn frame_seal(buf: &mut Vec<u8>) {
    let crc = crc32(buf);
    buf.extend_from_slice(&crc.to_le_bytes());
}

/// Verify a sealed frame and strip its trailer. Returns `false` — leaving
/// `buf` untouched — when the frame is too short or the CRC mismatches;
/// the caller NACKs it instead of decoding garbage.
#[inline]
#[must_use]
pub fn frame_verify_and_strip(buf: &mut Vec<u8>) -> bool {
    if buf.len() < FRAME_HEADER_BYTES + FRAME_CRC_BYTES {
        return false;
    }
    let split = buf.len() - FRAME_CRC_BYTES;
    let want = u32::from_le_bytes(buf[split..].try_into().unwrap());
    if crc32(&buf[..split]) != want {
        return false;
    }
    buf.truncate(split);
    true
}

/// Free list of reusable frame buffers, bounded so pathological fan-out
/// cannot hoard memory. Steady-state traversal receives roughly as many
/// frames as it sends, so the pool self-sustains after warm-up and the
/// `allocated` counter stops moving.
pub struct FramePool {
    free: Vec<Vec<u8>>,
    max_free: usize,
    frame_bytes: usize,
    allocated: u64,
    reused: u64,
}

impl FramePool {
    pub fn new(frame_bytes: usize, max_free: usize) -> Self {
        Self { free: Vec::new(), max_free, frame_bytes, allocated: 0, reused: 0 }
    }

    /// Take a cleared buffer with `frame_bytes` capacity.
    pub fn get(&mut self) -> Vec<u8> {
        match self.free.pop() {
            Some(mut b) => {
                self.reused += 1;
                b.clear();
                b
            }
            None => {
                self.allocated += 1;
                Vec::with_capacity(self.frame_bytes)
            }
        }
    }

    /// Return a buffer to the free list (dropped if the list is full).
    pub fn put(&mut self, buf: Vec<u8>) {
        if self.free.len() < self.max_free {
            self.free.push(buf);
        }
    }

    /// Buffers ever allocated from the system.
    pub fn allocated(&self) -> u64 {
        self.allocated
    }

    /// `get` calls served from the free list.
    pub fn reused(&self) -> u64 {
        self.reused
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: WireCodec<DecodeCtx = ()> + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = vec![0u8; T::WIRE_SIZE];
        v.encode(&mut buf);
        assert_eq!(T::decode(&buf, &()), v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0xabu8);
        roundtrip(0xab_cdu16);
        roundtrip(0xdead_beefu32);
        roundtrip(u64::MAX - 7);
        roundtrip(-123i64);
        roundtrip((1u64, 2u32));
        roundtrip((9u64, 8u64, 255u8));
        roundtrip(());
    }

    #[test]
    fn encoding_is_little_endian() {
        let mut buf = [0u8; 4];
        0x0102_0304u32.encode(&mut buf);
        assert_eq!(buf, [4, 3, 2, 1]);
    }

    #[test]
    fn frame_header_roundtrip() {
        let mut buf = Vec::new();
        frame_init(&mut buf, 28);
        assert_eq!(buf.len(), FRAME_HEADER_BYTES);
        buf.extend_from_slice(&[0u8; 28 * 3]);
        frame_set_count(&mut buf, 3);
        assert_eq!(frame_record_size(&buf), 28);
        assert_eq!(frame_record_count(&buf), 3);
    }

    #[test]
    fn crc32_known_vector() {
        // the canonical CRC-32/IEEE check value
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn sealed_frame_roundtrips_and_detects_any_single_bit_flip() {
        let mut buf = Vec::new();
        frame_init(&mut buf, 12);
        buf.extend_from_slice(&[0xA5u8; 12 * 2]);
        frame_set_count(&mut buf, 2);
        let clean = buf.clone();
        frame_seal(&mut buf);
        assert_eq!(buf.len(), clean.len() + FRAME_CRC_BYTES);

        let mut ok = buf.clone();
        assert!(frame_verify_and_strip(&mut ok));
        assert_eq!(ok, clean, "trailer stripped, payload untouched");

        for bit in 0..buf.len() * 8 {
            let mut flipped = buf.clone();
            flipped[bit / 8] ^= 1 << (bit % 8);
            let before = flipped.clone();
            assert!(!frame_verify_and_strip(&mut flipped), "bit {bit} flip went undetected");
            assert_eq!(flipped, before, "failed verification must not mutate the frame");
        }
    }

    #[test]
    fn runt_frames_fail_verification() {
        let mut tiny = vec![0u8; FRAME_HEADER_BYTES + FRAME_CRC_BYTES - 1];
        assert!(!frame_verify_and_strip(&mut tiny));
    }

    #[test]
    fn pool_reuses_buffers() {
        let mut pool = FramePool::new(4096, 8);
        let a = pool.get();
        let b = pool.get();
        assert_eq!(pool.allocated(), 2);
        pool.put(a);
        pool.put(b);
        let c = pool.get();
        assert_eq!(c.capacity(), 4096);
        assert_eq!(pool.allocated(), 2, "no new allocation after recycling");
        assert_eq!(pool.reused(), 1);
    }

    #[test]
    fn pool_bounds_its_free_list() {
        let mut pool = FramePool::new(64, 2);
        for _ in 0..5 {
            let b = pool.get();
            pool.put(b);
        }
        pool.put(Vec::new());
        pool.put(Vec::new());
        pool.put(Vec::new());
        assert!(pool.free.len() <= 2);
    }
}
