//! Simulated distributed message-passing runtime for the HavoqGT reproduction.
//!
//! The paper (Pearce et al., IPDPS 2013) implements its distributed visitor
//! queue on top of non-blocking point-to-point MPI. This crate provides the
//! same primitives for a *simulated* cluster in which every MPI rank is an OS
//! thread:
//!
//! - [`CommWorld::run`] launches an SPMD region: `p` rank threads all execute
//!   the same closure, exactly like `mpirun -np p`.
//! - [`Transport`] is a typed non-blocking point-to-point channel between all
//!   ranks, with per-channel-pair traffic statistics.
//! - [`collectives`] provides barrier / reduce / gather / scan / all-to-all,
//!   built purely from point-to-point sends (binomial trees), matching what
//!   MPI gives the paper.
//! - [`Mailbox`] is the paper's `send(rank, data)` / `receive()` abstraction
//!   with message aggregation and optional 2D / 3D synthetic routing
//!   topologies (Section III-B, Figure 4).
//! - [`Quiescence`] is the asynchronous termination detector used by
//!   `global_empty()` (Section V, citing Mattern's counting algorithms).
//!
//! Because ranks are threads, all communication-volume metrics — messages per
//! channel pair, aggregation factors, routing hop counts — are structurally
//! identical to what a real network would carry; only absolute latencies
//! differ. See DESIGN.md at the workspace root for the substitution argument.

pub mod chan;
pub mod codec;
pub mod collectives;
pub mod control;
pub mod fault;
pub mod frontier;
pub mod mailbox;
pub mod registry;
pub mod runtime;
pub mod stats;
pub mod termination;
pub mod topology;
pub mod transport;

pub use codec::{Frame, FramePool, WireCodec, FRAME_HEADER_BYTES, RECORD_DST_BYTES};
pub use control::CancelRecord;
pub use fault::{FaultConfig, FaultPlan};
pub use frontier::{FrontierPlane, FrontierRecord};
pub use mailbox::{
    Mailbox, MailboxConfig, MailboxStatsSnapshot, SendShard, DEFAULT_CHANNEL_CAPACITY,
};
pub use runtime::{CommWorld, RankCtx};
pub use stats::{ChannelStats, ChannelStatsSnapshot};
pub use termination::{CutVerdict, Quiescence};
pub use topology::{Topology, TopologyKind};
pub use transport::Transport;
