//! Synthetic routing topologies for the mailbox (paper Section III-B).
//!
//! For dense communication patterns the paper routes messages through a
//! synthetic network: a 2D grid (Figure 4: first hop along the source's row
//! to the destination's column, second hop down the column) or a 3D grid
//! mirroring the BG/P torus. Routing trades extra hops for (a) far fewer open
//! channel pairs per rank and (b) more opportunities for aggregation.

/// A routing topology over `ranks` ranks: given the rank currently holding a
/// message and its final destination, yield the next hop.
pub trait Topology: Send + Sync {
    /// Next rank to forward to. Must eventually reach `dst`; `route(d, d) == d`.
    fn route(&self, current: usize, dst: usize) -> usize;

    /// Ranks that `rank` may ever need to send to (its channel set).
    fn neighbors(&self, rank: usize) -> Vec<usize>;

    /// Upper bound on hops any message can take.
    fn max_hops(&self) -> usize;
}

/// Selector for the built-in topologies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologyKind {
    /// Every pair communicates directly: `p - 1` channels per rank, 1 hop.
    Direct,
    /// 2D grid routing: `O(sqrt(p))` channels per rank, <= 2 hops (Figure 4).
    Routed2D,
    /// 3D grid routing: `O(p^(1/3))` channels per axis, <= 3 hops (BG/P-style).
    Routed3D,
}

impl TopologyKind {
    pub fn build(self, ranks: usize) -> Box<dyn Topology> {
        match self {
            TopologyKind::Direct => Box::new(Direct),
            TopologyKind::Routed2D => Box::new(Grid2D::new(ranks)),
            TopologyKind::Routed3D => Box::new(Grid3D::new(ranks)),
        }
    }
}

/// Fully-connected topology (the baseline the paper routes to avoid).
pub struct Direct;

impl Topology for Direct {
    #[inline]
    fn route(&self, _current: usize, dst: usize) -> usize {
        dst
    }

    fn neighbors(&self, _rank: usize) -> Vec<usize> {
        Vec::new() // unconstrained; stats report what is actually used
    }

    fn max_hops(&self) -> usize {
        1
    }
}

/// Pick `rows` as the largest divisor of `p` that is <= sqrt(p), so the grid
/// is as square as the rank count allows. Prime counts degrade to 1 x p,
/// which routes directly — matching the paper's observation that routing
/// only pays off when the factorization is non-trivial.
fn squarest_rows(p: usize) -> usize {
    let mut best = 1;
    let mut r = 1;
    while r * r <= p {
        if p.is_multiple_of(r) {
            best = r;
        }
        r += 1;
    }
    best
}

/// Row-major 2D grid: rank = row * cols + col.
pub struct Grid2D {
    rows: usize,
    cols: usize,
}

impl Grid2D {
    pub fn new(ranks: usize) -> Self {
        let rows = squarest_rows(ranks);
        Self { rows, cols: ranks / rows }
    }

    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    #[inline]
    fn row(&self, r: usize) -> usize {
        r / self.cols
    }

    #[inline]
    fn col(&self, r: usize) -> usize {
        r % self.cols
    }
}

impl Topology for Grid2D {
    #[inline]
    fn route(&self, current: usize, dst: usize) -> usize {
        if current == dst {
            dst
        } else if self.col(current) != self.col(dst) {
            // hop along the current row into the destination's column
            self.row(current) * self.cols + self.col(dst)
        } else {
            // same column: deliver straight down it
            dst
        }
    }

    fn neighbors(&self, rank: usize) -> Vec<usize> {
        let (row, col) = (self.row(rank), self.col(rank));
        let mut n: Vec<usize> = (0..self.cols).map(|c| row * self.cols + c).collect();
        n.extend((0..self.rows).map(|r| r * self.cols + col));
        n.sort_unstable();
        n.dedup();
        n.retain(|&x| x != rank);
        n
    }

    fn max_hops(&self) -> usize {
        2
    }
}

/// Pick grid dims (a, b, c) with a*b*c = p, as cubic as p's factors allow.
fn cubest_dims(p: usize) -> (usize, usize, usize) {
    let a = {
        // largest divisor of p at most cbrt(p)
        let mut best = 1;
        let mut d = 1;
        while d * d * d <= p {
            if p.is_multiple_of(d) {
                best = d;
            }
            d += 1;
        }
        best
    };
    let rem = p / a;
    let b = squarest_rows(rem);
    (a, b, rem / b)
}

/// 3D grid: rank = (x * dim_b + y) * dim_c + z. Routing corrects one
/// coordinate per hop (z, then y, then x), like dimension-ordered torus
/// routing on BG/P.
pub struct Grid3D {
    b: usize,
    c: usize,
    dims: (usize, usize, usize),
}

impl Grid3D {
    pub fn new(ranks: usize) -> Self {
        let dims = cubest_dims(ranks);
        Self { b: dims.1, c: dims.2, dims }
    }

    pub fn dims(&self) -> (usize, usize, usize) {
        self.dims
    }

    #[inline]
    fn coords(&self, r: usize) -> (usize, usize, usize) {
        (r / (self.b * self.c), (r / self.c) % self.b, r % self.c)
    }

    #[inline]
    fn rank_of(&self, x: usize, y: usize, z: usize) -> usize {
        (x * self.b + y) * self.c + z
    }
}

impl Topology for Grid3D {
    #[inline]
    fn route(&self, current: usize, dst: usize) -> usize {
        if current == dst {
            return dst;
        }
        let (cx, cy, cz) = self.coords(current);
        let (dx, dy, dz) = self.coords(dst);
        if cz != dz {
            self.rank_of(cx, cy, dz)
        } else if cy != dy {
            self.rank_of(cx, dy, cz)
        } else {
            self.rank_of(dx, cy, cz)
        }
    }

    fn neighbors(&self, rank: usize) -> Vec<usize> {
        let (x, y, z) = self.coords(rank);
        let (da, db, dc) = self.dims;
        let mut n = Vec::new();
        n.extend((0..dc).map(|zz| self.rank_of(x, y, zz)));
        n.extend((0..db).map(|yy| self.rank_of(x, yy, z)));
        n.extend((0..da).map(|xx| self.rank_of(xx, y, z)));
        n.sort_unstable();
        n.dedup();
        n.retain(|&r| r != rank);
        n
    }

    fn max_hops(&self) -> usize {
        3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hops_to(topo: &dyn Topology, src: usize, dst: usize) -> usize {
        let mut cur = src;
        let mut hops = 0;
        while cur != dst {
            cur = topo.route(cur, dst);
            hops += 1;
            assert!(hops <= topo.max_hops(), "routing loop {src}->{dst}");
        }
        hops
    }

    #[test]
    fn direct_is_one_hop() {
        let t = Direct;
        for s in 0..8 {
            for d in 0..8 {
                assert!(hops_to(&t, s, d) <= 1);
            }
        }
    }

    #[test]
    fn grid2d_paper_figure4_example() {
        // 16 ranks, 4x4 grid: rank 11 -> rank 5 routes through rank 9.
        let t = Grid2D::new(16);
        assert_eq!(t.dims(), (4, 4));
        assert_eq!(t.route(11, 5), 9);
        assert_eq!(t.route(9, 5), 5);
    }

    #[test]
    fn grid2d_all_pairs_terminate_within_two_hops() {
        for p in [4usize, 6, 12, 16, 36, 64] {
            let t = Grid2D::new(p);
            for s in 0..p {
                for d in 0..p {
                    assert!(hops_to(&t, s, d) <= 2, "p={p} {s}->{d}");
                }
            }
        }
    }

    #[test]
    fn grid2d_channel_count_is_order_sqrt_p() {
        let t = Grid2D::new(64);
        for r in 0..64 {
            // 7 row peers + 7 column peers
            assert_eq!(t.neighbors(r).len(), 14);
        }
    }

    #[test]
    fn grid2d_routes_stay_inside_neighbor_sets() {
        let p = 36;
        let t = Grid2D::new(p);
        for s in 0..p {
            let neigh = t.neighbors(s);
            for d in 0..p {
                let hop = t.route(s, d);
                assert!(hop == s || hop == d && neigh.contains(&hop) || neigh.contains(&hop));
            }
        }
    }

    #[test]
    fn grid3d_all_pairs_terminate_within_three_hops() {
        for p in [8usize, 12, 27, 24, 64] {
            let t = Grid3D::new(p);
            for s in 0..p {
                for d in 0..p {
                    assert!(hops_to(&t, s, d) <= 3, "p={p} {s}->{d}");
                }
            }
        }
    }

    #[test]
    fn grid3d_dims_multiply_to_p() {
        for p in [1usize, 8, 12, 27, 30, 64, 100] {
            let t = Grid3D::new(p);
            let (a, b, c) = t.dims();
            assert_eq!(a * b * c, p);
        }
    }

    #[test]
    fn prime_rank_counts_degrade_gracefully() {
        // A prime p has no nontrivial factorization, so both grids must
        // collapse to a single line — effectively direct routing. The hop
        // bound tightens to 1 and the channel set is all p-1 peers,
        // matching the paper's observation that routing only pays off when
        // the rank count factors.
        for p in [2usize, 3, 5, 7, 13, 31, 97] {
            let t2 = Grid2D::new(p);
            assert_eq!(t2.dims(), (1, p), "p={p}");
            let t3 = Grid3D::new(p);
            assert_eq!(t3.dims(), (1, 1, p), "p={p}");
            for s in 0..p {
                assert_eq!(t2.neighbors(s).len(), p - 1, "2d channel set, p={p} rank {s}");
                assert_eq!(t3.neighbors(s).len(), p - 1, "3d channel set, p={p} rank {s}");
                for d in 0..p {
                    assert!(hops_to(&t2, s, d) <= 1, "degenerate 2d grid must route directly");
                    assert!(hops_to(&t3, s, d) <= 1, "degenerate 3d grid must route directly");
                }
            }
        }
    }

    #[test]
    fn prime_grid_routes_stay_inside_neighbor_sets() {
        // Even in the degenerate line every forwarded hop must be a rank
        // the sender holds a channel to (the mailbox only opens channels
        // from `neighbors`).
        for p in [5usize, 13] {
            let t2 = Grid2D::new(p);
            let t3 = Grid3D::new(p);
            for s in 0..p {
                let n2 = t2.neighbors(s);
                let n3 = t3.neighbors(s);
                for d in 0..p {
                    let h2 = t2.route(s, d);
                    assert!(h2 == s || n2.contains(&h2), "2d p={p} {s}->{d} via {h2}");
                    let h3 = t3.route(s, d);
                    assert!(h3 == s || n3.contains(&h3), "3d p={p} {s}->{d} via {h3}");
                }
            }
        }
    }

    #[test]
    fn squarest_and_cubest() {
        assert_eq!(squarest_rows(16), 4);
        assert_eq!(squarest_rows(12), 3);
        assert_eq!(squarest_rows(7), 1);
        assert_eq!(cubest_dims(64), (4, 4, 4));
        assert_eq!(cubest_dims(12), (2, 2, 3));
    }
}
