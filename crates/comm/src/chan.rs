//! In-tree MPMC channel used by the transport layer.
//!
//! Replaces the external channel crate the seed used: a `Mutex<VecDeque>` +
//! two condvars, supporting optional capacity bounds. Bounded channels are
//! the backpressure mechanism of the byte-framed wire layer: a full queue
//! makes `try_send` fail so the mailbox can count the stall and run its
//! slow path (drain own receiver, retry) instead of buffering without
//! limit.
//!
//! Throughput is not the design goal — the simulated ranks batch payloads
//! into multi-kilobyte frames precisely so channel operations are rare.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::try_send`], carrying the message back.
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is bounded and at capacity.
    Full(T),
    /// Every receiver has been dropped.
    Disconnected(T),
}

/// Error returned by [`Sender::send`], carrying the message back.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    capacity: Option<usize>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Create a channel; `capacity: None` is unbounded.
pub fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    if let Some(c) = capacity {
        assert!(c > 0, "bounded channel capacity must be positive");
    }
    let inner = Arc::new(Inner {
        state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
        capacity,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender { inner: Arc::clone(&inner) }, Receiver { inner })
}

pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Sender<T> {
    /// Non-blocking send; fails with the message if full or disconnected.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut st = self.inner.state.lock().unwrap();
        if st.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if let Some(cap) = self.inner.capacity {
            if st.queue.len() >= cap {
                return Err(TrySendError::Full(msg));
            }
        }
        st.queue.push_back(msg);
        drop(st);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// Blocking send: waits for space on a bounded channel. Fails only when
    /// every receiver is gone.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut st = self.inner.state.lock().unwrap();
        loop {
            if st.receivers == 0 {
                return Err(SendError(msg));
            }
            match self.inner.capacity {
                Some(cap) if st.queue.len() >= cap => {
                    st = self.inner.not_full.wait(st).unwrap();
                }
                _ => {
                    st.queue.push_back(msg);
                    drop(st);
                    self.inner.not_empty.notify_one();
                    return Ok(());
                }
            }
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.state.lock().unwrap().senders += 1;
        Self { inner: Arc::clone(&self.inner) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut st = self.inner.state.lock().unwrap();
            st.senders -= 1;
            st.senders
        };
        if remaining == 0 {
            // wake receivers blocked on an empty queue so they observe the
            // disconnect
            self.inner.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.inner.state.lock().unwrap();
        match st.queue.pop_front() {
            Some(v) => {
                drop(st);
                self.inner.not_full.notify_one();
                Ok(v)
            }
            None if st.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Blocking receive with a deadline.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.inner.state.lock().unwrap();
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.inner.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _res) = self.inner.not_empty.wait_timeout(st, deadline - now).unwrap();
            st = guard;
        }
    }

    /// Blocking receive with no deadline.
    pub fn recv(&self) -> Result<T, RecvTimeoutError> {
        let mut st = self.inner.state.lock().unwrap();
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.inner.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            st = self.inner.not_empty.wait(st).unwrap();
        }
    }

    /// Queued message count (racy; for tests and introspection).
    pub fn len(&self) -> usize {
        self.inner.state.lock().unwrap().queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.inner.state.lock().unwrap().receivers += 1;
        Self { inner: Arc::clone(&self.inner) }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut st = self.inner.state.lock().unwrap();
            st.receivers -= 1;
            st.receivers
        };
        if remaining == 0 {
            // wake senders blocked on a full queue
            self.inner.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = channel::<u32>(None);
        for i in 0..100 {
            tx.try_send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.try_recv().unwrap(), i);
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn bounded_fills_up() {
        let (tx, rx) = channel::<u32>(Some(2));
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(rx.try_recv().unwrap(), 1);
        tx.try_send(3).unwrap();
    }

    #[test]
    fn disconnect_on_receiver_drop() {
        let (tx, rx) = channel::<u32>(None);
        drop(rx);
        assert_eq!(tx.try_send(1), Err(TrySendError::Disconnected(1)));
        assert!(tx.send(2).is_err());
    }

    #[test]
    fn disconnect_on_sender_drop() {
        let (tx, rx) = channel::<u32>(None);
        tx.try_send(9).unwrap();
        drop(tx);
        assert_eq!(rx.try_recv().unwrap(), 9);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Err(RecvTimeoutError::Disconnected));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = channel::<u32>(None);
        let t0 = Instant::now();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Timeout));
        assert!(t0.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn blocking_send_unblocks_on_recv() {
        let (tx, rx) = channel::<u32>(Some(1));
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || {
            tx.send(2).unwrap(); // blocks until the main thread receives
            drop(tx);
        });
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), 1);
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), 2);
        t.join().unwrap();
    }

    #[test]
    fn mpmc_sums_match() {
        let (tx, rx) = channel::<u64>(Some(8));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..250u64 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut sum = 0u64;
                    while let Ok(v) = rx.recv() {
                        sum += v;
                    }
                    sum
                })
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let got: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        let want: u64 = (0..4u64).map(|p| (0..250u64).map(|i| p * 1000 + i).sum::<u64>()).sum();
        assert_eq!(got, want);
    }
}
