//! Property-based tests for the communication substrate: collectives
//! against serial folds, routing termination for arbitrary world sizes,
//! and exactly-once mailbox delivery under random topologies and batch
//! sizes.

use proptest::prelude::*;

use havoq_comm::{CommWorld, Mailbox, MailboxConfig, Quiescence, TopologyKind};

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn all_reduce_matches_serial_fold(
        values in proptest::collection::vec(any::<u32>(), 1..12),
    ) {
        let p = values.len();
        let values = std::sync::Arc::new(values);
        let v2 = std::sync::Arc::clone(&values);
        let out = CommWorld::run(p, move |ctx| {
            let mine = v2[ctx.rank()] as u64;
            (
                ctx.all_reduce_sum(mine),
                ctx.all_reduce_min(mine),
                ctx.all_reduce_max(mine),
            )
        });
        let sum: u64 = values.iter().map(|&v| v as u64).sum();
        let min = values.iter().copied().min().unwrap() as u64;
        let max = values.iter().copied().max().unwrap() as u64;
        for got in out {
            prop_assert_eq!(got, (sum, min, max));
        }
    }

    #[test]
    fn all_gather_and_exscan_are_consistent(
        values in proptest::collection::vec(0u64..1000, 1..10),
    ) {
        let p = values.len();
        let values = std::sync::Arc::new(values);
        let v2 = std::sync::Arc::clone(&values);
        let out = CommWorld::run(p, move |ctx| {
            let mine = v2[ctx.rank()];
            (ctx.all_gather(mine), ctx.exscan_sum(mine))
        });
        for (rank, (gathered, prefix)) in out.into_iter().enumerate() {
            prop_assert_eq!(&gathered, &*values);
            let want: u64 = values[..rank].iter().sum();
            prop_assert_eq!(prefix, want);
        }
    }

    #[test]
    fn broadcast_from_arbitrary_root(
        p in 1usize..10,
        root_sel in any::<u64>(),
        payload in any::<u64>(),
    ) {
        let root = (root_sel % p as u64) as usize;
        let out = CommWorld::run(p, |ctx| {
            let v = (ctx.rank() == root).then_some(payload);
            ctx.broadcast(root, v)
        });
        prop_assert!(out.iter().all(|&v| v == payload));
    }

    #[test]
    fn all_to_allv_is_a_transpose(
        p in 1usize..7,
        seed in any::<u64>(),
    ) {
        let out = CommWorld::run(p, |ctx| {
            // deterministic per-pair payload sizes derived from the seed
            let outgoing: Vec<Vec<u64>> = (0..p)
                .map(|d| {
                    let len = ((seed ^ (ctx.rank() as u64 * 31 + d as u64)) % 5) as usize;
                    vec![(ctx.rank() * 100 + d) as u64; len]
                })
                .collect();
            ctx.all_to_allv(outgoing)
        });
        for (me, incoming) in out.into_iter().enumerate() {
            for (src, buf) in incoming.into_iter().enumerate() {
                let want_len = ((seed ^ (src as u64 * 31 + me as u64)) % 5) as usize;
                prop_assert_eq!(buf.len(), want_len);
                prop_assert!(buf.iter().all(|&v| v == (src * 100 + me) as u64));
            }
        }
    }

    #[test]
    fn mailbox_delivers_exactly_once_under_any_topology(
        p in 1usize..10,
        batch in 1usize..9,
        msgs in 1usize..30,
        topo_sel in 0u8..3,
    ) {
        let topo = [TopologyKind::Direct, TopologyKind::Routed2D, TopologyKind::Routed3D]
            [topo_sel as usize];
        let out = CommWorld::run(p, |ctx| {
            let cfg = MailboxConfig { topology: topo, batch_size: batch, ..Default::default() };
            let mut mb = Mailbox::<u64>::open(ctx, 1, cfg);
            let mut q = Quiescence::new(ctx, 1);
            for dst in 0..p {
                for i in 0..msgs {
                    mb.send(dst, (ctx.rank() * 1000 + dst * 37 + i) as u64);
                }
            }
            let mut got = Vec::new();
            loop {
                if mb.poll(&mut got) == 0 {
                    mb.flush();
                    if q.poll(mb.sent_count(), mb.received_count(), mb.pending_out() == 0) {
                        break;
                    }
                }
            }
            got.sort_unstable();
            got
        });
        for (me, got) in out.into_iter().enumerate() {
            let mut want: Vec<u64> =
                (0..p).flat_map(|src| (0..msgs).map(move |i| (src * 1000 + me * 37 + i) as u64)).collect();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
    }
}
