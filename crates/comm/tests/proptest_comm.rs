//! Property-based tests for the communication substrate: collectives
//! against serial folds, routing termination for arbitrary world sizes,
//! exactly-once mailbox delivery under random topologies / batch sizes /
//! frame sizes / channel capacities, and wire-codec + frame pack/unpack
//! roundtrips.

use havoq_comm::codec::{
    frame_init, frame_record_count, frame_record_size, frame_set_count, WireCodec,
    FRAME_HEADER_BYTES, RECORD_DST_BYTES,
};
use havoq_comm::{CommWorld, Mailbox, MailboxConfig, Quiescence, TopologyKind};
use havoq_util::testing::{run_cases, TestRng};

#[test]
fn all_reduce_matches_serial_fold() {
    run_cases(16, |rng: &mut TestRng| {
        let p = rng.range_usize(1, 12);
        let values: Vec<u32> = (0..p).map(|_| rng.next_u64() as u32).collect();
        let out = CommWorld::run(p, |ctx| {
            let mine = values[ctx.rank()] as u64;
            (ctx.all_reduce_sum(mine), ctx.all_reduce_min(mine), ctx.all_reduce_max(mine))
        });
        let sum: u64 = values.iter().map(|&v| v as u64).sum();
        let min = values.iter().copied().min().unwrap() as u64;
        let max = values.iter().copied().max().unwrap() as u64;
        for got in out {
            assert_eq!(got, (sum, min, max));
        }
    });
}

#[test]
fn all_gather_and_exscan_are_consistent() {
    run_cases(16, |rng: &mut TestRng| {
        let p = rng.range_usize(1, 10);
        let values: Vec<u64> = (0..p).map(|_| rng.below(1000)).collect();
        let out = CommWorld::run(p, |ctx| {
            let mine = values[ctx.rank()];
            (ctx.all_gather(mine), ctx.exscan_sum(mine))
        });
        for (rank, (gathered, prefix)) in out.into_iter().enumerate() {
            assert_eq!(&gathered, &values);
            let want: u64 = values[..rank].iter().sum();
            assert_eq!(prefix, want);
        }
    });
}

#[test]
fn broadcast_from_arbitrary_root() {
    run_cases(16, |rng: &mut TestRng| {
        let p = rng.range_usize(1, 10);
        let root = rng.below(p as u64) as usize;
        let payload = rng.next_u64();
        let out = CommWorld::run(p, |ctx| {
            let v = (ctx.rank() == root).then_some(payload);
            ctx.broadcast(root, v)
        });
        assert!(out.iter().all(|&v| v == payload));
    });
}

#[test]
fn all_to_allv_is_a_transpose() {
    run_cases(16, |rng: &mut TestRng| {
        let p = rng.range_usize(1, 7);
        let seed = rng.next_u64();
        let out = CommWorld::run(p, |ctx| {
            // deterministic per-pair payload sizes derived from the seed
            let outgoing: Vec<Vec<u64>> = (0..p)
                .map(|d| {
                    let len = ((seed ^ (ctx.rank() as u64 * 31 + d as u64)) % 5) as usize;
                    vec![(ctx.rank() * 100 + d) as u64; len]
                })
                .collect();
            ctx.all_to_allv(outgoing)
        });
        for (me, incoming) in out.into_iter().enumerate() {
            for (src, buf) in incoming.into_iter().enumerate() {
                let want_len = ((seed ^ (src as u64 * 31 + me as u64)) % 5) as usize;
                assert_eq!(buf.len(), want_len);
                assert!(buf.iter().all(|&v| v == (src * 100 + me) as u64));
            }
        }
    });
}

#[test]
fn mailbox_delivers_exactly_once_under_any_config() {
    run_cases(16, |rng: &mut TestRng| {
        let p = rng.range_usize(1, 10);
        let batch = rng.range_usize(1, 9);
        let msgs = rng.range_usize(1, 30);
        let topo = [TopologyKind::Direct, TopologyKind::Routed2D, TopologyKind::Routed3D]
            [rng.below(3) as usize];
        // exercise the byte limit and backpressure paths too: tiny frames
        // force the frame_bytes cap to bind, tiny capacities force stalls
        let frame_bytes = [64, 256, 4096][rng.below(3) as usize];
        let channel_capacity = [Some(1), Some(4), Some(1024), None][rng.below(4) as usize];
        let cfg = MailboxConfig {
            topology: topo,
            batch_size: batch,
            frame_bytes,
            channel_capacity,
            ..Default::default()
        };
        let out = CommWorld::run(p, |ctx| {
            let mut mb = Mailbox::<u64>::open(ctx, 1, cfg);
            let mut q = Quiescence::new(ctx, 1);
            for dst in 0..p {
                for i in 0..msgs {
                    mb.send(dst, (ctx.rank() * 1000 + dst * 37 + i) as u64);
                }
            }
            let mut got = Vec::new();
            loop {
                if mb.poll(&mut got) == 0 {
                    mb.flush();
                    if q.poll(mb.sent_count(), mb.received_count(), mb.pending_out() == 0) {
                        break;
                    }
                }
            }
            got.sort_unstable();
            (got, mb.stats())
        });
        let mut bytes_sent = 0u64;
        let mut bytes_received = 0u64;
        for (me, (got, st)) in out.into_iter().enumerate() {
            let mut want: Vec<u64> = (0..p)
                .flat_map(|src| (0..msgs).map(move |i| (src * 1000 + me * 37 + i) as u64))
                .collect();
            want.sort_unstable();
            assert_eq!(got, want);
            bytes_sent += st.bytes_sent;
            bytes_received += st.bytes_received;
        }
        // conservation: every wire byte shipped is eventually unpacked
        assert_eq!(bytes_sent, bytes_received);
    });
}

#[test]
fn int_and_tuple_codecs_roundtrip() {
    run_cases(64, |rng: &mut TestRng| {
        let v = rng.next_u64();
        let mut buf = [0u8; 8];
        v.encode(&mut buf);
        assert_eq!(u64::decode(&buf, &()), v);

        let v32 = rng.next_u64() as u32;
        let mut buf = [0u8; 4];
        v32.encode(&mut buf);
        assert_eq!(u32::decode(&buf, &()), v32);

        let vi = rng.next_u64() as i64;
        let mut buf = [0u8; 8];
        vi.encode(&mut buf);
        assert_eq!(i64::decode(&buf, &()), vi);

        let pair = (rng.next_u64() as u32, rng.next_u64());
        let mut buf = [0u8; 12];
        pair.encode(&mut buf);
        assert_eq!(<(u32, u64)>::decode(&buf, &()), pair);

        let triple = (rng.u8(), rng.next_u64(), rng.next_u64() as u16);
        let mut buf = [0u8; 11];
        triple.encode(&mut buf);
        assert_eq!(<(u8, u64, u16)>::decode(&buf, &()), triple);
    });
}

/// Every primitive and tuple codec must survive the value extremes: zero,
/// one, max and max-1 of each field width, in every tuple slot. A codec
/// that narrows a field (or swaps little/big endian halves) passes random
/// roundtrips with high probability but fails deterministically here.
#[test]
fn codecs_roundtrip_at_extreme_values() {
    let u64s = [0u64, 1, u64::MAX, u64::MAX - 1, 1 << 63];
    let u32s = [0u32, 1, u32::MAX, u32::MAX - 1, 1 << 31];
    let u16s = [0u16, 1, u16::MAX, u16::MAX - 1];
    let u8s = [0u8, 1, u8::MAX, u8::MAX - 1];
    let i64s = [0i64, 1, -1, i64::MAX, i64::MIN];

    for &v in &u64s {
        let mut buf = [0u8; 8];
        v.encode(&mut buf);
        assert_eq!(u64::decode(&buf, &()), v);
    }
    for &v in &u32s {
        let mut buf = [0u8; 4];
        v.encode(&mut buf);
        assert_eq!(u32::decode(&buf, &()), v);
    }
    for &v in &i64s {
        let mut buf = [0u8; 8];
        v.encode(&mut buf);
        assert_eq!(i64::decode(&buf, &()), v);
    }
    for &a in &u32s {
        for &b in &u64s {
            let mut buf = [0u8; 12];
            (a, b).encode(&mut buf);
            assert_eq!(<(u32, u64)>::decode(&buf, &()), (a, b));
        }
    }
    for &a in &u8s {
        for &b in &u64s {
            for &c in &u16s {
                let mut buf = [0u8; 11];
                (a, b, c).encode(&mut buf);
                assert_eq!(<(u8, u64, u16)>::decode(&buf, &()), (a, b, c));
            }
        }
    }
}

/// Termination-detector safety on randomized send/receive/idle traces.
///
/// Ranks exchange tokens through a shared set of queues (standing in for
/// any message fabric), feeding their true monotone counters to
/// [`Quiescence::poll`]. One message — counted as sent by rank 0 but not
/// receivable until the drain phase — is provably undelivered throughout
/// the random phase, so *every* `poll` must return false there, whatever
/// the trace does. The drain phase then checks liveness (the detector does
/// fire once everything is delivered) and that at the moment it fires the
/// global sent/received totals agree and every queue is empty.
#[test]
fn quiescence_never_terminates_with_undelivered_messages() {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    run_cases(8, |rng: &mut TestRng| {
        let p = rng.range_usize(2, 7);
        let steps = rng.range_usize(40, 160);
        let seed = rng.next_u64();
        let pending: Vec<Mutex<VecDeque<u64>>> =
            (0..p).map(|_| Mutex::new(VecDeque::new())).collect();
        let total_sent = AtomicU64::new(0);
        let total_recv = AtomicU64::new(0);

        CommWorld::run(p, |ctx| {
            let me = ctx.rank();
            let mut rng = TestRng::new(seed ^ (me as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let mut q = Quiescence::new(ctx, 11);
            let mut sent = 0u64;
            let mut recv = 0u64;

            // The undelivered message: counted by rank 0's send counter,
            // accounted for by the last rank only after the barrier below.
            if me == 0 {
                sent += 1;
                total_sent.fetch_add(1, Ordering::SeqCst);
            }

            // Random phase: interleave sends, receives and polls. The
            // hidden message keeps global sent > recv at every real
            // instant, so termination here would be a detector bug.
            for _ in 0..steps {
                if rng.bool() {
                    let dst = rng.below(p as u64) as usize;
                    pending[dst].lock().unwrap().push_back(rng.next_u64());
                    sent += 1;
                    total_sent.fetch_add(1, Ordering::SeqCst);
                } else if pending[me].lock().unwrap().pop_front().is_some() {
                    recv += 1;
                    total_recv.fetch_add(1, Ordering::SeqCst);
                }
                let idle = pending[me].lock().unwrap().is_empty();
                assert!(!q.poll(sent, recv, idle), "terminated with a counted message undelivered");
            }

            // All ranks leave the random phase before the hidden message
            // becomes deliverable, so the asserts above stay sound.
            ctx.barrier();
            if me == p - 1 {
                recv += 1;
                total_recv.fetch_add(1, Ordering::SeqCst);
            }

            // Drain phase: no more sends; receive everything, then poll
            // until the detector fires. On the first true, the world must
            // genuinely be quiescent.
            let mut polls = 0u64;
            loop {
                while pending[me].lock().unwrap().pop_front().is_some() {
                    recv += 1;
                    total_recv.fetch_add(1, Ordering::SeqCst);
                }
                let idle = pending[me].lock().unwrap().is_empty();
                if q.poll(sent, recv, idle) {
                    assert_eq!(
                        total_sent.load(Ordering::SeqCst),
                        total_recv.load(Ordering::SeqCst),
                        "terminated before every message was delivered"
                    );
                    assert!(
                        pending.iter().all(|pq| pq.lock().unwrap().is_empty()),
                        "terminated with tokens still queued"
                    );
                    break;
                }
                polls += 1;
                if polls.is_multiple_of(64) {
                    std::thread::yield_now();
                }
                assert!(polls < 10_000_000, "detector failed to fire after the drain");
            }
        });
    });
}

/// Frame pack/unpack property: pack random (dst, payload) records into a
/// frame exactly the way the mailbox does, then unpack and compare.
#[test]
fn frame_pack_unpack_roundtrip() {
    run_cases(64, |rng: &mut TestRng| {
        let record_size = RECORD_DST_BYTES + <u64 as WireCodec>::WIRE_SIZE;
        let n = rng.range_usize(1, 64);
        let records: Vec<(u32, u64)> =
            (0..n).map(|_| (rng.next_u64() as u32 % 1024, rng.next_u64())).collect();

        let mut buf = Vec::new();
        frame_init(&mut buf, record_size as u32);
        for &(dst, payload) in &records {
            buf.extend_from_slice(&dst.to_le_bytes());
            let start = buf.len();
            buf.resize(start + 8, 0);
            payload.encode(&mut buf[start..]);
        }
        frame_set_count(&mut buf, n as u32);

        assert_eq!(buf.len(), FRAME_HEADER_BYTES + n * record_size);
        assert_eq!(frame_record_size(&buf) as usize, record_size);
        assert_eq!(frame_record_count(&buf) as usize, n);
        for (r, &(dst, payload)) in records.iter().enumerate() {
            let off = FRAME_HEADER_BYTES + r * record_size;
            let got_dst = u32::from_le_bytes(buf[off..off + RECORD_DST_BYTES].try_into().unwrap());
            let got_payload = u64::decode(&buf[off + RECORD_DST_BYTES..off + record_size], &());
            assert_eq!((got_dst, got_payload), (dst, payload), "record {r}");
        }
    });
}
