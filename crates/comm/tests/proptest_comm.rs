//! Property-based tests for the communication substrate: collectives
//! against serial folds, routing termination for arbitrary world sizes,
//! exactly-once mailbox delivery under random topologies / batch sizes /
//! frame sizes / channel capacities, and wire-codec + frame pack/unpack
//! roundtrips.

use havoq_comm::codec::{
    frame_init, frame_record_count, frame_record_size, frame_set_count, WireCodec,
    FRAME_HEADER_BYTES, RECORD_DST_BYTES,
};
use havoq_comm::{CommWorld, Mailbox, MailboxConfig, Quiescence, TopologyKind};
use havoq_util::testing::{run_cases, TestRng};

#[test]
fn all_reduce_matches_serial_fold() {
    run_cases(16, |rng: &mut TestRng| {
        let p = rng.range_usize(1, 12);
        let values: Vec<u32> = (0..p).map(|_| rng.next_u64() as u32).collect();
        let out = CommWorld::run(p, |ctx| {
            let mine = values[ctx.rank()] as u64;
            (ctx.all_reduce_sum(mine), ctx.all_reduce_min(mine), ctx.all_reduce_max(mine))
        });
        let sum: u64 = values.iter().map(|&v| v as u64).sum();
        let min = values.iter().copied().min().unwrap() as u64;
        let max = values.iter().copied().max().unwrap() as u64;
        for got in out {
            assert_eq!(got, (sum, min, max));
        }
    });
}

#[test]
fn all_gather_and_exscan_are_consistent() {
    run_cases(16, |rng: &mut TestRng| {
        let p = rng.range_usize(1, 10);
        let values: Vec<u64> = (0..p).map(|_| rng.below(1000)).collect();
        let out = CommWorld::run(p, |ctx| {
            let mine = values[ctx.rank()];
            (ctx.all_gather(mine), ctx.exscan_sum(mine))
        });
        for (rank, (gathered, prefix)) in out.into_iter().enumerate() {
            assert_eq!(&gathered, &values);
            let want: u64 = values[..rank].iter().sum();
            assert_eq!(prefix, want);
        }
    });
}

#[test]
fn broadcast_from_arbitrary_root() {
    run_cases(16, |rng: &mut TestRng| {
        let p = rng.range_usize(1, 10);
        let root = rng.below(p as u64) as usize;
        let payload = rng.next_u64();
        let out = CommWorld::run(p, |ctx| {
            let v = (ctx.rank() == root).then_some(payload);
            ctx.broadcast(root, v)
        });
        assert!(out.iter().all(|&v| v == payload));
    });
}

#[test]
fn all_to_allv_is_a_transpose() {
    run_cases(16, |rng: &mut TestRng| {
        let p = rng.range_usize(1, 7);
        let seed = rng.next_u64();
        let out = CommWorld::run(p, |ctx| {
            // deterministic per-pair payload sizes derived from the seed
            let outgoing: Vec<Vec<u64>> = (0..p)
                .map(|d| {
                    let len = ((seed ^ (ctx.rank() as u64 * 31 + d as u64)) % 5) as usize;
                    vec![(ctx.rank() * 100 + d) as u64; len]
                })
                .collect();
            ctx.all_to_allv(outgoing)
        });
        for (me, incoming) in out.into_iter().enumerate() {
            for (src, buf) in incoming.into_iter().enumerate() {
                let want_len = ((seed ^ (src as u64 * 31 + me as u64)) % 5) as usize;
                assert_eq!(buf.len(), want_len);
                assert!(buf.iter().all(|&v| v == (src * 100 + me) as u64));
            }
        }
    });
}

#[test]
fn mailbox_delivers_exactly_once_under_any_config() {
    run_cases(16, |rng: &mut TestRng| {
        let p = rng.range_usize(1, 10);
        let batch = rng.range_usize(1, 9);
        let msgs = rng.range_usize(1, 30);
        let topo = [TopologyKind::Direct, TopologyKind::Routed2D, TopologyKind::Routed3D]
            [rng.below(3) as usize];
        // exercise the byte limit and backpressure paths too: tiny frames
        // force the frame_bytes cap to bind, tiny capacities force stalls
        let frame_bytes = [64, 256, 4096][rng.below(3) as usize];
        let channel_capacity = [Some(1), Some(4), Some(1024), None][rng.below(4) as usize];
        let cfg = MailboxConfig {
            topology: topo,
            batch_size: batch,
            frame_bytes,
            channel_capacity,
            ..Default::default()
        };
        let out = CommWorld::run(p, |ctx| {
            let mut mb = Mailbox::<u64>::open(ctx, 1, cfg);
            let mut q = Quiescence::new(ctx, 1);
            for dst in 0..p {
                for i in 0..msgs {
                    mb.send(dst, (ctx.rank() * 1000 + dst * 37 + i) as u64);
                }
            }
            let mut got = Vec::new();
            loop {
                if mb.poll(&mut got) == 0 {
                    mb.flush();
                    if q.poll(mb.sent_count(), mb.received_count(), mb.pending_out() == 0) {
                        break;
                    }
                }
            }
            got.sort_unstable();
            (got, mb.stats())
        });
        let mut bytes_sent = 0u64;
        let mut bytes_received = 0u64;
        for (me, (got, st)) in out.into_iter().enumerate() {
            let mut want: Vec<u64> = (0..p)
                .flat_map(|src| (0..msgs).map(move |i| (src * 1000 + me * 37 + i) as u64))
                .collect();
            want.sort_unstable();
            assert_eq!(got, want);
            bytes_sent += st.bytes_sent;
            bytes_received += st.bytes_received;
        }
        // conservation: every wire byte shipped is eventually unpacked
        assert_eq!(bytes_sent, bytes_received);
    });
}

#[test]
fn int_and_tuple_codecs_roundtrip() {
    run_cases(64, |rng: &mut TestRng| {
        let v = rng.next_u64();
        let mut buf = [0u8; 8];
        v.encode(&mut buf);
        assert_eq!(u64::decode(&buf, &()), v);

        let v32 = rng.next_u64() as u32;
        let mut buf = [0u8; 4];
        v32.encode(&mut buf);
        assert_eq!(u32::decode(&buf, &()), v32);

        let vi = rng.next_u64() as i64;
        let mut buf = [0u8; 8];
        vi.encode(&mut buf);
        assert_eq!(i64::decode(&buf, &()), vi);

        let pair = (rng.next_u64() as u32, rng.next_u64());
        let mut buf = [0u8; 12];
        pair.encode(&mut buf);
        assert_eq!(<(u32, u64)>::decode(&buf, &()), pair);

        let triple = (rng.u8(), rng.next_u64(), rng.next_u64() as u16);
        let mut buf = [0u8; 11];
        triple.encode(&mut buf);
        assert_eq!(<(u8, u64, u16)>::decode(&buf, &()), triple);
    });
}

/// Frame pack/unpack property: pack random (dst, payload) records into a
/// frame exactly the way the mailbox does, then unpack and compare.
#[test]
fn frame_pack_unpack_roundtrip() {
    run_cases(64, |rng: &mut TestRng| {
        let record_size = RECORD_DST_BYTES + <u64 as WireCodec>::WIRE_SIZE;
        let n = rng.range_usize(1, 64);
        let records: Vec<(u32, u64)> =
            (0..n).map(|_| (rng.next_u64() as u32 % 1024, rng.next_u64())).collect();

        let mut buf = Vec::new();
        frame_init(&mut buf, record_size as u32);
        for &(dst, payload) in &records {
            buf.extend_from_slice(&dst.to_le_bytes());
            let start = buf.len();
            buf.resize(start + 8, 0);
            payload.encode(&mut buf[start..]);
        }
        frame_set_count(&mut buf, n as u32);

        assert_eq!(buf.len(), FRAME_HEADER_BYTES + n * record_size);
        assert_eq!(frame_record_size(&buf) as usize, record_size);
        assert_eq!(frame_record_count(&buf) as usize, n);
        for (r, &(dst, payload)) in records.iter().enumerate() {
            let off = FRAME_HEADER_BYTES + r * record_size;
            let got_dst = u32::from_le_bytes(buf[off..off + RECORD_DST_BYTES].try_into().unwrap());
            let got_payload = u64::decode(&buf[off + RECORD_DST_BYTES..off + record_size], &());
            assert_eq!((got_dst, got_payload), (dst, payload), "record {r}");
        }
    });
}
