//! The paper's primary contribution: the distributed asynchronous visitor
//! queue and the traversal algorithms built on it.
//!
//! - [`visitor`] — the visitor abstraction of Table I (`pre_visit`, `visit`,
//!   priority ordering, per-vertex state), extended with an explicit
//!   [`visitor::Role`] so algorithms can distinguish master, replica and
//!   ghost evaluations (see DESIGN.md for why k-core needs this on split
//!   adjacency lists).
//! - [`queue`] — Algorithm 1: `push` with local ghost filtering,
//!   `check_mailbox` with master→replica forwarding chains, and
//!   `do_traversal` driven by mailbox polling and asynchronous quiescence
//!   detection. Local visitors are ordered by the algorithm's comparator
//!   with a vertex-id tie-break for page-level locality (Section V-A).
//! - [`ghost`] — per-partition ghost tables for high in-degree hubs
//!   (Section IV-B).
//! - [`algorithms`] — BFS (Algorithms 2–3), k-core decomposition
//!   (Algorithms 4–5), triangle counting (Algorithms 6–7), plus the
//!   connected-components and SSSP visitors of the paper's earlier
//!   shared-memory work [4], which the framework supports unchanged.
//! - [`rounds`] — the Section VI-D "parallel rounds" analysis model: an
//!   idealized round-synchronous executor for validating the asymptotic
//!   visitor bounds empirically.
//! - [`batch`] — the multi-source batching layer (MS-BFS style): up to 64
//!   concurrent queries multiplexed through one shared traversal via a
//!   per-visitor `active_mask`, plus the admission scheduler behind the
//!   query-serving bench (DESIGN.md §12).
//! - [`lifecycle`] — the query lifecycle control plane (DESIGN.md §15):
//!   deterministic deadlines, cooperative cut-consistent cancellation and
//!   a stall watchdog, driving the batched visitors level-synchronously
//!   so every query ends in a well-defined [`lifecycle::QueryOutcome`].

pub mod algorithms;
pub mod batch;
pub mod checkpoint;
pub mod direction;
pub mod ghost;
pub mod lifecycle;
pub mod queue;
pub mod rounds;
pub mod visitor;

pub use checkpoint::CheckpointSpec;
pub use direction::{direction_bfs, DirBfsRun, Direction, DirectionConfig, DirectionMode};
pub use lifecycle::{
    bfs_batch_lifecycle, run_bfs_lifecycle, LifecycleBfsResult, QueryLifecycle, QueryOutcome,
};
pub use queue::{TraversalConfig, TraversalStats, VisitorQueue};
pub use visitor::{Role, Visitor};
