//! Per-partition ghost tables (paper Section IV-B).
//!
//! Ghost information replicates the state of high in-degree hubs locally so
//! `push` can filter visitors before they ever reach the network, turning a
//! hub's `d_in` incoming visitors into at most one per partition. Ghost
//! state is never globally synchronized — it is only the local partition's
//! (possibly stale) view of the hub — so it may only *filter*, never
//! authoritatively decide.

use havoq_util::FxHashMap;

use havoq_graph::dist::DistGraph;
use havoq_graph::types::VertexId;

/// Ghost state for up to `k` locally-hot remote hubs.
pub struct GhostTable<D> {
    slots: FxHashMap<u64, D>,
}

impl<D: Default + Clone> GhostTable<D> {
    /// Select the top-`k` local ghost candidates of `g` (by local in-edge
    /// frequency), excluding vertices this rank already stores state for —
    /// local vertices don't need a ghost.
    pub fn select(g: &DistGraph, k: usize) -> Self {
        let mut slots = FxHashMap::default();
        if k > 0 {
            for &(v, _count) in g.ghost_candidates() {
                if slots.len() >= k {
                    break;
                }
                if !g.is_local(VertexId(v)) {
                    slots.insert(v, D::default());
                }
            }
        }
        Self { slots }
    }

    /// Empty table (ghosts disabled, or algorithm forbids them).
    pub fn empty() -> Self {
        Self { slots: FxHashMap::default() }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Mutable ghost state for `v`, if stored here
    /// (the paper's `has_local_ghost` / `local_ghost` pair).
    #[inline]
    pub fn get_mut(&mut self, v: VertexId) -> Option<&mut D> {
        self.slots.get_mut(&v.0)
    }

    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        self.slots.contains_key(&v.0)
    }

    /// Snapshot every slot, sorted by vertex id — the checkpoint export.
    /// Ghost state must be checkpointed with the vertex arrays: a restored
    /// master rewinds, and a fresher-than-master ghost would filter pushes
    /// the resumed run still needs.
    pub fn export(&self) -> Vec<(u64, D)> {
        let mut out: Vec<(u64, D)> = self.slots.iter().map(|(&v, d)| (v, d.clone())).collect();
        out.sort_unstable_by_key(|&(v, _)| v);
        out
    }

    /// Overwrite slot contents from a checkpoint export. The slot *set* is
    /// a pure function of the graph and config, so entries are replaced in
    /// place; an entry for an unknown vertex means the checkpoint belongs
    /// to a different table and is a logic error.
    pub fn import(&mut self, entries: &[(u64, D)]) {
        debug_assert_eq!(entries.len(), self.slots.len(), "ghost slot set mismatch");
        for (v, d) in entries {
            debug_assert!(self.slots.contains_key(v), "ghost import for unknown vertex {v}");
            self.slots.insert(*v, d.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use havoq_comm::CommWorld;
    use havoq_graph::csr::GraphConfig;
    use havoq_graph::dist::PartitionStrategy;
    use havoq_graph::gen::rmat::RmatGenerator;

    #[test]
    fn selects_remote_hubs_only() {
        let g = RmatGenerator::graph500(10);
        let edges = g.symmetric_edges(13);
        CommWorld::run(4, |ctx| {
            let dg = havoq_graph::dist::DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default(),
            );
            let table = GhostTable::<u64>::select(&dg, 16);
            assert!(table.len() <= 16);
            for &(v, _) in dg.ghost_candidates() {
                if table.contains(VertexId(v)) {
                    assert!(!dg.is_local(VertexId(v)), "ghosts must be remote");
                }
            }
        });
    }

    #[test]
    fn zero_k_is_empty() {
        let g = RmatGenerator::graph500(8);
        let edges = g.symmetric_edges(1);
        CommWorld::run(2, |ctx| {
            let dg = havoq_graph::dist::DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default(),
            );
            let table = GhostTable::<u64>::select(&dg, 0);
            assert!(table.is_empty());
        });
    }

    #[test]
    fn get_mut_mutates_slot() {
        let mut t = GhostTable::<u64> { slots: [(7u64, 0u64)].into_iter().collect() };
        *t.get_mut(VertexId(7)).unwrap() = 42;
        assert_eq!(*t.get_mut(VertexId(7)).unwrap(), 42);
        assert!(t.get_mut(VertexId(8)).is_none());
    }

    #[test]
    fn export_import_roundtrips_sorted() {
        let mut t =
            GhostTable::<u64> { slots: [(9u64, 90u64), (3, 30), (5, 50)].into_iter().collect() };
        let snap = t.export();
        assert_eq!(snap, vec![(3, 30), (5, 50), (9, 90)], "export is id-sorted");
        *t.get_mut(VertexId(5)).unwrap() = 999;
        t.import(&snap);
        assert_eq!(*t.get_mut(VertexId(5)).unwrap(), 50, "import rewinds slot values");
        assert_eq!(t.len(), 3);
    }
}
