//! The visitor abstraction (paper Table I).

use havoq_graph::dist::DistGraph;
use havoq_graph::types::VertexId;

/// Where a `pre_visit` evaluation is happening.
///
/// The paper applies one `pre_visit` everywhere; that is correct for
/// idempotent monotone updates (BFS, CC, SSSP) but not for counting
/// algorithms on *split* adjacency lists: a k-core replica only ever
/// receives the single visitor its master forwarded after dying, so a bare
/// decrement would never fire the replica's local out-edge slice. Exposing
/// the role lets such algorithms treat a forwarded visitor as authoritative
/// while keeping the paper's code shape for everything else.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Evaluation on the vertex's master partition (`min_owner`).
    Master,
    /// Evaluation on a replica partition of a split vertex, on a visitor
    /// forwarded along the replica chain.
    Replica,
    /// Evaluation on locally stored ghost state during `push` — an
    /// imprecise filter, never globally synchronized (Section IV-B).
    Ghost,
}

/// A traversal algorithm, expressed as vertex-centric procedures with
/// forwardable state (paper Table I).
///
/// Implementations are plain-data values shipped between ranks through the
/// mailbox; they must be cheap to clone. The `Sync` bound exists for the
/// intra-rank worker pool (DESIGN.md §11), which shares a popped chunk of
/// visitors across worker threads by reference; plain-data visitors (and
/// `Arc`-held lookup tables) satisfy it for free.
pub trait Visitor: Clone + Send + Sync + 'static {
    /// Per-vertex algorithm state (e.g. BFS level + parent). One instance
    /// per vertex per partition holding it; replicated for split vertices;
    /// also used as ghost state.
    type Data: Clone + Default + Send + 'static;

    /// Whether this algorithm may use ghost filtering. Algorithms that need
    /// precise event counts (k-core, triangle counting) must return false
    /// (Section IV-B: "each algorithm must explicitly declare ghost usage").
    const GHOSTS_ALLOWED: bool;

    /// The vertex this visitor targets.
    fn vertex(&self) -> VertexId;

    /// Preliminary evaluation against the vertex's state; returns true if
    /// the main `visit` should proceed. May run against ghost state
    /// ([`Role::Ghost`]) as a filter.
    fn pre_visit(&self, data: &mut Self::Data, role: Role) -> bool;

    /// Main visitor procedure: runs with exclusive access to the vertex's
    /// state on the current partition; sees only the *local slice* of the
    /// vertex's adjacency; pushes follow-on visitors through `q`.
    fn visit(&self, g: &DistGraph, data: &mut Self::Data, q: &mut dyn VisitorPush<Self>);

    /// Less-than comparison prioritizing visitors in the local min-heap.
    /// Return [`std::cmp::Ordering::Equal`] when the algorithm imposes no
    /// order; the framework then orders by vertex id for page-level
    /// locality (Section V-A).
    fn priority(&self, other: &Self) -> std::cmp::Ordering;

    /// Fold one `visit` execution's state update back into the canonical
    /// per-vertex slot (DESIGN.md §11).
    ///
    /// When visitors execute on a worker pool, each `visit` runs against a
    /// private seed copy (see [`Visitor::visit_seed`]) instead of the slot
    /// itself; `merge` then combines the seed back under the slot's lock.
    /// The operation **must be commutative and associative** — merges from
    /// concurrent workers land in arbitrary order — and must subsume the
    /// serial semantics: monotone algorithms declare their min/and here
    /// (making a stale seed's merge a no-op), counting algorithms declare
    /// the sum of their deltas.
    fn merge(into: &mut Self::Data, update: &Self::Data);

    /// The private state copy handed to a worker-side `visit`.
    ///
    /// Defaults to a full clone, which is correct for algorithms whose
    /// `visit` only *reads* state (BFS, CC, SSSP, k-core: mutation happens
    /// in `pre_visit` on the coordinator). Delta-counting algorithms
    /// (triangle, wedge, validation) override this to return a zeroed
    /// accumulator — carrying any read-only fields across — so concurrent
    /// executions on the same vertex sum exactly instead of double
    /// counting.
    fn visit_seed(data: &Self::Data) -> Self::Data {
        data.clone()
    }
}

/// Sink for dynamically created visitors (the `visitor_queue.push` half of
/// the queue interface, usable from inside `visit`).
pub trait VisitorPush<V: Visitor> {
    fn push(&mut self, visitor: V);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_is_plain_data() {
        assert_eq!(Role::Master, Role::Master);
        assert_ne!(Role::Master, Role::Replica);
        let r = Role::Ghost;
        let s = r; // Copy
        assert_eq!(r, s);
    }
}
