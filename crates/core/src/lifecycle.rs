//! Query lifecycle control plane for the batched serving path
//! (DESIGN.md §15).
//!
//! [`bfs_batch`](crate::batch::bfs_batch) runs every admitted query to its
//! fixed point; a serving system cannot afford that promise. This module
//! drives the same batched BFS visitors through a *level-synchronous*
//! round loop — one confirmed quiescence cut per BFS depth — and makes
//! every query terminate in exactly one of the [`QueryOutcome`] states,
//! with a well-formed (possibly partial) result that is bit-identical
//! across ranks, thread counts, storage backends and injected faults.
//!
//! The determinism argument has one anchor: **every lifecycle decision is
//! a pure function of cut-consistent data.** A confirmed cut means every
//! payload sent anywhere during the round was delivered (`sent == recv`
//! globally, stable across a full detector wave), so at a cut all ranks
//! hold the same merged per-vertex state, the same set of delivered
//! cancel records, and ledger counters that all-reduce to the same
//! global totals on every rank. Deadlines are round/edge budgets checked
//! against those all-reduced values — never wall clocks. Cancels ride
//! their own CRC-framed mailbox whose payload counters are summed into
//! the quiescence poll ([`VisitorQueue::drain_round_side`]), so a cut
//! cannot confirm while a cancel is in flight. The stall watchdog is the
//! one exception — it exists precisely for the case where no further cut
//! will ever confirm — and it is made world-agreed by the detector
//! itself: the root broadcasts the abort inside the wave protocol, so
//! every rank observes `Abort` on the same wave.
//!
//! Exactly-once expansion across threads is enforced by a *claim*
//! protocol instead of the asynchronous engine's recompute-in-`visit`
//! idiom: at a round boundary the depth-`d` state is frozen (arrivals
//! during round `d` are all depth `d+1`), so claiming the live mask
//! under the per-slot bit lock — and filtering retired queries — yields
//! a claimed set per (rank, vertex, depth) that is independent of worker
//! scheduling. Pushes carry the expanding vertex as parent, so the
//! pushed *set* (and the per-query ledger sums) are schedule-invariant
//! too; only BFS parents remain arrival-order dependent, exactly as in
//! the asynchronous engine, which is why result digests cover levels
//! only.

use std::sync::atomic::AtomicUsize;
use std::sync::atomic::Ordering as MemOrdering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use havoq_comm::{CancelRecord, CutVerdict, Mailbox, RankCtx, SendShard};
use havoq_graph::dist::DistGraph;
use havoq_graph::types::VertexId;
use havoq_util::parallel::{AtomicBitVec, PerWorker, SharedSlots, WorkerPool};

use crate::algorithms::bfs::UNREACHED;
use crate::batch::{
    BatchBfsData, BatchBfsVisitor, BatchConfig, BatchLedger, LedgerCells, MAX_BATCH,
};
use crate::queue::{TraversalStats, VisitorQueue};
use crate::visitor::{Visitor, VisitorPush};

/// Watchdog threshold used when [`BatchConfig::watchdog_waves`] is unset.
/// Sized so that transient chaos — bounded stall windows, slow-rank
/// throttles, NACK/retransmit round trips — can never accumulate this
/// many *consecutive* stable-but-unbalanced waves, while a true wedge
/// still aborts in well under a second (idle waves complete in
/// microseconds).
pub const DEFAULT_WATCHDOG_WAVES: u64 = 8192;

/// Terminal state of one query under the lifecycle control plane. Every
/// admitted query ends in exactly one of these.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryOutcome {
    /// The query ran to its BFS fixed point.
    Complete,
    /// A deterministic budget (max rounds / max inspected edges) expired
    /// at a cut; the result covers everything up to that cut.
    DeadlineExceeded,
    /// The admission layer dropped the query before it ever ran (bounded
    /// backlog or past-deadline shedding). Never produced by the
    /// traversal itself.
    Shed,
    /// A cancel record retired the query mid-traversal; the result covers
    /// everything up to the cut that confirmed the cancel.
    Cancelled,
    /// The stall watchdog fired: the whole traversal was abandoned on a
    /// world-agreed detector wave. Partial state is well-formed but not
    /// cut-consistent, so only the outcome itself is comparable across
    /// configurations.
    Aborted,
}

impl QueryOutcome {
    /// Stable single-letter code for CSV columns and digests.
    pub fn code(&self) -> char {
        match self {
            QueryOutcome::Complete => 'C',
            QueryOutcome::DeadlineExceeded => 'D',
            QueryOutcome::Shed => 'S',
            QueryOutcome::Cancelled => 'X',
            QueryOutcome::Aborted => 'A',
        }
    }
}

/// Per-query result of a lifecycle run. All fields except `outcome ==
/// Aborted` runs are globally agreed values (all-reduced over masters),
/// identical on every rank.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryLifecycle {
    pub outcome: QueryOutcome,
    /// Order-invariant digest of the query's (possibly partial) BFS
    /// levels: sum over reached masters of `mix(vertex ^ mix(level))`.
    /// Covers levels only — parents are one valid tree, arrival-order
    /// dependent, exactly as in the asynchronous engine.
    pub levels_digest: u64,
    /// Vertices this query reached (including its source), global.
    pub visited_count: u64,
    /// Global sum of whole-adjacency degrees of reached vertices.
    pub traversed_edges: u64,
    /// Deepest level reached.
    pub max_level: u64,
    /// Globally all-reduced per-query ledger sums: visitor executions
    /// that advanced this query, and edges pushed on its behalf.
    /// `executed_global` counts one claim per *copy* of a vertex (masters
    /// and replicas alike), so it is identical across ranks, threads and
    /// storages at a fixed rank count but scales with the replication
    /// factor; `pushed_global` sums split adjacency fanout and is
    /// invariant across rank counts too.
    pub executed_global: u64,
    pub pushed_global: u64,
}

/// Result of one lifecycle-managed batched BFS run (per rank).
#[derive(Clone, Debug)]
pub struct LifecycleBfsResult {
    /// Per-query lifecycle verdicts, index-aligned with the sources.
    pub queries: Vec<QueryLifecycle>,
    /// Level-synchronous rounds driven to a confirmed cut.
    pub rounds: u64,
    /// True iff the stall watchdog abandoned the traversal.
    pub aborted: bool,
    /// This rank's per-query execution ledger snapshot.
    pub ledger: BatchLedger,
    /// This rank's queue statistics.
    pub stats: TraversalStats,
    pub elapsed: Duration,
}

/// SplitMix64 finalizer: the digest mixer (order-invariant under
/// wrapping-sum aggregation because each term is mixed independently).
#[inline]
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Claim every query bit that is live at `length` on this slot — best
/// length matches, not yet expanded, not retired — and mark it expanded.
/// Callers serialize per-slot access (bit lock in the parallel path);
/// given that, the claimed union per (vertex, depth) is independent of
/// visitor order because depth-`length` state is frozen during the round.
#[inline]
fn claim_live<const K: usize>(data: &mut BatchBfsData<K>, length: u64, retired: u64) -> u64 {
    let mut live = 0u64;
    for q in 0..K {
        if data.length[q] == length && data.expanded & (1 << q) == 0 {
            live |= 1 << q;
        }
    }
    live &= !retired;
    data.expanded |= live;
    live
}

/// Stages pushes into a per-worker shard, mirroring the queue's internal
/// shard pusher: route to the destination's minimum owner, count the
/// push; ghost filtering happens when the coordinator absorbs the shard.
struct StagePusher<'a, const K: usize> {
    g: &'a DistGraph,
    shard: &'a mut SendShard<BatchBfsVisitor<K>>,
    pushed: &'a mut u64,
}

impl<const K: usize> VisitorPush<BatchBfsVisitor<K>> for StagePusher<'_, K> {
    fn push(&mut self, visitor: BatchBfsVisitor<K>) {
        *self.pushed += 1;
        self.shard.send(self.g.min_owner(visitor.vertex()), visitor);
    }
}

/// Per-worker staging state for one round's expansion.
struct ExecShard<const K: usize> {
    shard: SendShard<BatchBfsVisitor<K>>,
    pushed: u64,
    claimed: u64,
}

impl<const K: usize> Default for ExecShard<K> {
    fn default() -> Self {
        Self { shard: SendShard::default(), pushed: 0, claimed: 0 }
    }
}

/// Expand one claimed live mask: rebuild a seed holding exactly the
/// claimed bits at the visitor's depth and let the visitor's own `visit`
/// do the ledger recording and adjacency walk, so the wire records and
/// counters are identical in kind to the asynchronous engine's.
#[inline]
fn expand_claimed<const K: usize>(
    g: &DistGraph,
    vis: &BatchBfsVisitor<K>,
    live: u64,
    shard: &mut ExecShard<K>,
) {
    let mut seed = BatchBfsData::<K>::default();
    let mut m = live;
    while m != 0 {
        let q = m.trailing_zeros() as usize;
        m &= m - 1;
        seed.length[q] = vis.length;
    }
    let mut pusher = StagePusher { g, shard: &mut shard.shard, pushed: &mut shard.pushed };
    vis.visit(g, &mut seed, &mut pusher);
    shard.claimed |= live;
}

/// Execute one round's frontier: claim live masks on the shared state
/// (exactly-once per (query, vertex, depth)) and expand them, staging
/// pushes per worker and absorbing them in worker order. Returns the
/// union of claimed masks on this rank.
fn execute_round<const K: usize>(
    q: &mut VisitorQueue<'_, BatchBfsVisitor<K>>,
    g: &DistGraph,
    pool: Option<&WorkerPool>,
    locks: &AtomicBitVec,
    newly: &[BatchBfsVisitor<K>],
    retired: u64,
) -> u64 {
    if newly.is_empty() {
        return 0;
    }
    match pool {
        None => {
            let mut shard = ExecShard::<K>::default();
            let state = q.state_mut_slice();
            for vis in newly {
                let li = g.local_index(vis.vertex());
                let live = claim_live(&mut state[li], vis.length, retired);
                if live != 0 {
                    expand_claimed(g, vis, live, &mut shard);
                }
            }
            let claimed = shard.claimed;
            q.absorb_generated(&mut shard.shard, shard.pushed);
            claimed
        }
        Some(pool) => {
            let mut shards: PerWorker<ExecShard<K>> =
                PerWorker::new_with(pool.size(), |_| ExecShard::default());
            {
                let slots = SharedSlots::new(q.state_mut_slice());
                let shards_ref: &PerWorker<ExecShard<K>> = &shards;
                let cursor = AtomicUsize::new(0);
                // Small blocks keep load balance under skewed degrees
                // without cursor contention (same constant as run_chunk).
                const BLOCK: usize = 16;
                let job = move |w: usize| {
                    // safety: worker `w` is the only thread touching cell `w`
                    let shard = unsafe { shards_ref.cell(w) };
                    loop {
                        let begin = cursor.fetch_add(BLOCK, MemOrdering::Relaxed);
                        if begin >= newly.len() {
                            break;
                        }
                        let end = (begin + BLOCK).min(newly.len());
                        for vis in &newly[begin..end] {
                            let li = g.local_index(vis.vertex());
                            locks.lock(li);
                            // safety: the bit lock serializes slot `li`
                            let live = claim_live(unsafe { slots.slot(li) }, vis.length, retired);
                            locks.unlock(li);
                            if live != 0 {
                                expand_claimed(g, vis, live, shard);
                            }
                        }
                    }
                };
                pool.broadcast(&job);
            }
            let mut claimed = 0u64;
            for shard in shards.iter_mut() {
                claimed |= shard.claimed;
                q.absorb_generated(&mut shard.shard, shard.pushed);
                shard.pushed = 0;
                shard.claimed = 0;
            }
            claimed
        }
    }
}

/// Run up to `K` BFS queries under the lifecycle control plane.
/// Collective; every rank must pass identical `sources`, `cfg` and
/// `cancels`.
///
/// `cancels` schedules cooperative cancellation for testing and serving:
/// `(query, round)` makes rank 0 broadcast a [`CancelRecord`] for
/// `query` at the cut that ends round `round`; the record is confirmed
/// delivered at the following cut, where every rank retires the query
/// identically. Queries already terminal when a cancel lands keep their
/// earlier outcome.
///
/// Outcome classes and what is deterministic for each:
/// - `Complete` / `DeadlineExceeded` / `Cancelled`: the full
///   [`QueryLifecycle`] record (digest, aggregates, global ledger sums)
///   is bit-identical across ranks, thread counts, storage backends and
///   chaos/lossy fault plans.
/// - `Aborted`: the *outcome* is world-agreed (all ranks abort on the
///   same detector wave) and the run terminates without hanging, but the
///   partial state is not cut-consistent — digests are reported, not
///   comparable.
pub fn bfs_batch_lifecycle<const K: usize>(
    ctx: &RankCtx,
    g: &DistGraph,
    sources: &[VertexId],
    cfg: &BatchConfig,
    cancels: &[(usize, u64)],
) -> LifecycleBfsResult {
    assert!(K <= MAX_BATCH, "batch width {K} exceeds MAX_BATCH {MAX_BATCH}");
    assert!(sources.len() <= K, "{} sources exceed batch width {K}", sources.len());
    let width = sources.len();
    let start = Instant::now();
    let ledger = Arc::new(LedgerCells::default());
    let mut q = VisitorQueue::<BatchBfsVisitor<K>>::new_with_ctx(
        ctx,
        g,
        cfg.traversal,
        Arc::clone(&ledger),
    );
    q.arm_watchdog(cfg.watchdog_waves.unwrap_or(DEFAULT_WATCHDOG_WAVES));
    let cancel_tag = ctx.auto_tag();
    let mut cancel_mb: Mailbox<CancelRecord> =
        Mailbox::open_with(ctx, cancel_tag, cfg.traversal.mailbox, ());
    let pool = (cfg.traversal.threads > 1).then(|| WorkerPool::new(cfg.traversal.threads));
    let locks = AtomicBitVec::new(g.num_local_vertices());

    for (qi, &s) in sources.iter().enumerate() {
        if g.is_master(s) {
            q.push(BatchBfsVisitor {
                vertex: s,
                length: 0,
                parent: s.0,
                mask: 1u64 << qi,
                ledger: Arc::clone(&ledger),
            });
        }
    }

    let mut outcomes: Vec<Option<QueryOutcome>> = vec![None; width];
    let mut rounds: u64 = 0;
    let mut aborted = false;
    let mut scratch: Vec<BatchBfsVisitor<K>> = Vec::new();
    let mut newly: Vec<BatchBfsVisitor<K>> = Vec::new();
    let mut cancels_in: Vec<CancelRecord> = Vec::new();

    // Round 0 delivery: the seeds merge into per-vertex state and land in
    // `newly` as the depth-0 frontier.
    let mut verdict = q.drain_round_side(&mut scratch, &mut newly, &mut cancel_mb, &mut cancels_in);
    // Phase fence: a rank that confirms the seed cut must not inject round-1
    // traffic (cancel records, depth-1 visitors) while a peer still polls
    // that cut — the straggler would absorb next-round traffic into its seed
    // round and the round↔depth mapping would diverge across ranks. Every
    // later iteration gets this fence from the claimed-mask `all_reduce`.
    if verdict != CutVerdict::Abort {
        ctx.all_reduce_sum(0u64);
    }

    loop {
        if verdict == CutVerdict::Abort {
            aborted = true;
            let mut live = 0u64;
            for (qi, o) in outcomes.iter_mut().enumerate() {
                if o.is_none() {
                    *o = Some(QueryOutcome::Aborted);
                    live |= 1 << qi;
                }
            }
            ledger.retire(live);
            cancel_mb.channel_stats().record_abort(ctx.rank());
            break;
        }

        // --- lifecycle decisions at this confirmed cut -------------------
        // 1. Cancels: the cut guarantees every rank holds the same record
        //    set; application is idempotent per record.
        for rec in cancels_in.drain(..) {
            let qi = rec.query as usize;
            if qi < width && outcomes[qi].is_none() {
                outcomes[qi] = Some(QueryOutcome::Cancelled);
                ledger.retire(1 << qi);
                cancel_mb.channel_stats().record_cancel(ctx.rank());
            }
        }
        // 2. Budgets: pure functions of the globally agreed round counter
        //    and all-reduced per-query edge-push counts.
        if cfg.max_rounds.is_some() || cfg.max_inspected.is_some() {
            let snap = ledger.snapshot();
            let local: Vec<u64> = (0..width).map(|qi| snap.pushed[qi]).collect();
            let global = ctx.all_reduce(local, |mut a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                a
            });
            for (qi, o) in outcomes.iter_mut().enumerate() {
                if o.is_none() {
                    let over_rounds = cfg.max_rounds.is_some_and(|b| rounds >= b);
                    let over_edges = cfg.max_inspected.is_some_and(|b| global[qi] > b);
                    if over_rounds || over_edges {
                        *o = Some(QueryOutcome::DeadlineExceeded);
                        ledger.retire(1 << qi);
                    }
                }
            }
        }
        if outcomes.iter().all(|o| o.is_some()) {
            break;
        }

        // --- send this cut's scheduled cancels (origin: rank 0); they fly
        //     during the next round and are confirmed at its cut ----------
        if ctx.rank() == 0 {
            for &(qi, at_round) in cancels {
                if at_round == rounds && qi < width && outcomes[qi].is_none() {
                    for dst in 0..ctx.size() {
                        cancel_mb
                            .send(dst, CancelRecord { query: qi as u32, origin: 0, round: rounds });
                    }
                }
            }
        }

        // --- expand the confirmed frontier (exactly-once claims) ---------
        let retired = ledger.retired_mask();
        let claimed_local = execute_round(&mut q, g, pool.as_ref(), &locks, &newly, retired);
        newly.clear();
        verdict = q.drain_round_side(&mut scratch, &mut newly, &mut cancel_mb, &mut cancels_in);
        rounds += 1;
        if verdict == CutVerdict::Abort {
            continue;
        }
        // A live query that claimed nothing anywhere this round has an
        // empty frontier: no push can ever revive it. (Collective; every
        // rank computes the same verdicts from the same reduced mask.)
        let claimed_global = ctx.all_reduce(claimed_local, |a, b| a | b);
        for (qi, o) in outcomes.iter_mut().enumerate() {
            if o.is_none() && claimed_global & (1 << qi) == 0 {
                *o = Some(QueryOutcome::Complete);
            }
        }
    }

    // --- globally agreed per-query results (masters only) ----------------
    let mut visited = vec![0u64; width];
    let mut traversed = vec![0u64; width];
    let mut deepest = vec![0u64; width];
    let mut digest = vec![0u64; width];
    for v in g.local_vertices() {
        if !g.is_master(v) {
            continue;
        }
        let d = &q.state()[g.local_index(v)];
        let deg = g.total_degree(v);
        for qi in 0..width {
            if d.length[qi] != UNREACHED {
                visited[qi] += 1;
                traversed[qi] += deg;
                deepest[qi] = deepest[qi].max(d.length[qi]);
                digest[qi] = digest[qi].wrapping_add(mix(v.0 ^ mix(d.length[qi])));
            }
        }
    }
    let snap = ledger.snapshot();
    let mut sums: Vec<u64> = Vec::with_capacity(width * 5);
    sums.extend_from_slice(&visited);
    sums.extend_from_slice(&traversed);
    sums.extend_from_slice(&digest);
    sums.extend((0..width).map(|qi| snap.executed[qi]));
    sums.extend((0..width).map(|qi| snap.pushed[qi]));
    let sums = ctx.all_reduce(sums, |mut a, b| {
        for (x, y) in a.iter_mut().zip(b) {
            *x = x.wrapping_add(y);
        }
        a
    });
    let deepest = ctx.all_reduce(deepest, |mut a, b| {
        for (x, y) in a.iter_mut().zip(b) {
            *x = (*x).max(y);
        }
        a
    });

    let queries = (0..width)
        .map(|qi| QueryLifecycle {
            outcome: outcomes[qi].expect("every query has a terminal outcome"),
            levels_digest: sums[2 * width + qi],
            visited_count: sums[qi],
            traversed_edges: sums[width + qi],
            max_level: deepest[qi],
            executed_global: sums[3 * width + qi],
            pushed_global: sums[4 * width + qi],
        })
        .collect();

    let stats = q.stats();
    LifecycleBfsResult { queries, rounds, aborted, ledger: snap, stats, elapsed: start.elapsed() }
}

/// Width-dispatching wrapper mirroring [`crate::batch::QueryBatch::run_bfs`]:
/// run `sources` under the lifecycle plane at the narrowest compile-time
/// state width that fits.
pub fn run_bfs_lifecycle(
    ctx: &RankCtx,
    g: &DistGraph,
    sources: &[VertexId],
    cfg: &BatchConfig,
    cancels: &[(usize, u64)],
) -> LifecycleBfsResult {
    match sources.len() {
        0..=2 => bfs_batch_lifecycle::<2>(ctx, g, sources, cfg, cancels),
        3..=8 => bfs_batch_lifecycle::<8>(ctx, g, sources, cfg, cancels),
        9..=16 => bfs_batch_lifecycle::<16>(ctx, g, sources, cfg, cancels),
        _ => bfs_batch_lifecycle::<64>(ctx, g, sources, cfg, cancels),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::bfs_batch;
    use havoq_comm::CommWorld;
    use havoq_graph::csr::GraphConfig;
    use havoq_graph::dist::PartitionStrategy;
    use havoq_graph::gen::rmat::RmatGenerator;
    use havoq_graph::types::Edge;

    fn test_graph() -> (Vec<Edge>, u64) {
        let gen = RmatGenerator::graph500(8);
        (gen.symmetric_edges(41), gen.num_vertices())
    }

    fn lifecycle_run(
        p: usize,
        threads: usize,
        cfg: BatchConfig,
        cancels: Vec<(usize, u64)>,
    ) -> Vec<LifecycleBfsResult> {
        let (edges, n) = test_graph();
        CommWorld::run(p, move |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default().with_num_vertices(n),
            );
            let sources: Vec<VertexId> = (0..6).map(VertexId).collect();
            let cfg = cfg.with_threads(threads);
            bfs_batch_lifecycle::<8>(ctx, &g, &sources, &cfg, &cancels)
        })
    }

    #[test]
    fn unbudgeted_run_completes_and_matches_bfs_batch() {
        let (edges, n) = test_graph();
        let reference = CommWorld::run(2, move |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default().with_num_vertices(n),
            );
            let sources: Vec<VertexId> = (0..6).map(VertexId).collect();
            let res = bfs_batch::<8>(ctx, &g, &sources, &BatchConfig::default());
            res.per_query.clone()
        })
        .remove(0);
        for p in [1usize, 2] {
            for threads in [1usize, 4] {
                let runs = lifecycle_run(p, threads, BatchConfig::default(), vec![]);
                // every rank reports the same globally agreed records
                for w in 1..runs.len() {
                    assert_eq!(runs[w].queries, runs[0].queries, "rank {w} diverged");
                }
                let run = &runs[0];
                assert!(!run.aborted);
                for (qi, q) in run.queries.iter().enumerate() {
                    assert_eq!(q.outcome, QueryOutcome::Complete, "query {qi}");
                    assert_eq!(q.visited_count, reference[qi].visited_count, "query {qi}");
                    assert_eq!(q.traversed_edges, reference[qi].traversed_edges, "query {qi}");
                    assert_eq!(q.max_level, reference[qi].max_level, "query {qi}");
                    assert!(q.executed_global >= q.visited_count);
                }
            }
        }
    }

    #[test]
    fn round_budget_yields_deadline_exceeded() {
        let cfg = BatchConfig::default().with_max_rounds(2);
        let runs = lifecycle_run(2, 1, cfg, vec![]);
        assert_eq!(runs[0].queries, runs[1].queries);
        let mut expired = 0;
        for q in &runs[0].queries {
            // A query either reached its fixed point within the 2-round
            // budget (e.g. an isolated source) or was cut off with a
            // partial result no deeper than the rounds it was granted.
            match q.outcome {
                QueryOutcome::Complete => {}
                QueryOutcome::DeadlineExceeded => {
                    expired += 1;
                    assert!(q.max_level <= 2, "partial result deeper than the budget");
                }
                other => panic!("unexpected outcome {other:?} under a round budget"),
            }
        }
        assert!(expired > 0, "RMAT BFS from hub sources must exceed 2 rounds");
    }

    #[test]
    fn scheduled_cancel_is_applied_identically_on_all_ranks() {
        let runs = lifecycle_run(2, 4, BatchConfig::default(), vec![(3, 1)]);
        assert_eq!(runs[0].queries, runs[1].queries);
        assert_eq!(runs[0].queries[3].outcome, QueryOutcome::Cancelled);
        for (qi, q) in runs[0].queries.iter().enumerate() {
            if qi != 3 {
                assert_eq!(q.outcome, QueryOutcome::Complete, "query {qi}");
            }
        }
        // the cancelled query's partial result is still well-formed
        assert!(runs[0].queries[3].visited_count >= 1);
    }

    /// Everything except `executed_global`, which counts per-copy claim
    /// events and therefore scales with the replication factor across
    /// rank counts (it is still identical across ranks and threads at a
    /// fixed rank count — the full-record asserts above pin that).
    type CrossPView = Vec<(QueryOutcome, u64, u64, u64, u64, u64)>;

    fn cross_p_view(qs: &[QueryLifecycle]) -> CrossPView {
        qs.iter()
            .map(|q| {
                (
                    q.outcome,
                    q.levels_digest,
                    q.visited_count,
                    q.traversed_edges,
                    q.max_level,
                    q.pushed_global,
                )
            })
            .collect()
    }

    #[test]
    fn lifecycle_digests_are_thread_and_rank_invariant() {
        let cfg = BatchConfig::default().with_max_rounds(3);
        let mut seen: Option<CrossPView> = None;
        for p in [1usize, 2] {
            let mut full: Option<Vec<QueryLifecycle>> = None;
            for threads in [1usize, 4] {
                let runs = lifecycle_run(p, threads, cfg, vec![(1, 0)]);
                for r in &runs {
                    // full records (ledger sums included) are identical
                    // across ranks and threads at this rank count
                    match &full {
                        None => full = Some(r.queries.clone()),
                        Some(expect) => {
                            assert_eq!(&r.queries, expect, "p={p} threads={threads} diverged")
                        }
                    }
                    // the replication-independent view is identical across
                    // rank counts too
                    match &seen {
                        None => seen = Some(cross_p_view(&r.queries)),
                        Some(expect) => assert_eq!(
                            &cross_p_view(&r.queries),
                            expect,
                            "p={p} threads={threads} diverged across rank counts"
                        ),
                    }
                }
            }
        }
    }
}
