//! Traversal algorithms built on the distributed visitor queue.
//!
//! The three algorithms of the paper's Section VI — [`bfs`], [`kcore`] and
//! [`triangle`] — plus the two visitor algorithms of the authors' earlier
//! shared/external-memory work ([4]) that the framework supports unchanged:
//! [`cc`] (connected components) and [`sssp`] (single-source shortest
//! paths, the prioritized-queue showcase).

pub mod bfs;
pub mod cc;
pub mod kcore;
pub mod sssp;
pub mod triangle;
pub mod validate;
pub mod wedge;
