//! Graph500-style BFS result validation.
//!
//! The Graph500 benchmark the paper targets requires every reported BFS to
//! pass a validation phase. This module implements the spec's checks over
//! the distributed result:
//!
//! 1. the source has level 0 and is its own parent;
//! 2. every reached vertex has a reached parent, with
//!    `level(v) == level(parent(v)) + 1`;
//! 3. the claimed parent edge `(parent(v), v)` exists in the graph;
//! 4. every graph edge spans at most one level (no edge can shortcut the
//!    tree by two or more levels);
//! 5. replicas of split vertices agree with their master.
//!
//! Checks 2–4 need remote lookups, so validation itself runs as visitor
//! traversals over the same queue framework — like everything else in the
//! system, it is asynchronous and distributed.

use std::cmp::Ordering;

use havoq_comm::{RankCtx, WireCodec};
use havoq_graph::dist::DistGraph;
use havoq_graph::types::VertexId;

use crate::algorithms::bfs::{BfsData, UNREACHED};
use crate::queue::{TraversalConfig, VisitorQueue};
use crate::visitor::{Role, Visitor, VisitorPush};

/// Outcome of a validation run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ValidationReport {
    /// Vertices violating local structural rules (source/parent/level).
    pub local_violations: u64,
    /// Parent claims whose edge or level relation failed remotely.
    pub parent_violations: u64,
    /// Graph edges spanning more than one BFS level.
    pub edge_violations: u64,
}

impl ValidationReport {
    pub fn is_valid(&self) -> bool {
        self.local_violations == 0 && self.parent_violations == 0 && self.edge_violations == 0
    }
}

/// Per-vertex validation state: the BFS result being checked plus
/// verification counters.
#[derive(Clone, Default)]
pub struct ValidateData {
    level: u64,
    violations: u64,
    verified: u64,
}

/// Visitor that checks, at `parent`'s partition chain, that the claimed
/// tree edge exists and the level relation holds. The visitor traverses
/// the whole chain (split adjacency); the edge `(parent, child)` lives in
/// exactly one slice of a deduplicated graph, and `level(parent)` is
/// replicated along the chain, so the slice holder can do the whole check
/// alone: relation holds -> count `verified`, relation broken -> count a
/// violation. Claims whose edge exists nowhere verify nowhere, and are
/// charged as `claims - verified` after the traversal.
#[derive(Clone, Copy)]
struct ParentCheckVisitor {
    /// The claimed parent (visited vertex).
    parent: VertexId,
    /// The child claiming the edge.
    child: u64,
    /// The child's BFS level.
    child_level: u64,
}

impl WireCodec for ParentCheckVisitor {
    const WIRE_SIZE: usize = 24;
    type DecodeCtx = ();

    fn encode(&self, buf: &mut [u8]) {
        self.parent.encode(&mut buf[..8]);
        self.child.encode(&mut buf[8..16]);
        self.child_level.encode(&mut buf[16..24]);
    }

    fn decode(buf: &[u8], ctx: &()) -> Self {
        ParentCheckVisitor {
            parent: VertexId::decode(&buf[..8], ctx),
            child: u64::decode(&buf[8..16], ctx),
            child_level: u64::decode(&buf[16..24], ctx),
        }
    }
}

impl Visitor for ParentCheckVisitor {
    type Data = ValidateData;
    const GHOSTS_ALLOWED: bool = false;

    fn vertex(&self) -> VertexId {
        self.parent
    }

    fn pre_visit(&self, _data: &mut ValidateData, _role: Role) -> bool {
        true
    }

    fn visit(&self, g: &DistGraph, data: &mut ValidateData, _q: &mut dyn VisitorPush<Self>) {
        if g.local_adj_contains(self.parent, VertexId(self.child)) {
            if data.level != UNREACHED && data.level + 1 == self.child_level {
                data.verified += 1;
            } else {
                data.violations += 1;
            }
        }
    }

    fn priority(&self, _other: &Self) -> Ordering {
        Ordering::Equal
    }

    /// Sum the verification counters; `level` is read-only during the
    /// traversal (it carries the BFS result under check), so the slot's
    /// copy is authoritative and the seed's is discarded.
    #[inline]
    fn merge(into: &mut ValidateData, update: &ValidateData) {
        into.verified += update.verified;
        into.violations += update.violations;
    }

    /// Zeroed counters, carrying the read-only `level` across.
    #[inline]
    fn visit_seed(data: &ValidateData) -> ValidateData {
        ValidateData { level: data.level, violations: 0, verified: 0 }
    }
}

/// Visitor for the edge-span rule: sent to each neighbor `v` of a reached
/// vertex `u`, carrying `level(u)`. At `v`: `|level(u) - level(v)| <= 1`
/// and `v` must be reached at all.
#[derive(Clone, Copy)]
struct EdgeSpanVisitor {
    vertex: VertexId,
    neighbor_level: u64,
}

impl WireCodec for EdgeSpanVisitor {
    const WIRE_SIZE: usize = 16;
    type DecodeCtx = ();

    fn encode(&self, buf: &mut [u8]) {
        self.vertex.encode(&mut buf[..8]);
        self.neighbor_level.encode(&mut buf[8..16]);
    }

    fn decode(buf: &[u8], ctx: &()) -> Self {
        EdgeSpanVisitor {
            vertex: VertexId::decode(&buf[..8], ctx),
            neighbor_level: u64::decode(&buf[8..16], ctx),
        }
    }
}

impl Visitor for EdgeSpanVisitor {
    type Data = ValidateData;
    const GHOSTS_ALLOWED: bool = false;

    fn vertex(&self) -> VertexId {
        self.vertex
    }

    fn pre_visit(&self, data: &mut ValidateData, role: Role) -> bool {
        // evaluate once, at the master: replicas' copies would double count
        if role != Role::Master {
            return false;
        }
        let bad = data.level == UNREACHED || data.level.abs_diff(self.neighbor_level) > 1;
        if bad {
            data.violations += 1;
        }
        false // no expansion needed
    }

    fn visit(&self, _g: &DistGraph, _data: &mut ValidateData, _q: &mut dyn VisitorPush<Self>) {}

    fn priority(&self, _other: &Self) -> Ordering {
        Ordering::Equal
    }

    /// All mutation happens in `pre_visit` (coordinator-side); `visit` is
    /// empty, so merging only needs to sum the (always-zero) seed deltas.
    #[inline]
    fn merge(into: &mut ValidateData, update: &ValidateData) {
        into.verified += update.verified;
        into.violations += update.violations;
    }

    #[inline]
    fn visit_seed(data: &ValidateData) -> ValidateData {
        ValidateData { level: data.level, violations: 0, verified: 0 }
    }
}

/// Validate a distributed BFS result (`local_state` as returned by
/// [`crate::algorithms::bfs::bfs`]). Collective.
pub fn validate_bfs(
    ctx: &RankCtx,
    g: &DistGraph,
    source: VertexId,
    local_state: &[BfsData],
) -> ValidationReport {
    let mut local_violations = 0u64;

    // --- local rules + replica agreement -------------------------------
    // replica agreement: exchange boundary levels along chains
    let mut boundary: Vec<(u64, u64)> = Vec::new();
    for v in g.local_vertices() {
        if g.is_split(v) {
            boundary.push((v.0, local_state[g.local_index(v)].length));
        }
    }
    let all_boundaries = ctx.all_gather(boundary);
    {
        use havoq_util::FxHashMap;
        let mut seen: FxHashMap<u64, u64> = FxHashMap::default();
        for (v, l) in all_boundaries.into_iter().flatten() {
            match seen.entry(v) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    if *e.get() != l && g.is_master(VertexId(v)) {
                        local_violations += 1;
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(l);
                }
            }
        }
    }

    for v in g.local_vertices() {
        if !g.is_master(v) {
            continue;
        }
        let d = &local_state[g.local_index(v)];
        if v == source {
            if d.length != 0 || d.parent != source.0 {
                local_violations += 1;
            }
            continue;
        }
        if d.length == UNREACHED {
            if d.parent != UNREACHED {
                local_violations += 1;
            }
            continue;
        }
        // reached, non-source: needs a parent, and level > 0
        if d.parent == UNREACHED || d.length == 0 || d.parent == v.0 {
            local_violations += 1;
        }
    }

    // --- parent-edge and level-relation checks (traversal 1) -----------
    let mut q1 = VisitorQueue::<ParentCheckVisitor>::new(ctx, g, TraversalConfig::default());
    q1.init_state(|v, g| {
        if g.is_local(v) {
            ValidateData { level: local_state[g.local_index(v)].length, ..ValidateData::default() }
        } else {
            ValidateData::default()
        }
    });
    for v in g.local_vertices() {
        if !g.is_master(v) || v == source {
            continue;
        }
        let d = &local_state[g.local_index(v)];
        if d.length != UNREACHED && d.parent != UNREACHED {
            q1.push(ParentCheckVisitor {
                parent: VertexId(d.parent),
                child: v.0,
                child_level: d.length,
            });
        }
    }
    q1.do_traversal();
    // a parent claim verifies exactly once (the slice holding the edge of
    // a deduplicated graph); claims that never verify had a bogus edge or
    // a broken level relation
    let claims: u64 = {
        let local: u64 = g
            .local_vertices()
            .filter(|&v| {
                g.is_master(v) && v != source && local_state[g.local_index(v)].length != UNREACHED
            })
            .count() as u64;
        ctx.all_reduce_sum(local)
    };
    let verified = ctx.all_reduce_sum(q1.state().iter().map(|d| d.verified).sum::<u64>());
    let parent_violations = claims.saturating_sub(verified);

    // --- edge-span rule (traversal 2): every edge of a reached vertex ---
    let mut q2 = VisitorQueue::<EdgeSpanVisitor>::new(ctx, g, TraversalConfig::default());
    q2.init_state(|v, g| {
        if g.is_local(v) {
            ValidateData { level: local_state[g.local_index(v)].length, ..ValidateData::default() }
        } else {
            ValidateData::default()
        }
    });
    // every local slice of every reached vertex emits its edges
    let mut spans: Vec<EdgeSpanVisitor> = Vec::new();
    for v in g.local_vertices() {
        let lvl = local_state[g.local_index(v)].length;
        if lvl == UNREACHED {
            continue;
        }
        g.with_adj(v, |adj| {
            for &t in adj {
                spans.push(EdgeSpanVisitor { vertex: VertexId(t), neighbor_level: lvl });
            }
        });
    }
    for s in spans {
        q2.push(s);
    }
    q2.do_traversal();
    let edge_violations = ctx.all_reduce_sum(q2.state().iter().map(|d| d.violations).sum::<u64>());

    ValidationReport {
        local_violations: ctx.all_reduce_sum(local_violations),
        parent_violations,
        edge_violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::bfs::{bfs, BfsConfig};
    use havoq_comm::CommWorld;
    use havoq_graph::csr::GraphConfig;
    use havoq_graph::dist::PartitionStrategy;
    use havoq_graph::gen::rmat::RmatGenerator;

    #[test]
    fn genuine_bfs_results_validate() {
        let gen = RmatGenerator::graph500(8);
        let edges = gen.symmetric_edges(31);
        for p in [1usize, 4] {
            let reports = CommWorld::run(p, |ctx| {
                let g = DistGraph::build_replicated(
                    ctx,
                    &edges,
                    PartitionStrategy::EdgeList,
                    GraphConfig::default(),
                );
                let r = bfs(ctx, &g, VertexId(0), &BfsConfig::default());
                validate_bfs(ctx, &g, VertexId(0), &r.local_state)
            });
            for rep in reports {
                assert!(rep.is_valid(), "p={p}: {rep:?}");
            }
        }
    }

    #[test]
    fn corrupted_level_is_caught() {
        let gen = RmatGenerator::graph500(8);
        let edges = gen.symmetric_edges(31);
        let reports = CommWorld::run(3, |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default(),
            );
            let r = bfs(ctx, &g, VertexId(0), &BfsConfig::default());
            let mut state = r.local_state.clone();
            // corrupt one reached non-source vertex's level on its master
            if ctx.rank() == 0 {
                if let Some(li) = g
                    .local_vertices()
                    .filter(|&v| {
                        g.is_master(v)
                            && v.0 != 0
                            && state[g.local_index(v)].length != UNREACHED
                            && state[g.local_index(v)].length > 0
                    })
                    .map(|v| g.local_index(v))
                    .next()
                {
                    state[li].length += 7;
                }
            }
            validate_bfs(ctx, &g, VertexId(0), &state)
        });
        assert!(reports.iter().any(|r| !r.is_valid()), "corruption must be detected");
    }

    #[test]
    fn corrupted_parent_is_caught() {
        let gen = RmatGenerator::graph500(8);
        let edges = gen.symmetric_edges(9);
        let reports = CommWorld::run(2, |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default(),
            );
            let r = bfs(ctx, &g, VertexId(0), &BfsConfig::default());
            let mut state = r.local_state.clone();
            // claim the source is its own grandparent-level child
            if ctx.rank() == 0 {
                if let Some(li) = g
                    .local_vertices()
                    .filter(|&v| {
                        g.is_master(v)
                            && state[g.local_index(v)].length > 2
                            && state[g.local_index(v)].length != UNREACHED
                    })
                    .map(|v| g.local_index(v))
                    .next()
                {
                    state[li].parent = 0; // level gap to the source > 1
                }
            }
            validate_bfs(ctx, &g, VertexId(0), &state)
        });
        assert!(reports.iter().any(|r| !r.is_valid()));
    }
}
