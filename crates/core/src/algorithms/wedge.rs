//! Approximate triangle counting by wedge sampling (Seshadhri, Pinar &
//! Kolda — reference [13], which the paper names as the natural extension
//! of its triangle-counting visitor).
//!
//! A *wedge* is a length-2 path (a — v — b); the global clustering
//! coefficient is the probability that a uniformly random wedge is
//! *closed* (its endpoints adjacent), and `triangles = closed_fraction *
//! total_wedges / 3`. The estimator samples wedges proportionally to each
//! vertex's wedge count `C(d_v, 2)` and checks closures — all expressed as
//! visitors over the same distributed queue, including for *split*
//! vertices, whose adjacency positions are resolved slice-by-slice along
//! the replica chain:
//!
//! 1. `First { i, j }` travels v's chain; the slice owning position `i`
//!    resolves endpoint `a` and emits `Second`;
//! 2. `Second { j, a }` travels the chain again; the slice owning `j`
//!    resolves `b` and dispatches a closure probe;
//! 3. `Close { other }` travels `max(a, b)`'s chain; the slice holding the
//!    closing edge counts it.

use std::cmp::Ordering;
use std::time::Duration;

use havoq_comm::{RankCtx, WireCodec};
use havoq_graph::dist::DistGraph;
use havoq_graph::gen::StreamRng;
use havoq_graph::types::VertexId;

use crate::queue::{TraversalConfig, TraversalStats, VisitorQueue};
use crate::visitor::{Role, Visitor, VisitorPush};

/// Per-vertex wedge-sampling counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct WedgeData {
    /// Closure probes dispatched from this partition's slice.
    pub dispatched: u64,
    /// Closed wedges found in this partition's slice.
    pub closed: u64,
}

#[derive(Clone, Copy, Debug)]
enum Duty {
    First { i: u64, j: u64 },
    Second { j: u64, a: u64 },
    Close { other: u64 },
}

/// The wedge-sampling visitor.
#[derive(Clone, Copy, Debug)]
pub struct WedgeVisitor {
    vertex: VertexId,
    duty: Duty,
}

/// Wire layout: vertex (8) + duty tag (1) + two u64 operands (16) = 25
/// bytes. `Close` carries one operand; its second slot is zero on the wire.
impl WireCodec for WedgeVisitor {
    const WIRE_SIZE: usize = 25;
    type DecodeCtx = ();

    fn encode(&self, buf: &mut [u8]) {
        self.vertex.encode(&mut buf[..8]);
        let (tag, a, b) = match self.duty {
            Duty::First { i, j } => (0u8, i, j),
            Duty::Second { j, a } => (1u8, j, a),
            Duty::Close { other } => (2u8, other, 0),
        };
        buf[8] = tag;
        a.encode(&mut buf[9..17]);
        b.encode(&mut buf[17..25]);
    }

    fn decode(buf: &[u8], ctx: &()) -> Self {
        let vertex = VertexId::decode(&buf[..8], ctx);
        let a = u64::decode(&buf[9..17], ctx);
        let b = u64::decode(&buf[17..25], ctx);
        let duty = match buf[8] {
            0 => Duty::First { i: a, j: b },
            1 => Duty::Second { j: a, a: b },
            2 => Duty::Close { other: a },
            t => panic!("corrupt wedge visitor duty tag {t}"),
        };
        WedgeVisitor { vertex, duty }
    }
}

impl Visitor for WedgeVisitor {
    type Data = WedgeData;
    const GHOSTS_ALLOWED: bool = false;

    fn vertex(&self) -> VertexId {
        self.vertex
    }

    fn pre_visit(&self, _data: &mut WedgeData, _role: Role) -> bool {
        true // every duty must reach every slice of the chain
    }

    fn visit(&self, g: &DistGraph, data: &mut WedgeData, q: &mut dyn VisitorPush<Self>) {
        match self.duty {
            Duty::First { i, j } => {
                if let Some(a) = g.local_adj_at(self.vertex, i) {
                    q.push(WedgeVisitor { vertex: self.vertex, duty: Duty::Second { j, a } });
                }
            }
            Duty::Second { j, a } => {
                if let Some(b) = g.local_adj_at(self.vertex, j) {
                    debug_assert_ne!(a, b, "distinct positions of a deduplicated adjacency");
                    data.dispatched += 1;
                    let (lo, hi) = (a.min(b), a.max(b));
                    q.push(WedgeVisitor { vertex: VertexId(hi), duty: Duty::Close { other: lo } });
                }
            }
            Duty::Close { other } => {
                if g.local_adj_contains(self.vertex, VertexId(other)) {
                    data.closed += 1;
                }
            }
        }
    }

    fn priority(&self, _other: &Self) -> Ordering {
        Ordering::Equal
    }

    /// Both fields are pure counters: sum the per-execution deltas.
    #[inline]
    fn merge(into: &mut WedgeData, update: &WedgeData) {
        into.dispatched += update.dispatched;
        into.closed += update.closed;
    }

    /// Zeroed accumulator so concurrent duties on one vertex sum exactly.
    #[inline]
    fn visit_seed(_data: &WedgeData) -> WedgeData {
        WedgeData::default()
    }
}

/// Result of a wedge-sampling estimation (identical on every rank).
#[derive(Clone, Copy, Debug)]
pub struct WedgeSampleResult {
    /// Total wedges in the graph, `sum_v C(d_v, 2)`.
    pub total_wedges: u64,
    /// Wedges actually sampled (closure probes dispatched).
    pub sampled: u64,
    /// Sampled wedges found closed.
    pub closed: u64,
    /// Estimated global clustering coefficient `3T / W`.
    pub clustering: f64,
    /// Estimated triangle count.
    pub triangles_estimate: f64,
    pub elapsed: Duration,
    pub stats: TraversalStats,
}

#[inline]
fn wedges_of(d: u64) -> u64 {
    d * d.saturating_sub(1) / 2
}

/// Estimate the clustering coefficient / triangle count from `samples`
/// random wedges. Deterministic given `seed`. Collective.
pub fn approx_clustering(
    ctx: &RankCtx,
    g: &DistGraph,
    samples: u64,
    seed: u64,
    cfg: &TraversalConfig,
) -> WedgeSampleResult {
    // wedge-mass census over local masters
    let masters: Vec<VertexId> = g.local_vertices().filter(|&v| g.is_master(v)).collect();
    let mut cum: Vec<(u64, VertexId)> = Vec::with_capacity(masters.len());
    let mut local_mass = 0u64;
    for &v in &masters {
        let w = wedges_of(g.total_degree(v));
        if w > 0 {
            local_mass += w;
            cum.push((local_mass, v));
        }
    }
    let masses = ctx.all_gather(local_mass);
    let total_wedges: u64 = masses.iter().sum();

    let mut cfgq = *cfg;
    cfgq.ghosts = 0;
    let mut q = VisitorQueue::<WedgeVisitor>::new(ctx, g, cfgq);

    if total_wedges > 0 {
        // proportional share of the sample budget (floor; the tail is fine)
        let my_samples = (samples as u128 * local_mass as u128 / total_wedges as u128) as u64;
        let rank_salt = (ctx.rank() as u64) << 32;
        for s in 0..my_samples {
            let mut rng = StreamRng::new(seed ^ rank_salt, s);
            // pick v with probability proportional to C(d_v, 2)
            let x = rng.next_below(local_mass);
            let idx = cum.partition_point(|&(c, _)| c <= x);
            let v = cum[idx].1;
            let d = g.total_degree(v);
            // two distinct positions in the whole adjacency
            let i = rng.next_below(d);
            let mut j = rng.next_below(d);
            while j == i {
                j = rng.next_below(d);
            }
            q.push(WedgeVisitor { vertex: v, duty: Duty::First { i, j } });
        }
    }
    q.do_traversal();

    let sampled = ctx.all_reduce_sum(q.state().iter().map(|d| d.dispatched).sum::<u64>());
    let closed = ctx.all_reduce_sum(q.state().iter().map(|d| d.closed).sum::<u64>());
    let clustering = if sampled == 0 { 0.0 } else { closed as f64 / sampled as f64 };
    let stats = q.stats();
    WedgeSampleResult {
        total_wedges,
        sampled,
        closed,
        clustering,
        triangles_estimate: clustering * total_wedges as f64 / 3.0,
        elapsed: stats.elapsed,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::triangle::{triangle_count, TriangleConfig};
    use havoq_comm::CommWorld;
    use havoq_graph::csr::GraphConfig;
    use havoq_graph::dist::PartitionStrategy;
    use havoq_graph::gen::rmat::RmatGenerator;
    use havoq_graph::types::Edge;

    fn run(p: usize, edges: &[Edge], samples: u64) -> WedgeSampleResult {
        let out = CommWorld::run(p, |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default(),
            );
            approx_clustering(ctx, &g, samples, 99, &TraversalConfig::default())
        });
        out.into_iter().next().unwrap()
    }

    fn clique(n: u64) -> Vec<Edge> {
        let mut edges = Vec::new();
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    edges.push(Edge::new(a, b));
                }
            }
        }
        edges
    }

    #[test]
    fn complete_graph_is_fully_clustered() {
        let r = run(3, &clique(8), 500);
        assert!(r.sampled > 0);
        assert_eq!(r.closed, r.sampled, "every wedge of a clique closes");
        assert!((r.clustering - 1.0).abs() < 1e-12);
        // K8: W = 8 * C(7,2) = 168, T = 56
        assert_eq!(r.total_wedges, 168);
        assert!((r.triangles_estimate - 56.0).abs() < 1e-9);
    }

    #[test]
    fn square_has_no_closed_wedges() {
        let edges: Vec<Edge> = [(0, 1), (1, 2), (2, 3), (3, 0)]
            .iter()
            .flat_map(|&(a, b)| [Edge::new(a, b), Edge::new(b, a)])
            .collect();
        let r = run(2, &edges, 200);
        assert!(r.sampled > 0);
        assert_eq!(r.closed, 0);
        assert_eq!(r.clustering, 0.0);
    }

    #[test]
    fn estimates_rmat_triangles_within_tolerance() {
        let gen = RmatGenerator::graph500(8);
        let edges = gen.symmetric_edges(17);
        let exact = run_exact(&edges);
        let est = run(4, &edges, 40_000);
        assert!(est.sampled > 10_000, "sampling should mostly succeed: {est:?}");
        let rel = (est.triangles_estimate - exact as f64).abs() / exact as f64;
        assert!(
            rel < 0.15,
            "estimate {:.0} vs exact {exact}: rel err {rel:.3}",
            est.triangles_estimate
        );
    }

    fn run_exact(edges: &[Edge]) -> u64 {
        let out = CommWorld::run(4, |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default(),
            );
            triangle_count(ctx, &g, &TriangleConfig::default()).triangles
        });
        out[0]
    }

    #[test]
    fn split_hub_wedges_are_sampled_correctly() {
        // star + one rim edge: hub 0 has degree 40 and is split across 4
        // ranks; wedges at the hub = C(40,2) = 780; the only triangle is
        // (0,1,2) via the rim edge 1-2
        let n = 41u64;
        let mut edges: Vec<Edge> =
            (1..n).flat_map(|v| [Edge::new(v, 0), Edge::new(0, v)]).collect();
        edges.push(Edge::new(1, 2));
        edges.push(Edge::new(2, 1));
        let r = run(4, &edges, 2_000);
        assert!(r.sampled > 500, "chain-resolved sampling must work: {r:?}");
        // rim wedges: vertices 1 and 2 have degree 2 -> 1 wedge each
        assert_eq!(r.total_wedges, 780 + 2);
        assert!(r.closed > 0, "the hub wedge (1,0,2) closes via the rim edge");
        // exact closed fraction: wedges (1,0,2)+(2,0,1)... position pairs
        // unordered: 1 closed hub wedge of 780; plus both rim wedges closed
        // (1-2-0 and 2-1-0 close through the star edges)
        let expect = (1.0 + 2.0) / 782.0;
        assert!(
            (r.clustering - expect).abs() < 0.02,
            "clustering {:.4} vs expected {expect:.4}",
            r.clustering
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let gen = RmatGenerator::graph500(6);
        let edges = gen.symmetric_edges(2);
        let a = run(3, &edges, 1000);
        let b = run(3, &edges, 1000);
        assert_eq!(a.sampled, b.sampled);
        assert_eq!(a.closed, b.closed);
    }
}
