//! Triangle counting (paper Algorithms 6 and 7).
//!
//! Three visitor duties: *first visit* fans out to larger-id neighbors,
//! *length-2 path visit* extends to still-larger neighbors, and the final
//! duty searches the visited vertex's adjacency for the closing edge back
//! to the path origin. Visiting in strictly increasing vertex order counts
//! each triangle exactly once, at its largest member. Ghosts are disallowed:
//! every path visitor must be evaluated (Section IV-B).
//!
//! Split adjacency lists compose naturally: `pre_visit` always accepts, so
//! the framework forwards every visitor along the whole replica chain and
//! each partition performs the duty on its local adjacency slice — the
//! closing edge exists in exactly one slice, so increments never double.

use std::cmp::Ordering;
use std::time::Duration;

use havoq_comm::{RankCtx, WireCodec};
use havoq_graph::dist::DistGraph;
use havoq_graph::types::VertexId;

use crate::checkpoint::CheckpointSpec;
use crate::queue::{TraversalConfig, TraversalStats, VisitorQueue};
use crate::visitor::{Role, Visitor, VisitorPush};

const NONE: u64 = u64::MAX;

/// Per-vertex triangle state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TriangleData {
    /// Triangles whose largest member is this vertex *and* whose closing
    /// edge lies in this partition's adjacency slice.
    pub num_triangles: u64,
}

impl WireCodec for TriangleData {
    const WIRE_SIZE: usize = 8;
    type DecodeCtx = ();

    fn encode(&self, buf: &mut [u8]) {
        self.num_triangles.encode(buf);
    }

    fn decode(buf: &[u8], ctx: &()) -> Self {
        TriangleData { num_triangles: u64::decode(buf, ctx) }
    }
}

/// The triangle-count visitor (Algorithm 6).
#[derive(Clone, Copy, Debug)]
pub struct TriangleVisitor {
    pub vertex: VertexId,
    /// First path vertex (smallest), or `NONE` on the first duty.
    pub second: u64,
    /// `NONE` until the third duty: then the path origin to close back to.
    pub third: u64,
}

impl WireCodec for TriangleVisitor {
    const WIRE_SIZE: usize = 24;
    type DecodeCtx = ();

    fn encode(&self, buf: &mut [u8]) {
        self.vertex.encode(&mut buf[..8]);
        self.second.encode(&mut buf[8..16]);
        self.third.encode(&mut buf[16..24]);
    }

    fn decode(buf: &[u8], ctx: &()) -> Self {
        TriangleVisitor {
            vertex: VertexId::decode(&buf[..8], ctx),
            second: u64::decode(&buf[8..16], ctx),
            third: u64::decode(&buf[16..24], ctx),
        }
    }
}

impl Visitor for TriangleVisitor {
    type Data = TriangleData;
    const GHOSTS_ALLOWED: bool = false;

    #[inline]
    fn vertex(&self) -> VertexId {
        self.vertex
    }

    #[inline]
    fn pre_visit(&self, _data: &mut TriangleData, _role: Role) -> bool {
        true // Alg. 6: always proceed
    }

    fn visit(&self, g: &DistGraph, data: &mut TriangleData, q: &mut dyn VisitorPush<Self>) {
        let me = self.vertex.0;
        if self.second == NONE {
            // first visit: start paths toward larger neighbors
            g.with_adj(self.vertex, |adj| {
                for &t in adj {
                    if t > me {
                        q.push(TriangleVisitor { vertex: VertexId(t), second: me, third: NONE });
                    }
                }
            });
        } else if self.third == NONE {
            // length-2 path: extend upward, remembering the origin
            g.with_adj(self.vertex, |adj| {
                for &t in adj {
                    if t > me {
                        q.push(TriangleVisitor {
                            vertex: VertexId(t),
                            second: me,
                            third: self.second,
                        });
                    }
                }
            });
        } else {
            // closing duty: does this (local slice of the) adjacency hold
            // the edge back to the path origin?
            if g.local_adj_contains(self.vertex, VertexId(self.third)) {
                data.num_triangles += 1;
            }
        }
    }

    #[inline]
    fn priority(&self, _other: &Self) -> Ordering {
        Ordering::Equal // no algorithm order (Alg. 6)
    }

    /// Counters sum: each worker's seed starts at zero (see `visit_seed`)
    /// and carries only the triangles its own executions closed.
    #[inline]
    fn merge(into: &mut TriangleData, update: &TriangleData) {
        into.num_triangles += update.num_triangles;
    }

    /// Zeroed accumulator so concurrent closings on one vertex sum exactly.
    #[inline]
    fn visit_seed(_data: &TriangleData) -> TriangleData {
        TriangleData::default()
    }
}

/// Triangle-count configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct TriangleConfig {
    pub traversal: TraversalConfig,
    /// When set, the traversal checkpoints at quiescence cuts and can
    /// crash/restore under an injected fault plan.
    pub checkpoint: Option<CheckpointSpec>,
}

/// Result of a triangle count (per rank).
#[derive(Clone, Debug)]
pub struct TriangleResult {
    /// Global triangle count (Alg. 7's `all_reduce` of local counters).
    pub triangles: u64,
    pub elapsed: Duration,
    pub stats: TraversalStats,
}

/// Count triangles of the (symmetrized, deduplicated) graph (Algorithm 7).
/// Collective.
///
/// ```
/// use havoq_comm::CommWorld;
/// use havoq_core::algorithms::triangle::{triangle_count, TriangleConfig};
/// use havoq_graph::csr::GraphConfig;
/// use havoq_graph::dist::{DistGraph, PartitionStrategy};
/// use havoq_graph::types::Edge;
///
/// // two triangles sharing the edge (1, 2)
/// let edges: Vec<Edge> = [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]
///     .iter()
///     .flat_map(|&(a, b)| [Edge::new(a, b), Edge::new(b, a)])
///     .collect();
/// let results = CommWorld::run(3, |ctx| {
///     let g = DistGraph::build_replicated(
///         ctx, &edges, PartitionStrategy::EdgeList, GraphConfig::default());
///     triangle_count(ctx, &g, &TriangleConfig::default())
/// });
/// assert_eq!(results[0].triangles, 2);
/// ```
pub fn triangle_count(ctx: &RankCtx, g: &DistGraph, cfg: &TriangleConfig) -> TriangleResult {
    let mut cfgq = cfg.traversal;
    cfgq.ghosts = 0;
    let mut q = VisitorQueue::<TriangleVisitor>::new(ctx, g, cfgq);
    for v in g.local_vertices() {
        if g.is_master(v) {
            q.push(TriangleVisitor { vertex: v, second: NONE, third: NONE });
        }
    }
    match &cfg.checkpoint {
        Some(spec) => q.do_traversal_checkpointed(ctx, spec),
        None => q.do_traversal(),
    }

    // local counters live on whichever partition held the closing edge —
    // masters and replicas alike — so sum every local slot (Alg. 7 line 14)
    let local: u64 = q.state().iter().map(|d| d.num_triangles).sum();
    let triangles = ctx.all_reduce_sum(local);
    let stats = q.stats();
    TriangleResult { triangles, elapsed: stats.elapsed, stats }
}

/// The subset-restricted variant the paper sketches ("this algorithm can be
/// extended to count the number of triangles amongst a subset of vertices,
/// or for individual vertices"): counts triangles whose three corners all
/// lie in `subset`.
///
/// The subset (sorted, deduplicated vertex ids) is replicated to every
/// rank — the intended use is small analyst-selected seed sets, e.g. one
/// community of a social graph — and the visitor simply refuses to extend
/// paths outside it.
#[derive(Clone)]
pub struct SubsetTriangleVisitor {
    inner: TriangleVisitor,
    subset: std::sync::Arc<Vec<u64>>,
}

/// The subset table never crosses the wire: it is rank-replicated and
/// reattached on decode through the queue's decode context, so the wire
/// record stays the 24 bytes of the inner visitor.
impl WireCodec for SubsetTriangleVisitor {
    const WIRE_SIZE: usize = TriangleVisitor::WIRE_SIZE;
    type DecodeCtx = std::sync::Arc<Vec<u64>>;

    fn encode(&self, buf: &mut [u8]) {
        self.inner.encode(buf);
    }

    fn decode(buf: &[u8], ctx: &Self::DecodeCtx) -> Self {
        SubsetTriangleVisitor {
            inner: TriangleVisitor::decode(buf, &()),
            subset: std::sync::Arc::clone(ctx),
        }
    }
}

impl Visitor for SubsetTriangleVisitor {
    type Data = TriangleData;
    const GHOSTS_ALLOWED: bool = false;

    fn vertex(&self) -> VertexId {
        self.inner.vertex
    }

    fn pre_visit(&self, _data: &mut TriangleData, _role: Role) -> bool {
        true
    }

    fn visit(&self, g: &DistGraph, data: &mut TriangleData, q: &mut dyn VisitorPush<Self>) {
        let me = self.inner.vertex.0;
        let in_subset = |v: u64| self.subset.binary_search(&v).is_ok();
        if self.inner.second == NONE {
            g.with_adj(self.inner.vertex, |adj| {
                for &t in adj {
                    if t > me && in_subset(t) {
                        q.push(SubsetTriangleVisitor {
                            inner: TriangleVisitor { vertex: VertexId(t), second: me, third: NONE },
                            subset: std::sync::Arc::clone(&self.subset),
                        });
                    }
                }
            });
        } else if self.inner.third == NONE {
            g.with_adj(self.inner.vertex, |adj| {
                for &t in adj {
                    if t > me && in_subset(t) {
                        q.push(SubsetTriangleVisitor {
                            inner: TriangleVisitor {
                                vertex: VertexId(t),
                                second: me,
                                third: self.inner.second,
                            },
                            subset: std::sync::Arc::clone(&self.subset),
                        });
                    }
                }
            });
        } else if g.local_adj_contains(self.inner.vertex, VertexId(self.inner.third)) {
            data.num_triangles += 1;
        }
    }

    fn priority(&self, _other: &Self) -> Ordering {
        Ordering::Equal
    }

    #[inline]
    fn merge(into: &mut TriangleData, update: &TriangleData) {
        into.num_triangles += update.num_triangles;
    }

    #[inline]
    fn visit_seed(_data: &TriangleData) -> TriangleData {
        TriangleData::default()
    }
}

/// Count triangles entirely within `subset` (sorted unique vertex ids).
/// Collective.
pub fn triangle_count_subset(
    ctx: &RankCtx,
    g: &DistGraph,
    subset: &[u64],
    cfg: &TriangleConfig,
) -> TriangleResult {
    debug_assert!(subset.windows(2).all(|w| w[0] < w[1]), "subset must be sorted unique");
    let subset = std::sync::Arc::new(subset.to_vec());
    let mut cfgq = cfg.traversal;
    cfgq.ghosts = 0;
    let mut q = VisitorQueue::<SubsetTriangleVisitor>::new_with_ctx(
        ctx,
        g,
        cfgq,
        std::sync::Arc::clone(&subset),
    );
    for &v in subset.iter() {
        let v = VertexId(v);
        if v.0 < g.num_vertices() && g.is_master(v) {
            q.push(SubsetTriangleVisitor {
                inner: TriangleVisitor { vertex: v, second: NONE, third: NONE },
                subset: std::sync::Arc::clone(&subset),
            });
        }
    }
    match &cfg.checkpoint {
        Some(spec) => q.do_traversal_checkpointed(ctx, spec),
        None => q.do_traversal(),
    }
    let local: u64 = q.state().iter().map(|d| d.num_triangles).sum();
    let triangles = ctx.all_reduce_sum(local);
    let stats = q.stats();
    TriangleResult { triangles, elapsed: stats.elapsed, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use havoq_comm::CommWorld;
    use havoq_graph::csr::GraphConfig;
    use havoq_graph::dist::PartitionStrategy;
    use havoq_graph::gen::pa::PaGenerator;
    use havoq_graph::gen::rmat::RmatGenerator;
    use havoq_graph::gen::smallworld::SmallWorldGenerator;
    use havoq_graph::types::Edge;

    /// Serial reference count: triangles a < b < c.
    fn reference_triangles(n: u64, edges: &[Edge]) -> u64 {
        use std::collections::HashSet;
        let mut adj: Vec<HashSet<u64>> = vec![HashSet::new(); n as usize];
        for e in edges {
            if !e.is_self_loop() {
                adj[e.src as usize].insert(e.dst);
                adj[e.dst as usize].insert(e.src);
            }
        }
        let mut count = 0u64;
        for a in 0..n {
            for &b in &adj[a as usize] {
                if b <= a {
                    continue;
                }
                for &c in &adj[b as usize] {
                    if c > b && adj[a as usize].contains(&c) {
                        count += 1;
                    }
                }
            }
        }
        count
    }

    fn distributed_triangles(p: usize, edges: &[Edge]) -> u64 {
        let out = CommWorld::run(p, |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default(),
            );
            triangle_count(ctx, &g, &TriangleConfig::default()).triangles
        });
        assert!(out.windows(2).all(|w| w[0] == w[1]), "all ranks agree");
        out[0]
    }

    #[test]
    fn single_triangle() {
        let edges: Vec<Edge> = [(0, 1), (1, 2), (0, 2)]
            .iter()
            .flat_map(|&(a, b)| [Edge::new(a, b), Edge::new(b, a)])
            .collect();
        for p in [1usize, 2, 3] {
            assert_eq!(distributed_triangles(p, &edges), 1, "p={p}");
        }
    }

    #[test]
    fn square_has_no_triangles() {
        let edges: Vec<Edge> = [(0, 1), (1, 2), (2, 3), (3, 0)]
            .iter()
            .flat_map(|&(a, b)| [Edge::new(a, b), Edge::new(b, a)])
            .collect();
        assert_eq!(distributed_triangles(2, &edges), 0);
    }

    #[test]
    fn complete_graph_count() {
        // K6 has C(6,3) = 20 triangles
        let mut edges = Vec::new();
        for a in 0..6u64 {
            for b in 0..6u64 {
                if a != b {
                    edges.push(Edge::new(a, b));
                }
            }
        }
        for p in [1usize, 4] {
            assert_eq!(distributed_triangles(p, &edges), 20, "p={p}");
        }
    }

    #[test]
    fn matches_reference_on_rmat() {
        let gen = RmatGenerator::graph500(7);
        let edges = gen.symmetric_edges(19);
        let want = reference_triangles(gen.num_vertices(), &edges);
        assert!(want > 0, "RMAT should close triangles");
        for p in [1usize, 3, 4] {
            assert_eq!(distributed_triangles(p, &edges), want, "p={p}");
        }
    }

    #[test]
    fn matches_reference_on_small_world() {
        let gen = SmallWorldGenerator::new(128, 6).with_rewire(0.1);
        let edges = gen.symmetric_edges(7);
        let want = reference_triangles(128, &edges);
        assert!(want > 0, "ring lattices are triangle-rich");
        assert_eq!(distributed_triangles(3, &edges), want);
    }

    #[test]
    fn subset_counting_restricts_to_the_subset() {
        // K6: full count 20; restricted to {0,1,2,3}: C(4,3) = 4
        let mut edges = Vec::new();
        for a in 0..6u64 {
            for b in 0..6u64 {
                if a != b {
                    edges.push(Edge::new(a, b));
                }
            }
        }
        let out = CommWorld::run(3, |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default(),
            );
            let full = triangle_count(ctx, &g, &TriangleConfig::default()).triangles;
            let sub =
                triangle_count_subset(ctx, &g, &[0, 1, 2, 3], &TriangleConfig::default()).triangles;
            let empty = triangle_count_subset(ctx, &g, &[], &TriangleConfig::default()).triangles;
            let pair =
                triangle_count_subset(ctx, &g, &[0, 1], &TriangleConfig::default()).triangles;
            (full, sub, empty, pair)
        });
        for (full, sub, empty, pair) in out {
            assert_eq!(full, 20);
            assert_eq!(sub, 4);
            assert_eq!(empty, 0);
            assert_eq!(pair, 0, "two vertices close no triangle");
        }
    }

    #[test]
    fn subset_of_everything_equals_full_count() {
        let gen = RmatGenerator::graph500(6);
        let edges = gen.symmetric_edges(8);
        let n = gen.num_vertices();
        let all: Vec<u64> = (0..n).collect();
        let out = CommWorld::run(2, |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default().with_num_vertices(n),
            );
            let full = triangle_count(ctx, &g, &TriangleConfig::default()).triangles;
            let sub = triangle_count_subset(ctx, &g, &all, &TriangleConfig::default()).triangles;
            (full, sub)
        });
        for (full, sub) in out {
            assert_eq!(full, sub);
        }
    }

    #[test]
    fn matches_reference_on_pa() {
        let gen = PaGenerator::new(200, 3).with_rewire(0.2);
        let edges = gen.symmetric_edges(13);
        let want = reference_triangles(200, &edges);
        assert_eq!(distributed_triangles(4, &edges), want);
    }
}
