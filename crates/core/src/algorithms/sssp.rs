//! Single-source shortest paths — the prioritized-visitor-queue showcase
//! from the authors' earlier work ([4] in the paper).
//!
//! The input graphs of this reproduction are unweighted, so weights are
//! synthesized deterministically and symmetrically from the edge's
//! endpoints (documented substitution: the paper's earlier SSSP work used
//! weighted inputs we don't have). The visitor relaxes tentative distances;
//! the local min-heap ordering by distance makes the traversal
//! Dijkstra-like without global synchronization.

use std::cmp::Ordering;
use std::time::Duration;

use havoq_comm::{RankCtx, WireCodec};
use havoq_graph::dist::DistGraph;
use havoq_graph::types::VertexId;

use crate::checkpoint::CheckpointSpec;
use crate::queue::{TraversalConfig, TraversalStats, VisitorQueue};
use crate::visitor::{Role, Visitor, VisitorPush};

/// Unreached marker.
pub const UNREACHED: u64 = u64::MAX;

/// Deterministic symmetric edge weight in `[1, max_weight]`.
#[inline]
pub fn edge_weight(a: u64, b: u64, max_weight: u64) -> u64 {
    let (lo, hi) = (a.min(b), a.max(b));
    let mut x = lo ^ hi.rotate_left(32) ^ 0x9E37_79B9_7F4A_7C15;
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    1 + x % max_weight
}

/// Per-vertex SSSP state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SsspData {
    pub distance: u64,
    pub parent: u64,
}

impl Default for SsspData {
    fn default() -> Self {
        Self { distance: UNREACHED, parent: UNREACHED }
    }
}

impl WireCodec for SsspData {
    const WIRE_SIZE: usize = 16;
    type DecodeCtx = ();

    fn encode(&self, buf: &mut [u8]) {
        self.distance.encode(&mut buf[..8]);
        self.parent.encode(&mut buf[8..16]);
    }

    fn decode(buf: &[u8], ctx: &()) -> Self {
        SsspData { distance: u64::decode(&buf[..8], ctx), parent: u64::decode(&buf[8..16], ctx) }
    }
}

/// Distance-relaxation visitor.
#[derive(Clone, Copy, Debug)]
pub struct SsspVisitor {
    pub vertex: VertexId,
    pub distance: u64,
    pub parent: u64,
    /// Weight range rides along so the visitor is self-contained.
    pub max_weight: u64,
}

impl WireCodec for SsspVisitor {
    const WIRE_SIZE: usize = 32;
    type DecodeCtx = ();

    fn encode(&self, buf: &mut [u8]) {
        self.vertex.encode(&mut buf[..8]);
        self.distance.encode(&mut buf[8..16]);
        self.parent.encode(&mut buf[16..24]);
        self.max_weight.encode(&mut buf[24..32]);
    }

    fn decode(buf: &[u8], ctx: &()) -> Self {
        SsspVisitor {
            vertex: VertexId::decode(&buf[..8], ctx),
            distance: u64::decode(&buf[8..16], ctx),
            parent: u64::decode(&buf[16..24], ctx),
            max_weight: u64::decode(&buf[24..32], ctx),
        }
    }
}

impl Visitor for SsspVisitor {
    type Data = SsspData;
    const GHOSTS_ALLOWED: bool = true; // monotone minimum: ghost-safe

    #[inline]
    fn vertex(&self) -> VertexId {
        self.vertex
    }

    #[inline]
    fn pre_visit(&self, data: &mut SsspData, _role: Role) -> bool {
        if self.distance < data.distance {
            data.distance = self.distance;
            data.parent = self.parent;
            true
        } else {
            false
        }
    }

    fn visit(&self, g: &DistGraph, data: &mut SsspData, q: &mut dyn VisitorPush<Self>) {
        if self.distance == data.distance {
            let me = self.vertex.0;
            g.with_adj(self.vertex, |adj| {
                for &t in adj {
                    q.push(SsspVisitor {
                        vertex: VertexId(t),
                        distance: self.distance + edge_weight(me, t, self.max_weight),
                        parent: me,
                        max_weight: self.max_weight,
                    });
                }
            });
        }
    }

    #[inline]
    fn priority(&self, other: &Self) -> Ordering {
        self.distance.cmp(&other.distance) // Dijkstra-like local order
    }

    /// Keep the minimum distance (with its parent) — same monotone update
    /// as `pre_visit`.
    #[inline]
    fn merge(into: &mut SsspData, update: &SsspData) {
        if update.distance < into.distance {
            *into = *update;
        }
    }
}

/// SSSP configuration.
#[derive(Clone, Copy, Debug)]
pub struct SsspConfig {
    pub traversal: TraversalConfig,
    /// Weights are uniform in `[1, max_weight]`.
    pub max_weight: u64,
    /// When set, the traversal checkpoints at quiescence cuts and can
    /// crash/restore under an injected fault plan.
    pub checkpoint: Option<CheckpointSpec>,
}

impl Default for SsspConfig {
    fn default() -> Self {
        Self { traversal: TraversalConfig::default(), max_weight: 255, checkpoint: None }
    }
}

/// Result of one SSSP run (per rank).
#[derive(Clone, Debug)]
pub struct SsspResult {
    /// Global number of vertices reached.
    pub visited_count: u64,
    /// Global maximum finite distance.
    pub max_distance: u64,
    pub elapsed: Duration,
    pub stats: TraversalStats,
    pub local_state: Vec<SsspData>,
}

/// Run SSSP from `source`. Collective.
pub fn sssp(ctx: &RankCtx, g: &DistGraph, source: VertexId, cfg: &SsspConfig) -> SsspResult {
    let mut q = VisitorQueue::<SsspVisitor>::new(ctx, g, cfg.traversal);
    if g.is_master(source) {
        q.push(SsspVisitor {
            vertex: source,
            distance: 0,
            parent: source.0,
            max_weight: cfg.max_weight,
        });
    }
    match &cfg.checkpoint {
        Some(spec) => q.do_traversal_checkpointed(ctx, spec),
        None => q.do_traversal(),
    }

    let mut visited = 0u64;
    let mut far = 0u64;
    for v in g.local_vertices() {
        if !g.is_master(v) {
            continue;
        }
        let d = &q.state()[g.local_index(v)];
        if d.distance != UNREACHED {
            visited += 1;
            far = far.max(d.distance);
        }
    }
    let visited_count = ctx.all_reduce_sum(visited);
    let max_distance = ctx.all_reduce_max(far);
    let stats = q.stats();
    SsspResult {
        visited_count,
        max_distance,
        elapsed: stats.elapsed,
        stats,
        local_state: q.into_state(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use havoq_comm::CommWorld;
    use havoq_graph::csr::GraphConfig;
    use havoq_graph::dist::PartitionStrategy;
    use havoq_graph::gen::rmat::RmatGenerator;
    use havoq_graph::types::Edge;

    /// Serial Dijkstra reference with the same synthesized weights.
    fn reference(n: u64, edges: &[Edge], source: u64, max_weight: u64) -> Vec<u64> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut adj = vec![Vec::new(); n as usize];
        for e in edges {
            if !e.is_self_loop() {
                adj[e.src as usize].push(e.dst);
            }
        }
        let mut dist = vec![UNREACHED; n as usize];
        dist[source as usize] = 0;
        let mut heap = BinaryHeap::new();
        heap.push(Reverse((0u64, source)));
        while let Some(Reverse((d, v))) = heap.pop() {
            if d > dist[v as usize] {
                continue;
            }
            for &t in &adj[v as usize] {
                let nd = d + edge_weight(v, t, max_weight);
                if nd < dist[t as usize] {
                    dist[t as usize] = nd;
                    heap.push(Reverse((nd, t)));
                }
            }
        }
        dist
    }

    #[test]
    fn weights_are_symmetric_and_bounded() {
        for a in 0..50u64 {
            for b in 0..50u64 {
                let w = edge_weight(a, b, 100);
                assert_eq!(w, edge_weight(b, a, 100));
                assert!((1..=100).contains(&w));
            }
        }
    }

    #[test]
    fn matches_dijkstra_on_rmat() {
        let gen = RmatGenerator::graph500(8);
        let edges = gen.symmetric_edges(33);
        let n = gen.num_vertices();
        let cfg = SsspConfig::default();
        let want = reference(n, &edges, 0, cfg.max_weight);
        for p in [1usize, 4] {
            let pieces = CommWorld::run(p, |ctx| {
                let g = DistGraph::build_replicated(
                    ctx,
                    &edges,
                    PartitionStrategy::EdgeList,
                    GraphConfig::default().with_num_vertices(n),
                );
                let r = sssp(ctx, &g, VertexId(0), &cfg);
                g.local_vertices()
                    .filter(|&v| g.is_master(v))
                    .map(|v| (v.0, r.local_state[g.local_index(v)].distance))
                    .collect::<Vec<_>>()
            });
            let mut got = vec![UNREACHED; n as usize];
            for (v, d) in pieces.into_iter().flatten() {
                got[v as usize] = d;
            }
            assert_eq!(got, want, "p={p}");
        }
    }

    #[test]
    fn line_graph_distances_accumulate() {
        let edges: Vec<Edge> =
            (0..4u64).flat_map(|v| [Edge::new(v, v + 1), Edge::new(v + 1, v)]).collect();
        let cfg = SsspConfig::default();
        let out = CommWorld::run(2, |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default(),
            );
            let r = sssp(ctx, &g, VertexId(0), &cfg);
            (r.visited_count, r.max_distance)
        });
        let want: u64 = (0..4).map(|v| edge_weight(v, v + 1, cfg.max_weight)).sum();
        assert_eq!(out[0].0, 5);
        assert_eq!(out[0].1, want);
    }
}
