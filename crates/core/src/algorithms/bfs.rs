//! Breadth-First Search (paper Algorithms 2 and 3).
//!
//! The visitor carries a tentative path length and parent. `pre_visit`
//! keeps the minimum length (monotone and idempotent, so it doubles as the
//! ghost filter); `visit` expands the local adjacency slice when the
//! visitor's length is still the vertex's current best. The local queue
//! orders visitors by length, which makes the asynchronous traversal
//! approximate level-synchronous BFS without any barriers.

use std::cmp::Ordering;
use std::time::Duration;

use havoq_comm::{RankCtx, WireCodec};
use havoq_graph::dist::DistGraph;
use havoq_graph::types::VertexId;

use crate::checkpoint::CheckpointSpec;
use crate::queue::{TraversalConfig, TraversalStats, VisitorQueue};
use crate::visitor::{Role, Visitor, VisitorPush};

/// Unreached marker (the paper's `infinity`).
pub const UNREACHED: u64 = u64::MAX;

/// Per-vertex BFS state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BfsData {
    /// BFS level (path length from the source).
    pub length: u64,
    /// BFS parent (`UNREACHED` until visited).
    pub parent: u64,
}

impl Default for BfsData {
    fn default() -> Self {
        Self { length: UNREACHED, parent: UNREACHED }
    }
}

impl WireCodec for BfsData {
    const WIRE_SIZE: usize = 16;
    type DecodeCtx = ();

    fn encode(&self, buf: &mut [u8]) {
        self.length.encode(&mut buf[..8]);
        self.parent.encode(&mut buf[8..16]);
    }

    fn decode(buf: &[u8], ctx: &()) -> Self {
        BfsData { length: u64::decode(&buf[..8], ctx), parent: u64::decode(&buf[8..16], ctx) }
    }
}

/// The BFS visitor (Algorithm 2).
#[derive(Clone, Copy, Debug)]
pub struct BfsVisitor {
    pub vertex: VertexId,
    pub length: u64,
    pub parent: u64,
}

impl WireCodec for BfsVisitor {
    const WIRE_SIZE: usize = 24;
    type DecodeCtx = ();

    fn encode(&self, buf: &mut [u8]) {
        self.vertex.encode(&mut buf[..8]);
        self.length.encode(&mut buf[8..16]);
        self.parent.encode(&mut buf[16..24]);
    }

    fn decode(buf: &[u8], ctx: &()) -> Self {
        BfsVisitor {
            vertex: VertexId::decode(&buf[..8], ctx),
            length: u64::decode(&buf[8..16], ctx),
            parent: u64::decode(&buf[16..24], ctx),
        }
    }
}

impl Visitor for BfsVisitor {
    type Data = BfsData;
    /// BFS tolerates imprecise filtering, so ghosts are allowed
    /// (Section IV-B).
    const GHOSTS_ALLOWED: bool = true;

    #[inline]
    fn vertex(&self) -> VertexId {
        self.vertex
    }

    #[inline]
    fn pre_visit(&self, data: &mut BfsData, _role: Role) -> bool {
        // same monotone update everywhere: master, replica and ghost
        if self.length < data.length {
            data.length = self.length;
            data.parent = self.parent;
            true
        } else {
            false
        }
    }

    fn visit(&self, g: &DistGraph, data: &mut BfsData, q: &mut dyn VisitorPush<Self>) {
        // expand only if we are still the best-known path (Alg. 2 line 13)
        if self.length == data.length {
            g.with_adj(self.vertex, |adj| {
                for &t in adj {
                    q.push(BfsVisitor {
                        vertex: VertexId(t),
                        length: self.length + 1,
                        parent: self.vertex.0,
                    });
                }
            });
        }
    }

    #[inline]
    fn priority(&self, other: &Self) -> Ordering {
        self.length.cmp(&other.length)
    }

    /// Keep the minimum length (with its parent) — the same monotone
    /// update as `pre_visit`, so merging a stale worker seed is a no-op.
    #[inline]
    fn merge(into: &mut BfsData, update: &BfsData) {
        if update.length < into.length {
            *into = *update;
        }
    }
}

/// BFS configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct BfsConfig {
    pub traversal: TraversalConfig,
    /// When set, the traversal checkpoints at quiescence cuts and can
    /// crash/restore under an injected fault plan.
    pub checkpoint: Option<CheckpointSpec>,
}

impl BfsConfig {
    pub fn with_ghosts(mut self, ghosts: usize) -> Self {
        self.traversal.ghosts = ghosts;
        self
    }

    pub fn with_checkpoint(mut self, spec: CheckpointSpec) -> Self {
        self.checkpoint = Some(spec);
        self
    }

    /// Select the traversal engine / direction policy (DESIGN.md §13).
    pub fn with_direction(mut self, mode: crate::direction::DirectionMode) -> Self {
        self.traversal.direction.mode = mode;
        self
    }

    pub fn with_threads(mut self, threads: usize) -> Self {
        self.traversal = self.traversal.with_threads(threads);
        self
    }
}

/// Aggregated + local results of one BFS run (per rank).
#[derive(Clone, Debug)]
pub struct BfsResult {
    /// Global number of vertices reached (including the source).
    pub visited_count: u64,
    /// Global sum of whole-adjacency degrees of reached vertices — the
    /// Graph500-style "edges traversed" numerator for TEPS.
    pub traversed_edges: u64,
    /// Deepest BFS level reached (the source's eccentricity).
    pub max_level: u64,
    /// Wall-clock of the traversal phase on this rank.
    pub elapsed: Duration,
    /// This rank's queue statistics.
    pub stats: TraversalStats,
    /// World-shared transport traffic matrix (channel-pair usage — shows
    /// the routed-mailbox channel reduction of Section III-B).
    pub transport: havoq_comm::ChannelStatsSnapshot,
    /// Final state for this rank's local vertices (masters + replicas).
    pub local_state: Vec<BfsData>,
}

impl BfsResult {
    /// Traversed-edges-per-second using this rank's elapsed time.
    pub fn teps(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.traversed_edges as f64 / self.elapsed.as_secs_f64()
        }
    }
}

/// Run BFS from `source` (Algorithm 3). Collective.
///
/// ```
/// use havoq_comm::CommWorld;
/// use havoq_core::algorithms::bfs::{bfs, BfsConfig};
/// use havoq_graph::csr::GraphConfig;
/// use havoq_graph::dist::{DistGraph, PartitionStrategy};
/// use havoq_graph::types::{Edge, VertexId};
///
/// // a 4-cycle, symmetrized
/// let edges: Vec<Edge> = [(0, 1), (1, 2), (2, 3), (3, 0)]
///     .iter()
///     .flat_map(|&(a, b)| [Edge::new(a, b), Edge::new(b, a)])
///     .collect();
/// let results = CommWorld::run(2, |ctx| {
///     let g = DistGraph::build_replicated(
///         ctx, &edges, PartitionStrategy::EdgeList, GraphConfig::default());
///     bfs(ctx, &g, VertexId(0), &BfsConfig::default())
/// });
/// assert_eq!(results[0].visited_count, 4);
/// assert_eq!(results[0].max_level, 2); // the opposite corner
/// ```
pub fn bfs(ctx: &RankCtx, g: &DistGraph, source: VertexId, cfg: &BfsConfig) -> BfsResult {
    if cfg.traversal.direction.mode != crate::direction::DirectionMode::Async {
        // Level-synchronous direction-optimizing engine (DESIGN.md §13):
        // same levels, deterministic min-id parents, per-level traces
        // available via `direction_bfs` directly.
        return crate::direction::direction_bfs(ctx, g, source, cfg).result;
    }
    let mut q = VisitorQueue::<BfsVisitor>::new(ctx, g, cfg.traversal);
    // state defaults to length = infinity (Alg. 3 lines 4-7)
    if g.is_master(source) {
        q.push(BfsVisitor { vertex: source, length: 0, parent: source.0 });
    }
    match &cfg.checkpoint {
        Some(spec) => q.do_traversal_checkpointed(ctx, spec),
        None => q.do_traversal(),
    }
    finish_result(ctx, g, q)
}

/// Aggregate a finished BFS-shaped traversal (any visitor whose per-vertex
/// state is [`BfsData`]) into a [`BfsResult`]: master-only visited /
/// traversed-edge / deepest-level reductions plus the storage-layer stat
/// fold. Shared by the asynchronous visitor path and the direction engine.
pub(crate) fn finish_result<V>(ctx: &RankCtx, g: &DistGraph, q: VisitorQueue<V>) -> BfsResult
where
    V: Visitor<Data = BfsData> + WireCodec,
{
    // aggregate over masters only (replica state is a copy)
    let mut visited = 0u64;
    let mut traversed = 0u64;
    let mut deepest = 0u64;
    for v in g.local_vertices() {
        if !g.is_master(v) {
            continue;
        }
        let d = &q.state()[g.local_index(v)];
        if d.length != UNREACHED {
            visited += 1;
            traversed += g.total_degree(v);
            deepest = deepest.max(d.length);
        }
    }
    let visited_count = ctx.all_reduce_sum(visited);
    let traversed_edges = ctx.all_reduce_sum(traversed);
    let max_level = ctx.all_reduce_max(deepest);
    let mut stats = q.stats();
    // Fold in this rank's storage-layer stalls and queue pressure
    // (semi-external storage only; all zeros for in-memory CSR).
    if let Some(cs) = g.csr().cache_stats() {
        stats.io_stall = cs.io_stall();
        stats.evict_stall = cs.evict_stall();
        stats.page_checksum_failures = cs.page_checksum_failures;
        stats.page_reread_retries = cs.page_reread_retries;
    }
    if let Some(io) = g.csr().io_stats() {
        stats.io_avg_queue_depth = io.avg_queue_depth();
        stats.io_queue_peak = io.peak_outstanding;
    }
    if let Some(snap) = g.csr().storage_snapshot() {
        stats.adj_decodes = snap.adj_decodes;
        stats.adj_decoded_bytes = snap.adj_decoded_bytes;
        stats.edge_bytes_encoded = snap.encoded_bytes;
        stats.edge_bytes_raw = snap.raw_bytes;
    }
    let transport = q.transport_stats();
    BfsResult {
        visited_count,
        traversed_edges,
        max_level,
        elapsed: stats.elapsed,
        stats,
        transport,
        local_state: q.into_state(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use havoq_comm::CommWorld;
    use havoq_graph::csr::GraphConfig;
    use havoq_graph::dist::PartitionStrategy;
    use havoq_graph::gen::rmat::RmatGenerator;
    use havoq_graph::gen::smallworld::SmallWorldGenerator;
    use havoq_graph::types::Edge;

    /// Serial reference BFS.
    fn reference_levels(n: u64, edges: &[Edge], source: u64) -> Vec<u64> {
        let mut adj = vec![Vec::new(); n as usize];
        for e in edges {
            if !e.is_self_loop() {
                adj[e.src as usize].push(e.dst);
            }
        }
        let mut level = vec![UNREACHED; n as usize];
        level[source as usize] = 0;
        let mut frontier = vec![source];
        let mut next = Vec::new();
        let mut l = 0u64;
        while !frontier.is_empty() {
            l += 1;
            for &v in &frontier {
                for &t in &adj[v as usize] {
                    if level[t as usize] == UNREACHED {
                        level[t as usize] = l;
                        next.push(t);
                    }
                }
            }
            frontier = std::mem::take(&mut next);
        }
        level
    }

    /// Run distributed BFS and reassemble the global level array from the
    /// masters' state.
    fn distributed_levels(
        p: usize,
        n: u64,
        edges: &[Edge],
        source: u64,
        cfg: &BfsConfig,
        strategy: PartitionStrategy,
    ) -> Vec<u64> {
        let pieces = CommWorld::run(p, |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                edges,
                strategy,
                GraphConfig::default().with_num_vertices(n),
            );
            let r = bfs(ctx, &g, VertexId(source), cfg);
            g.local_vertices()
                .filter(|&v| g.is_master(v))
                .map(|v| (v.0, r.local_state[g.local_index(v)].length))
                .collect::<Vec<_>>()
        });
        let mut levels = vec![UNREACHED; n as usize];
        let mut seen = vec![false; n as usize];
        for (v, l) in pieces.into_iter().flatten() {
            assert!(!seen[v as usize], "vertex {v} has two masters");
            seen[v as usize] = true;
            levels[v as usize] = l;
        }
        assert!(seen.iter().all(|&s| s), "some vertex has no master");
        levels
    }

    #[test]
    fn matches_reference_on_rmat() {
        let gen = RmatGenerator::graph500(9);
        let edges = gen.symmetric_edges(21);
        let n = gen.num_vertices();
        let want = reference_levels(n, &edges, 0);
        for p in [1usize, 3, 4] {
            let got = distributed_levels(
                p,
                n,
                &edges,
                0,
                &BfsConfig::default(),
                PartitionStrategy::EdgeList,
            );
            assert_eq!(got, want, "p={p}");
        }
    }

    #[test]
    fn matches_reference_with_one_d_partitioning() {
        let gen = RmatGenerator::graph500(8);
        let edges = gen.symmetric_edges(2);
        let n = gen.num_vertices();
        let want = reference_levels(n, &edges, 3);
        let got =
            distributed_levels(4, n, &edges, 3, &BfsConfig::default(), PartitionStrategy::OneD);
        assert_eq!(got, want);
    }

    #[test]
    fn ghost_counts_do_not_change_result() {
        let gen = RmatGenerator::graph500(8);
        let edges = gen.symmetric_edges(9);
        let n = gen.num_vertices();
        let want = reference_levels(n, &edges, 0);
        for ghosts in [0usize, 1, 16, 512] {
            let cfg = BfsConfig::default().with_ghosts(ghosts);
            let got = distributed_levels(4, n, &edges, 0, &cfg, PartitionStrategy::EdgeList);
            assert_eq!(got, want, "ghosts={ghosts}");
        }
    }

    #[test]
    fn small_world_depth_grows_as_rewire_shrinks() {
        let n = 1024u64;
        let depth_of = |rewire: f64| {
            let gen = SmallWorldGenerator::new(n, 8).with_rewire(rewire);
            let edges = gen.symmetric_edges(4);
            let res = CommWorld::run(2, |ctx| {
                let g = DistGraph::build_replicated(
                    ctx,
                    &edges,
                    PartitionStrategy::EdgeList,
                    GraphConfig::default(),
                );
                bfs(ctx, &g, VertexId(0), &BfsConfig::default()).max_level
            });
            res[0]
        };
        let ring = depth_of(0.0);
        let random = depth_of(0.5);
        assert!(ring > 4 * random, "ring depth {ring} vs rewired {random}");
    }

    #[test]
    fn aggregates_are_consistent() {
        let gen = RmatGenerator::graph500(8);
        let edges = gen.symmetric_edges(6);
        let n = gen.num_vertices();
        let want = reference_levels(n, &edges, 0);
        let reached = want.iter().filter(|&&l| l != UNREACHED).count() as u64;
        let deepest = want.iter().filter(|&&l| l != UNREACHED).max().copied().unwrap();
        let out = CommWorld::run(3, |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default(),
            );
            let r = bfs(ctx, &g, VertexId(0), &BfsConfig::default());
            (r.visited_count, r.max_level, r.traversed_edges)
        });
        for (v, m, t) in out {
            assert_eq!(v, reached);
            assert_eq!(m, deepest);
            assert!(t > 0);
        }
    }

    #[test]
    fn disconnected_source_reaches_only_itself() {
        // two components: 0-1-2 ring and isolated pair 5-6
        let edges = vec![
            Edge::new(0, 1),
            Edge::new(1, 0),
            Edge::new(1, 2),
            Edge::new(2, 1),
            Edge::new(5, 6),
            Edge::new(6, 5),
        ];
        let out = CommWorld::run(2, |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default(),
            );
            bfs(ctx, &g, VertexId(5), &BfsConfig::default()).visited_count
        });
        assert_eq!(out[0], 2, "component of 5 has vertices 5 and 6");
    }
}
