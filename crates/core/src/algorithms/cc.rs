//! Connected components by asynchronous minimum-label propagation.
//!
//! One of the visitor algorithms of the authors' earlier shared/external
//! memory work ([4] in the paper), included to show the framework carries
//! beyond the three headline kernels. Every vertex starts labeled with its
//! own id; visitors propagate the smallest label seen. The update is
//! monotone and idempotent, so ghosts apply.

use std::cmp::Ordering;
use std::time::Duration;

use havoq_comm::{RankCtx, WireCodec};
use havoq_graph::dist::DistGraph;
use havoq_graph::types::VertexId;

use crate::checkpoint::CheckpointSpec;
use crate::queue::{TraversalConfig, TraversalStats, VisitorQueue};
use crate::visitor::{Role, Visitor, VisitorPush};

/// Per-vertex component state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CcData {
    /// Smallest vertex id known to be in this vertex's component.
    pub component: u64,
}

impl Default for CcData {
    fn default() -> Self {
        Self { component: u64::MAX }
    }
}

impl WireCodec for CcData {
    const WIRE_SIZE: usize = 8;
    type DecodeCtx = ();

    fn encode(&self, buf: &mut [u8]) {
        self.component.encode(buf);
    }

    fn decode(buf: &[u8], ctx: &()) -> Self {
        CcData { component: u64::decode(buf, ctx) }
    }
}

/// Minimum-label propagation visitor.
#[derive(Clone, Copy, Debug)]
pub struct CcVisitor {
    pub vertex: VertexId,
    pub label: u64,
}

impl WireCodec for CcVisitor {
    const WIRE_SIZE: usize = 16;
    type DecodeCtx = ();

    fn encode(&self, buf: &mut [u8]) {
        self.vertex.encode(&mut buf[..8]);
        self.label.encode(&mut buf[8..16]);
    }

    fn decode(buf: &[u8], ctx: &()) -> Self {
        CcVisitor { vertex: VertexId::decode(&buf[..8], ctx), label: u64::decode(&buf[8..16], ctx) }
    }
}

impl Visitor for CcVisitor {
    type Data = CcData;
    const GHOSTS_ALLOWED: bool = true;

    #[inline]
    fn vertex(&self) -> VertexId {
        self.vertex
    }

    #[inline]
    fn pre_visit(&self, data: &mut CcData, _role: Role) -> bool {
        if self.label < data.component {
            data.component = self.label;
            true
        } else {
            false
        }
    }

    fn visit(&self, g: &DistGraph, data: &mut CcData, q: &mut dyn VisitorPush<Self>) {
        if self.label == data.component {
            g.with_adj(self.vertex, |adj| {
                for &t in adj {
                    q.push(CcVisitor { vertex: VertexId(t), label: self.label });
                }
            });
        }
    }

    #[inline]
    fn priority(&self, other: &Self) -> Ordering {
        // lower labels first: they win anyway, so spread them early
        self.label.cmp(&other.label)
    }

    /// Keep the minimum label — same monotone update as `pre_visit`.
    #[inline]
    fn merge(into: &mut CcData, update: &CcData) {
        into.component = into.component.min(update.component);
    }
}

/// Connected-components configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct CcConfig {
    pub traversal: TraversalConfig,
    /// When set, the traversal checkpoints at quiescence cuts and can
    /// crash/restore under an injected fault plan.
    pub checkpoint: Option<CheckpointSpec>,
}

/// Result of a components run (per rank).
#[derive(Clone, Debug)]
pub struct CcResult {
    /// Global number of connected components.
    pub num_components: u64,
    pub elapsed: Duration,
    pub stats: TraversalStats,
    /// Final labels for this rank's local vertices.
    pub local_state: Vec<CcData>,
}

/// Label every vertex with the smallest id in its (weakly) connected
/// component; assumes a symmetrized edge list. Collective.
pub fn connected_components(ctx: &RankCtx, g: &DistGraph, cfg: &CcConfig) -> CcResult {
    let mut q = VisitorQueue::<CcVisitor>::new(ctx, g, cfg.traversal);
    for v in g.local_vertices() {
        if g.is_master(v) {
            q.push(CcVisitor { vertex: v, label: v.0 });
        }
    }
    match &cfg.checkpoint {
        Some(spec) => q.do_traversal_checkpointed(ctx, spec),
        None => q.do_traversal(),
    }

    // roots are vertices labeled with their own id
    let local_roots = g
        .local_vertices()
        .filter(|&v| g.is_master(v) && q.state()[g.local_index(v)].component == v.0)
        .count() as u64;
    let num_components = ctx.all_reduce_sum(local_roots);
    let stats = q.stats();
    CcResult { num_components, elapsed: stats.elapsed, stats, local_state: q.into_state() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use havoq_comm::CommWorld;
    use havoq_graph::csr::GraphConfig;
    use havoq_graph::dist::PartitionStrategy;
    use havoq_graph::gen::rmat::RmatGenerator;
    use havoq_graph::types::Edge;

    /// Serial union-find reference returning component count and the
    /// min-label per vertex.
    fn reference(n: u64, edges: &[Edge]) -> (u64, Vec<u64>) {
        let mut parent: Vec<u64> = (0..n).collect();
        fn find(parent: &mut [u64], x: u64) -> u64 {
            let mut r = x;
            while parent[r as usize] != r {
                r = parent[r as usize];
            }
            let mut c = x;
            while parent[c as usize] != r {
                let next = parent[c as usize];
                parent[c as usize] = r;
                c = next;
            }
            r
        }
        for e in edges {
            let (a, b) = (find(&mut parent, e.src), find(&mut parent, e.dst));
            if a != b {
                parent[a.max(b) as usize] = a.min(b);
            }
        }
        let labels: Vec<u64> = (0..n).map(|v| find(&mut parent, v)).collect();
        // min-label per component is the root since we always union to min
        let mut roots: Vec<u64> = labels.clone();
        roots.sort_unstable();
        roots.dedup();
        (roots.len() as u64, labels)
    }

    fn distributed(p: usize, n: u64, edges: &[Edge]) -> (u64, Vec<u64>) {
        let pieces = CommWorld::run(p, |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default().with_num_vertices(n),
            );
            let r = connected_components(ctx, &g, &CcConfig::default());
            let labels: Vec<(u64, u64)> = g
                .local_vertices()
                .filter(|&v| g.is_master(v))
                .map(|v| (v.0, r.local_state[g.local_index(v)].component))
                .collect();
            (r.num_components, labels)
        });
        let count = pieces[0].0;
        let mut labels = vec![0u64; n as usize];
        for (_, ls) in pieces {
            for (v, l) in ls {
                labels[v as usize] = l;
            }
        }
        (count, labels)
    }

    #[test]
    fn two_islands() {
        let edges: Vec<Edge> = [(0, 1), (1, 2), (4, 5)]
            .iter()
            .flat_map(|&(a, b)| [Edge::new(a, b), Edge::new(b, a)])
            .collect();
        // vertices 0..6 exist; vertex 3 is isolated -> 3 components
        let (count, labels) = distributed(3, 6, &edges);
        assert_eq!(count, 3);
        assert_eq!(labels, vec![0, 0, 0, 3, 4, 4]);
    }

    #[test]
    fn matches_reference_on_rmat() {
        let gen = RmatGenerator::graph500(8);
        let edges = gen.symmetric_edges(15);
        let n = gen.num_vertices();
        let (want_count, want_labels) = reference(n, &edges);
        for p in [1usize, 4] {
            let (count, labels) = distributed(p, n, &edges);
            assert_eq!(count, want_count, "p={p}");
            assert_eq!(labels, want_labels, "p={p}");
        }
    }

    #[test]
    fn fully_disconnected() {
        // edges exist only as self-referential filler: use two trivial edges
        // to set n, leaving most vertices isolated
        let edges = vec![Edge::new(9, 8), Edge::new(8, 9)];
        let (count, _) = distributed(2, 10, &edges);
        assert_eq!(count, 9, "8 isolated vertices + the 8-9 pair");
    }
}
